"""Quickstart: the AlexIndex API in five minutes.

Builds an updatable learned index over random keys, then walks through
every public operation: lookups, inserts, updates, deletes, range scans,
and the introspection/accounting API.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro import AlexIndex, ga_armi
from repro.core.errors import DuplicateKeyError, KeyNotFoundError


def main():
    rng = np.random.default_rng(0)
    keys = np.unique(rng.uniform(0, 1_000_000, 50_000))
    payloads = [f"record-{i}" for i in range(len(keys))]

    # Bulk load is how the paper initializes every experiment.  The config
    # picks the variant: ga_armi() is ALEX-GA-ARMI, the paper's choice for
    # read-write workloads.
    index = AlexIndex.bulk_load(keys, payloads, config=ga_armi())
    print(f"loaded {len(index):,} keys as {index.variant_name}")
    print(f"  leaves: {index.num_leaves():,}, RMI depth: {index.depth()}")
    print(f"  index size: {index.index_size_bytes():,} B "
          f"(data: {index.data_size_bytes():,} B)")

    # Point lookups.
    probe = float(keys[1234])
    print(f"\nlookup({probe:.3f}) -> {index.lookup(probe)!r}")

    # Inserts go to the model-predicted slot (model-based insertion).
    index.insert(123.456, "fresh")
    print(f"insert(123.456); lookup -> {index.lookup(123.456)!r}")

    # Duplicate keys are rejected (paper Section 7 lists duplicates as an
    # open limitation).
    try:
        index.insert(123.456, "again")
    except DuplicateKeyError as exc:
        print(f"duplicate insert rejected: {exc}")

    # Updates and deletes.
    index.update(123.456, "updated")
    print(f"update; lookup -> {index.lookup(123.456)!r}")
    index.delete(123.456)
    try:
        index.lookup(123.456)
    except KeyNotFoundError:
        print("deleted key no longer found")

    # Range scans use the per-node bitmaps and the leaf chain.
    start = float(np.sort(keys)[100])
    window = index.range_scan(start, limit=5)
    print(f"\nrange_scan({start:.3f}, limit=5):")
    for key, payload in window:
        print(f"  {key:14.3f} -> {payload!r}")

    # Dict-style sugar.
    index[42.0] = "answer"
    assert 42.0 in index and index[42.0] == "answer"
    del index[42.0]

    # The operation counters drive the reproduction's simulated-time
    # throughput metric (see DESIGN.md Section 6).
    work = index.counters
    print(f"\ncounters: {work.model_inferences:,} model inferences, "
          f"{work.pointer_follows:,} pointer follows, "
          f"{work.shifts:,} element shifts")

    # validate() checks every structural invariant — cheap insurance.
    index.validate()
    print("validate(): OK")


if __name__ == "__main__":
    main()
