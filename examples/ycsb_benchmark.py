"""YCSB-style benchmark: all four paper workloads on one command.

Drives ALEX (the paper's per-workload best variant), the B+Tree, and the
Learned Index through the read-only / read-heavy / write-heavy / range-scan
workloads of Section 5.1.2 on a dataset of your choice, and prints the
Figure-4-style table of simulated throughput and index sizes.

Run: ``python examples/ycsb_benchmark.py [dataset] [init_size]``
(dataset in {longitudes, longlat, lognormal, ycsb}; default ycsb 20000)
"""

import sys

from repro.bench import (
    SystemParams,
    best_alex_variant_for,
    format_table,
    ratio,
    run_experiment,
)
from repro.workloads import RANGE_SCAN, READ_HEAVY, READ_ONLY, WRITE_HEAVY

WORKLOADS = (READ_ONLY, READ_HEAVY, WRITE_HEAVY, RANGE_SCAN)


def main():
    dataset = sys.argv[1] if len(sys.argv) > 1 else "ycsb"
    init_size = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000
    num_ops = max(2000, init_size // 4)
    params = SystemParams(keys_per_model=256, max_keys_per_node=1024)

    rows = []
    for spec in WORKLOADS:
        systems = [best_alex_variant_for(spec), "BPlusTree"]
        if spec is READ_ONLY:
            systems.append("LearnedIndex")  # excluded elsewhere (paper 5.2.2)
        results = {}
        for system in systems:
            r = run_experiment(system, dataset, spec, init_size=init_size,
                               num_ops=num_ops, params=params, seed=3)
            results[system] = r
            rows.append((spec.name, system, f"{r.throughput / 1e6:.2f}",
                         f"{r.index_bytes:,}",
                         ratio(r.throughput,
                               results[systems[0]].throughput)))
    print(format_table(
        ["workload", "system", "Mops/s (simulated)", "index bytes",
         "vs ALEX"],
        rows,
        title=f"YCSB-style workloads on {dataset} "
              f"(init={init_size:,}, ops={num_ops:,})"))
    print("\nNote: throughput is simulated from operation counters"
          " (see DESIGN.md Section 6); shapes, not absolute numbers,"
          " are the reproduction target.")


if __name__ == "__main__":
    main()
