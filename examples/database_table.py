"""A toy database table with ALEX primary and secondary indexes.

The paper's Section 7 sketches how ALEX slots into a DBMS: a primary index
maps keys to records and secondary indexes map attribute values to record
pointers.  This example builds an "orders" table with an ALEX primary
index on order id and ALEX secondary indexes on customer id and amount,
then runs the kinds of queries a database executes through each access
path.

Run: ``python examples/database_table.py``
"""

import numpy as np

from repro.ext.secondary import IndexedTable


def main():
    rng = np.random.default_rng(42)
    table = IndexedTable("order_id", secondary=("customer_id", "amount"))

    print("loading 20,000 orders...")
    for order_id in range(20_000):
        table.insert({
            "order_id": order_id,
            "customer_id": int(rng.integers(0, 2_000)),
            "amount": round(float(rng.lognormal(3.5, 1.0)), 2),
            "item": f"sku-{rng.integers(0, 500)}",
        })
    print(f"table has {len(table):,} rows, "
          f"primary index {len(table.primary):,} keys, "
          f"secondary on customer_id: "
          f"{table.secondary['customer_id'].__len__():,} entries\n")

    # Point query through the primary index.
    order = table.get(12_345.0)
    print(f"SELECT * WHERE order_id = 12345\n  -> {order}\n")

    # Equality query through a secondary index (non-unique attribute).
    customer = order["customer_id"]
    orders = table.find_by("customer_id", float(customer))
    total = sum(o["amount"] for o in orders)
    print(f"SELECT * WHERE customer_id = {customer}"
          f"\n  -> {len(orders)} orders, lifetime value {total:,.2f}\n")

    # Range query through a secondary index.
    big = table.range_by("amount", 1000.0, 2000.0)
    print(f"SELECT * WHERE amount BETWEEN 1000 AND 2000"
          f"\n  -> {len(big)} orders\n")

    # Range query through the primary index (order-id time range).
    recent = table.range_by("order_id", 19_990.0, 19_999.0)
    print(f"SELECT * WHERE order_id BETWEEN 19990 AND 19999"
          f"\n  -> {[int(r['order_id']) for r in recent]}\n")

    # Deletes maintain every index.
    for order_id in range(100):
        table.delete(float(order_id))
    print(f"deleted orders 0-99; table now {len(table):,} rows; "
          f"customer {customer} still has "
          f"{len(table.find_by('customer_id', float(customer)))} orders")


if __name__ == "__main__":
    main()
