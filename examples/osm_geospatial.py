"""Geospatial scenario: indexing OpenStreetMap-style longitudes.

The paper's flagship dataset is 1B OSM longitudes.  This example builds an
ALEX index over synthetic longitudes with the same clustered CDF, uses it
to answer "what's near longitude X?" range queries, and compares the index
footprint and simulated lookup cost against a B+Tree — the paper's Figure 4
in miniature, on a realistic application query pattern.

Run: ``python examples/osm_geospatial.py``
"""

import numpy as np

from repro import AlexIndex, BPlusTree, DEFAULT_COST_MODEL, ga_srmi
from repro.datasets import longitudes

N = 100_000
CITIES = {
    "London": -0.1276,
    "New York": -74.0060,
    "Tokyo": 139.6503,
    "Sydney": 151.2093,
    "Lagos": 3.3792,
}


def main():
    print(f"generating {N:,} OSM-like longitude keys...")
    keys = longitudes(N, seed=7)
    place_ids = [f"node/{i}" for i in range(N)]

    alex = AlexIndex.bulk_load(keys, place_ids, config=ga_srmi(num_models=N // 512))
    bptree = BPlusTree.bulk_load(keys, place_ids, page_size=256)

    print(f"ALEX   index: {alex.index_size_bytes():>10,} B "
          f"({alex.num_leaves()} leaves)")
    print(f"B+Tree index: {bptree.index_size_bytes():>10,} B "
          f"(height {bptree.height})")
    print(f"  -> ALEX index is "
          f"{bptree.index_size_bytes() / alex.index_size_bytes():.0f}x smaller")

    # "Places within 0.05 degrees of each city" — classic range queries.
    print("\nplaces within ±0.05° of each city (count via range_query):")
    for city, lon in CITIES.items():
        nearby = alex.range_query(lon - 0.05, lon + 0.05)
        check = bptree.range_query(lon - 0.05, lon + 0.05)
        assert [k for k, _ in nearby] == [k for k, _ in check]
        print(f"  {city:<10} lon={lon:+9.4f}: {len(nearby):5d} places")

    # Compare simulated lookup cost over a hot query mix.
    rng = np.random.default_rng(11)
    probes = rng.choice(keys, 20_000)
    for name, index in (("ALEX", alex), ("B+Tree", bptree)):
        before = index.counters.snapshot()
        for key in probes:
            index.lookup(float(key))
        work = index.counters.diff(before)
        nanos = DEFAULT_COST_MODEL.nanos_per_op(len(probes), work)
        print(f"\n{name}: {nanos:.0f} simulated ns/lookup "
              f"({work.comparisons / len(probes):.1f} comparisons, "
              f"{work.pointer_follows / len(probes):.1f} pointer follows/op)")


if __name__ == "__main__":
    main()
