"""Batch reads: the vectorized batch engine vs a scalar lookup loop.

ALEX's per-operation cost is a full RMI traversal plus an in-node search.
When reads arrive in batches (analytics scans, LSM compaction probes,
multi-get RPCs), :meth:`AlexIndex.lookup_many` executes the whole batch
through the vectorized engine — one sort, one grouped RMI descent, one
lock-step search per touched leaf — and returns exactly what a scalar loop
would, an order of magnitude faster in wall-clock time.

Run: ``python examples/batch_lookup.py``
"""

import time

import numpy as np

from repro import AlexIndex, ga_armi


def main():
    rng = np.random.default_rng(0)
    keys = np.unique(rng.uniform(0, 1e12, 220_000))[:200_000]
    payloads = [f"record-{i}" for i in range(len(keys))]
    index = AlexIndex.bulk_load(keys, payloads, config=ga_armi())
    print(f"loaded {len(index):,} keys as {index.variant_name} "
          f"({index.num_leaves():,} leaves)")

    probes = rng.choice(keys, 50_000, replace=True)

    # One call for the whole batch: results come back in input order.
    start = time.perf_counter()
    batch_results = index.lookup_many(probes)
    batch_seconds = time.perf_counter() - start
    print(f"lookup_many : {len(probes):,} reads in {batch_seconds:.3f}s "
          f"({len(probes) / batch_seconds:,.0f} ops/s)")

    # The same reads as a scalar loop (each lookup routes the RMI alone).
    sample = [float(k) for k in probes[:5_000]]
    start = time.perf_counter()
    scalar_results = [index.lookup(k) for k in sample]
    scalar_seconds = (time.perf_counter() - start) * (len(probes) / len(sample))
    print(f"scalar loop : ~{scalar_seconds:.3f}s extrapolated "
          f"({len(probes) / scalar_seconds:,.0f} ops/s)")
    print(f"speedup     : {scalar_seconds / batch_seconds:.1f}x")

    assert batch_results[:len(sample)] == scalar_results
    print("results identical to the scalar path")

    # Mixed hit/miss batches: get_many fills a default, contains_many
    # returns a boolean mask, both aligned with the input order.
    mixed = np.concatenate([probes[:3], rng.uniform(0, 1e12, 3)])
    print("get_many    :", index.get_many(mixed, default="<absent>"))
    print("contains_many:", index.contains_many(mixed).tolist())


if __name__ == "__main__":
    main()
