"""Saving and restoring an ALEX index without retraining.

Rebuilding an index from raw keys retrains every model; restoring it from
the persistence format (`repro.ext.persistence`) keeps the exact models
and slot layouts, so lookup behaviour — including the prediction errors
that determine performance — is preserved bit-for-bit.

Run: ``python examples/persistence_demo.py``
"""

import os
import tempfile
import time

import numpy as np

from repro import AlexIndex, ga_armi
from repro.analysis import alex_prediction_errors
from repro.datasets import longitudes
from repro.ext.persistence import load_index, save_index


def main():
    keys = longitudes(50_000, seed=3)
    payloads = [f"poi-{i}" for i in range(len(keys))]
    index = AlexIndex.bulk_load(keys, payloads, config=ga_armi())
    index.insert(999.5, "added-later")
    print(f"built index: {len(index):,} keys, {index.num_leaves()} leaves, "
          f"{index.index_size_bytes():,} B of models+pointers")

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "alex.npz")
        t0 = time.perf_counter()
        save_index(index, path)
        save_ms = (time.perf_counter() - t0) * 1000
        size = os.path.getsize(path)
        print(f"saved to {os.path.basename(path)}: {size:,} B "
              f"in {save_ms:.0f} ms")

        t0 = time.perf_counter()
        restored = load_index(path)
        load_ms = (time.perf_counter() - t0) * 1000
        print(f"loaded in {load_ms:.0f} ms")

        restored.validate()
        assert restored.lookup(999.5) == "added-later"
        assert list(restored.items()) == list(index.items())
        original_errors = alex_prediction_errors(index)
        restored_errors = alex_prediction_errors(restored)
        assert np.array_equal(original_errors, restored_errors)
        print("round trip verified: contents, structure, and model "
              "predictions are identical")
        print(f"  mean prediction error before/after: "
              f"{original_errors.mean():.3f} / {restored_errors.mean():.3f}")

        restored.insert(-999.0, "post-restore")
        print("restored index accepts new inserts: OK")


if __name__ == "__main__":
    main()
