"""Index doctor: diagnosing an ALEX index with the introspection tools.

Walks through the operational toolkit a DBA would use: the structural
report (leaf occupancy, model accuracy, packed runs), ASCII charts of the
leaf-size and error distributions, and a cursor-based consistency sweep —
first on a healthy bulk-loaded index, then on the same index after an
adversarial append-only burst, showing exactly which health metrics
degrade (the paper's fully-packed-region pathology made visible).

Run: ``python examples/index_doctor.py``
"""

import numpy as np

from repro import AlexIndex, ga_armi
from repro.analysis import alex_prediction_errors, log2_histogram
from repro.bench import ascii_histogram
from repro.core import Cursor, format_report, structure_report
from repro.datasets import longitudes


def checkup(index, label):
    print(f"=== {label} ===")
    print(format_report(structure_report(index)))
    errors = alex_prediction_errors(index)
    print("\nprediction-error distribution:")
    print(ascii_histogram(log2_histogram(errors), width=40))

    # Cursor sweep: confirm global key order end to end.
    cursor = Cursor(index)
    previous = -np.inf
    count = 0
    while cursor.valid():
        key = cursor.key()
        assert key > previous, "cursor found out-of-order keys!"
        previous = key
        count += 1
        cursor.next()
    print(f"\ncursor sweep: {count:,} keys in strict order — OK\n")


def main():
    keys = longitudes(30_000, seed=17)
    index = AlexIndex.bulk_load(keys, config=ga_armi(max_keys_per_node=1024))
    checkup(index, "healthy index (bulk-loaded on longitudes)")

    # Adversarial burst: append a run of increasing keys past the max —
    # everything lands in the right-most leaf (paper Figure 5c).
    top = float(np.max(keys))
    for i in range(6000):
        index.insert(top + 1.0 + i * 0.001)
    checkup(index, "after a 6,000-key append-only burst")

    print("Diagnosis: the burst concentrated keys in the right-most leaves"
          "\n— watch 'packed run' and mean |error| rise. Remedies per the"
          "\npaper: ALEX-PMA-ARMI with node splitting (Section 5.2.5), or"
          "\nthe adaptive PMA extension (repro.ext.adaptive_pma).")


if __name__ == "__main__":
    main()
