"""Time-series ingest: ALEX's adversarial case and how to soften it.

Appending monotonically increasing timestamps is the paper's worst case
(Figure 5c): every insert lands in the right-most leaf, gapped arrays grow
fully-packed regions that never heal, and ALEX loses to a B+Tree by up to
11x.  This example ingests an IoT-style timestamp stream into four
configurations and shows (a) the collapse of ALEX-GA-SRMI, (b) how
PMA + adaptive RMI (the paper's recommended combination for this pattern)
recovers most of the gap, and (c) that a B+Tree is still the right tool
for pure append workloads.

Run: ``python examples/timeseries_ingest.py``
"""

import dataclasses

from repro import AlexIndex, BPlusTree, DEFAULT_COST_MODEL, ga_srmi, pma_armi
from repro.bench import format_table
from repro.core.stats import Counters
from repro.datasets import sequential

INIT = 5_000
APPENDS = 20_000


def ingest(index, timestamps):
    before = index.counters.snapshot()
    for ts in timestamps:
        index.insert(float(ts), b"sensor-reading")
    work = index.counters.diff(before)
    return DEFAULT_COST_MODEL.nanos_per_op(len(timestamps), work), work


def main():
    # Timestamps at (roughly) 10 Hz, strictly increasing.
    stream = sequential(INIT + APPENDS, start=1_700_000_000.0, step=0.1)
    init, appends = stream[:INIT], stream[INIT:]

    candidates = {
        "ALEX-GA-SRMI": AlexIndex.bulk_load(
            init, config=ga_srmi(num_models=INIT // 256)),
        "ALEX-PMA-ARMI (+split)": AlexIndex.bulk_load(
            init, config=dataclasses.replace(
                pma_armi(max_keys_per_node=1024), split_on_inserts=True)),
        "B+Tree": BPlusTree.bulk_load(init, page_size=256,
                                      counters=Counters()),
    }

    rows = []
    for name, index in candidates.items():
        nanos, work = ingest(index, appends)
        rows.append((name, f"{nanos:.0f}",
                     f"{work.shifts / APPENDS:.1f}",
                     f"{work.expansions + work.splits}",
                     f"{work.rebalance_moves / APPENDS:.1f}"))
    print(format_table(
        ["system", "ns/append (sim)", "shifts/append", "expands+splits",
         "rebalance moves/append"],
        rows, title=f"Appending {APPENDS:,} monotonically increasing "
                    "timestamps"))

    # Reads still favour ALEX: scan the last minute of data.
    print("\nrecent-window scans (last 600 readings):")
    for name, index in candidates.items():
        before = index.counters.snapshot()
        out = index.range_scan(float(stream[-600]), 600)
        work = index.counters.diff(before)
        print(f"  {name:<24} {len(out)} records, "
              f"{DEFAULT_COST_MODEL.simulated_nanos(work):.0f} sim ns")

    print("\nTakeaway (paper Section 5.2.5): for pure append streams use a "
          "B+Tree, or ALEX-PMA-ARMI with node splitting if you also need "
          "ALEX's lookup speed on the historical data.")


if __name__ == "__main__":
    main()
