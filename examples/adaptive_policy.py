"""The adaptation policy engine: a walkthrough of ``repro.core.policy``.

Every structural decision in the system — leaf expand/contract, split
sideways, split down, catastrophic retrain, leaf merge, shard split and
shard merge — routes through one pluggable
:class:`~repro.core.policy.AdaptationPolicy` object (paper Section 3.4).
This walkthrough:

1. replays a *grow-then-shrink* trace under the compatibility
   :class:`~repro.core.policy.HeuristicPolicy` (fixed thresholds, no
   delete-side SMOs) and under the paper-faithful
   :class:`~repro.core.policy.CostModelPolicy` (per-node EMA pressure
   counters + expected-cost minimization), showing the cost policy's
   structure shrinking with the data while the heuristic keeps its peak
   shape forever;
2. prints the cost policy's decision log — which SMO fired where, and the
   expected-cost reasoning behind it;
3. runs the serving tier both ways: a hotspot splits a shard, the hotspot
   moves on, and the cost policy merges the now-cold pair back together.

Run: ``python examples/adaptive_policy.py``
"""

import numpy as np

from repro import CostModelPolicy, HeuristicPolicy, ShardedAlexIndex, ga_armi
from repro.workloads.adaptation import run_adaptation_scenario


def leaf_level_comparison():
    print("=" * 70)
    print("1. grow-then-shrink under both policies")
    print("=" * 70)
    results = {}
    for name, factory in (("heuristic", HeuristicPolicy),
                          ("cost-model", CostModelPolicy)):
        policy = factory()
        result = run_adaptation_scenario(policy, "grow-shrink",
                                         num_keys=10_000, num_ops=10_000,
                                         seed=1)
        results[name] = (policy, result)
        smo = result["smo_counts"]
        print(f"\n{name}:")
        print(f"  simulated throughput  {result['sim_mops']:.2f} Mops/s")
        print(f"  final structure       {result['leaves']} leaves, "
              f"depth {result['depth']}")
        print(f"  space                 index {result['index_bytes']:,} B, "
              f"data {result['data_bytes']:,} B")
        print(f"  SMOs                  expand={smo.get('expand', 0)} "
              f"sideways={smo.get('split_sideways', 0)} "
              f"down={smo.get('split_down', 0)} "
              f"retrain={smo.get('retrain', 0)} "
              f"merge={smo.get('merge', 0)}")
    heur = results["heuristic"][1]
    cost = results["cost-model"][1]
    print(f"\nBoth end with {heur['final_keys']:,} keys, but the heuristic "
          f"keeps {heur['leaves']} leaves from the peak while the cost "
          f"model merges down to {cost['leaves']} "
          f"({heur['index_bytes'] / cost['index_bytes']:.1f}x less index "
          f"structure).")
    return results["cost-model"][0]


def decision_log(policy):
    print()
    print("=" * 70)
    print("2. the cost policy's decision log (python -m repro adapt)")
    print("=" * 70)
    tail = list(policy.decisions)[-8:]
    for decision in tail:
        print(f"  [{decision.site}] {decision.action:15s} "
              f"size={decision.size:6d}  {decision.reason}")


def serving_tier():
    print()
    print("=" * 70)
    print("3. serving tier: hot-shard split, then cold-shard merge")
    print("=" * 70)
    rng = np.random.default_rng(0)
    keys = np.unique(rng.lognormal(0, 2, 60_000) * 1e6)[:50_000]
    service = ShardedAlexIndex.bulk_load(keys, num_shards=4,
                                         config=ga_armi(),
                                         policy=CostModelPolicy(),
                                         max_workers=1)
    sorted_keys = np.sort(keys)

    hot = sorted_keys[:5_000]  # hotspot on the low end of the key space
    for _ in range(4):
        service.lookup_many(rng.choice(hot, 800))
    acted = service.rebalance(hot_access_fraction=0.4, min_accesses=1_000)
    print(f"hotspot on shard 0 -> policy split shard {acted}: "
          f"{service.num_shards} shards")

    # The hotspot moves to the high end; the low shards go cold.
    hot = sorted_keys[-5_000:]
    for _ in range(6):
        service.lookup_many(rng.choice(hot, 800))
    acted = service.rebalance(hot_access_fraction=0.99, min_accesses=1_000)
    print(f"hotspot moved on -> policy merged cold pair at shard {acted}: "
          f"{service.num_shards} shards")
    service.validate()
    service.close()


def main():
    policy = leaf_level_comparison()
    decision_log(policy)
    serving_tier()


if __name__ == "__main__":
    main()
