"""Durability walkthrough: WAL, checkpoints, crash recovery, respawn.

Four acts:

1. a single-node :class:`DurableAlexIndex` — write, "crash" (abandon the
   object), recover from the directory alone;
2. a checkpoint bounding the next recovery's WAL replay;
3. the sharded service with per-shard durability and a topology change
   (hot-shard split) committed atomically to the service manifest;
4. (process backend) SIGKILL a shard worker mid-traffic and watch the
   facade respawn it from checkpoint + WAL with nothing lost.

Run: ``PYTHONPATH=src python examples/durable_index.py``
"""

import os
import shutil
import signal
import tempfile
import time

import numpy as np

from repro.durability import DurableAlexIndex, recover_index
from repro.serve import ShardedAlexIndex

def main() -> None:
    rng = np.random.default_rng(7)

    base = tempfile.mkdtemp(prefix="durable-example-")

    # -- Act 1: single node write, crash, recover -------------------------
    root = os.path.join(base, "single")
    keys = np.unique(rng.uniform(0, 1e6, 50_000))
    index = DurableAlexIndex.bulk_load(keys, root=root, fsync="batch")
    index.insert(2e6, "precious")
    index.insert_many(np.arange(3e6, 3e6 + 1000), list(range(1000)))
    index.delete_many(keys[:500])
    index.sync()                      # hard durability barrier: all acked
    del index                         # "crash": no close, no checkpoint

    result = recover_index(root)
    print(f"[1] recovered {result.num_keys:,} keys from {root}")
    print(f"    checkpoint LSN {result.checkpoint_lsn}, "
          f"{result.frames_replayed} WAL frames ({result.ops_replayed} ops) "
          "replayed")
    assert result.index.lookup(2e6) == "precious"

    # -- Act 2: a checkpoint bounds the replay ----------------------------
    index = DurableAlexIndex.open(root)
    index.checkpoint()                # snapshot + truncate the log
    index.insert(4e6, "tail")
    index.close()
    result = recover_index(root)
    print(f"[2] after checkpoint: only {result.frames_replayed} frame(s) "
          "replayed on recovery")

    # -- Act 3: sharded service, durable topology change ------------------
    svc_root = os.path.join(base, "service")
    service = ShardedAlexIndex.bulk_load(keys, num_shards=4,
                                         durability_dir=svc_root,
                                         fsync="batch",
                                         checkpoint_every=50_000)
    service.insert_many(np.unique(rng.uniform(2e6, 3e6, 5_000)))
    service.split_shard(2)            # manifest flips atomically
    expected = len(service)
    service.sync()
    service.backend.close()           # crash the executors

    restored = ShardedAlexIndex.recover(svc_root)
    print(f"[3] recovered a {restored.num_shards}-shard service "
          f"({len(restored):,} keys) — split survived the crash")
    assert len(restored) == expected
    restored.close()

    # -- Act 4: kill a worker, the facade heals itself --------------------
    kill_root = os.path.join(base, "kill")
    service = ShardedAlexIndex.bulk_load(keys[:20_000], num_shards=3,
                                         backend="process",
                                         durability_dir=kill_root,
                                         fsync="batch")
    victim = service.backend.worker_pids()[1]
    os.kill(victim, signal.SIGKILL)
    time.sleep(0.1)
    service.insert_many(np.unique(rng.uniform(5e6, 6e6, 1_000)))  # just works
    print(f"[4] killed worker pid {victim}; facade respawned shard 1 from "
          f"its WAL and kept serving ({len(service):,} keys)")
    service.close()

    shutil.rmtree(base, ignore_errors=True)
    print("done.")


if __name__ == "__main__":  # required: spawn-context workers re-import us
    main()
