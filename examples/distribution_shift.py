"""Distribution shift: watching adaptive RMI restructure itself.

Reproduces the Figure 5b scenario as an application story: an index built
over one region of the key space (say, historic order IDs) suddenly starts
receiving keys from a disjoint region (a new ID scheme).  With node
splitting on inserts enabled, ALEX grows new subtrees under the leaves that
absorb the new domain; this example prints the tree shape before and after
and verifies lookups stay fast.

Run: ``python examples/distribution_shift.py``
"""

import dataclasses

import numpy as np

from repro import AlexIndex, DEFAULT_COST_MODEL, ga_armi
from repro.datasets import shifted_halves

TOTAL = 40_000


def tree_summary(index, label):
    sizes = index.leaf_sizes()
    print(f"{label}:")
    print(f"  {index.num_leaves()} leaves, depth {index.depth()}, "
          f"splits so far: {index.counters.splits}")
    print(f"  leaf sizes: min {sizes.min()}, median {int(np.median(sizes))}, "
          f"max {sizes.max()}")


def lookup_cost(index, probes):
    before = index.counters.snapshot()
    for key in probes:
        index.lookup(float(key))
    work = index.counters.diff(before)
    return DEFAULT_COST_MODEL.nanos_per_op(len(probes), work)


def main():
    old_domain, new_domain = shifted_halves(TOTAL, seed=19)
    print(f"old domain: [{old_domain.min():.2f}, {old_domain.max():.2f}]  "
          f"new domain: [{new_domain.min():.2f}, {new_domain.max():.2f}]\n")

    config = dataclasses.replace(ga_armi(max_keys_per_node=1024),
                                 split_on_inserts=True)
    index = AlexIndex.bulk_load(old_domain, config=config)
    tree_summary(index, "after bulk load (old domain only)")

    rng = np.random.default_rng(23)
    probes_old = rng.choice(old_domain, 2000)
    cost_before = lookup_cost(index, probes_old)

    print(f"\ningesting {len(new_domain):,} keys from the disjoint new "
          "domain...")
    for key in new_domain:
        index.insert(float(key), "new-era")
    tree_summary(index, "\nafter the shift")

    probes_new = rng.choice(new_domain, 2000)
    print(f"\nsimulated lookup cost: old-domain keys "
          f"{lookup_cost(index, probes_old):.0f} ns "
          f"(was {cost_before:.0f} ns before the shift), "
          f"new-domain keys {lookup_cost(index, probes_new):.0f} ns")

    index.validate()
    print("\nvalidate(): OK — ALEX absorbed a full domain shift by "
          "splitting nodes (paper Section 3.4.2 / Figure 5b)")


if __name__ == "__main__":
    main()
