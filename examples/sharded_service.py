"""The sharded index service: a walkthrough of ``repro.serve``.

A :class:`~repro.serve.ShardedAlexIndex` partitions the key space into N
independent ALEX shards behind a CDF-fitted router and scatter-gathers
batched reads, writes, and range queries across them.  This walkthrough
bulk-loads a skewed (lognormal) key set, shows that the equal-mass router
balances the shards anyway, drives the batch API, then sends hotspot
traffic (80% of accesses to 20% of the keys) at the service and lets the
rebalance hook split the hot shard.

Run: ``python examples/sharded_service.py``
"""

import time

import numpy as np

from repro import ShardedAlexIndex, ga_armi
from repro.workloads import HotspotGenerator


def main():
    rng = np.random.default_rng(0)
    keys = np.unique(rng.lognormal(0, 2, 220_000) * 1e6)[:200_000]
    payloads = [f"record-{i}" for i in range(len(keys))]

    # -- bulk load: the router fits equal-mass boundaries from the CDF ----
    service = ShardedAlexIndex.bulk_load(keys, payloads, num_shards=4,
                                         config=ga_armi())
    print(f"loaded {len(service):,} keys into {service.num_shards} shards")
    print("shard masses (skewed keys, yet near 1/4 each):",
          np.round(service.router.mass(keys), 3))

    # -- scatter-gather batch reads ---------------------------------------
    probes = rng.choice(keys, 50_000, replace=True)
    start = time.perf_counter()
    results = service.lookup_many(probes)
    seconds = time.perf_counter() - start
    print(f"\nlookup_many : {len(probes):,} reads in {seconds:.3f}s "
          f"({len(probes) / seconds:,.0f} ops/s), "
          f"first result {results[0]!r}")

    # -- scatter-gather batch writes (all-or-nothing across shards) -------
    new_keys = np.setdiff1d(
        np.unique(rng.lognormal(0, 2, 30_000) * 1e6), keys)[:20_000]
    start = time.perf_counter()
    service.insert_many(new_keys, [f"new-{i}" for i in range(len(new_keys))])
    seconds = time.perf_counter() - start
    print(f"insert_many : {len(new_keys):,} writes in {seconds:.3f}s "
          f"({len(new_keys) / seconds:,.0f} ops/s); "
          f"service now holds {len(service):,} keys")

    # -- batch range queries ----------------------------------------------
    los = rng.choice(keys, 1_000)
    his = los * 1.05
    ranges = service.range_query_many(los, his)
    print(f"range_query_many : {len(ranges):,} intervals, "
          f"{sum(len(r) for r in ranges):,} records returned")

    # -- shard statistics --------------------------------------------------
    print("\nper-shard stats after the batches:")
    for row in service.shard_stats():
        print(f"  shard {row['shard']}: {row['num_keys']:>7,} keys, "
              f"depth {row['depth']}, reads {row['reads']:>6,}, "
              f"writes {row['writes']:>6,}, scans {row['scans']:>5,}")

    # -- hotspot traffic and the rebalance hook ---------------------------
    service.reset_stats()
    hotspot = HotspotGenerator(len(keys), hot_fraction=0.2,
                               hot_access_fraction=0.8, seed=3)
    sorted_keys = np.sort(keys)
    for _ in range(20):
        picks = sorted_keys[hotspot.sample(2_000)]
        service.lookup_many(picks)
    hot, fraction = service.hottest_shard()
    print(f"\nhotspot traffic: shard {hot} now absorbs "
          f"{fraction:.0%} of accesses")

    split = service.rebalance(hot_access_fraction=0.5, min_accesses=1_000)
    if split is not None:
        print(f"rebalance: split hot shard {split} at its median key -> "
              f"{service.num_shards} shards")
        for row in service.shard_stats()[split:split + 2]:
            print(f"  shard {row['shard']}: {row['num_keys']:,} keys in "
                  f"[{row['key_lo']:.3g}, {row['key_hi']:.3g})")
    service.validate()
    print("\nservice validated: router and all shards consistent")
    service.close()

    # -- the process backend: shards as worker processes ------------------
    # Same API, but each shard lives in a long-lived worker process and
    # batch keys travel through shared memory (zero-copy reads).  On a
    # multi-core host this turns critical-path scaling into real wall
    # clock; on one core the RPC overhead makes it a bit slower instead.
    with ShardedAlexIndex.bulk_load(keys, payloads, num_shards=4,
                                    config=ga_armi(),
                                    backend="process") as proc_service:
        start = time.perf_counter()
        proc_results = proc_service.lookup_many(probes)
        seconds = time.perf_counter() - start
        assert proc_results == results
        print(f"\nprocess backend: same {len(probes):,} reads in "
              f"{seconds:.3f}s across {proc_service.num_shards} worker "
              f"processes (identical results)")


if __name__ == "__main__":
    main()
