"""Reproduce the paper's headline claims in one command.

Runs the Figure-4 grid (4 workloads x 4 datasets, per-workload best ALEX
variant vs B+Tree) through the programmatic suite and prints the
abstract-style summary: how often ALEX wins, the best throughput ratio,
and the best index-size ratio — the reproduction-scale counterparts of
"up to 3.5x higher throughput ... up to 5 orders of magnitude smaller
index size".

For the full per-figure reproduction (including Figures 5-14 and the
Section 4 theorems), run ``pytest benchmarks/ --benchmark-only -s``.

Run: ``python examples/reproduce_paper.py [init_size] [num_ops]``
"""

import sys

from repro.bench import format_table, run_headline_suite, SystemParams


def main():
    init_size = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    num_ops = int(sys.argv[2]) if len(sys.argv) > 2 else 2500
    print(f"running the Figure-4 grid (init={init_size:,}, "
          f"ops={num_ops:,}) ...\n")
    report = run_headline_suite(
        init_size=init_size, num_ops=num_ops,
        params=SystemParams(keys_per_model=256, max_keys_per_node=512))

    rows = []
    for (workload, dataset), ratio in sorted(report.throughput_ratios().items()):
        alex = [r for r in report.results
                if r.workload == workload and r.dataset == dataset
                and r.system != "BPlusTree"][0]
        bptree = report.by(workload, dataset, "BPlusTree")
        rows.append((workload, dataset, alex.system,
                     f"{alex.throughput / 1e6:.2f}",
                     f"{bptree.throughput / 1e6:.2f}",
                     f"{ratio:.2f}x",
                     f"{bptree.index_bytes / max(1, alex.index_bytes):.1f}x"))
    print(format_table(
        ["workload", "dataset", "ALEX variant", "ALEX Mops/s",
         "B+Tree Mops/s", "throughput ratio", "index-size ratio"],
        rows, title="Figure 4 grid (simulated-time throughput)"))

    print("\nheadline summary:")
    print(f"  ALEX wins {report.wins()}/{report.cells()} cells")
    print(f"  best throughput ratio vs B+Tree: "
          f"{report.max_throughput_ratio():.2f}x "
          f"(paper: up to 3.5x at 200M-key scale)")
    print(f"  best index-size ratio vs B+Tree: "
          f"{report.max_index_size_ratio():.0f}x "
          f"(paper: up to 5 orders of magnitude at 200M-key scale)")
    print("\nSee EXPERIMENTS.md for the full paper-vs-measured record.")


if __name__ == "__main__":
    main()
