"""Legacy setup shim: lets ``pip install -e .`` work on environments whose
setuptools lacks the ``wheel`` package required by PEP 517 editable builds
(the offline evaluation environment is one).  All metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
