"""Unit tests for the B+Tree baseline."""

import numpy as np
import pytest

from repro.baselines.bptree import BPlusTree
from repro.core.errors import DuplicateKeyError, KeyNotFoundError


@pytest.fixture
def keys_1k():
    rng = np.random.default_rng(41)
    return np.unique(rng.uniform(0, 1e6, 1000))


@pytest.fixture
def tree(keys_1k):
    return BPlusTree.bulk_load(keys_1k, page_size=256)


class TestConstruction:
    def test_bulk_load_validates(self, tree):
        tree.validate()

    def test_bulk_load_unsorted_input(self):
        tree = BPlusTree.bulk_load([5.0, 1.0, 3.0])
        assert [k for k, _ in tree.items()] == [1.0, 3.0, 5.0]

    def test_bulk_load_duplicates_rejected(self):
        with pytest.raises(DuplicateKeyError):
            BPlusTree.bulk_load([1.0, 1.0])

    def test_empty_tree(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert not tree.contains(1.0)
        tree.validate()

    def test_page_size_controls_fanout(self):
        small = BPlusTree.bulk_load(np.arange(1000, dtype=np.float64),
                                    page_size=128)
        large = BPlusTree.bulk_load(np.arange(1000, dtype=np.float64),
                                    page_size=4096)
        assert small.height > large.height

    def test_page_size_too_small_rejected(self):
        with pytest.raises(ValueError):
            BPlusTree(page_size=32)


class TestLookup:
    def test_all_keys_found(self, tree, keys_1k):
        for key in keys_1k[::13]:
            tree.lookup(float(key))

    def test_missing_raises(self, tree):
        with pytest.raises(KeyNotFoundError):
            tree.lookup(-1.0)

    def test_get_default(self, tree):
        assert tree.get(-1.0, "dflt") == "dflt"

    def test_payloads_preserved(self):
        keys = np.arange(100, dtype=np.float64)
        tree = BPlusTree.bulk_load(keys, [f"p{int(k)}" for k in keys])
        assert tree.lookup(42.0) == "p42"


class TestInsert:
    def test_incremental_inserts_stay_balanced(self):
        tree = BPlusTree(page_size=128)
        rng = np.random.default_rng(42)
        keys = np.unique(rng.uniform(0, 1e6, 2000))
        for key in keys:
            tree.insert(float(key))
        tree.validate()
        assert len(tree) == len(keys)

    def test_sequential_inserts_stay_balanced(self):
        tree = BPlusTree(page_size=128)
        for key in range(2000):
            tree.insert(float(key))
        tree.validate()

    def test_duplicate_raises(self, tree, keys_1k):
        with pytest.raises(DuplicateKeyError):
            tree.insert(float(keys_1k[0]))

    def test_height_grows_logarithmically(self):
        tree = BPlusTree(page_size=128)
        for key in range(3000):
            tree.insert(float(key))
        assert tree.height <= 6

    def test_splits_counted(self):
        tree = BPlusTree(page_size=128)
        for key in range(500):
            tree.insert(float(key))
        assert tree.counters.splits > 0


class TestDelete:
    def test_delete_roundtrip(self, tree, keys_1k):
        tree.delete(float(keys_1k[3]))
        assert not tree.contains(float(keys_1k[3]))
        tree.validate()

    def test_delete_missing_raises(self, tree):
        with pytest.raises(KeyNotFoundError):
            tree.delete(-1.0)

    def test_delete_everything(self, keys_1k):
        tree = BPlusTree.bulk_load(keys_1k, page_size=128)
        rng = np.random.default_rng(43)
        order = rng.permutation(len(keys_1k))
        for i in order:
            tree.delete(float(keys_1k[i]))
        assert len(tree) == 0
        tree.validate()

    def test_delete_half_then_validate(self, keys_1k):
        tree = BPlusTree.bulk_load(keys_1k, page_size=128)
        for key in keys_1k[::2]:
            tree.delete(float(key))
        tree.validate()
        for key in keys_1k[1::2]:
            assert tree.contains(float(key))

    def test_interleaved_insert_delete(self):
        tree = BPlusTree(page_size=128)
        rng = np.random.default_rng(44)
        live = set()
        for _ in range(3000):
            if live and rng.random() < 0.4:
                key = live.pop()
                tree.delete(key)
            else:
                key = round(float(rng.uniform(0, 1e6)), 6)
                if key not in live:
                    tree.insert(key)
                    live.add(key)
        tree.validate()
        assert len(tree) == len(live)


class TestUpdateAndScan:
    def test_update(self, tree, keys_1k):
        tree.update(float(keys_1k[5]), "fresh")
        assert tree.lookup(float(keys_1k[5])) == "fresh"

    def test_update_missing_raises(self, tree):
        with pytest.raises(KeyNotFoundError):
            tree.update(-1.0, "x")

    def test_range_scan_sorted(self, tree, keys_1k):
        sorted_keys = np.sort(keys_1k)
        out = tree.range_scan(float(sorted_keys[200]), 60)
        assert [k for k, _ in out] == sorted_keys[200:260].tolist()

    def test_range_query_inclusive(self, tree, keys_1k):
        sorted_keys = np.sort(keys_1k)
        out = tree.range_query(float(sorted_keys[10]), float(sorted_keys[20]))
        assert [k for k, _ in out] == sorted_keys[10:21].tolist()

    def test_scan_from_before_min(self, tree, keys_1k):
        out = tree.range_scan(-1e12, 5)
        assert [k for k, _ in out] == np.sort(keys_1k)[:5].tolist()


class TestAccounting:
    def test_index_size_counts_inner_nodes_only(self, keys_1k):
        shallow = BPlusTree.bulk_load(keys_1k, page_size=4096)
        deep = BPlusTree.bulk_load(keys_1k, page_size=128)
        assert deep.index_size_bytes() > shallow.index_size_bytes()

    def test_data_size_scales_with_payload(self, keys_1k):
        small = BPlusTree.bulk_load(keys_1k, payload_size=8)
        big = BPlusTree.bulk_load(keys_1k, payload_size=80)
        assert big.data_size_bytes() > small.data_size_bytes()

    def test_counters_track_comparisons_and_follows(self, tree, keys_1k):
        before = tree.counters.snapshot()
        tree.lookup(float(keys_1k[0]))
        delta = tree.counters.diff(before)
        assert delta.comparisons > 0
        assert delta.pointer_follows >= tree.height - 1
