"""Tests for the structural introspection report."""

import numpy as np
import pytest

from repro.core.alex import AlexIndex
from repro.core.config import ga_armi, ga_srmi
from repro.core.introspect import format_report, structure_report
from repro.datasets import longitudes


@pytest.fixture
def index():
    keys = longitudes(5000, seed=99)
    return AlexIndex.bulk_load(keys, config=ga_armi(max_keys_per_node=512))


class TestStructureReport:
    def test_counts_match_index(self, index):
        report = structure_report(index)
        assert report.num_keys == len(index)
        assert report.num_leaves == index.num_leaves()
        assert report.depth == index.depth()
        assert report.index_bytes == index.index_size_bytes()
        assert report.data_bytes == index.data_size_bytes()

    def test_leaf_size_stats(self, index):
        report = structure_report(index)
        sizes = index.leaf_sizes()
        assert report.leaf_keys_min == int(sizes.min())
        assert report.leaf_keys_max == int(sizes.max())
        assert report.leaf_keys_median == float(np.median(sizes))

    def test_density_within_bounds(self, index):
        report = structure_report(index)
        assert 0.0 < report.density_mean <= 1.0
        assert report.density_min <= report.density_mean

    def test_depth_histogram_sums_to_leaves(self, index):
        report = structure_report(index)
        assert sum(report.depth_histogram.values()) == report.num_leaves

    def test_prediction_stats_present(self, index):
        report = structure_report(index)
        assert report.exact_prediction_fraction > 0.0
        assert report.mean_prediction_error >= 0.0

    def test_empty_index(self):
        report = structure_report(AlexIndex())
        assert report.num_keys == 0
        assert report.num_leaves == 1
        assert report.cold_leaves == 1

    def test_packed_run_tracked_for_gapped_arrays(self):
        index = AlexIndex.bulk_load(np.arange(500.0),
                                    config=ga_srmi(num_models=4))
        report = structure_report(index)
        assert report.largest_packed_run >= 1


class TestFormatReport:
    def test_renders_every_section(self, index):
        text = format_report(structure_report(index))
        for fragment in ("keys:", "leaves:", "density:", "model accuracy:",
                         "space:"):
            assert fragment in text

    def test_mentions_counts(self, index):
        text = format_report(structure_report(index))
        assert f"{len(index):,}" in text
