"""Tests for the ASCII chart renderers."""

from repro.bench.ascii_plot import ascii_chart, ascii_histogram


class TestAsciiChart:
    def test_renders_title_and_legend(self):
        out = ascii_chart({"alex": [1, 2, 3], "bptree": [3, 2, 1]},
                          title="demo")
        assert out.splitlines()[0] == "demo"
        assert "o alex" in out
        assert "x bptree" in out

    def test_extremes_are_plotted(self):
        out = ascii_chart({"s": [0.0, 10.0]}, width=10, height=5)
        lines = out.splitlines()
        assert "10" in lines[0]
        assert "0" in lines[4]

    def test_handles_constant_series(self):
        out = ascii_chart({"flat": [5.0, 5.0, 5.0]})
        assert "flat" in out

    def test_empty_inputs(self):
        assert ascii_chart({}, title="t") == "t"
        assert "t" in ascii_chart({"s": []}, title="t")

    def test_height_and_width_respected(self):
        out = ascii_chart({"s": list(range(20))}, width=30, height=8)
        body = [l for l in out.splitlines() if "|" in l]
        assert len(body) == 8
        assert all(len(l.split("|", 1)[1]) <= 30 for l in body)


class TestAsciiHistogram:
    def test_bars_proportional(self):
        out = ascii_histogram([("a", 10), ("b", 5)], width=20)
        lines = out.splitlines()
        bar_a = lines[0].count("#")
        bar_b = lines[1].count("#")
        assert bar_a == 20
        assert bar_b == 10

    def test_percentages_shown(self):
        out = ascii_histogram([("x", 3), ("y", 1)])
        assert "(75.0%)" in out
        assert "(25.0%)" in out

    def test_zero_counts(self):
        out = ascii_histogram([("a", 0), ("b", 0)])
        assert "a" in out and "b" in out

    def test_empty(self):
        assert ascii_histogram([], title="t") == "t"
