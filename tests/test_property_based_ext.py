"""Property-based tests for the extension modules."""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.alex import AlexIndex
from repro.core.batch import bulk_insert
from repro.core.config import AlexConfig, ga_armi
from repro.core.cursor import Cursor
from repro.core.stats import Counters
from repro.ext.adaptive_pma import AdaptivePMANode
from repro.ext.duplicates import AlexMultimap

SETTINGS = settings(max_examples=30, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

finite_keys = st.floats(min_value=-1e9, max_value=1e9,
                        allow_nan=False, allow_infinity=False)
key_lists = st.lists(finite_keys, min_size=0, max_size=80, unique=True)


class TestMultimapProperties:
    @SETTINGS
    @given(pairs=st.lists(st.tuples(st.integers(0, 20), st.integers(0, 5)),
                          max_size=150))
    def test_matches_reference_multimap(self, pairs):
        multimap = AlexMultimap()
        reference: dict = {}
        for raw_key, value in pairs:
            key = float(raw_key)
            multimap.insert(key, value)
            reference.setdefault(key, []).append(value)
        multimap.validate()
        assert len(multimap) == sum(len(v) for v in reference.values())
        for key, values in reference.items():
            assert multimap.get(key) == values
        assert list(multimap.items()) == [
            (k, v) for k in sorted(reference) for v in reference[k]]

    @SETTINGS
    @given(pairs=st.lists(st.tuples(st.integers(0, 10), st.integers(0, 3)),
                          min_size=1, max_size=80),
           remove_fraction=st.floats(0.0, 1.0))
    def test_removals_mirror_reference(self, pairs, remove_fraction):
        multimap = AlexMultimap.from_pairs(
            [(float(k), v) for k, v in pairs])
        reference: dict = {}
        for k, v in pairs:
            reference.setdefault(float(k), []).append(v)
        to_remove = int(len(pairs) * remove_fraction)
        removed = 0
        for key in list(reference):
            while reference[key] and removed < to_remove:
                value = reference[key].pop(0)
                multimap.remove_value(key, value)
                removed += 1
            if not reference[key]:
                del reference[key]
            if removed >= to_remove:
                break
        multimap.validate()
        for key in reference:
            assert multimap.get(key) == reference[key]


class TestAdaptivePMAProperties:
    @SETTINGS
    @given(keys=key_lists)
    def test_sorted_semantics_preserved(self, keys):
        node = AdaptivePMANode(AlexConfig(), Counters())
        node.build(np.empty(0))
        for key in keys:
            node.insert(float(key))
        node.check_invariants()
        node.check_pma_invariants()
        assert [k for k, _ in node.iter_items()] == sorted(keys)

    @SETTINGS
    @given(keys=key_lists, extra=key_lists)
    def test_lookup_after_mixed_ops(self, keys, extra):
        node = AdaptivePMANode(AlexConfig(), Counters())
        node.build(np.sort(np.array(keys, dtype=np.float64)))
        present = set(keys)
        for key in extra:
            if key not in present:
                node.insert(float(key))
                present.add(key)
        for key in sorted(present)[::3]:
            assert node.contains(float(key))
        node.check_invariants()


class TestBulkInsertProperties:
    @SETTINGS
    @given(initial=key_lists, batch=key_lists)
    def test_equivalent_to_sequential_inserts(self, initial, batch):
        batch = [k for k in batch if k not in set(initial)]
        config = ga_armi(max_keys_per_node=64, num_models=4)
        bulk = AlexIndex.bulk_load(np.array(initial, dtype=np.float64),
                                   config=config)
        bulk_insert(bulk, np.array(batch, dtype=np.float64))
        loop = AlexIndex.bulk_load(np.array(initial, dtype=np.float64),
                                   config=config)
        for key in batch:
            loop.insert(float(key))
        bulk.validate()
        assert list(bulk.keys()) == list(loop.keys())


class TestCursorProperties:
    @SETTINGS
    @given(keys=key_lists, start=finite_keys)
    def test_cursor_scan_equals_range_scan(self, keys, start):
        index = AlexIndex.bulk_load(np.array(keys, dtype=np.float64))
        cursor = Cursor(index, start_key=start)
        via_cursor = [k for k, _ in cursor.take(25)]
        via_scan = [k for k, _ in index.range_scan(start, 25)]
        assert via_cursor == via_scan

    @SETTINGS
    @given(keys=st.lists(finite_keys, min_size=1, max_size=60, unique=True))
    def test_forward_then_backward_is_identity(self, keys):
        index = AlexIndex.bulk_load(np.array(keys, dtype=np.float64))
        cursor = Cursor(index)
        forward = []
        while cursor.valid():
            forward.append(cursor.key())
            if not cursor.next():
                break
        cursor.seek_last()
        backward = []
        while cursor.valid():
            backward.append(cursor.key())
            if not cursor.prev():
                break
        assert forward == backward[::-1] == sorted(keys)
