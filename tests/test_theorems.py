"""Tests for the Section 4 analysis (Theorems 1-3 on model-based inserts)."""

import numpy as np
import pytest

from repro.analysis.theorems import (
    analyze,
    approx_lower_bound_direct_hits,
    empirical_direct_hits,
    lower_bound_direct_hits,
    min_c_for_all_direct_hits,
    upper_bound_direct_hits,
)


@pytest.fixture(params=["uniform", "lognormal", "clustered"])
def keys(request):
    rng = np.random.default_rng(71)
    if request.param == "uniform":
        return np.sort(np.unique(rng.uniform(0, 1000, 200)))
    if request.param == "lognormal":
        return np.sort(np.unique(rng.lognormal(0, 1.5, 200)))
    centers = rng.choice([0.0, 400.0, 900.0], 200)
    return np.sort(np.unique(centers + rng.normal(0, 5, 200)))


class TestTheorem1:
    def test_c_above_threshold_gives_all_direct_hits(self, keys):
        c_star = min_c_for_all_direct_hits(keys)
        if not np.isfinite(c_star) or c_star > 1e7:
            pytest.skip("threshold impractically large for this draw")
        assert empirical_direct_hits(keys, c_star * 1.01) == len(keys)

    def test_uniform_keys_hit_at_c_1(self):
        # Perfectly uniform keys are exactly linear: even c=1 places every
        # key at its predicted slot.
        keys = np.arange(100, dtype=np.float64)
        assert empirical_direct_hits(keys, 1.0) == 100
        assert min_c_for_all_direct_hits(keys) == pytest.approx(1.0, rel=0.05)

    def test_degenerate_inputs(self):
        assert min_c_for_all_direct_hits(np.array([1.0])) == 1.0
        assert empirical_direct_hits(np.empty(0), 2.0) == 0


class TestBoundsSandwich:
    @pytest.mark.parametrize("c", [1.0, 1.2, 1.5, 2.0, 4.0, 8.0])
    def test_empirical_within_theorem_bounds(self, keys, c):
        result = analyze(keys, c)
        assert result.lower <= result.empirical, (
            f"Theorem 3 violated at c={c}: {result}")
        assert result.empirical <= result.upper, (
            f"Theorem 2 violated at c={c}: {result}")

    def test_hits_trend_upward_in_c(self, keys):
        # Floor alignment makes pointwise monotonicity false in general;
        # the trend over a decade of c must still be clearly upward
        # (the paper's space-time trade-off).
        low = empirical_direct_hits(keys, 1.0)
        high = empirical_direct_hits(keys, 16.0)
        assert high >= low

    def test_upper_bound_monotone_in_c(self, keys):
        uppers = [upper_bound_direct_hits(keys, c) for c in (1.0, 2.0, 8.0)]
        assert uppers == sorted(uppers)

    def test_approx_lower_between_exact_and_upper_at_high_c(self, keys):
        c_star = min_c_for_all_direct_hits(keys)
        if not np.isfinite(c_star) or c_star > 1e7:
            pytest.skip("threshold impractically large")
        # When Theorem 1 holds, all three quantities coincide (Section 4).
        c = c_star * 1.01
        n = len(keys)
        assert approx_lower_bound_direct_hits(keys, c) == n
        assert upper_bound_direct_hits(keys, c) == n
        assert lower_bound_direct_hits(keys, c) == n


class TestEdgeCases:
    def test_tiny_inputs(self):
        assert upper_bound_direct_hits(np.array([1.0, 2.0]), 1.0) == 2
        assert lower_bound_direct_hits(np.array([1.0]), 1.0) == 1
        assert lower_bound_direct_hits(np.empty(0), 1.0) == 0

    def test_analyze_reports_consistency(self, keys):
        assert analyze(keys, 2.0).consistent
