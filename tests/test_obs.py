"""The observability layer: histograms, merge algebra, kill switch,
instrumentation plumbing, and the stats/top CLI."""

import pickle
import random

import numpy as np
import pytest

from repro import obs
from repro.obs import render
from repro.obs.metrics import empty_snapshot
from repro.serve import ShardedAlexIndex
from repro.serve.sharded import ShardStats


@pytest.fixture
def obs_on(monkeypatch):
    """Force the layer on with a clean registry, restoring the prior
    switch state (the suite may run under REPRO_OBS=off).  The env var
    is patched too: spawn-context shard workers read it at import, so
    without it a process-backend test would get silent workers."""
    was = obs.enabled()
    monkeypatch.setenv(obs.ENV_VAR, "on")
    obs.set_enabled(True)
    obs.reset()
    yield
    obs.reset()
    obs.set_enabled(was)


# ---------------------------------------------------------------------------
# Histogram correctness
# ---------------------------------------------------------------------------

ADVERSARIAL = {
    "uniform": lambda rng: rng.uniform(1, 1e9, 5000),
    "lognormal": lambda rng: rng.lognormal(10, 3, 5000),
    "constant": lambda rng: np.full(1000, 123456.0),
    # 99.9% tiny, one enormous outlier: the tail percentiles must jump
    # to the outlier's bucket exactly when np.percentile's do.
    "bimodal": lambda rng: np.concatenate([np.ones(999) * 50, [1e12]]),
    "tiny": lambda rng: rng.uniform(0, 4, 500),
    "single": lambda rng: np.array([7.0]),
    "two": lambda rng: np.array([10.0, 1e6]),
}


@pytest.mark.parametrize("shape", sorted(ADVERSARIAL))
def test_percentiles_within_one_bucket_of_exact(shape):
    """Every extracted percentile lands in (or next to) the bucket of
    the exact order statistic np.percentile(method='lower') selects."""
    data = ADVERSARIAL[shape](np.random.default_rng(3))
    hist = obs.LatencyHistogram()
    for value in data:
        hist.record(float(value))
    snap = hist.snapshot()
    assert snap["count"] == len(data)
    for q in obs.PERCENTILES:
        got = obs.percentile_from_snapshot(snap, q)
        exact = float(np.percentile(data, q, method="lower"))
        assert abs(obs.bucket_index(got) - obs.bucket_index(exact)) <= 1, (
            f"{shape} p{q}: got {got}, exact {exact}")


def test_percentile_relative_error_bound():
    """Away from the clamp floor, the reported value is within one
    relative bucket width (2**(1/8) - 1 ≈ 9%) of the exact statistic."""
    data = np.random.default_rng(5).lognormal(8, 2, 20000)
    hist = obs.LatencyHistogram()
    for value in data:
        hist.record(float(value))
    snap = hist.snapshot()
    width = 2 ** (1 / obs.SUB_BUCKETS)
    for q in obs.PERCENTILES:
        got = obs.percentile_from_snapshot(snap, q)
        exact = float(np.percentile(data, q, method="lower"))
        assert exact / width ** 2 <= got <= exact * width ** 2


def test_histogram_scalar_moments():
    hist = obs.LatencyHistogram()
    for value in (10.0, 20.0, 30.0):
        hist.record(value)
    snap = hist.snapshot()
    assert snap["sum"] == 60.0
    assert snap["min"] == 10.0 and snap["max"] == 30.0
    summary = obs.histogram_summary(snap)
    assert summary["count"] == 3
    assert summary["mean"] == pytest.approx(20.0)
    # Percentiles never exceed the observed max (midpoint clamping).
    assert summary["p99_9"] <= 30.0


def test_empty_histogram_percentiles_are_none():
    summary = obs.histogram_summary(obs.LatencyHistogram().snapshot())
    assert summary["count"] == 0
    assert summary["p50"] is None and summary["p99_9"] is None


def test_subnanosecond_and_overflow_values_clamp():
    hist = obs.LatencyHistogram()
    hist.record(0.0)
    hist.record(0.25)
    hist.record(1e30)  # far past the last bucket boundary
    snap = hist.snapshot()
    assert snap["count"] == 3
    assert 0 in snap["counts"] and obs.NUM_BUCKETS - 1 in snap["counts"]


# ---------------------------------------------------------------------------
# Merge algebra
# ---------------------------------------------------------------------------

def _random_snapshot(seed: int) -> dict:
    rng = random.Random(seed)
    registry = obs.MetricsRegistry()
    for _ in range(60):
        registry.counter(rng.choice("abc")).inc(rng.randint(1, 9))
        # Integer-valued observations keep the histogram "sum" floats
        # exact, so associativity can be asserted with == (float
        # addition of arbitrary reals is itself not associative).
        registry.histogram(rng.choice("hk")).record(
            rng.randint(1, 10 ** 8))
        registry.gauge(rng.choice("gx")).set(rng.random())
    registry.events.emit("e", n=rng.random())
    return registry.snapshot()


def test_merge_associative():
    a, b, c = (_random_snapshot(s) for s in (1, 2, 3))
    left = obs.merge_snapshots(obs.merge_snapshots(a, b), c)
    right = obs.merge_snapshots(a, obs.merge_snapshots(b, c))
    assert left == right


def test_merge_identity_and_totals():
    a = _random_snapshot(4)
    assert obs.merge_snapshots(empty_snapshot(), a) == \
        obs.merge_snapshots(a, empty_snapshot())
    merged = obs.merge_many([a, _random_snapshot(5)])
    for name, snap in merged["histograms"].items():
        assert snap["count"] == sum(snap["counts"].values())


def test_merge_handles_json_roundtripped_keys():
    """Bucket indexes become strings through JSON; merging must still
    add them to the int-keyed originals."""
    import json
    a = _random_snapshot(6)
    b = json.loads(json.dumps(_random_snapshot(7)))
    merged = obs.merge_snapshots(a, b)
    for snap in merged["histograms"].values():
        assert all(isinstance(k, int) for k in snap["counts"])


def test_merge_percentiles_match_pooled_data():
    data_a = np.random.default_rng(8).uniform(1, 1e7, 3000)
    data_b = np.random.default_rng(9).lognormal(12, 2, 3000)
    ha, hb = obs.LatencyHistogram(), obs.LatencyHistogram()
    for v in data_a:
        ha.record(float(v))
    for v in data_b:
        hb.record(float(v))
    from repro.obs.metrics import _merge_histogram
    merged = _merge_histogram(ha.snapshot(), hb.snapshot())
    pooled = np.concatenate([data_a, data_b])
    for q in obs.PERCENTILES:
        got = obs.percentile_from_snapshot(merged, q)
        exact = float(np.percentile(pooled, q, method="lower"))
        assert abs(obs.bucket_index(got) - obs.bucket_index(exact)) <= 1


def _exemplar_snapshot(seed: int) -> dict:
    """A registry snapshot whose histograms carry exemplars (what a
    traced process ships), for the merge-algebra properties."""
    rng = random.Random(seed)
    registry = obs.MetricsRegistry()
    for _ in range(40):
        hist = registry.histogram(rng.choice("hk"))
        value = rng.randint(1, 10 ** 8)
        hist.record(value)
        hist.note_exemplar(value, "%016x" % rng.getrandbits(64))
    return registry.snapshot()


def test_merge_exemplars_associative_and_identity():
    a, b, c = (_exemplar_snapshot(s) for s in (11, 12, 13))
    left = obs.merge_snapshots(obs.merge_snapshots(a, b), c)
    right = obs.merge_snapshots(a, obs.merge_snapshots(b, c))
    assert left == right
    # Identity holds with exemplars aboard (the key stays absent on the
    # empty side, so quiescent snapshots keep the pre-exemplar shape).
    assert obs.merge_snapshots(empty_snapshot(), a) == \
        obs.merge_snapshots(a, empty_snapshot())
    assert "exemplars" not in empty_snapshot().get("histograms", {})


def test_merge_exemplars_last_writer_wins_per_bucket():
    ha, hb = obs.LatencyHistogram(), obs.LatencyHistogram()
    ha.record(1000.0)
    ha.note_exemplar(1000.0, "a" * 16)
    ha.record(5e8)
    ha.note_exemplar(5e8, "old-slow-trace00")
    hb.record(999.0)  # same bucket as ha's first observation
    hb.note_exemplar(999.0, "b" * 16)
    from repro.obs.metrics import _merge_histogram
    merged = _merge_histogram(ha.snapshot(), hb.snapshot())
    exemplars = {trace for trace, _ in merged["exemplars"].values()}
    # Shared bucket: b's exemplar replaced a's; a's solo bucket stays.
    assert exemplars == {"b" * 16, "old-slow-trace00"}
    assert merged["count"] == 3


# ---------------------------------------------------------------------------
# Kill switch
# ---------------------------------------------------------------------------

def test_enabled_from_env_values():
    for value in ("off", "0", "false", "no", "disabled", " OFF ", "False"):
        assert obs._enabled_from_env(value) is False
    for value in (None, "", "on", "1", "true", "anything"):
        assert obs._enabled_from_env(value) is True


def test_disabled_spans_are_the_shared_noop(obs_on):
    obs.set_enabled(False)
    assert obs.span("a") is obs.span("b") is obs.NOOP_SPAN
    with obs.span("a"):
        pass


def test_disabled_records_nothing(obs_on):
    obs.set_enabled(False)
    with obs.span("h"):
        pass
    obs.record_ns("h", 5)
    obs.observe("h", 5)
    obs.inc("c")
    obs.set_gauge("g", 1)
    obs.emit("ev")

    @obs.timed("t")
    def fn():
        return 42

    assert fn() == 42
    snap = obs.get_registry().snapshot()
    assert snap == empty_snapshot()


def test_runtime_toggle_round_trip(obs_on):
    @obs.timed("t")
    def fn():
        return 1

    fn()
    obs.set_enabled(False)
    fn()
    obs.set_enabled(True)
    fn()
    assert obs.get_registry().histogram("t").count == 2


# ---------------------------------------------------------------------------
# ShardStats snapshot form
# ---------------------------------------------------------------------------

def test_shard_stats_pickles_without_mutex():
    stats = ShardStats(reads=3, writes=2, scans=1)
    clone = pickle.loads(pickle.dumps(stats))
    assert (clone.reads, clone.writes, clone.scans) == (3, 2, 1)
    clone.add(reads=1)  # the restored mutex works
    assert clone.as_dict() == {"reads": 4, "writes": 2, "scans": 1}


# ---------------------------------------------------------------------------
# Service-wide aggregation
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", ["thread", "process"])
def test_metrics_snapshot_service_wide(backend, obs_on):
    keys = np.sort(np.random.default_rng(0).uniform(0, 1e6, 8000))
    service = ShardedAlexIndex.bulk_load(keys, num_shards=2,
                                         backend=backend)
    try:
        service.lookup_many(keys[:256])
        service.insert_many(np.array([2e6, 3e6]))
        snap = service.metrics_snapshot()
    finally:
        service.close()
    merged = snap["merged"]
    names = set(merged["histograms"])
    assert "serve.lookup_many" in names
    # Serving-layer tallies fold in as counters.
    assert merged["counters"]["serve.shard0.reads"] > 0
    assert snap["backend"] == backend
    assert len(snap["shards"]) == 2
    if backend == "process":
        # The facade recorded the RPC; the workers recorded the index
        # op — both in one merged view proves the registry crossed the
        # pipe and merged.
        assert "rpc.roundtrip" in names or "rpc.fanout" in names
        assert "core.lookup_many" in names
        assert "shard.op.lookup_many" in names


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_replica_metrics_reach_the_service_snapshot(backend, obs_on,
                                                    tmp_path):
    """With replication on, the replicas' replay counters surface in
    the merged view: the thread backend's in-process replicas record
    straight into the facade registry (``repl.*``), while a process
    backend's replica workers ship their own registries, tagged
    ``replica.shardN.*`` so they never inflate the primaries'."""
    keys = np.arange(2000, dtype=np.float64)
    service = ShardedAlexIndex.bulk_load(
        keys, num_shards=2, backend=backend,
        durability_dir=str(tmp_path / "dur"), fsync="batch",
        replicate=True)
    try:
        service.insert_many(5e3 + np.arange(64, dtype=np.float64))
        merged = service.metrics_snapshot()["merged"]
    finally:
        service.close()
    counters = set(merged["counters"])
    if backend == "thread":
        assert "repl.bootstraps" in counters
        assert not any(n.startswith("replica.shard") for n in counters)
    else:
        tagged = {n for n in counters if n.startswith("replica.shard")}
        # Both shards' replica workers report, under their own prefix.
        assert any(n.startswith("replica.shard0.repl.") for n in tagged)
        assert any(n.startswith("replica.shard1.repl.") for n in tagged)


def test_event_ring_capacity_env_and_drop_counter(monkeypatch):
    from repro.obs import events as events_mod

    monkeypatch.setenv(events_mod.ENV_VAR, "4")
    registry = obs.MetricsRegistry()
    assert registry.events.limit == 4
    for i in range(10):
        registry.events.emit("ev", i=i)
    log = registry.events.snapshot()
    # The ring kept the newest four and counted what it evicted...
    assert [e["i"] for e in log] == [6, 7, 8, 9]
    assert registry.events.dropped == 6
    # ...and the tally surfaces as a synthetic counter in snapshots.
    assert registry.snapshot()["counters"]["obs.events_dropped"] == 6
    # Garbage and absent values fall back to the default capacity.
    monkeypatch.setenv(events_mod.ENV_VAR, "not-a-number")
    assert events_mod.EventLog().limit == events_mod.EVENT_LIMIT
    monkeypatch.delenv(events_mod.ENV_VAR)
    assert events_mod.EventLog().limit == events_mod.EVENT_LIMIT


def test_policy_decisions_land_in_event_log(obs_on):
    from repro.core.alex import AlexIndex
    from repro.core.config import ga_armi

    # A cold-started index may split on inserts, which is what drives
    # the heuristic policy's split-down decisions (bulk-loaded ga_armi
    # leaves splitting off, so it would never log one).
    index = AlexIndex(config=ga_armi(max_keys_per_node=64))
    for key in np.linspace(1000, 2000, 600):
        index.insert(float(key), None)
    events = obs.get_registry().events.snapshot()
    kinds = {event["kind"] for event in events}
    assert "policy.decision" in kinds
    decision = next(e for e in events if e["kind"] == "policy.decision")
    assert {"site", "action", "size", "reason"} <= set(decision)
    # Applied SMOs tally as counters too.
    counters = obs.get_registry().snapshot()["counters"]
    assert any(name.startswith("policy.applied.") for name in counters)


def test_wal_and_checkpoint_spans(tmp_path, obs_on):
    keys = np.sort(np.random.default_rng(1).uniform(0, 1e6, 4000))
    service = ShardedAlexIndex.bulk_load(
        keys, num_shards=2, durability_dir=str(tmp_path / "svc"),
        fsync="batch", checkpoint_every=500)
    try:
        for i in range(4):
            fresh = 2e6 + i * 1000 + np.arange(300, dtype=np.float64)
            service.insert_many(fresh)
        snap = service.metrics_snapshot()
    finally:
        service.close()
    merged = snap["merged"]
    assert merged["histograms"]["wal.append"]["count"] >= 4
    assert merged["histograms"]["checkpoint.publish"]["count"] >= 1
    assert snap["wal_lag_ops"] is not None
    kinds = {e["kind"] for e in merged["events"]}
    assert "checkpoint.shard" in kinds


def test_recovery_spans(tmp_path, obs_on):
    from repro.durability import recover_index
    from repro.durability.checkpoint import CheckpointManager
    from repro.durability.wal import OP_INSERT, WriteAheadLog

    root = str(tmp_path / "d")
    manager = CheckpointManager(root)
    manager.initialize()
    wal = WriteAheadLog(manager.wal_dir, fsync="off")
    wal.append(OP_INSERT, np.array([1.0, 2.0]), [None, None])
    wal.close()
    obs.reset()
    result = recover_index(root, config=None)
    assert result.frames_replayed == 1
    snap = obs.get_registry().snapshot()
    assert snap["histograms"]["recover.replay"]["count"] == 1
    assert snap["counters"]["recover.ops_replayed"] == 2


# ---------------------------------------------------------------------------
# Exposition
# ---------------------------------------------------------------------------

def test_prometheus_rendering(obs_on):
    obs.inc("reqs", 5)
    obs.set_gauge("depth", 3)
    for value in (100.0, 2_000.0, 3e6):
        obs.record_ns("serve.lookup_many", value)
    obs.observe("wal.group_commit_frames", 8)
    text = render.to_prometheus(obs.snapshot())
    assert "# TYPE repro_reqs counter\nrepro_reqs 5" in text
    assert "repro_depth 3" in text
    assert 'repro_serve_lookup_many_bucket{le="+Inf"} 3' in text
    assert "repro_serve_lookup_many_count 3" in text
    # Durations scale to seconds; count-valued histograms do not.
    assert "repro_serve_lookup_many_sum 0.0030021" in text
    assert "repro_wal_group_commit_frames_sum 8" in text
    # Bucket upper bounds are cumulative and non-decreasing.
    import re
    bounds = [float(m) for m in re.findall(
        r'repro_serve_lookup_many_bucket\{le="([^+"]+)"\} ', text)]
    assert bounds == sorted(bounds)


def test_summarize_shapes(obs_on):
    obs.inc("c", 2)
    obs.record_ns("h", 500.0)
    obs.emit("kind.a")
    obs.emit("kind.a")
    summary = render.summarize(obs.snapshot())
    assert summary["counters"] == {"c": 2}
    assert summary["histograms"]["h"]["count"] == 1
    assert summary["events_by_kind"] == {"kind.a": 2}


def test_format_ns_tiers():
    assert render.format_ns(12) == "12ns"
    assert render.format_ns(4_500) == "4.5us"
    assert render.format_ns(3_200_000) == "3.20ms"
    assert render.format_ns(2.5e9) == "2.50s"
    assert render.format_value("wal.group_commit_frames", 64) == "64"


def test_describe_reports_registry_state(obs_on):
    obs.inc("c")
    info = obs.describe()
    assert info["enabled"] is True
    assert info["counters"] == 1
    assert "320 log2 buckets" in info["bucket_config"]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", ["thread", "process"])
def test_cli_stats(backend, obs_on, capsys):
    from repro.cli import main
    assert main(["stats", "--size", "3000", "--shards", "2",
                 "--backend", backend, "--rounds", "3"]) == 0
    out = capsys.readouterr().out
    assert "latency percentiles" in out
    assert "serve.get_many" in out


def test_cli_stats_json(obs_on, capsys):
    import json
    from repro.cli import main
    assert main(["stats", "--size", "2000", "--shards", "2",
                 "--rounds", "2", "--format", "json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["backend"] == "thread"
    assert "serve.get_many" in data["histograms"]


def test_cli_stats_prometheus(obs_on, capsys):
    from repro.cli import main
    assert main(["stats", "--size", "2000", "--shards", "2",
                 "--rounds", "2", "--format", "prometheus"]) == 0
    assert "# TYPE repro_serve_get_many histogram" in \
        capsys.readouterr().out


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_cli_top_renders_live(backend, obs_on, capsys):
    from repro.cli import main
    assert main(["top", "--size", "3000", "--shards", "2",
                 "--backend", backend, "--refresh", "0.3",
                 "--duration", "1", "--plain"]) == 0
    out = capsys.readouterr().out
    assert "repro top — 2 shards" in out
    assert "per-shard accesses" in out
    assert "p99.9" in out


def test_cli_info_shows_obs_block(obs_on, capsys):
    from repro.cli import main
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "obs:" in out and "320 log2 buckets" in out
