"""Tests for the Zipfian generator, workload specs, and the runner."""

import numpy as np
import pytest

from repro.core.alex import AlexIndex
from repro.workloads import (
    DELETE,
    DELETE_HEAVY,
    INSERT,
    RANGE_SCAN,
    READ,
    READ_HEAVY,
    READ_ONLY,
    SCAN,
    WORKLOADS,
    WRITE_HEAVY,
    WRITE_ONLY,
    WorkloadRunner,
    WorkloadSpec,
    ZipfianGenerator,
    run_workload,
    scramble_ranks,
)
from itertools import islice


class TestZipfianGenerator:
    def test_ranks_in_range(self):
        gen = ZipfianGenerator(1000, seed=0)
        ranks = gen.sample(5000)
        assert ranks.min() >= 0 and ranks.max() < 1000

    def test_rank_zero_hottest(self):
        gen = ZipfianGenerator(1000, seed=1)
        ranks = gen.sample(20000)
        counts = np.bincount(ranks, minlength=1000)
        assert counts[0] == counts.max()
        # Zipf(0.99): rank 0 should dominate clearly.
        assert counts[0] > 5 * counts[100]

    def test_skew_decreases_with_rank(self):
        gen = ZipfianGenerator(500, seed=2)
        ranks = gen.sample(50000)
        counts = np.bincount(ranks, minlength=500)
        head = counts[:10].sum()
        tail = counts[250:260].sum()
        assert head > tail * 5

    def test_deterministic_per_seed(self):
        a = ZipfianGenerator(100, seed=3).sample(100)
        b = ZipfianGenerator(100, seed=3).sample(100)
        assert np.array_equal(a, b)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.5)

    def test_sample_one(self):
        assert 0 <= ZipfianGenerator(10, seed=4).sample_one() < 10


class TestScrambleRanks:
    def test_output_in_range(self):
        out = scramble_ranks(np.arange(100), 57)
        assert out.min() >= 0 and out.max() < 57

    def test_deterministic(self):
        a = scramble_ranks(np.arange(10), 100)
        b = scramble_ranks(np.arange(10), 100)
        assert np.array_equal(a, b)

    def test_spreads_hot_ranks(self):
        out = scramble_ranks(np.arange(10), 10000)
        assert len(np.unique(out)) == 10
        assert out.max() - out.min() > 100

    def test_bad_modulus(self):
        with pytest.raises(ValueError):
            scramble_ranks(np.arange(3), 0)


class TestWorkloadSpecs:
    def test_read_heavy_ratio(self):
        ops = list(islice(READ_HEAVY.schedule(), 40))
        assert ops.count(READ) == 38
        assert ops.count(INSERT) == 2

    def test_write_heavy_alternates(self):
        ops = list(islice(WRITE_HEAVY.schedule(), 10))
        assert ops == [READ, INSERT] * 5

    def test_read_only_never_inserts(self):
        ops = list(islice(READ_ONLY.schedule(), 50))
        assert set(ops) == {READ}

    def test_range_scan_uses_scans(self):
        ops = list(islice(RANGE_SCAN.schedule(), 20))
        assert SCAN in ops and READ not in ops

    def test_write_only(self):
        ops = list(islice(WRITE_ONLY.schedule(), 5))
        assert set(ops) == {INSERT}

    def test_fractions(self):
        read_fraction, insert_fraction = READ_HEAVY.fractions()
        assert read_fraction == pytest.approx(0.95)
        assert insert_fraction == pytest.approx(0.05)

    def test_delete_heavy_schedule_and_fractions(self):
        assert "delete-heavy" in WORKLOADS
        cycle = (DELETE_HEAVY.reads_per_cycle
                 + DELETE_HEAVY.inserts_per_cycle
                 + DELETE_HEAVY.deletes_per_cycle)
        ops = list(islice(DELETE_HEAVY.schedule(), 2 * cycle))
        assert ops == [READ, INSERT, INSERT, DELETE, DELETE] * 2
        read_fraction, insert_fraction = DELETE_HEAVY.fractions()
        assert read_fraction == pytest.approx(0.2)
        assert insert_fraction == pytest.approx(0.4)
        # The key count is stationary: every cycle deletes what it inserts.
        assert DELETE_HEAVY.inserts_per_cycle == DELETE_HEAVY.deletes_per_cycle


class TestWorkloadRunner:
    @pytest.fixture
    def setup(self):
        rng = np.random.default_rng(61)
        keys = np.unique(rng.uniform(0, 1e6, 3000))
        init, inserts = keys[:2000], keys[2000:]
        index = AlexIndex.bulk_load(init)
        return index, init, inserts

    def test_op_counts_match_spec(self, setup):
        index, init, inserts = setup
        result = run_workload(index, init, inserts, READ_HEAVY, 400, seed=1)
        assert result.ops == 400
        assert result.inserts == 20
        assert result.reads == 380

    def test_inserted_keys_become_lookupable(self, setup):
        index, init, inserts = setup
        run_workload(index, init, inserts, WRITE_HEAVY, 600, seed=2)
        assert len(index) == 2000 + 300
        index.validate()

    def test_scan_workload_counts_records(self, setup):
        index, init, inserts = setup
        result = run_workload(index, init, inserts, RANGE_SCAN, 200, seed=3)
        assert result.scans > 0
        assert result.scanned_records >= result.scans

    def test_stops_when_insert_stream_dry(self, setup):
        index, init, inserts = setup
        result = run_workload(index, init, inserts[:5], WRITE_HEAVY, 1000,
                              seed=4)
        assert result.inserts == 5
        assert result.ops < 1000

    def test_work_delta_isolated_to_run(self, setup):
        index, init, inserts = setup
        first = run_workload(index, init, inserts, READ_ONLY, 100, seed=5)
        assert first.work.lookups == 100
        assert first.work.inserts == 0

    def test_lookup_on_empty_pool_raises(self):
        index = AlexIndex()
        runner = WorkloadRunner(index, np.empty(0), np.array([1.0]))
        with pytest.raises(RuntimeError):
            runner.run(READ_ONLY, 1)

    def test_result_merge_accumulates(self, setup):
        index, init, inserts = setup
        runner = WorkloadRunner(index, init, inserts, seed=6)
        a = runner.run(READ_HEAVY, 100)
        b = runner.run(READ_HEAVY, 100)
        a.merge(b)
        assert a.ops == 200
        assert a.work.lookups == 190

    def test_custom_spec(self, setup):
        index, init, inserts = setup
        spec = WorkloadSpec("custom", reads_per_cycle=3, inserts_per_cycle=2)
        result = run_workload(index, init, inserts, spec, 50, seed=7)
        assert result.reads == 30
        assert result.inserts == 20


class TestDeleteWorkloads:
    @pytest.fixture
    def setup(self):
        rng = np.random.default_rng(62)
        keys = np.unique(rng.uniform(0, 1e6, 3000))
        init, inserts = keys[:2000], keys[2000:]
        index = AlexIndex.bulk_load(init)
        return index, init, inserts

    def test_delete_heavy_op_counts(self, setup):
        index, init, inserts = setup
        result = run_workload(index, init, inserts, DELETE_HEAVY, 500,
                              seed=1)
        assert result.ops == 500
        assert result.reads == 100
        assert result.inserts == 200
        assert result.deletes == 200
        assert result.work.deletes == 200
        assert len(index) == 2000  # stationary key count
        index.validate()

    def test_deleted_keys_leave_the_lookup_pool(self, setup):
        index, init, inserts = setup
        # Deletes only: every op retires a pool key; nothing ever looks
        # up a deleted key (the runner would raise KeyNotFoundError).
        spec = WorkloadSpec("drain", reads_per_cycle=1,
                            inserts_per_cycle=0, deletes_per_cycle=3)
        result = run_workload(index, init, inserts, spec, 400, seed=2)
        assert result.deletes == 300
        assert len(index) == 2000 - 300
        index.validate()

    def test_delete_drains_pool_and_stops(self):
        rng = np.random.default_rng(63)
        keys = np.unique(rng.uniform(0, 1e6, 40))
        index = AlexIndex.bulk_load(keys)
        spec = WorkloadSpec("all-deletes", reads_per_cycle=0,
                            inserts_per_cycle=0, deletes_per_cycle=1)
        result = run_workload(index, keys, np.empty(0), spec, 1000, seed=3)
        assert result.deletes == len(keys)
        assert result.ops == len(keys)  # stopped early, pool empty
        assert len(index) == 0

    def test_batched_deletes_match_scalar_execution(self, setup):
        _, init, inserts = setup
        scalar = AlexIndex.bulk_load(init)
        batched = AlexIndex.bulk_load(init)
        a = run_workload(scalar, init.copy(), inserts.copy(),
                         DELETE_HEAVY, 800, seed=4)
        b = run_workload(batched, init.copy(), inserts.copy(),
                         DELETE_HEAVY, 800, seed=4,
                         read_batch=16, write_batch=16, delete_batch=16)
        assert (a.reads, a.inserts, a.deletes) == (b.reads, b.inserts,
                                                   b.deletes)
        assert list(scalar.items()) == list(batched.items())
        scalar.validate()
        batched.validate()

    def test_result_merge_accumulates_deletes(self, setup):
        index, init, inserts = setup
        runner = WorkloadRunner(index, init, inserts, seed=5)
        a = runner.run(DELETE_HEAVY, 100)
        b = runner.run(DELETE_HEAVY, 100)
        a.merge(b)
        assert a.deletes == 80

    @pytest.mark.parametrize("system,backend", [
        ("ALEX-GA-ARMI", None),
        ("ShardedALEX", "thread"),
    ])
    def test_mixed_insert_delete_through_run_experiment(self, system,
                                                        backend):
        from repro.bench import SystemParams, run_experiment
        params = (SystemParams() if backend is None
                  else SystemParams(shard_backend=backend))
        result = run_experiment(system, "lognormal", DELETE_HEAVY,
                                init_size=2500, num_ops=1200,
                                params=params, seed=6,
                                read_batch=8, write_batch=8,
                                delete_batch=8)
        assert result.ops == 1200
        assert result.extras["deletes"] == 480
        assert result.extras["inserts"] == 480
        assert result.extras["reads"] == 240
        assert result.throughput > 0
        assert result.work.deletes == 480


class TestAdaptationTraces:
    def test_traces_are_deterministic(self):
        from repro.workloads.adaptation import build_trace
        for scenario in ("grow-shrink", "hotspot-shift"):
            a_init, a_chunks = build_trace(scenario, 1000, 1000, seed=5)
            b_init, b_chunks = build_trace(scenario, 1000, 1000, seed=5)
            assert np.array_equal(a_init, b_init)
            assert len(a_chunks) == len(b_chunks)
            for (op_a, keys_a), (op_b, keys_b) in zip(a_chunks, b_chunks):
                assert op_a == op_b
                assert np.array_equal(keys_a, keys_b)

    def test_grow_shrink_ends_small(self):
        from repro.core.policy import HeuristicPolicy
        from repro.workloads.adaptation import run_adaptation_scenario
        result = run_adaptation_scenario(HeuristicPolicy(), "grow-shrink",
                                         num_keys=2000, num_ops=2000,
                                         seed=1)
        # the wave (1000) plus 80% of the base is deleted
        assert result["final_keys"] == 2000 + 1000 - 1000 - 1600
        assert result["sim_mops"] > 0

    def test_hotspot_shift_inserts_are_sequential_per_phase(self):
        from repro.workloads.adaptation import shifting_hotspot_trace
        _, chunks = shifting_hotspot_trace(1000, 1000, seed=2, shifts=2)
        inserts = [keys for op, keys in chunks if op == "insert"]
        assert inserts and all(len(k) <= 2 for k in inserts)
        flat = np.concatenate(inserts)
        # within each phase the cursor only advances; a phase boundary is
        # the single place the sequence may restart
        drops = int((np.diff(flat) < 0).sum())
        assert drops <= 1

    def test_unknown_scenario_raises(self):
        from repro.workloads.adaptation import build_trace
        with pytest.raises(ValueError):
            build_trace("nope", 100, 100)
