"""Tests for the prediction-error study (Figure 7 machinery)."""

import numpy as np
import pytest

from repro.analysis.prediction_error import (
    alex_prediction_errors,
    error_summary,
    learned_index_prediction_errors,
    log2_histogram,
)
from repro.baselines.learned_index import LearnedIndex
from repro.core.alex import AlexIndex
from repro.core.config import ga_srmi
from repro.datasets import longitudes


@pytest.fixture
def keys():
    return longitudes(4000, seed=81)


class TestAlexErrors:
    def test_one_error_per_key(self, keys):
        index = AlexIndex.bulk_load(keys, config=ga_srmi(num_models=16))
        errors = alex_prediction_errors(index)
        assert len(errors) == len(keys)
        assert (errors >= 0).all()

    def test_model_based_inserts_give_low_errors(self, keys):
        # Figure 7b's claim: after init, ALEX errors are mostly tiny.
        index = AlexIndex.bulk_load(keys, config=ga_srmi(num_models=16))
        errors = alex_prediction_errors(index)
        assert np.median(errors) <= 2

    def test_errors_stay_low_after_inserts(self, keys):
        # Figure 7c: inserts do not blow the error distribution up.
        index = AlexIndex.bulk_load(keys[:2000], config=ga_srmi(num_models=16))
        for key in keys[2000:]:
            index.insert(float(key))
        errors = alex_prediction_errors(index)
        assert np.median(errors) <= 4

    def test_empty_index(self):
        assert len(alex_prediction_errors(AlexIndex())) == 0


class TestLearnedIndexErrors:
    def test_one_error_per_key(self, keys):
        index = LearnedIndex.bulk_load(keys, num_models=4)
        errors = learned_index_prediction_errors(index)
        assert len(errors) == len(keys)

    def test_alex_beats_learned_index(self, keys):
        # Figure 7's headline comparison at matched model budgets.
        alex = AlexIndex.bulk_load(keys, config=ga_srmi(num_models=8))
        learned = LearnedIndex.bulk_load(keys, num_models=8)
        alex_errors = alex_prediction_errors(alex)
        learned_errors = learned_index_prediction_errors(learned)
        assert alex_errors.mean() < learned_errors.mean()
        assert (alex_errors == 0).mean() > (learned_errors == 0).mean()

    def test_empty_index(self):
        assert len(learned_index_prediction_errors(LearnedIndex())) == 0


class TestHistogramAndSummary:
    def test_histogram_counts_sum_to_total(self):
        errors = np.array([0, 0, 1, 2, 3, 4, 5, 8, 9, 16, 40])
        hist = log2_histogram(errors)
        assert sum(count for _, count in hist) == len(errors)
        assert hist[0] == ("0", 2)

    def test_histogram_bucket_edges(self):
        hist = dict(log2_histogram(np.array([3, 4, 5, 8, 9])))
        assert hist["3-4"] == 2
        assert hist["5-8"] == 2
        assert hist["9-16"] == 1

    def test_summary_fields(self):
        errors = np.array([0, 0, 0, 10])
        summary = error_summary(errors)
        assert summary["count"] == 4
        assert summary["exact_fraction"] == pytest.approx(0.75)
        assert summary["max"] == 10

    def test_summary_empty(self):
        assert error_summary(np.empty(0, dtype=np.int64))["count"] == 0
