"""Unit tests for repro.core.search (exponential and bounded binary search)."""

import numpy as np
import pytest

from repro.core.search import binary_search_bounded, exponential_search, lower_bound
from repro.core.stats import Counters


def reference_lower_bound(keys, target, lo, hi):
    return lo + int(np.searchsorted(keys[lo:hi], target, side="left"))


@pytest.fixture
def sorted_keys():
    rng = np.random.default_rng(42)
    return np.sort(rng.uniform(0, 1000, 500))


class TestLowerBound:
    def test_matches_numpy_on_random_targets(self, sorted_keys):
        rng = np.random.default_rng(1)
        for target in rng.uniform(-10, 1010, 100):
            got = lower_bound(sorted_keys, target, 0, len(sorted_keys))
            want = reference_lower_bound(sorted_keys, target, 0, len(sorted_keys))
            assert got == want

    def test_exact_keys_found_at_their_position(self, sorted_keys):
        for i in range(0, len(sorted_keys), 17):
            assert lower_bound(sorted_keys, sorted_keys[i], 0, len(sorted_keys)) == i

    def test_empty_range(self, sorted_keys):
        assert lower_bound(sorted_keys, 5.0, 10, 10) == 10

    def test_subrange_respected(self, sorted_keys):
        got = lower_bound(sorted_keys, -999.0, 100, 200)
        assert got == 100
        got = lower_bound(sorted_keys, 1e9, 100, 200)
        assert got == 200

    def test_counts_logarithmic_comparisons(self, sorted_keys):
        counters = Counters()
        lower_bound(sorted_keys, 500.0, 0, len(sorted_keys), counters)
        assert 1 <= counters.comparisons <= 12  # log2(500) ~ 9
        assert counters.probes == counters.comparisons


class TestExponentialSearch:
    @pytest.mark.parametrize("hint_offset", [0, 1, -1, 5, -5, 50, -50, 499])
    def test_matches_lower_bound_for_any_hint(self, sorted_keys, hint_offset):
        rng = np.random.default_rng(2)
        n = len(sorted_keys)
        for target in rng.uniform(-10, 1010, 50):
            want = reference_lower_bound(sorted_keys, target, 0, n)
            hint = max(0, min(n - 1, want + hint_offset))
            got = exponential_search(sorted_keys, target, hint, 0, n)
            assert got == want

    def test_hint_out_of_range_is_clamped(self, sorted_keys):
        n = len(sorted_keys)
        want = reference_lower_bound(sorted_keys, 500.0, 0, n)
        assert exponential_search(sorted_keys, 500.0, -17, 0, n) == want
        assert exponential_search(sorted_keys, 500.0, n + 100, 0, n) == want

    def test_empty_range_returns_lo(self, sorted_keys):
        assert exponential_search(sorted_keys, 5.0, 0, 3, 3) == 3

    def test_target_below_all(self, sorted_keys):
        assert exponential_search(sorted_keys, -1e9, 250, 0, len(sorted_keys)) == 0

    def test_target_above_all(self, sorted_keys):
        n = len(sorted_keys)
        assert exponential_search(sorted_keys, 1e9, 250, 0, n) == n

    def test_cost_scales_with_error_not_size(self, sorted_keys):
        n = len(sorted_keys)
        target = float(sorted_keys[300])
        small, large = Counters(), Counters()
        exponential_search(sorted_keys, target, 300, 0, n, small)
        exponential_search(sorted_keys, target, 4, 0, n, large)
        assert small.probes < large.probes

    def test_exact_hint_costs_few_probes(self, sorted_keys):
        counters = Counters()
        exponential_search(sorted_keys, float(sorted_keys[123]), 123, 0,
                           len(sorted_keys), counters)
        assert counters.probes <= 4

    def test_works_on_arrays_with_duplicate_runs(self):
        # Gap-filled arrays contain runs of equal values; search must still
        # return the leftmost.
        keys = np.array([1.0, 3.0, 3.0, 3.0, 5.0, 7.0, 7.0, 9.0])
        for hint in range(len(keys)):
            assert exponential_search(keys, 3.0, hint, 0, len(keys)) == 1
            assert exponential_search(keys, 7.0, hint, 0, len(keys)) == 5


class TestBinarySearchBounded:
    def test_finds_key_within_bounds(self, sorted_keys):
        n = len(sorted_keys)
        for i in range(0, n, 23):
            got = binary_search_bounded(sorted_keys, float(sorted_keys[i]),
                                        min(n - 1, i + 3), 8, 8, 0, n)
            assert got == i

    def test_widens_right_when_bounds_stale(self, sorted_keys):
        n = len(sorted_keys)
        # Hint far left of actual with tiny bounds: must still find it.
        got = binary_search_bounded(sorted_keys, float(sorted_keys[400]), 10,
                                    2, 2, 0, n)
        assert got == 400

    def test_widens_left_when_bounds_stale(self, sorted_keys):
        n = len(sorted_keys)
        got = binary_search_bounded(sorted_keys, float(sorted_keys[10]), 400,
                                    2, 2, 0, n)
        assert got == 10

    def test_cost_depends_on_bound_width_not_error(self, sorted_keys):
        n = len(sorted_keys)
        target = float(sorted_keys[250])
        tight, wide = Counters(), Counters()
        binary_search_bounded(sorted_keys, target, 250, 4, 4, 0, n, tight)
        binary_search_bounded(sorted_keys, target, 250, 200, 200, 0, n, wide)
        assert wide.probes > tight.probes

    def test_matches_reference_positions(self, sorted_keys):
        rng = np.random.default_rng(3)
        n = len(sorted_keys)
        for target in rng.uniform(-10, 1010, 60):
            want = reference_lower_bound(sorted_keys, target, 0, n)
            hint = max(0, min(n - 1, want + int(rng.integers(-20, 21))))
            got = binary_search_bounded(sorted_keys, target, hint, 32, 32, 0, n)
            assert got == want
