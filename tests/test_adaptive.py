"""Unit tests for repro.core.adaptive (Algorithm 4 init + node splitting)."""

import numpy as np

from repro.core.adaptive import build_adaptive_rmi, split_leaf
from repro.core.config import AlexConfig, ADAPTIVE_RMI
from repro.core.data_node import DataNode
from repro.core.rmi import InnerNode
from repro.core.stats import Counters


def build(keys, max_keys=64, partitions=8, **overrides):
    config = AlexConfig(rmi_mode=ADAPTIVE_RMI, max_keys_per_node=max_keys,
                        inner_partitions=partitions, **overrides)
    counters = Counters()
    keys = np.asarray(keys, dtype=np.float64)
    root, leaves = build_adaptive_rmi(keys, [None] * len(keys), config,
                                      counters)
    return root, leaves, counters, config


def route(root, key):
    node = root
    while isinstance(node, InnerNode):
        node = node.children[node.route_slot(key)]
    return node


class TestAdaptiveInitialization:
    def test_small_input_becomes_single_leaf(self):
        root, leaves, _, _ = build(np.arange(32, dtype=np.float64), max_keys=64)
        assert isinstance(root, DataNode)
        assert len(leaves) == 1

    def test_leaf_bound_respected_on_uniform_keys(self):
        root, leaves, _, _ = build(np.arange(2000, dtype=np.float64),
                                   max_keys=128)
        assert all(leaf.num_keys <= 128 for leaf in leaves)

    def test_all_keys_routable(self):
        rng = np.random.default_rng(6)
        keys = np.sort(np.unique(rng.lognormal(0, 2, 3000)))
        root, _, _, _ = build(keys, max_keys=128)
        for key in keys[::41]:
            assert route(root, float(key)).contains(float(key))

    def test_skew_grows_depth(self):
        # Heavily skewed keys force recursion into deeper inner nodes.
        rng = np.random.default_rng(7)
        keys = np.sort(np.unique(rng.lognormal(0, 3, 4000)))

        def depth(node):
            if not isinstance(node, InnerNode):
                return 0
            return 1 + max(depth(child) for child in node.distinct_children())

        root, _, _, _ = build(keys, max_keys=128, partitions=4)
        assert depth(root) >= 2

    def test_merging_avoids_wasted_leaves(self):
        # Adaptive init merges near-empty partitions (Fig. 12's claim:
        # more consistent leaf sizes, fewer wasted leaves than static RMI).
        rng = np.random.default_rng(8)
        keys = np.sort(np.unique(rng.lognormal(0, 2, 3000)))
        _, leaves, _, _ = build(keys, max_keys=128)
        sizes = np.array([leaf.num_keys for leaf in leaves])
        assert (sizes == 0).mean() < 0.2

    def test_leaves_chained_in_key_order(self):
        rng = np.random.default_rng(9)
        keys = np.sort(np.unique(rng.uniform(0, 1e6, 2500)))
        root, leaves, _, _ = build(keys, max_keys=100)
        collected = []
        leaf = leaves[0]
        while leaf is not None:
            collected.extend(k for k, _ in leaf.iter_items())
            leaf = leaf.next_leaf
        assert collected == keys.tolist()

    def test_empty_input(self):
        root, leaves, _, _ = build([], max_keys=64)
        assert len(leaves) == 1
        assert leaves[0].num_keys == 0

    def test_near_identical_keys_degrade_to_oversized_leaf(self):
        # When the model cannot separate keys, Algorithm 4 must not recurse
        # forever; it accepts a leaf over the bound.
        keys = 1.0 + np.arange(500, dtype=np.float64) * 1e-12
        root, leaves, _, _ = build(keys, max_keys=64)
        assert sum(leaf.num_keys for leaf in leaves) == 500


class TestSplitLeaf:
    def _leaf_with_parent(self, n=300, fanout=4):
        config = AlexConfig(rmi_mode=ADAPTIVE_RMI, max_keys_per_node=1024,
                            split_fanout=fanout)
        counters = Counters()
        keys = np.sort(np.unique(np.random.default_rng(10).uniform(0, 1000, n)))
        root, leaves = build_adaptive_rmi(keys, [None] * len(keys), config,
                                          counters)
        assert isinstance(root, DataNode)  # single leaf at this size
        parent = InnerNode(
            root.model.copy() if root.model else None, [root], counters)
        return root, parent, config, counters, keys

    def test_split_creates_fanout_children(self):
        leaf, parent, config, counters, keys = self._leaf_with_parent()
        inner = split_leaf(leaf, parent, config, counters)
        assert inner is not None
        assert len(inner.children) == config.split_fanout
        assert counters.splits == 1

    def test_split_preserves_all_keys(self):
        leaf, parent, config, counters, keys = self._leaf_with_parent()
        inner = split_leaf(leaf, parent, config, counters)
        total = sum(child.num_keys for child in inner.distinct_children())
        assert total == len(keys)

    def test_split_replaces_child_in_parent(self):
        leaf, parent, config, counters, _ = self._leaf_with_parent()
        inner = split_leaf(leaf, parent, config, counters)
        assert parent.children[0] is inner

    def test_split_splices_leaf_chain(self):
        leaf, parent, config, counters, keys = self._leaf_with_parent()
        left_neighbour = DataNode.__new__(DataNode)  # sentinel objects
        right_neighbour = DataNode.__new__(DataNode)
        left_neighbour.next_leaf = leaf
        right_neighbour.prev_leaf = leaf
        leaf.prev_leaf = left_neighbour
        leaf.next_leaf = right_neighbour
        inner = split_leaf(leaf, parent, config, counters)
        children = inner.distinct_children()
        assert left_neighbour.next_leaf is children[0]
        assert children[0].prev_leaf is left_neighbour
        assert children[-1].next_leaf is right_neighbour
        assert right_neighbour.prev_leaf is children[-1]

    def test_split_routes_by_original_model(self):
        leaf, parent, config, counters, keys = self._leaf_with_parent()
        inner = split_leaf(leaf, parent, config, counters)
        for key in keys[::11]:
            child = inner.children[inner.route_slot(float(key))]
            assert child.contains(float(key))

    def test_degenerate_split_returns_none(self):
        # A stale model (trained before a distribution shift) can route
        # every key to one child; the caller must keep the oversized leaf.
        from repro.core.linear_model import LinearModel
        from repro.core.rmi import make_data_node

        config = AlexConfig(rmi_mode=ADAPTIVE_RMI)
        counters = Counters()
        keys = np.linspace(0.0, 1.0, 100)
        leaf = make_data_node(config, counters)
        leaf.build(keys)
        # Pretend the model was trained on keys spanning [0, 1000]: every
        # current key now predicts slot 0 after rescaling to the fanout.
        leaf.model = LinearModel(slope=leaf.capacity / 1000.0, intercept=0.0)
        assert split_leaf(leaf, None, config, counters) is None
