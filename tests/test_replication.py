"""WAL-shipping replication and the consistency-aware read API.

Covers the :mod:`repro.replication` follower machinery (bootstrap,
continuous replay, byte-level shipping, promotion), the
:class:`~repro.serve.options.ReadOptions` / :class:`WriteToken` API
threaded through the facade and ingress, and the failure semantics:
stale replicas fall back to the primary, read-your-writes tokens
survive shard SMOs, and replica views are always prefix-consistent
with the write order.
"""

import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.core.errors import (KeyNotFoundError, ReplicaStaleError,
                               ReplicaUnavailableError)
from repro.replication import LogShipper, Replica
from repro.serve import (IngressRunner, ReadOptions, ShardedAlexIndex,
                         WriteToken)


def _wait_until(predicate, timeout_s: float = 10.0,
                message: str = "condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError(f"timed out waiting for {message}")


def _service(tmp_path, n: int = 2000, num_shards: int = 2, **kwargs):
    keys = np.arange(n, dtype=np.float64)
    payloads = [f"v{i}" for i in range(n)]
    kwargs.setdefault("durability_dir", str(tmp_path / "dur"))
    kwargs.setdefault("fsync", "batch")
    return ShardedAlexIndex.bulk_load(keys, payloads,
                                      num_shards=num_shards, **kwargs)


# ---------------------------------------------------------------------------
# ReadOptions / WriteToken unit behavior
# ---------------------------------------------------------------------------


class TestOptions:
    def test_consistency_levels_and_validation(self):
        assert ReadOptions().consistency == "primary"
        assert not ReadOptions().wants_replica
        assert ReadOptions.replica_ok(0.5).wants_replica
        assert ReadOptions.read_your_writes(WriteToken.empty()).wants_replica
        with pytest.raises(ValueError):
            ReadOptions(consistency="snapshot")
        with pytest.raises(ValueError):
            ReadOptions.replica_ok(max_staleness_s=-1.0)

    def test_token_merge_is_pointwise_max(self):
        a = WriteToken({"g1": 5, "g2": 1})
        b = WriteToken({"g2": 7, "g3": 2})
        merged = a.merge(b)
        assert dict(merged.lsns) == {"g1": 5, "g2": 7, "g3": 2}
        # Unknown generations demand nothing (the SMO-survival property).
        assert merged.lsn_for("g4") == 0
        assert not WriteToken.empty()
        assert a

    def test_string_options_resolve(self, tmp_path):
        service = _service(tmp_path, replicate=True)
        try:
            # A consistency-level string is accepted everywhere options=
            # is; an unknown one is rejected loudly.
            assert service.get(1.0, options="replica_ok") == "v1"
            with pytest.raises(ValueError):
                service.get(1.0, options="bogus")
        finally:
            service.close()


# ---------------------------------------------------------------------------
# The standalone follower
# ---------------------------------------------------------------------------


class TestReplica:
    def test_bootstrap_and_continuous_replay(self, tmp_path):
        service = _service(tmp_path, num_shards=1)
        try:
            replica = Replica(str(tmp_path / "dur" / "shard-00000000"),
                              config=service.config)
            replica.start()
            try:
                assert replica.status()["num_keys"] == 2000
                token = service.insert_many(
                    np.arange(5000, 5100, dtype=np.float64))
                lsn = token.lsn_for("shard-00000000")
                assert lsn > 0
                _wait_until(lambda: replica.applied_lsn >= lsn,
                            message="replica catch-up")
                assert replica.read("contains", (5050.0,), min_lsn=lsn)
                assert replica.staleness_s() < 30.0
            finally:
                replica.stop()
        finally:
            service.close()

    def test_read_constraints_raise(self, tmp_path):
        service = _service(tmp_path, num_shards=1)
        try:
            replica = Replica(str(tmp_path / "dur" / "shard-00000000"),
                              config=service.config)
            replica.start()
            try:
                with pytest.raises(ReplicaStaleError):
                    replica.read("contains", (1.0,), min_lsn=10**9)
                with pytest.raises(ReplicaStaleError):
                    replica.read("contains", (1.0,), max_staleness_s=0.0)
                with pytest.raises(ReplicaUnavailableError):
                    replica.read("insert", (1.0, None))  # not a read
            finally:
                replica.stop()
        finally:
            service.close()

    def test_promote_drains_the_tail(self, tmp_path):
        service = _service(tmp_path, num_shards=1)
        try:
            token = service.insert_many(
                np.arange(9000, 9200, dtype=np.float64))
            service.sync()
            replica = Replica(str(tmp_path / "dur" / "shard-00000000"),
                              config=service.config)
            replica.start()
            index = replica.promote()
            assert replica.status()["promoted"]
            assert index.contains(9199.0)
            assert replica.applied_lsn >= token.lsn_for("shard-00000000")
            with pytest.raises(ReplicaUnavailableError):
                replica.read("contains", (1.0,))
        finally:
            service.close()


class TestLogShipper:
    def test_mirror_feeds_a_remote_replica(self, tmp_path):
        service = _service(tmp_path, num_shards=1)
        try:
            source = str(tmp_path / "dur" / "shard-00000000")
            mirror = str(tmp_path / "mirror")
            shipper = LogShipper(source, mirror)
            assert shipper.ship() > 0          # checkpoint + manifest
            token = service.insert_many(
                np.arange(7000, 7050, dtype=np.float64))
            service.sync()
            assert shipper.ship() > 0          # the WAL suffix
            assert shipper.ship() == 0         # idempotent when current
            replica = Replica(mirror, config=service.config)
            replica.start()
            try:
                lsn = token.lsn_for("shard-00000000")
                _wait_until(lambda: replica.applied_lsn >= lsn,
                            message="mirror replica catch-up")
                assert replica.read("contains", (7049.0,), min_lsn=lsn)
            finally:
                replica.stop()
        finally:
            service.close()

    def test_truncated_segments_are_dropped(self, tmp_path):
        service = _service(tmp_path, num_shards=1,
                           checkpoint_every=50)
        try:
            source = str(tmp_path / "dur" / "shard-00000000")
            mirror = str(tmp_path / "mirror")
            shipper = LogShipper(source, mirror)
            shipper.ship()
            # Enough batches to roll + truncate segments at checkpoints.
            for i in range(6):
                service.insert_many(
                    np.arange(20000 + i * 100, 20000 + i * 100 + 60,
                              dtype=np.float64))
            service.checkpoint()
            service.sync()
            shipper.ship()
            replica = Replica(mirror, config=service.config)
            replica.start()
            try:
                _wait_until(
                    lambda: replica.status()["num_keys"] == 2360,
                    message="mirror replay after truncation")
            finally:
                replica.stop()
        finally:
            service.close()


# ---------------------------------------------------------------------------
# Facade routing
# ---------------------------------------------------------------------------


class TestFacadeRouting:
    def test_replicate_requires_durability(self):
        with pytest.raises(ValueError):
            ShardedAlexIndex.bulk_load(
                np.arange(100, dtype=np.float64), num_shards=1,
                replicate=True)

    def test_replica_ok_reads_whole_api(self, tmp_path):
        service = _service(tmp_path, replicate=True)
        try:
            opts = ReadOptions.replica_ok()
            assert service.lookup(5.0, options=opts) == "v5"
            assert service.get(10**9, "absent", options=opts) == "absent"
            assert service.contains(7.0, options=opts)
            assert service.lookup_many([1.0, 1999.0], options=opts) \
                == ["v1", "v1999"]
            hits = service.contains_many([1.0, 10**9], options=opts)
            assert hits.tolist() == [True, False]
            assert len(service.range_query(0.0, 9.0, options=opts)) == 10
            assert len(service.range_scan(1990.0, 50, options=opts)) == 10
            spans = service.range_query_many([0.0, 100.0], [4.0, 104.0],
                                             options=opts)
            assert [len(c) for c in spans] == [5, 5]
        finally:
            service.close()

    def test_zero_staleness_bound_falls_back_to_primary(self, tmp_path):
        service = _service(tmp_path, replicate=True)
        try:
            # An unsatisfiable bound must degrade to a primary read, not
            # fail: the answer stays correct and fresh.
            token = service.insert(4242.5, "fresh")
            assert token.lsns
            opts = ReadOptions.replica_ok(max_staleness_s=0.0)
            assert service.lookup(4242.5, options=opts) == "fresh"
            if obs.enabled():   # counters are no-ops under REPRO_OBS=off
                fallbacks = service.metrics_snapshot()["merged"][
                    "counters"].get("serve.replica_fallbacks", 0)
                assert fallbacks >= 1
        finally:
            service.close()

    def test_read_your_writes_is_immediate(self, tmp_path):
        service = _service(tmp_path, replicate=True)
        try:
            token = WriteToken.empty()
            for i in range(20):
                token = token.merge(service.insert(3000.5 + i, f"w{i}"))
                opts = ReadOptions.read_your_writes(token)
                # No sleeping: the token must make every acked write
                # visible, replica-served or primary-fallback.
                assert service.lookup(3000.5 + i, options=opts) == f"w{i}"
            batch_token = service.insert_many(
                np.arange(40000, 40100, dtype=np.float64),
                [f"b{i}" for i in range(100)])
            values = service.lookup_many(
                [40000.0, 40099.0],
                options=ReadOptions.read_your_writes(batch_token))
            assert values == ["b0", "b99"]
        finally:
            service.close()

    def test_token_survives_shard_split_and_merge(self, tmp_path):
        service = _service(tmp_path, replicate=True)
        try:
            token = service.insert_many(
                np.arange(50000, 50080, dtype=np.float64),
                [f"s{i}" for i in range(80)])
            assert service.split_shard(1)
            # The pre-split token references a retired generation; the
            # post-SMO generation-zero checkpoints already contain the
            # write, so the read must still see it.
            opts = ReadOptions.read_your_writes(token)
            assert service.lookup(50079.0, options=opts) == "s79"
            service.merge_shards(0)
            assert service.lookup(50000.0, options=opts) == "s0"
            service.validate()
        finally:
            service.close()

    def test_replication_status_in_metrics(self, tmp_path):
        service = _service(tmp_path, replicate=True)
        try:
            snap = service.metrics_snapshot()
            assert len(snap["replication"]) == service.num_shards
            for row in snap["replication"]:
                assert row["bootstraps"] == 1
                assert not row["promoted"]
        finally:
            service.close()

    def test_unreplicated_service_keeps_old_contract(self, tmp_path):
        service = _service(tmp_path)   # durability, no replicas
        try:
            # options= is accepted but degrades to primary (no replica
            # to route to), and writes still ack tokens.
            assert service.lookup(3.0, options="replica_ok") == "v3"
            token = service.insert(77777.5, "x")
            assert isinstance(token, WriteToken)
            assert service.metrics_snapshot()["replication"] is None
        finally:
            service.close()


class TestPrefixConsistency:
    def test_replica_view_is_a_prefix_of_the_write_order(self, tmp_path):
        """Property: at any instant, the set of keys a replica serves is
        exactly the first m write batches for some m — never batch j
        without every batch before j (the WAL replay applies frames in
        LSN order, and reads serialize against replay under the
        replica's lock)."""
        service = _service(tmp_path, n=100, num_shards=1,
                           replicate=True)
        try:
            batches = [np.arange(1000 + 10 * b, 1010 + 10 * b,
                                 dtype=np.float64) for b in range(30)]
            all_keys = np.concatenate(batches)
            opts = ReadOptions.replica_ok()
            stop = threading.Event()
            violations = []

            def read_loop():
                while not stop.is_set():
                    hits = service.contains_many(all_keys, options=opts)
                    per_batch = hits.reshape(len(batches), 10)
                    seen = [bool(row.any()) for row in per_batch]
                    full = [bool(row.all()) for row in per_batch]
                    # Any partially-visible or out-of-order batch is a
                    # torn (non-prefix) read.
                    prefix = 0
                    while prefix < len(full) and full[prefix]:
                        prefix += 1
                    if any(seen[prefix:]):
                        violations.append((seen, full))

            reader = threading.Thread(target=read_loop)
            reader.start()
            try:
                for batch in batches:
                    service.insert_many(batch)
            finally:
                stop.set()
                reader.join(timeout=30)
            assert not violations, violations[0]
        finally:
            service.close()


# ---------------------------------------------------------------------------
# Lifecycle
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_replica_workers_cleaned_up_on_close(self, tmp_path):
        service = _service(tmp_path, backend="process", replicate=True)
        backend = service._backend
        pids = [pid for pid in backend.replica_pids() if pid is not None]
        assert len(pids) == service.num_shards
        processes = [handle.process
                     for handle in backend._replica_workers]
        service.close()
        assert all(not process.is_alive() for process in processes)
        assert backend.replica_pids() == []

    def test_dead_replicas_reported_separately(self, tmp_path):
        service = _service(tmp_path, replicate=True)
        try:
            assert service._backend.dead_replicas() == []
            assert service._backend.dead_shards() == []
            assert service._backend.has_replica(0)
            service._backend.drop_replica(0)
            assert not service._backend.has_replica(0)
            # The primary path is untouched by a missing replica.
            assert service.lookup(1.0) == "v1"
            assert service.lookup(1.0, options="replica_ok") == "v1"
        finally:
            service.close()


class TestIngressOptions:
    def test_consistency_lanes_and_tokens(self, tmp_path):
        service = _service(tmp_path, replicate=True)
        try:
            with IngressRunner(service, window_s=0.001) as ingress:
                token = ingress.insert(123456.5, "through-the-door")
                assert isinstance(token, WriteToken)
                opts = ReadOptions.read_your_writes(token)
                assert ingress.get(123456.5, options=opts) \
                    == "through-the-door"
                assert ingress.lookup(5.0, options="replica_ok") == "v5"
                assert ingress.contains(5.0, options="replica_ok")
                assert ingress.get_many([1.0, 2.0],
                                        options="replica_ok") \
                    == ["v1", "v2"]
                with pytest.raises(KeyNotFoundError):
                    ingress.lookup(10**9, options=opts)
        finally:
            service.close()
