"""Property-based equivalence tests for the sharded index service.

A :class:`ShardedAlexIndex` must be observationally identical to a single
:class:`AlexIndex` over the same data — for every batch operation, every
scalar operation, and any interleaving of reads, writes, deletes, and range
queries — regardless of the shard count *and of the execution backend*.
These tests drive seeded-random scenarios across shard counts {1, 3, 8},
skewed and uniform key sets, and both the threaded scatter-gather pool and
the process backend's shared-memory workers, plus the router's
partitioning and the hot-shard rebalance policy.
"""

import threading
import zlib

import numpy as np
import pytest

from repro.core.alex import AlexIndex
from repro.core.config import ga_armi, pma_srmi
from repro.core.errors import DuplicateKeyError, KeyNotFoundError
from repro.core.kernels import available_backends
from repro.serve import ShardRouter, ShardedAlexIndex
from repro.workloads.hotspot import HotspotGenerator

SHARD_COUNTS = (1, 3, 8)

#: The equivalence grid: every shard count under the thread backend, plus
#: one mid-size process-backend case per test (worker processes are
#: expensive to spawn, so the process backend rides the representative
#: configuration while the cheap thread backend covers the count sweep).
BACKEND_CASES = [(1, "thread"), (3, "thread"), (8, "thread"),
                 (3, "process")]
BACKEND_IDS = [f"{b}-{n}shards" for n, b in BACKEND_CASES]


def _seed(parts) -> int:
    """Deterministic per-case seed (str hash() is randomized per run)."""
    return zlib.crc32(repr(parts).encode())


def skewed_keys(rng, n):
    return np.unique(rng.lognormal(0, 2, n + 200) * 1e6)[:n]


def build_pair(rng, n=4000, num_shards=3, config=None, backend="thread"):
    """A sharded service and a single index over identical data."""
    config = config or ga_armi(max_keys_per_node=256)
    keys = skewed_keys(rng, n)
    payloads = [f"p{i}" for i in range(len(keys))]
    service = ShardedAlexIndex.bulk_load(keys, payloads,
                                         num_shards=num_shards,
                                         config=config, backend=backend)
    single = AlexIndex.bulk_load(keys, payloads, config=config)
    return service, single, keys


def probe_mix(keys, rng, size):
    """Half present keys, half uniform-random (mostly absent), shuffled."""
    hits = rng.choice(keys, size - size // 2, replace=True)
    misses = rng.uniform(-1e6, keys.max() * 1.1, size // 2)
    probes = np.concatenate([hits, misses])
    rng.shuffle(probes)
    return probes


class TestShardRouter:
    def test_equal_mass_on_skewed_keys(self):
        keys = skewed_keys(np.random.default_rng(1), 20_000)
        router = ShardRouter.fit(keys, 8)
        assert router.num_shards == 8
        masses = router.mass(keys)
        assert masses.max() - masses.min() < 0.01

    def test_scalar_matches_vectorized(self):
        rng = np.random.default_rng(2)
        keys = skewed_keys(rng, 5_000)
        router = ShardRouter.fit(keys, 7)
        # Random keys, the boundaries themselves, and their neighbourhoods.
        probes = np.concatenate([
            rng.uniform(-1e6, keys.max() * 1.2, 500),
            router.boundaries,
            np.nextafter(router.boundaries, -np.inf),
            np.nextafter(router.boundaries, np.inf),
        ])
        vec = router.shard_for_many(probes)
        assert [router.shard_for(float(k)) for k in probes] == vec.tolist()

    def test_split_batch_tiles_and_agrees(self):
        rng = np.random.default_rng(3)
        keys = skewed_keys(rng, 3_000)
        router = ShardRouter.fit(keys, 5)
        batch = np.sort(probe_mix(keys, rng, 800))
        expected_lo = 0
        prev_shard = -1
        for shard, lo, hi in router.split_batch(batch):
            assert lo == expected_lo and hi > lo
            assert shard > prev_shard
            assert (router.shard_for_many(batch[lo:hi]) == shard).all()
            expected_lo, prev_shard = hi, shard
        assert expected_lo == len(batch)

    def test_key_range_and_with_boundary(self):
        router = ShardRouter([10.0, 20.0])
        assert router.key_range(0) == (-np.inf, 10.0)
        assert router.key_range(1) == (10.0, 20.0)
        assert router.key_range(2) == (20.0, np.inf)
        grown = router.with_boundary(15.0)
        assert grown.num_shards == 4
        assert grown.shard_for(15.0) == 2 and grown.shard_for(14.9) == 1
        with pytest.raises(ValueError):
            router.with_boundary(10.0)

    def test_degenerate_fits(self):
        assert ShardRouter.fit(np.empty(0), 4).num_shards == 1
        assert ShardRouter.fit(np.arange(100.0), 1).num_shards == 1
        # More shards than keys: collapses instead of creating empty cuts.
        tiny = ShardRouter.fit(np.array([1.0, 2.0]), 8)
        assert tiny.num_shards <= 3


@pytest.mark.parametrize("num_shards,backend", BACKEND_CASES,
                         ids=BACKEND_IDS)
class TestBatchEquivalence:
    """Also runs once per available kernel backend: the autouse fixture
    sets the process-default ``kernel_backend``, which ``build_pair``'s
    configs inherit (and the process backend's workers receive through
    the serialized config), so sharded-vs-single equivalence holds under
    the compiled kernels too."""

    @pytest.fixture(params=available_backends(), autouse=True,
                    ids=lambda name: f"kernels-{name}")
    def _kernel_backend(self, request, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", request.param)

    def test_batch_reads_match_single_index(self, num_shards, backend):
        rng = np.random.default_rng(_seed(("reads", num_shards)))
        service, single, keys = build_pair(rng, num_shards=num_shards,
                                           backend=backend)
        probes = probe_mix(keys, rng, 900)

        assert service.get_many(probes, "MISS") == single.get_many(probes,
                                                                   "MISS")
        assert (service.contains_many(probes).tolist()
                == single.contains_many(probes).tolist())
        hits = rng.choice(keys, 700, replace=True)
        assert service.lookup_many(hits) == single.lookup_many(hits)
        service.close()

    def test_lookup_many_raises_on_any_miss(self, num_shards, backend):
        rng = np.random.default_rng(_seed(("miss", num_shards)))
        service, _, keys = build_pair(rng, num_shards=num_shards,
                                      backend=backend)
        probes = rng.choice(keys, 50, replace=True)
        probes[17] = -4321.0  # guaranteed absent
        with pytest.raises(KeyNotFoundError):
            service.lookup_many(probes)
        service.close()

    def test_insert_many_matches_single_index(self, num_shards, backend):
        rng = np.random.default_rng(_seed(("ins", num_shards)))
        service, single, keys = build_pair(rng, num_shards=num_shards,
                                           backend=backend)
        new = np.setdiff1d(np.unique(rng.uniform(0, keys.max() * 1.2, 1500)),
                           keys)[:1000]
        rng.shuffle(new)
        payloads = [f"n{i}" for i in range(len(new))]
        service.insert_many(new, payloads)
        single.insert_many(new, payloads)
        assert len(service) == len(single)
        assert list(service.items()) == list(single.items())
        service.validate()
        service.close()

    def test_insert_many_all_or_nothing(self, num_shards, backend):
        rng = np.random.default_rng(_seed(("atomic", num_shards)))
        service, _, keys = build_pair(rng, num_shards=num_shards,
                                      backend=backend)
        before = list(service.items())
        fresh = np.setdiff1d(np.unique(rng.uniform(0, keys.max(), 400)),
                             keys)[:200]
        # One existing key poisons the whole batch, scattered shards or not.
        batch = np.concatenate([fresh, keys[len(keys) // 2:len(keys) // 2 + 1]])
        rng.shuffle(batch)
        with pytest.raises(DuplicateKeyError):
            service.insert_many(batch)
        assert list(service.items()) == before
        with pytest.raises(DuplicateKeyError):  # in-batch duplicate
            service.insert_many(np.array([fresh[0], fresh[1], fresh[0]]))
        assert list(service.items()) == before
        service.close()

    def test_range_queries_match_single_index(self, num_shards, backend):
        rng = np.random.default_rng(_seed(("range", num_shards)))
        service, single, keys = build_pair(rng, num_shards=num_shards,
                                           backend=backend)
        los = rng.uniform(keys.min(), keys.max(), 80)
        his = los + rng.uniform(0, (keys.max() - keys.min()) / 3, 80)
        his[::11] = los[::11] - 1.0  # inverted bounds yield empty results
        assert service.range_query_many(los, his) == \
            single.range_query_many(los, his)
        for lo, hi in zip(los[:10], his[:10]):
            assert service.range_query(lo, hi) == single.range_query(lo, hi)
        for start in rng.choice(keys, 8, replace=False):
            assert (service.range_scan(float(start), 150)
                    == single.range_scan(float(start), 150))
        service.close()

    def test_empty_batches(self, num_shards, backend):
        rng = np.random.default_rng(_seed(("empty", num_shards)))
        service, _, _ = build_pair(rng, n=500, num_shards=num_shards,
                                   backend=backend)
        assert service.lookup_many(np.empty(0)) == []
        assert service.get_many([]) == []
        assert service.contains_many([]).tolist() == []
        assert service.range_query_many([], []) == []
        service.insert_many(np.empty(0))  # no-op
        service.close()


class TestRandomInterleavings:
    """Sharded vs single under a random mixed op stream, op for op."""

    @pytest.mark.parametrize("num_shards,backend", BACKEND_CASES,
                             ids=BACKEND_IDS)
    @pytest.mark.parametrize("config_name,config", [
        ("ga-armi", lambda: ga_armi(max_keys_per_node=128,
                                    split_on_inserts=True)),
        ("pma-srmi", lambda: pma_srmi(num_models=16)),
    ], ids=["ga-armi", "pma-srmi"])
    def test_mixed_stream_equivalence(self, num_shards, backend,
                                      config_name, config):
        if backend == "process" and config_name != "ga-armi":
            pytest.skip("one process-backend interleaving case is enough")
        rng = np.random.default_rng(_seed((config_name, num_shards)))
        service, single, keys = build_pair(rng, n=1200,
                                           num_shards=num_shards,
                                           config=config(),
                                           backend=backend)
        live = list(keys)
        fresh = iter(np.setdiff1d(
            np.unique(rng.uniform(0, keys.max() * 1.3, 2000)),
            keys).tolist())
        for step in range(400):
            op = rng.integers(0, 8)
            if op == 0:  # insert
                key = next(fresh)
                service.insert(key, f"i{step}")
                single.insert(key, f"i{step}")
                live.append(key)
            elif op == 1 and live:  # delete
                key = live.pop(int(rng.integers(len(live))))
                service.delete(key)
                single.delete(key)
            elif op == 2 and live:  # update
                key = live[int(rng.integers(len(live)))]
                service.update(key, f"u{step}")
                single.update(key, f"u{step}")
            elif op == 3:  # upsert (sometimes new, sometimes live)
                if rng.random() < 0.5 and live:
                    key = live[int(rng.integers(len(live)))]
                else:
                    key = next(fresh)
                    live.append(key)
                service.upsert(key, f"s{step}")
                single.upsert(key, f"s{step}")
            elif op == 4:  # point reads (hit or miss)
                key = (live[int(rng.integers(len(live)))]
                       if rng.random() < 0.7 and live
                       else float(rng.uniform(0, keys.max())))
                assert service.get(key, "MISS") == single.get(key, "MISS")
                assert service.contains(key) == single.contains(key)
            elif op == 5 and live:  # range query
                lo = live[int(rng.integers(len(live)))]
                assert (service.range_query(lo, lo * 1.2)
                        == single.range_query(lo, lo * 1.2))
            elif op == 6 and live:  # range scan
                start = live[int(rng.integers(len(live)))]
                assert (service.range_scan(start, 40)
                        == single.range_scan(start, 40))
            else:  # small batch read
                probes = rng.uniform(0, keys.max() * 1.2, 25)
                assert (service.get_many(probes, None)
                        == single.get_many(probes, None))
        assert len(service) == len(single)
        assert list(service.items()) == list(single.items())
        service.validate()
        service.close()

    def test_shard_count_invariance(self):
        """The same op stream produces bit-identical observations at every
        shard count and on either execution backend."""
        cases = [(n, "thread") for n in SHARD_COUNTS] + [(3, "process")]
        observations = {}
        for case in cases:
            num_shards, backend = case
            rng = np.random.default_rng(99)
            service, _, keys = build_pair(rng, n=1500,
                                          num_shards=num_shards,
                                          backend=backend)
            trace = []
            new = np.setdiff1d(np.unique(rng.uniform(0, keys.max(), 900)),
                               keys)[:500]
            service.insert_many(new)
            trace.append(service.get_many(probe_mix(keys, rng, 300), "-"))
            trace.append(service.contains_many(
                probe_mix(keys, rng, 300)).tolist())
            los = rng.uniform(keys.min(), keys.max(), 30)
            trace.append(service.range_query_many(los, los * 1.1))
            trace.append(list(service.items()))
            observations[case] = trace
            service.close()
        baseline = observations[cases[0]]
        for case in cases[1:]:
            assert observations[case] == baseline


@pytest.mark.parametrize("backend", ["thread", "process"])
class TestBatchDeletes:
    def test_delete_many_matches_single_index(self, backend):
        rng = np.random.default_rng(21)
        service, single, keys = build_pair(rng, backend=backend)
        victims = rng.permutation(keys)[:1500]
        service.delete_many(victims)
        single.delete_many(victims)
        assert list(service.items()) == list(single.items())
        assert len(service) == len(single) == len(keys) - 1500
        service.validate()
        service.close()

    def test_delete_many_all_or_nothing_across_shards(self, backend):
        rng = np.random.default_rng(22)
        service, _, keys = build_pair(rng, backend=backend)
        bogus = np.append(rng.permutation(keys)[:50], [-1.0])
        with pytest.raises(KeyNotFoundError):
            service.delete_many(bogus)
        assert len(service) == len(keys)  # no shard mutated
        service.close()

    def test_erase_many_returns_removed_count(self, backend):
        rng = np.random.default_rng(23)
        service, _, keys = build_pair(rng, backend=backend)
        victims = rng.permutation(keys)[:200]
        removed = service.erase_many(np.append(victims, [-1.0, -2.0]))
        assert removed == 200
        assert len(service) == len(keys) - 200
        assert service.erase_many(victims) == 0  # already gone
        service.close()


class TestRebalance:
    def _hot_service(self, rng, num_shards=4):
        service, _, keys = build_pair(rng, n=4000, num_shards=num_shards)
        sorted_keys = np.sort(keys)
        hotspot = HotspotGenerator(len(keys), hot_fraction=0.15,
                                   hot_access_fraction=0.9, seed=5)
        for _ in range(10):
            service.lookup_many(sorted_keys[hotspot.sample(400)])
        return service, keys

    def test_hotspot_traffic_concentrates_and_splits(self):
        service, keys = self._hot_service(np.random.default_rng(41))
        before_items = list(service.items())
        before_accesses = sum(stats.accesses for stats in service.stats)
        hot, fraction = service.hottest_shard()
        assert fraction > 0.5  # 90% of accesses hit 15% of the key space
        hot_accesses = service.stats[hot].accesses
        split = service.rebalance(hot_access_fraction=0.5, min_accesses=1000)
        assert split == hot
        assert service.num_shards == 5
        assert list(service.items()) == before_items
        # The observation window decays instead of being wiped (or carried
        # raw): the victim's tallies divide between its halves, then every
        # shard's window shrinks by the decay factor.
        after_accesses = sum(stats.accesses for stats in service.stats)
        assert 0 < after_accesses <= before_accesses // 2 + len(service.stats)
        halves = (service.stats[hot].accesses
                  + service.stats[hot + 1].accesses)
        assert abs(halves - hot_accesses // 2) <= 2
        service.validate()

    def test_split_divides_stats_between_halves(self):
        service, keys = self._hot_service(np.random.default_rng(44))
        hot, _ = service.hottest_shard()
        tallies = service.stats[hot]
        reads, accesses = tallies.reads, tallies.accesses
        others = [s.accesses for i, s in enumerate(service.stats)
                  if i != hot]
        assert service.split_shard(hot)
        left, right = service.stats[hot], service.stats[hot + 1]
        assert left.reads + right.reads == reads
        assert left.accesses + right.accesses == accesses
        # A direct split_shard renormalizes nothing else: the other
        # windows are untouched and the fleet-wide total is preserved.
        assert [s.accesses for i, s in enumerate(service.stats)
                if i not in (hot, hot + 1)] == others

    def test_merge_shards_is_split_inverse(self):
        service, keys = self._hot_service(np.random.default_rng(45))
        before_items = list(service.items())
        total_accesses = sum(stats.accesses for stats in service.stats)
        service.merge_shards(1)
        assert service.num_shards == 3
        assert list(service.items()) == before_items
        assert sum(stats.accesses for stats in service.stats) == total_accesses
        service.validate()
        with pytest.raises(IndexError):
            service.merge_shards(service.num_shards - 1)

    def test_rebalance_noop_below_thresholds(self):
        service, keys = self._hot_service(np.random.default_rng(42))
        assert service.rebalance(min_accesses=10 ** 9) is None
        assert service.rebalance(hot_access_fraction=1.01) is None
        assert service.num_shards == 4

    def test_split_shard_too_small(self):
        service = ShardedAlexIndex.bulk_load(np.array([5.0]), num_shards=1)
        assert not service.split_shard(0)
        with pytest.raises(IndexError):
            service.split_shard(3)

    def test_shard_stats_shape(self):
        service, keys = self._hot_service(np.random.default_rng(43))
        rows = service.shard_stats()
        assert [row["shard"] for row in rows] == list(range(4))
        assert sum(row["num_keys"] for row in rows) == len(service)
        assert sum(row["reads"] for row in rows) == 4000
        assert rows[0]["key_lo"] == -np.inf
        assert rows[-1]["key_hi"] == np.inf


class TestConcurrency:
    def test_parallel_writers_and_readers(self):
        rng = np.random.default_rng(77)
        keys = np.unique(rng.uniform(0, 1e9, 6000))[:5000]
        service = ShardedAlexIndex.bulk_load(keys, num_shards=4,
                                             config=ga_armi(),
                                             max_workers=4)
        lanes = np.setdiff1d(np.unique(rng.uniform(0, 1e9, 5000)),
                             keys)[:3200].reshape(4, 800)
        errors = []

        def writer(lane):
            try:
                for chunk in np.split(lanes[lane], 8):
                    service.insert_many(chunk)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def reader():
            try:
                for _ in range(20):
                    probes = rng.choice(keys, 200)
                    assert all(p is None
                               for p in service.get_many(probes, None))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = ([threading.Thread(target=writer, args=(lane,))
                    for lane in range(4)]
                   + [threading.Thread(target=reader) for _ in range(2)])
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        service.close()
        assert not errors
        assert len(service) == 5000 + 3200
        expected = np.sort(np.concatenate([keys, lanes.ravel()]))
        assert np.array_equal(np.fromiter(service.keys(), dtype=np.float64),
                              expected)
        service.validate()


class TestWorkloadIntegration:
    def test_run_workload_on_sharded_index(self):
        from repro.workloads import READ_HEAVY
        from repro.workloads.runner import run_workload

        rng = np.random.default_rng(4242)
        keys = np.unique(rng.uniform(0, 1e8, 3000))
        init, inserts = keys[:2500], keys[2500:]

        tallies = {}
        for num_shards, backend in ((1, "thread"), (4, "thread"),
                                    (4, "process")):
            service = ShardedAlexIndex.bulk_load(
                init, num_shards=num_shards, config=ga_armi(),
                backend=backend)
            result = run_workload(service, init.copy(), inserts.copy(),
                                  READ_HEAVY, 900, seed=3,
                                  read_batch=32, write_batch=32)
            service.validate()
            service.close()
            tallies[num_shards, backend] = result
        base = tallies[1, "thread"]
        for other in ((4, "thread"), (4, "process")):
            assert tallies[other].ops == base.ops
            assert tallies[other].reads == base.reads
            assert tallies[other].inserts == base.inserts
            assert tallies[other].scanned_records == base.scanned_records


class TestProcessBackend:
    """Process-backend specifics: worker lifecycle, shard SMO
    re-provisioning, counter continuity, and parent-side concurrency."""

    def test_rebalance_splits_and_reprovisions_workers(self):
        rng = np.random.default_rng(51)
        service, _, keys = build_pair(rng, n=2500, num_shards=3,
                                      backend="process")
        with service:
            sorted_keys = np.sort(keys)
            hotspot = HotspotGenerator(len(keys), hot_fraction=0.15,
                                       hot_access_fraction=0.9, seed=5)
            for _ in range(8):
                service.lookup_many(sorted_keys[hotspot.sample(400)])
            before_items = list(service.items())
            hot, fraction = service.hottest_shard()
            assert fraction > 0.5
            split = service.rebalance(hot_access_fraction=0.5,
                                      min_accesses=1000)
            assert split == hot
            assert service.num_shards == 4
            assert list(service.items()) == before_items
            service.validate()
            # The inverse SMO re-provisions again and restores the layout.
            service.merge_shards(split)
            assert service.num_shards == 3
            assert list(service.items()) == before_items
            service.validate()

    def test_counters_survive_reprovisioning(self):
        rng = np.random.default_rng(52)
        service, _, keys = build_pair(rng, n=1500, num_shards=2,
                                      backend="process")
        with service:
            service.lookup_many(rng.choice(keys, 300, replace=True))
            before = service.counters
            assert before.lookups == 300
            assert service.split_shard(0)
            # A diff spanning the SMO must never go negative: the victim's
            # history moved into its left half.
            after = service.counters
            delta = after.diff(before)
            assert delta.lookups == 0
            assert after.lookups == 300

    def test_worker_exceptions_carry_key(self):
        rng = np.random.default_rng(53)
        service, _, keys = build_pair(rng, n=800, num_shards=2,
                                      backend="process")
        with service:
            with pytest.raises(KeyNotFoundError) as info:
                service.lookup(-123.5)
            assert info.value.key == -123.5
            dup = float(keys[10])
            with pytest.raises(DuplicateKeyError) as info:
                service.insert(dup, "again")
            assert info.value.key == dup

    def test_configured_policy_reaches_workers(self):
        from repro.core.policy import CostModelPolicy
        rng = np.random.default_rng(57)
        policy = CostModelPolicy(drift_factor=4.5, cold_factor=0.8)
        keys = skewed_keys(rng, 600)
        service = ShardedAlexIndex.bulk_load(
            keys, num_shards=2, config=ga_armi(max_keys_per_node=256),
            policy=policy, backend="process")
        with service:
            # The worker's policy copy must carry the facade's knobs, not
            # class defaults (the parent-side template is pickled whole).
            remote = service.backend.call(
                0, "policy_config")
            assert remote == {"type": "CostModelPolicy",
                              "drift_factor": 4.5, "cold_factor": 0.8}

    def test_unpicklable_payload_keeps_service_consistent(self):
        rng = np.random.default_rng(58)
        service, _, keys = build_pair(rng, n=800, num_shards=2,
                                      backend="process")
        with service:
            before = len(service)
            fresh = np.setdiff1d(
                np.unique(rng.uniform(0, keys.max(), 50)), keys)[:4]
            # A payload that cannot cross the process boundary must fail
            # the whole batch up front: no shard applies, and the RPC
            # protocol stays in sync for every later operation.
            with pytest.raises(Exception):
                service.insert_many(fresh, ["ok", "ok", lambda: None, "ok"])
            assert len(service) == before  # all-or-nothing held
            assert service.contains_many(fresh).tolist() == [False] * 4
            service.validate()

    def test_shards_property_unavailable(self):
        rng = np.random.default_rng(54)
        service, _, _ = build_pair(rng, n=600, num_shards=2,
                                   backend="process")
        with service:
            with pytest.raises(NotImplementedError):
                service.shards
            assert service.backend.name == "process"

    def test_close_is_idempotent_and_workers_exit(self):
        rng = np.random.default_rng(55)
        service, _, keys = build_pair(rng, n=600, num_shards=2,
                                      backend="process")
        workers = [w.process for w in service.backend._workers]
        assert all(p.is_alive() for p in workers)
        service.close()
        service.close()
        assert all(not p.is_alive() for p in workers)

    def test_parallel_writers_and_readers_through_pipes(self):
        rng = np.random.default_rng(56)
        keys = np.unique(rng.uniform(0, 1e9, 3500))[:3000]
        service = ShardedAlexIndex.bulk_load(keys, num_shards=3,
                                             config=ga_armi(),
                                             backend="process")
        lanes = np.setdiff1d(np.unique(rng.uniform(0, 1e9, 3000)),
                             keys)[:1200].reshape(3, 400)
        errors = []

        def writer(lane):
            try:
                for chunk in np.split(lanes[lane], 4):
                    service.insert_many(chunk)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def reader():
            try:
                for _ in range(10):
                    probes = rng.choice(keys, 150)
                    assert all(p is None
                               for p in service.get_many(probes, None))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = ([threading.Thread(target=writer, args=(lane,))
                    for lane in range(3)]
                   + [threading.Thread(target=reader) for _ in range(2)])
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(service) == 3000 + 1200
        expected = np.sort(np.concatenate([keys, lanes.ravel()]))
        assert np.array_equal(np.fromiter(service.keys(), dtype=np.float64),
                              expected)
        service.validate()
        service.close()
