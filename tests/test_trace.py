"""Tests for workload trace record/replay."""

import numpy as np
import pytest

from repro.baselines.bptree import BPlusTree
from repro.core.alex import AlexIndex
from repro.workloads import READ_HEAVY, WRITE_HEAVY
from repro.workloads.trace import (
    OP_LOOKUP,
    Trace,
    TraceRecorder,
    record_workload,
    replay,
)


@pytest.fixture
def keys():
    keys = np.unique(np.random.default_rng(81).uniform(0, 1e6, 2000))
    return keys[:1500], keys[1500:]


class TestTraceRecorder:
    def test_records_all_op_types(self):
        recorder = TraceRecorder()
        recorder.lookup(1.0)
        recorder.insert(2.0)
        recorder.scan(3.0, 10)
        recorder.delete(4.0)
        trace = recorder.finish()
        assert len(trace) == 4
        assert trace.summary() == {"lookup": 1, "insert": 1, "scan": 1,
                                   "delete": 1}

    def test_empty_trace(self):
        trace = TraceRecorder().finish()
        assert len(trace) == 0
        assert list(trace) == []


class TestRecordWorkload:
    def test_respects_spec_mix(self, keys):
        init, inserts = keys
        trace = record_workload(init, inserts, READ_HEAVY, 400, seed=1)
        summary = trace.summary()
        assert summary["lookup"] == 380
        assert summary["insert"] == 20

    def test_deterministic_per_seed(self, keys):
        init, inserts = keys
        a = record_workload(init, inserts, WRITE_HEAVY, 200, seed=2)
        b = record_workload(init, inserts, WRITE_HEAVY, 200, seed=2)
        assert np.array_equal(a.keys, b.keys)
        assert np.array_equal(a.ops, b.ops)


class TestReplay:
    def test_replay_against_alex(self, keys):
        init, inserts = keys
        trace = record_workload(init, inserts, WRITE_HEAVY, 300, seed=3)
        index = AlexIndex.bulk_load(init)
        result = replay(trace, index)
        assert result.ops == 300
        assert result.lookup_misses == 0
        assert len(index) == len(init) + trace.summary()["insert"]
        index.validate()

    def test_same_trace_comparable_across_systems(self, keys):
        init, inserts = keys
        trace = record_workload(init, inserts, READ_HEAVY, 400, seed=4)
        alex = AlexIndex.bulk_load(init)
        bptree = BPlusTree.bulk_load(init)
        result_a = replay(trace, alex)
        result_b = replay(trace, bptree)
        assert result_a.ops == result_b.ops
        # Identical logical work; different physical work.
        assert result_a.work.lookups == result_b.work.lookups

    def test_lookup_misses_tolerated(self):
        trace = Trace(ops=np.array([OP_LOOKUP], dtype=np.int8),
                      keys=np.array([123.0]),
                      args=np.array([0], dtype=np.int32))
        index = AlexIndex.bulk_load([1.0, 2.0])
        result = replay(trace, index)
        assert result.lookup_misses == 1

    def test_scan_ops_replayed(self, keys):
        init, _ = keys
        recorder = TraceRecorder()
        recorder.scan(float(np.sort(init)[0]), 25)
        index = AlexIndex.bulk_load(init)
        result = replay(recorder.finish(), index)
        assert result.work.scans == 1


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path, keys):
        init, inserts = keys
        trace = record_workload(init, inserts, WRITE_HEAVY, 250, seed=5)
        path = str(tmp_path / "trace.npz")
        trace.save(path)
        loaded = Trace.load(path)
        assert np.array_equal(loaded.ops, trace.ops)
        assert np.array_equal(loaded.keys, trace.keys)
        assert np.array_equal(loaded.args, trace.args)
        assert np.array_equal(loaded.init_keys, trace.init_keys)

    def test_replay_of_loaded_trace(self, tmp_path, keys):
        init, inserts = keys
        trace = record_workload(init, inserts, WRITE_HEAVY, 100, seed=6)
        path = str(tmp_path / "trace.npz")
        trace.save(path)
        index = AlexIndex.bulk_load(init)
        result = replay(Trace.load(path), index)
        assert result.ops == 100
