"""Tests for the Cursor API."""

import numpy as np
import pytest

from repro.core.alex import AlexIndex
from repro.core.config import ga_armi, pma_armi
from repro.core.cursor import Cursor, CursorInvalidatedError
from repro.core.errors import IndexError_


@pytest.fixture(params=[ga_armi, pma_armi], ids=["ga", "pma"])
def index_and_keys(request):
    keys = np.unique(np.random.default_rng(71).uniform(0, 1e5, 1500))
    index = AlexIndex.bulk_load(
        keys, [f"p{i}" for i in range(len(keys))],
        config=request.param(max_keys_per_node=256))
    return index, np.sort(keys)


class TestForwardIteration:
    def test_full_scan_in_order(self, index_and_keys):
        index, keys = index_and_keys
        cursor = Cursor(index)
        got = [k for k, _ in cursor]
        assert got == keys.tolist()

    def test_seek_positions_at_lower_bound(self, index_and_keys):
        index, keys = index_and_keys
        cursor = Cursor(index, start_key=float(keys[500]))
        assert cursor.key() == float(keys[500])
        cursor.seek(float(keys[500]) + 1e-9)
        assert cursor.key() == float(keys[501])

    def test_take(self, index_and_keys):
        index, keys = index_and_keys
        cursor = Cursor(index, start_key=float(keys[10]))
        out = cursor.take(5)
        assert [k for k, _ in out] == keys[10:15].tolist()
        assert cursor.key() == float(keys[15])

    def test_exhaustion(self, index_and_keys):
        index, keys = index_and_keys
        cursor = Cursor(index, start_key=float(keys[-1]))
        assert cursor.valid()
        assert not cursor.next()
        assert not cursor.valid()
        with pytest.raises(IndexError_):
            cursor.current()


class TestBackwardIteration:
    def test_seek_last_then_prev(self, index_and_keys):
        index, keys = index_and_keys
        cursor = Cursor(index)
        cursor.seek_last()
        assert cursor.key() == float(keys[-1])
        cursor.prev()
        assert cursor.key() == float(keys[-2])

    def test_walk_backwards_across_leaves(self, index_and_keys):
        index, keys = index_and_keys
        cursor = Cursor(index)
        cursor.seek_last()
        got = []
        while cursor.valid():
            got.append(cursor.key())
            cursor.prev()
        assert got == keys[::-1].tolist()

    def test_prev_past_begin_invalidates(self, index_and_keys):
        index, keys = index_and_keys
        cursor = Cursor(index, start_key=float(keys[0]))
        assert not cursor.prev()
        assert not cursor.valid()


class TestPayloadAccess:
    def test_payload_matches_key(self, index_and_keys):
        index, keys = index_and_keys
        cursor = Cursor(index, start_key=float(keys[7]))
        key, payload = cursor.current()
        assert index.lookup(key) == payload
        assert cursor.payload() == payload


class TestInvalidation:
    def test_mutation_invalidates(self, index_and_keys):
        index, keys = index_and_keys
        cursor = Cursor(index)
        index.insert(-1.0)
        with pytest.raises(CursorInvalidatedError):
            cursor.next()
        with pytest.raises(CursorInvalidatedError):
            cursor.current()

    def test_refresh_rearms(self, index_and_keys):
        index, keys = index_and_keys
        cursor = Cursor(index, start_key=float(keys[100]))
        index.insert(-1.0)
        cursor.refresh()
        assert cursor.key() == float(keys[100])
        assert cursor.next()

    def test_delete_invalidates_then_refresh(self, index_and_keys):
        index, keys = index_and_keys
        cursor = Cursor(index, start_key=float(keys[5]))
        index.delete(float(keys[5]))
        with pytest.raises(CursorInvalidatedError):
            cursor.next()
        cursor.refresh()
        assert cursor.valid()


class TestEmptyIndex:
    def test_cursor_on_empty_index(self):
        index = AlexIndex()
        cursor = Cursor(index)
        assert not cursor.valid()
        assert list(cursor) == []
