"""Tests for the coalescing async serving front door.

Correctness of the coalesced read API against a real sharded service
(both backends), the miss-sentinel's cross-process identity, admission
control under both overload policies (against a controllable fake
service), lifecycle draining, and the synchronous ``IngressRunner``
mirrors — plus the obs surface ``repro top`` renders.
"""

import pickle
import time
import zlib

import numpy as np
import pytest

from repro import obs
from repro.core.config import ga_armi
from repro.core.errors import KeyNotFoundError
from repro.serve import (MISSING, AsyncIngress, IngressRunner,
                         ServiceOverloadedError, ShardedAlexIndex)
from repro.serve.ingress import _MissingType


def _seed(parts) -> int:
    return zlib.crc32(repr(parts).encode())


def _build(backend="thread", n=1500, num_shards=2):
    rng = np.random.default_rng(_seed(("ingress", backend, n)))
    keys = np.unique(rng.lognormal(0, 2, n + 200) * 1e6)[:n]
    payloads = [float(k) * 2.0 for k in keys]
    service = ShardedAlexIndex.bulk_load(
        keys, payloads, num_shards=num_shards,
        config=ga_armi(max_keys_per_node=256), backend=backend)
    return service, keys, dict(zip(keys.tolist(), payloads))


class FakeService:
    """A stand-in downstream with a controllable service time, for
    admission-control tests that must not depend on index speed."""

    def __init__(self, delay: float = 0.0):
        self.delay = delay
        self.batches = []

    def get_many(self, keys, default=None, *, options=None):
        time.sleep(self.delay)
        self.batches.append(np.asarray(keys))
        return [float(k) * 2.0 for k in keys]

    def contains_many(self, keys, *, options=None):
        time.sleep(self.delay)
        self.batches.append(np.asarray(keys))
        return np.ones(len(keys), dtype=bool)

    def insert_many(self, keys, payloads=None):
        time.sleep(self.delay)
        self.batches.append(np.asarray(keys))


@pytest.fixture
def obs_on():
    was = obs.enabled()
    obs.set_enabled(True)
    yield
    obs.set_enabled(was)


class TestCoalescedReads:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_concurrent_requests_coalesce_and_stay_correct(
            self, backend, obs_on):
        """A burst of concurrent scalar and batch reads through the
        runner returns exactly the facade's answers, and the lane
        actually coalesced them (fewer facade batches than requests)."""
        service, keys, expected = _build(backend)
        before = dict(obs.snapshot().get("counters", {}))
        with IngressRunner(service, window_s=0.02) as runner:
            rng = np.random.default_rng(_seed(("burst", backend)))
            probe = rng.choice(keys, size=48)
            futures = [runner.asubmit(runner.ingress.get(float(k)))
                       for k in probe]
            futures.append(runner.asubmit(
                runner.ingress.get_many(keys[:100])))
            futures.append(runner.asubmit(
                runner.ingress.contains_many(probe)))
            results = [f.result(timeout=30) for f in futures]
        service.close()

        scalars, batch, membership = \
            results[:-2], results[-2], results[-1]
        assert scalars == [expected[float(k)] for k in probe]
        assert batch == [expected[float(k)] for k in keys[:100]]
        assert membership == [True] * len(probe)
        after = dict(obs.snapshot().get("counters", {}))
        batches = after.get("ingress.batches", 0) \
            - before.get("ingress.batches", 0)
        assert 1 <= batches < len(futures)

    def test_miss_semantics(self):
        """``get`` substitutes per-request defaults, ``lookup`` raises,
        ``contains`` answers honestly — all through one coalesced lane
        (the facade call itself uses the MISSING sentinel)."""
        service, keys, expected = _build()
        absent = float(keys.max()) + 12345.0
        with IngressRunner(service, window_s=0.01) as runner:
            hit, miss_none, miss_dflt, strict, there, not_there = [
                f.result(timeout=30) for f in [
                    runner.asubmit(runner.ingress.get(float(keys[0]))),
                    runner.asubmit(runner.ingress.get(absent)),
                    runner.asubmit(runner.ingress.get(absent,
                                                      default="fallback")),
                    runner.asubmit(runner.ingress.lookup(float(keys[1]))),
                    runner.asubmit(runner.ingress.contains(float(keys[2]))),
                    runner.asubmit(runner.ingress.contains(absent)),
                ]]
            assert hit == expected[float(keys[0])]
            assert miss_none is None
            assert miss_dflt == "fallback"
            assert strict == expected[float(keys[1])]
            assert there is True and not_there is False
            with pytest.raises(KeyNotFoundError):
                runner.lookup(absent)
            with pytest.raises(KeyNotFoundError):
                runner.lookup_many([float(keys[0]), absent])
        service.close()

    def test_writes_pass_through(self):
        """Writes ride the admission budget but are never coalesced with
        other requests; they land on the service and are then readable
        through the coalesced lanes."""
        service, keys, expected = _build()
        hi = float(keys.max())
        fresh = hi + 1.0 + np.arange(16, dtype=np.float64)
        with IngressRunner(service, window_s=0.005) as runner:
            runner.insert_many(fresh, [float(k) for k in fresh])
            runner.insert(hi + 500.0, "scalar")
            assert runner.get_many(fresh) == [float(k) for k in fresh]
            assert runner.get(hi + 500.0) == "scalar"
            assert runner.erase_many(fresh) == len(fresh)
            assert runner.contains_many(fresh) == [False] * len(fresh)
        service.close()

    def test_missing_sentinel_pickles_to_the_singleton(self):
        """The miss sentinel crosses process boundaries (worker replies)
        by identity, so ``value is MISSING`` works on both sides."""
        assert pickle.loads(pickle.dumps(MISSING)) is MISSING
        assert pickle.loads(pickle.dumps([MISSING, 1.0]))[0] is MISSING
        assert isinstance(MISSING, _MissingType)


class TestAdmissionControl:
    def test_shed_policy_fails_fast(self, obs_on):
        """Arrivals beyond ``max_queue`` shed with
        :class:`ServiceOverloadedError` while admitted work completes."""
        fake = FakeService(delay=0.2)
        before = dict(obs.snapshot().get("counters", {}))
        with IngressRunner(fake, window_s=0.0, max_queue=8,
                           overload="shed") as runner:
            admitted = runner.asubmit(
                runner.ingress.get_many(np.arange(8.0)))
            time.sleep(0.05)  # let the first request admit and flush
            with pytest.raises(ServiceOverloadedError):
                runner.get_many(np.arange(4.0))
            assert admitted.result(timeout=30) == \
                [float(k) * 2.0 for k in range(8)]
        after = dict(obs.snapshot().get("counters", {}))
        assert after.get("ingress.shed", 0) > before.get("ingress.shed", 0)

    def test_block_policy_waits_for_a_slot(self):
        """Under ``overload="block"`` an over-cap arrival parks on the
        admission gate and completes once in-flight work drains."""
        fake = FakeService(delay=0.25)
        with IngressRunner(fake, window_s=0.0, max_queue=8,
                           overload="block") as runner:
            first = runner.asubmit(
                runner.ingress.get_many(np.arange(8.0)))
            time.sleep(0.05)
            start = time.monotonic()
            second = runner.asubmit(
                runner.ingress.get_many(100.0 + np.arange(4.0)))
            result = second.result(timeout=30)
            blocked_for = time.monotonic() - start
            assert result == [(100.0 + k) * 2.0 for k in range(4)]
            assert blocked_for >= 0.1  # waited out the in-flight batch
            first.result(timeout=30)
            assert runner.ingress.outstanding == 0
        # The two batches were never entangled by the gate.
        assert [len(b) for b in fake.batches] == [8, 4]

    def test_oversized_request_sheds_even_when_idle(self):
        fake = FakeService()
        with IngressRunner(fake, window_s=0.0, max_queue=4,
                           overload="shed") as runner:
            with pytest.raises(ServiceOverloadedError):
                runner.get_many(np.arange(5.0))


class TestLifecycle:
    def test_aclose_drains_and_rejects_new_work(self):
        """``aclose`` flushes parked lanes, waits for in-flight keys,
        then refuses admissions."""
        import asyncio

        fake = FakeService(delay=0.05)

        async def scenario():
            ingress = AsyncIngress(fake, window_s=5.0)  # window never fires
            parked = asyncio.ensure_future(ingress.get(1.0))
            await asyncio.sleep(0.02)
            await ingress.aclose()  # must flush the parked request
            assert await parked == 2.0
            assert ingress.outstanding == 0
            with pytest.raises(RuntimeError, match="closed"):
                await ingress.get(2.0)

        asyncio.run(scenario())

    def test_runner_close_is_idempotent(self):
        fake = FakeService()
        runner = IngressRunner(fake, window_s=0.0)
        assert runner.get(3.0) == 6.0
        runner.close()
        runner.close()

    def test_runner_rejects_unknown_attributes(self):
        fake = FakeService()
        with IngressRunner(fake) as runner:
            with pytest.raises(AttributeError):
                runner.not_a_method
            with pytest.raises(AttributeError):
                runner.outstanding  # property, not a coroutine method

    def test_one_ingress_per_loop(self):
        import asyncio

        fake = FakeService()
        ingress = AsyncIngress(fake, window_s=0.0)

        async def first():
            await ingress.get(1.0)

        async def second():
            with pytest.raises(RuntimeError, match="another event loop"):
                await ingress.get(2.0)

        asyncio.run(first())
        asyncio.run(second())


class TestObservability:
    def test_front_door_metrics_surface(self, obs_on):
        """The histograms and gauges the dashboard's front-door panel
        reads all exist after traffic, and the in-flight gauge settles
        back to zero."""
        service, keys, _ = _build(n=800)
        with IngressRunner(service, window_s=0.005) as runner:
            for _ in range(3):
                runner.get_many(keys[:64])
        service.close()
        snap = obs.snapshot()
        for name in ("ingress.coalesce_wait", "ingress.rpc",
                     "ingress.request", "ingress.batch_size"):
            assert snap["histograms"].get(name, {}).get("count", 0) > 0, name
        assert snap["counters"].get("ingress.requests", 0) >= 3 * 64
        assert snap["counters"].get("ingress.batches", 0) >= 3
        assert snap["gauges"].get("ingress.in_flight") == 0
