"""Sharded-service durability: recovery equivalence under fault
injection on both execution backends, worker kill + respawn, and
transactional topology rewrites across shard split/merge."""

import os
import signal
import time

import numpy as np
import pytest

from repro.core.errors import PersistenceError
from repro.durability import ShardedDurability
from repro.serve import ShardedAlexIndex
from repro.workloads import run_crash_recovery_scenario

BACKENDS = ["thread", "process"]


def make_service(tmp_path, backend, num_shards=3, n=4000, seed=0,
                 **kwargs):
    keys = np.unique(np.random.default_rng(seed).uniform(0, 1e6, n))
    kwargs.setdefault("fsync", "off")
    kwargs.setdefault("checkpoint_every", 1 << 30)
    service = ShardedAlexIndex.bulk_load(
        keys, num_shards=num_shards, backend=backend,
        durability_dir=str(tmp_path / "svc"), **kwargs)
    return service, keys


def random_mutations(service, reference, rng, rounds=12):
    """Drive the service and a plain-dict uncrashed reference through the
    same random mix of scalar and batch mutations."""
    salt = 0
    for _ in range(rounds):
        kind = rng.integers(5)
        if kind == 0:
            salt += 1
            batch = np.unique(rng.uniform(2e6, 3e6, 40)) + salt * 1e-4
            payloads = [int(k) for k in range(len(batch))]
            service.insert_many(batch, payloads)
            reference.update(zip(batch.tolist(), payloads))
        elif kind == 1 and len(reference) > 60:
            victims = np.array(sorted(reference))[
                rng.integers(0, len(reference) - 50)::len(reference) // 40
            ][:20]
            service.delete_many(victims)
            for v in victims.tolist():
                del reference[v]
        elif kind == 2:
            salt += 1
            key = float(rng.uniform(4e6, 5e6)) + salt * 1e-4
            service.insert(key, "scalar")
            reference[key] = "scalar"
        elif kind == 3 and reference:
            victim = sorted(reference)[int(rng.integers(len(reference)))]
            service.upsert(victim, "updated")
            reference[victim] = "updated"
        else:
            salt += 1
            extra = np.unique(rng.uniform(6e6, 7e6, 10)) + salt * 1e-4
            removed = service.erase_many(
                np.concatenate([extra[:3], [1e12]]))
            assert removed == 0  # none of these were present


@pytest.mark.parametrize("backend", BACKENDS)
class TestRecoveryEquivalence:
    def test_recover_matches_uncrashed_reference(self, tmp_path, backend):
        service, keys = make_service(tmp_path, backend)
        reference = {float(k): None for k in keys}
        random_mutations(service, reference, np.random.default_rng(1))
        assert dict(service.items()) == reference
        service.sync()
        service.backend.close()  # crash: no checkpoint, no orderly close

        recovered = ShardedAlexIndex.recover(str(tmp_path / "svc"),
                                             backend=backend, fsync="off")
        try:
            assert dict(recovered.items()) == reference
            recovered.validate()
            assert sum(r.frames_replayed
                       for r in recovered.last_recovery) > 0
        finally:
            recovered.close()

    def test_generation_zero_checkpoint_covers_bulk_load(self, tmp_path,
                                                         backend):
        service, keys = make_service(tmp_path, backend, num_shards=2)
        service.close()
        recovered = ShardedAlexIndex.recover(str(tmp_path / "svc"),
                                             backend=backend, fsync="off")
        try:
            assert len(recovered) == len(keys)
            # The bulk load recovers from snapshots, not WAL replay.
            assert all(r.frames_replayed == 0
                       for r in recovered.last_recovery)
        finally:
            recovered.close()

    def test_split_and_merge_rewrite_topology_durably(self, tmp_path,
                                                      backend):
        service, keys = make_service(tmp_path, backend, num_shards=2)
        reference = {float(k): None for k in keys}
        assert service.split_shard(0)
        extra = np.unique(np.random.default_rng(2).uniform(2e6, 3e6, 100))
        service.insert_many(extra)
        reference.update((float(k), None) for k in extra)
        service.merge_shards(1)
        service.insert(5e6, "post-merge")
        reference[5e6] = "post-merge"
        num_shards = service.num_shards
        service.sync()
        service.backend.close()

        recovered = ShardedAlexIndex.recover(str(tmp_path / "svc"),
                                             backend=backend, fsync="off")
        try:
            assert recovered.num_shards == num_shards
            assert dict(recovered.items()) == reference
            recovered.validate()
        finally:
            recovered.close()

    def test_workload_scenario_reports_match(self, tmp_path, backend):
        result = run_crash_recovery_scenario(
            str(tmp_path / "scen"), num_keys=2500, num_ops=800,
            spec="delete-heavy", backend=backend, num_shards=2,
            fsync="off", seed=5)
        assert result["contents_match"], result
        assert result["frames_replayed"] > 0


class TestRecoveredConfigAndLog:
    def test_recover_preserves_custom_config(self, tmp_path):
        from repro.core.config import ga_armi
        config = ga_armi(max_keys_per_node=256, num_models=4)
        keys = np.unique(np.random.default_rng(20).uniform(0, 1e6, 2000))
        service = ShardedAlexIndex.bulk_load(
            keys, num_shards=2, config=config,
            durability_dir=str(tmp_path / "svc"), fsync="off")
        service.sync()
        service.backend.close()
        recovered = ShardedAlexIndex.recover(str(tmp_path / "svc"),
                                             fsync="off")
        try:
            assert (recovered.config.max_keys_per_node
                    == config.max_keys_per_node)
            assert recovered.shards[0].config.max_keys_per_node == 256
        finally:
            recovered.close()

    def test_noop_erase_leaves_no_wal_frames(self, tmp_path):
        service, keys = make_service(tmp_path, "thread", num_shards=2,
                                     n=1000)
        heads = [service.durability.shard_state(s).wal.last_lsn
                 for s in range(2)]
        absent = np.array([5e6, 6e6, 7e6])
        assert service.erase_many(absent) == 0
        assert [service.durability.shard_state(s).wal.last_lsn
                for s in range(2)] == heads
        # A real erase still logs (on the owning shard only) and counts.
        assert service.erase_many(np.concatenate(
            [keys[:5], absent])) == 5
        assert (sum(service.durability.shard_state(s).wal.last_lsn
                    for s in range(2)) == sum(heads) + 1)
        service.close()


class TestCrossBackendRecovery:
    def test_thread_tree_recovers_on_process_backend(self, tmp_path):
        service, keys = make_service(tmp_path, "thread")
        extra = np.unique(np.random.default_rng(3).uniform(2e6, 3e6, 50))
        service.insert_many(extra)
        expected = dict(service.items())
        service.sync()
        service.backend.close()
        recovered = ShardedAlexIndex.recover(str(tmp_path / "svc"),
                                             backend="process",
                                             fsync="off")
        try:
            assert dict(recovered.items()) == expected
        finally:
            recovered.close()


class TestWorkerKillRespawn:
    """Process-backend worker deaths mid-workload: detection, respawn
    from checkpoint + WAL tail, and service self-healing."""

    def test_killed_worker_respawns_on_next_touch(self, tmp_path):
        service, keys = make_service(tmp_path, "process")
        reference = dict(service.items())
        pids = service.backend.worker_pids()
        os.kill(pids[1], signal.SIGKILL)
        time.sleep(0.1)
        # Reads and writes keep flowing; the facade respawns shard 1.
        extra = np.unique(np.random.default_rng(4).uniform(0, 1e6, 60))
        extra = extra[~np.isin(extra, keys)]
        service.insert_many(extra)
        reference.update((float(k), None) for k in extra)
        assert dict(service.items()) == reference
        assert service.backend.dead_shards() == []
        assert service.backend.worker_pids()[1] != pids[1]
        service.validate()
        service.close()

    def test_kill_at_random_op_recovers_key_for_key(self, tmp_path):
        """The acceptance criterion: a worker killed at a random point of
        a random workload; the facade-healed service *and* the
        recovered-from-disk service both equal the uncrashed reference
        for every acknowledged write."""
        rng = np.random.default_rng(6)
        service, keys = make_service(tmp_path, "process", num_shards=2,
                                     n=2000)
        reference = {float(k): None for k in keys}
        kill_round = int(rng.integers(3, 9))
        for round_no in range(12):
            if round_no == kill_round:
                pids = service.backend.worker_pids()
                os.kill(pids[int(rng.integers(len(pids)))], signal.SIGKILL)
            random_mutations(service, reference, rng, rounds=1)
        assert dict(service.items()) == reference
        service.sync()
        service.backend.close()
        recovered = ShardedAlexIndex.recover(str(tmp_path / "svc"),
                                             backend="thread", fsync="off")
        try:
            assert dict(recovered.items()) == reference
        finally:
            recovered.close()

    def test_scenario_runner_kill_mid_stream(self, tmp_path):
        result = run_crash_recovery_scenario(
            str(tmp_path / "scen"), num_keys=2000, num_ops=600,
            backend="process", num_shards=2, fsync="off",
            kill_worker_at=0.5, seed=7)
        assert result["worker_killed"]
        assert result["contents_match"], result

    def test_broken_pipe_with_live_worker_is_forced_out(self, tmp_path):
        """Regression: a worker whose pipe broke but whose process still
        reports alive (wedged, or a corpse slow to reap) must be
        terminated and replaced — skipping it while reporting the shard
        repaired would ack a logged write whose apply never landed."""
        service, keys = make_service(tmp_path, "process", num_shards=2,
                                     n=1500)
        reference = dict(service.items())
        old_pid = service.backend.worker_pids()[0]
        # Break the protocol without killing the process.
        service.backend._workers[0].conn.close()
        service.insert(-5.0, "after-breakage")  # routes to shard 0
        reference[-5.0] = "after-breakage"
        assert service.backend.worker_pids()[0] != old_pid
        assert dict(service.items()) == reference
        service.validate()
        service.close()

    def test_without_durability_worker_death_still_raises(self, tmp_path):
        from repro.serve.backend import WorkerDiedError
        keys = np.unique(np.random.default_rng(8).uniform(0, 1e6, 1000))
        service = ShardedAlexIndex.bulk_load(keys, num_shards=2,
                                             backend="process")
        try:
            os.kill(service.backend.worker_pids()[0], signal.SIGKILL)
            time.sleep(0.1)
            with pytest.raises(WorkerDiedError):
                # Keys below every boundary route to the killed shard 0.
                service.insert_many(np.array([-2.0, -1.0]))
        finally:
            service.close()


class TestTopologyCrashSafety:
    def test_crash_before_manifest_commit_recovers_pre_split(self,
                                                             tmp_path):
        """A crash after the executors split but before the topology
        manifest commits must recover the *pre-split* topology with every
        acknowledged write intact."""

        class SimulatedCrash(BaseException):
            pass

        service, keys = make_service(tmp_path, "thread", num_shards=2)
        extra = np.unique(np.random.default_rng(10).uniform(2e6, 3e6, 80))
        service.insert_many(extra)
        reference = dict(service.items())
        service.sync()

        def boom():
            raise SimulatedCrash

        service.durability._write_service_manifest = boom
        with pytest.raises(SimulatedCrash):
            service.split_shard(0)
        service.backend.close()  # abandon the wounded facade

        recovered = ShardedAlexIndex.recover(str(tmp_path / "svc"),
                                             fsync="off")
        try:
            assert recovered.num_shards == 2  # pre-split topology
            assert dict(recovered.items()) == reference
            recovered.validate()
        finally:
            recovered.close()

    def test_refuses_to_create_over_existing_tree(self, tmp_path):
        service, keys = make_service(tmp_path, "thread", num_shards=2,
                                     n=500)
        service.close()
        with pytest.raises(PersistenceError):
            ShardedAlexIndex.bulk_load(keys,
                                       num_shards=2,
                                       durability_dir=str(tmp_path / "svc"))

    def test_missing_shard_manifest_raises_instead_of_empty_shard(
            self, tmp_path):
        """Regression: a referenced shard dir whose MANIFEST.json is
        gone is corruption; recovery must raise, not quietly hand back
        an empty shard (losing that shard's keys with exit code 0)."""
        service, keys = make_service(tmp_path, "thread", num_shards=2)
        service.sync()
        service.backend.close()
        os.remove(tmp_path / "svc" / "shard-00000000" / "MANIFEST.json")
        with pytest.raises(PersistenceError, match="no MANIFEST.json"):
            ShardedAlexIndex.recover(str(tmp_path / "svc"), fsync="off")

    def test_unreferenced_shard_dirs_swept_on_attach(self, tmp_path):
        service, _ = make_service(tmp_path, "thread", num_shards=2, n=500)
        service.sync()
        service.backend.close()
        orphan = tmp_path / "svc" / "shard-99999999"
        orphan.mkdir()
        (orphan / "junk").write_text("leftover from a crashed SMO")
        durability = ShardedDurability(str(tmp_path / "svc"), fsync="off")
        durability.attach()
        assert not orphan.exists()
        durability.close()
