"""Unit tests for the Learned Index baseline (Kraska et al. reimplementation)."""

import numpy as np
import pytest

from repro.baselines.learned_index import LearnedIndex
from repro.core.errors import DuplicateKeyError, KeyNotFoundError


@pytest.fixture
def keys_1k():
    rng = np.random.default_rng(51)
    return np.unique(rng.uniform(0, 1e6, 1000))


@pytest.fixture
def index(keys_1k):
    return LearnedIndex.bulk_load(keys_1k, num_models=16)


class TestConstruction:
    def test_bulk_load_and_lookup_all(self, index, keys_1k):
        for key in keys_1k[::17]:
            index.lookup(float(key))

    def test_duplicates_rejected(self):
        with pytest.raises(DuplicateKeyError):
            LearnedIndex.bulk_load([3.0, 3.0])

    def test_empty_index(self):
        index = LearnedIndex(num_models=4)
        assert len(index) == 0
        assert not index.contains(1.0)

    def test_bad_model_count_rejected(self):
        with pytest.raises(ValueError):
            LearnedIndex(num_models=0)


class TestErrorBounds:
    def test_bounds_cover_worst_prediction(self, index):
        keys = index.data.view_keys()
        n = len(keys)
        for i in range(0, n, 11):
            leaf = index._leaf_for(float(keys[i]))
            predicted = leaf.model.predict_pos(float(keys[i]), n)
            assert predicted - leaf.max_error_left <= i <= predicted + leaf.max_error_right

    def test_bounds_widen_on_insert(self, index):
        widths_before = [m.max_error_right for m in index.leaf_models]
        index.insert(123.456)
        widths_after = [m.max_error_right for m in index.leaf_models]
        assert all(a == b + 1 for b, a in zip(widths_before, widths_after))

    def test_retrain_resets_staleness(self, keys_1k):
        index = LearnedIndex.bulk_load(keys_1k, num_models=8,
                                       retrain_fraction=0.01)
        retrains_before = index.counters.retrains
        rng = np.random.default_rng(52)
        new = np.setdiff1d(np.unique(rng.uniform(0, 1e6, 400)), keys_1k)
        for key in new[:200]:
            index.insert(float(key))
        assert index.counters.retrains > retrains_before


class TestNaiveInserts:
    def test_insert_then_lookup(self, index):
        index.insert(-5.0, "payload")
        assert index.lookup(-5.0) == "payload"

    def test_duplicate_raises(self, index, keys_1k):
        with pytest.raises(DuplicateKeyError):
            index.insert(float(keys_1k[0]))

    def test_inserts_shift_on_average_half_the_array(self, keys_1k):
        # The naive strategy of Section 2.3: expected shifts per insert ~ n/2.
        index = LearnedIndex.bulk_load(keys_1k, num_models=8,
                                       retrain_fraction=1.0)
        rng = np.random.default_rng(53)
        new = np.setdiff1d(np.unique(rng.uniform(0, 1e6, 150)), keys_1k)[:100]
        before = index.counters.shifts
        for key in new:
            index.insert(float(key))
        per_insert = (index.counters.shifts - before) / len(new)
        assert per_insert > len(keys_1k) / 8

    def test_many_inserts_remain_correct(self, index, keys_1k):
        rng = np.random.default_rng(54)
        new = np.setdiff1d(np.unique(rng.uniform(0, 1e6, 500)), keys_1k)
        for key in new:
            index.insert(float(key))
        for key in new[::23]:
            assert index.contains(float(key))
        for key in keys_1k[::41]:
            assert index.contains(float(key))


class TestDeleteUpdate:
    def test_delete(self, index, keys_1k):
        index.delete(float(keys_1k[9]))
        assert not index.contains(float(keys_1k[9]))
        assert len(index) == len(keys_1k) - 1

    def test_delete_missing_raises(self, index):
        with pytest.raises(KeyNotFoundError):
            index.delete(-1.0)

    def test_update(self, index, keys_1k):
        index.update(float(keys_1k[2]), "v2")
        assert index.lookup(float(keys_1k[2])) == "v2"


class TestRangeOperations:
    def test_range_scan(self, index, keys_1k):
        sorted_keys = np.sort(keys_1k)
        out = index.range_scan(float(sorted_keys[100]), 40)
        assert [k for k, _ in out] == sorted_keys[100:140].tolist()

    def test_range_query(self, index, keys_1k):
        sorted_keys = np.sort(keys_1k)
        out = index.range_query(float(sorted_keys[5]), float(sorted_keys[15]))
        assert [k for k, _ in out] == sorted_keys[5:16].tolist()

    def test_items_sorted(self, index, keys_1k):
        assert [k for k, _ in index.items()] == np.sort(keys_1k).tolist()


class TestAccounting:
    def test_index_size_includes_error_bounds(self, keys_1k):
        few = LearnedIndex.bulk_load(keys_1k, num_models=4)
        many = LearnedIndex.bulk_load(keys_1k, num_models=64)
        assert many.index_size_bytes() > few.index_size_bytes()
        # 32 bytes per leaf model (model + bounds) plus 16 for the root.
        assert few.index_size_bytes() == 16 + 4 * 32

    def test_data_size_is_dense(self, index, keys_1k):
        assert index.data_size_bytes() == len(keys_1k) * 16

    def test_prediction_error_for_existing_key(self, index, keys_1k):
        err = index.prediction_error(float(keys_1k[0]))
        assert err >= 0

    def test_prediction_error_missing_raises(self, index):
        with pytest.raises(KeyNotFoundError):
            index.prediction_error(-1.0)
