"""Integration-level tests for the AlexIndex public API (all four variants)."""

import dataclasses

import numpy as np
import pytest

from repro.core.alex import AlexIndex
from repro.core.config import ga_armi, ga_srmi, pma_armi, pma_srmi
from repro.core.errors import DuplicateKeyError, KeyNotFoundError

VARIANTS = [
    pytest.param(ga_srmi, id="ga-srmi"),
    pytest.param(ga_armi, id="ga-armi"),
    pytest.param(pma_srmi, id="pma-srmi"),
    pytest.param(pma_armi, id="pma-armi"),
]


def small_config(factory):
    return factory(num_models=16, max_keys_per_node=128)


@pytest.fixture
def keys_2k():
    rng = np.random.default_rng(31)
    return np.unique(rng.uniform(0, 1e6, 2000))


@pytest.fixture(params=VARIANTS)
def loaded(request, keys_2k):
    index = AlexIndex.bulk_load(keys_2k, config=small_config(request.param))
    return index, keys_2k


class TestBulkLoad:
    @pytest.mark.parametrize("factory", [ga_srmi, ga_armi, pma_srmi, pma_armi])
    def test_all_variants_load_and_validate(self, factory, keys_2k):
        index = AlexIndex.bulk_load(keys_2k, config=small_config(factory))
        index.validate()
        assert len(index) == len(keys_2k)

    def test_unsorted_input_is_sorted(self):
        index = AlexIndex.bulk_load([5.0, 1.0, 3.0])
        assert list(index.keys()) == [1.0, 3.0, 5.0]

    def test_payloads_follow_sort(self):
        index = AlexIndex.bulk_load([5.0, 1.0, 3.0], ["five", "one", "three"])
        assert index.lookup(1.0) == "one"
        assert index.lookup(5.0) == "five"

    def test_duplicate_keys_rejected(self):
        with pytest.raises(DuplicateKeyError):
            AlexIndex.bulk_load([1.0, 2.0, 2.0])

    def test_payload_length_mismatch(self):
        with pytest.raises(ValueError):
            AlexIndex.bulk_load([1.0, 2.0], ["only-one"])

    def test_empty_load(self):
        index = AlexIndex.bulk_load([])
        assert len(index) == 0
        index.validate()


class TestLookup:
    def test_every_key_found(self, loaded):
        index, keys = loaded
        for key in keys[::29]:
            index.lookup(float(key))

    def test_missing_key_raises(self, loaded):
        index, _ = loaded
        with pytest.raises(KeyNotFoundError):
            index.lookup(-1e12)

    def test_get_with_default(self, loaded):
        index, keys = loaded
        assert index.get(-1e12, "fallback") == "fallback"
        assert index.get(float(keys[0])) is None

    def test_contains(self, loaded):
        index, keys = loaded
        assert index.contains(float(keys[1]))
        assert not index.contains(-1e12)


class TestInsert:
    def test_insert_lookup_roundtrip(self, loaded):
        index, keys = loaded
        new = float(keys[0]) + 0.123
        index.insert(new, "payload")
        assert index.lookup(new) == "payload"
        index.validate()

    def test_duplicate_raises(self, loaded):
        index, keys = loaded
        with pytest.raises(DuplicateKeyError):
            index.insert(float(keys[42]))

    def test_bulk_inserts_keep_structure_valid(self, loaded):
        index, keys = loaded
        rng = np.random.default_rng(32)
        new = np.setdiff1d(np.unique(rng.uniform(0, 1e6, 1500)), keys)
        for key in new:
            index.insert(float(key))
        index.validate()
        assert len(index) == len(keys) + len(new)

    def test_len_tracks_inserts(self, loaded):
        index, keys = loaded
        index.insert(-5.0)
        assert len(index) == len(keys) + 1


class TestColdStart:
    @pytest.mark.parametrize("factory", [ga_armi, pma_armi])
    def test_empty_index_grows_by_splitting(self, factory):
        config = factory(max_keys_per_node=64)
        index = AlexIndex(config)
        rng = np.random.default_rng(33)
        keys = np.unique(rng.uniform(0, 1e4, 1000))
        for key in keys:
            index.insert(float(key))
        index.validate()
        assert index.num_leaves() > 1
        assert index.counters.splits > 0

    def test_static_rmi_cold_start_expands_single_leaf(self):
        index = AlexIndex(ga_srmi())
        for key in range(500):
            index.insert(float(key))
        index.validate()
        assert len(index) == 500

    def test_first_lookup_on_empty_raises(self):
        index = AlexIndex()
        with pytest.raises(KeyNotFoundError):
            index.lookup(1.0)


class TestDeleteUpdate:
    def test_delete_roundtrip(self, loaded):
        index, keys = loaded
        index.delete(float(keys[10]))
        assert not index.contains(float(keys[10]))
        assert len(index) == len(keys) - 1
        index.validate()

    def test_delete_missing_raises(self, loaded):
        index, _ = loaded
        with pytest.raises(KeyNotFoundError):
            index.delete(-1e12)

    def test_delete_many_then_validate(self, loaded):
        index, keys = loaded
        for key in keys[::2]:
            index.delete(float(key))
        index.validate()
        assert len(index) == len(keys) - len(keys[::2])

    def test_update_and_upsert(self, loaded):
        index, keys = loaded
        index.update(float(keys[0]), "updated")
        assert index.lookup(float(keys[0])) == "updated"
        index.upsert(float(keys[1]), "upserted")
        assert index.lookup(float(keys[1])) == "upserted"
        index.upsert(-77.0, "new")
        assert index.lookup(-77.0) == "new"

    def test_update_missing_raises(self, loaded):
        index, _ = loaded
        with pytest.raises(KeyNotFoundError):
            index.update(-1e12, "x")


class TestRangeOperations:
    def test_range_scan_sorted_and_bounded(self, loaded):
        index, keys = loaded
        sorted_keys = np.sort(keys)
        start = float(sorted_keys[100])
        out = index.range_scan(start, 50)
        assert [k for k, _ in out] == sorted_keys[100:150].tolist()

    def test_range_scan_crosses_leaves(self, loaded):
        index, keys = loaded
        sorted_keys = np.sort(keys)
        out = index.range_scan(float(sorted_keys[0]), len(keys))
        assert len(out) == len(keys)

    def test_range_query_inclusive(self, loaded):
        index, keys = loaded
        sorted_keys = np.sort(keys)
        lo, hi = float(sorted_keys[50]), float(sorted_keys[80])
        out = index.range_query(lo, hi)
        assert [k for k, _ in out] == sorted_keys[50:81].tolist()

    def test_range_query_empty_interval(self, loaded):
        index, _ = loaded
        assert index.range_query(1e12, 2e12) == []

    def test_items_and_keys_sorted(self, loaded):
        index, keys = loaded
        assert list(index.keys()) == np.sort(keys).tolist()


class TestDunders:
    def test_mapping_protocol(self, loaded):
        index, keys = loaded
        key = float(keys[7])
        index[key] = "via-setitem"
        assert index[key] == "via-setitem"
        assert key in index
        del index[key]
        assert key not in index

    def test_iter_yields_keys(self, loaded):
        index, keys = loaded
        assert next(iter(index)) == float(np.sort(keys)[0])


class TestIntrospection:
    def test_variant_names(self, keys_2k):
        for factory, name in [(ga_srmi, "ALEX-GA-SRMI"), (ga_armi, "ALEX-GA-ARMI"),
                              (pma_srmi, "ALEX-PMA-SRMI"), (pma_armi, "ALEX-PMA-ARMI")]:
            index = AlexIndex.bulk_load(keys_2k[:100],
                                        config=small_config(factory))
            assert index.variant_name == name

    def test_index_smaller_than_data(self, loaded):
        index, _ = loaded
        assert index.index_size_bytes() < index.data_size_bytes()

    def test_leaf_sizes_sum_to_len(self, loaded):
        index, keys = loaded
        assert int(index.leaf_sizes().sum()) == len(keys)

    def test_num_models_counts_inner_and_leaf(self, loaded):
        index, _ = loaded
        assert index.num_models() >= index.num_leaves()

    def test_depth_nonnegative(self, loaded):
        index, _ = loaded
        assert index.depth() >= 0


class TestSplitOnInserts:
    def test_distribution_shift_triggers_splits(self, keys_2k):
        config = dataclasses.replace(ga_armi(max_keys_per_node=128),
                                     split_on_inserts=True)
        sorted_keys = np.sort(keys_2k)
        half = len(sorted_keys) // 2
        index = AlexIndex.bulk_load(sorted_keys[:half], config=config)
        before = index.counters.splits
        for key in sorted_keys[half:]:
            index.insert(float(key))
        index.validate()
        assert index.counters.splits > before

    def test_without_splitting_leaves_grow_past_bound(self, keys_2k):
        config = ga_armi(max_keys_per_node=128)  # splitting off by default
        sorted_keys = np.sort(keys_2k)
        half = len(sorted_keys) // 2
        index = AlexIndex.bulk_load(sorted_keys[:half], config=config)
        for key in sorted_keys[half:]:
            index.insert(float(key))
        index.validate()
        assert int(index.leaf_sizes().max()) > 128
