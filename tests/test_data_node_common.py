"""Tests for DataNode machinery shared by both leaf layouts: gap-filled key
arrays, bitmaps, leaf chaining, size accounting."""

import numpy as np
import pytest

from repro.core.config import AlexConfig
from repro.core.data_node import GAP_SENTINEL
from repro.core.errors import KeyNotFoundError
from repro.core.gapped_array import GappedArrayNode
from repro.core.pma import PMANode
from repro.core.stats import Counters


def make_ga(keys, **overrides):
    node = GappedArrayNode(AlexConfig(**overrides), Counters())
    node.build(np.asarray(keys, dtype=np.float64))
    return node


@pytest.fixture(params=[GappedArrayNode, PMANode], ids=["ga", "pma"])
def any_node(request):
    node = request.param(AlexConfig(), Counters())
    rng = np.random.default_rng(21)
    keys = np.sort(np.unique(rng.uniform(0, 500, 120)))
    node.build(keys)
    return node, keys


class TestGapFillInvariant:
    def test_gaps_hold_right_neighbour(self, any_node):
        node, _ = any_node
        for pos in range(node.capacity):
            if not node.occupied[pos]:
                nxt = node._first_occupied_at_or_after(pos)
                expected = node.keys[nxt] if nxt < node.capacity else GAP_SENTINEL
                assert node.keys[pos] == expected

    def test_invariant_survives_mixed_operations(self, any_node):
        node, keys = any_node
        rng = np.random.default_rng(22)
        for _ in range(200):
            op = rng.integers(0, 3)
            if op == 0:
                key = float(rng.uniform(0, 500))
                if not node.contains(key):
                    node.insert(key)
            elif op == 1 and node.num_keys > 0:
                positions = np.flatnonzero(node.occupied)
                victim = float(node.keys[rng.choice(positions)])
                node.delete(victim)
            else:
                node.scan_from(float(rng.uniform(0, 500)), 5)
        node.check_invariants()

    def test_trailing_gaps_hold_sentinel(self, any_node):
        node, _ = any_node
        last = node._last_occupied_before(node.capacity)
        for pos in range(last + 1, node.capacity):
            assert node.keys[pos] == GAP_SENTINEL


class TestMinMaxKeys:
    def test_min_max(self, any_node):
        node, keys = any_node
        assert node.min_key() == float(keys.min())
        assert node.max_key() == float(keys.max())

    def test_empty_node_raises(self):
        node = make_ga([])
        with pytest.raises(KeyNotFoundError):
            node.min_key()
        with pytest.raises(KeyNotFoundError):
            node.max_key()


class TestExportAndIteration:
    def test_export_sorted_round_trips(self, any_node):
        node, keys = any_node
        out_keys, out_payloads = node.export_sorted()
        assert out_keys.tolist() == keys.tolist()
        assert len(out_payloads) == len(keys)

    def test_iter_items_in_order(self, any_node):
        node, keys = any_node
        got = [k for k, _ in node.iter_items()]
        assert got == keys.tolist()


class TestLeafChainScan:
    def test_scan_crosses_chained_leaves(self):
        left = make_ga(np.arange(0, 50, dtype=np.float64))
        right = make_ga(np.arange(50, 100, dtype=np.float64))
        left.next_leaf = right
        right.prev_leaf = left
        out = left.scan_from(40.0, 20)
        assert [k for k, _ in out] == list(np.arange(40.0, 60.0))

    def test_scan_limit_zero(self, any_node):
        node, _ = any_node
        assert node.scan_from(0.0, 0) == []

    def test_scan_past_end_returns_remainder(self, any_node):
        node, keys = any_node
        out = node.scan_from(float(keys[-5]), 100)
        assert len(out) == 5


class TestSizeAccounting:
    def test_data_size_includes_gaps_and_bitmap(self, any_node):
        node, _ = any_node
        per_slot = 8 + node.config.payload_size
        expected = node.capacity * per_slot + (node.capacity + 7) // 8
        assert node.data_size_bytes() == expected

    def test_model_size_is_16_bytes_when_present(self, any_node):
        node, _ = any_node
        assert node.model_size_bytes() == 16

    def test_cold_node_has_no_model_size(self):
        node = make_ga([1.0, 2.0])
        assert node.model is None
        assert node.model_size_bytes() == 0

    def test_payload_size_config_respected(self):
        node = make_ga(np.arange(10, dtype=np.float64), payload_size=80)
        assert node.data_size_bytes() == node.capacity * 88 + (node.capacity + 7) // 8


class TestPredictionError:
    def test_zero_for_exact_placement(self):
        node = make_ga(np.arange(64, dtype=np.float64))
        errors = [node.prediction_error(float(k)) for k in range(64)]
        assert min(errors) == 0

    def test_raises_for_missing_key(self, any_node):
        node, _ = any_node
        with pytest.raises(KeyNotFoundError):
            node.prediction_error(-1e9)


class TestCheckInvariantsCatchesCorruption:
    def test_detects_unsorted_keys(self, any_node):
        node, _ = any_node
        positions = np.flatnonzero(node.occupied)
        if len(positions) >= 2:
            node.keys[positions[0]], node.keys[positions[1]] = (
                node.keys[positions[1]], node.keys[positions[0]])
            with pytest.raises(AssertionError):
                node.check_invariants()

    def test_detects_bitmap_mismatch(self, any_node):
        node, _ = any_node
        node.num_keys += 1
        with pytest.raises(AssertionError):
            node.check_invariants()

    def test_detects_bad_gap_fill(self, any_node):
        node, _ = any_node
        gaps = np.flatnonzero(~node.occupied)
        interior = [g for g in gaps
                    if node._first_occupied_at_or_after(g) < node.capacity]
        if interior:
            node.keys[interior[0]] = node.keys[interior[0]] - 0.5
            with pytest.raises(AssertionError):
                node.check_invariants()
