"""Tests for the pluggable hot-loop kernel layer (repro.core.kernels).

Three concerns:

* **Parity** — every available backend must produce bit-identical
  positions, states, *and work charges* to the pure-numpy reference, on
  randomized node layouts including every edge (empty nodes, all-gap
  nodes, boundary targets, cold-start vs model-hinted search).
* **Resolution** — selecting an absent compiled backend degrades to
  numpy with a one-time warning; ``auto`` never warns; unknown names
  raise; resolution returns process-wide singletons.
* **Warmup** — a provisioned backend performs zero compile/load events
  on the request path (the serving tier warms kernels at provisioning).
"""

import sys
import warnings

import numpy as np
import pytest

from repro.core import kernels as K
from repro.core.alex import AlexIndex
from repro.core.config import ga_armi
from repro.core.data_node import GAP_SENTINEL
from repro.core.gapped_array import GappedArrayNode
from repro.core.stats import Counters

NUMPY = K.get_kernels("numpy")
AVAILABLE = K.available_backends()
#: Backends that exist here beyond the reference implementation.
COMPILED = tuple(n for n in AVAILABLE if n != "numpy")


def backends():
    return [K.get_kernels(name) for name in AVAILABLE]


def backend_params():
    return pytest.mark.parametrize("backend", backends(),
                                   ids=list(AVAILABLE))


def make_node_arrays(rng, n, capacity_extra=None):
    """A legal gapped-array state: non-decreasing keys with gap slots
    mirroring their nearest real right neighbour (GAP_SENTINEL past the
    last key), plus the occupancy bitmap."""
    node = GappedArrayNode(ga_armi(), Counters())
    raw = np.unique(rng.uniform(0, 1e6, n + 16))[:n]
    node.build(raw, [f"v{i}" for i in range(n)])
    return node.keys.copy(), node.occupied.copy(), raw


def model_of(keys, occupied):
    """A plausible linear model over the occupied keys."""
    real = keys[occupied]
    if len(real) < 2 or real[0] == real[-1]:
        return 0.0, float(len(keys)) / 2.0
    slope = (len(keys) - 1) / (real[-1] - real[0])
    return slope, -slope * real[0]


def probe_targets(rng, raw, size=200):
    """Present keys, absent keys, exact boundaries, and out-of-range."""
    parts = [rng.choice(raw, size // 2) if len(raw) else np.empty(0),
             rng.uniform(-1e5, 1.2e6, size // 2),
             np.array([-1e9, 1e9])]
    if len(raw):
        parts.append(np.array([raw[0], raw[-1],
                               np.nextafter(raw[0], -np.inf),
                               np.nextafter(raw[-1], np.inf)]))
    out = np.concatenate(parts)
    rng.shuffle(out)
    return out


@backend_params()
class TestPredictClampParity:
    def test_matches_numpy_reference(self, backend):
        rng = np.random.default_rng(101)
        keys = np.concatenate([rng.uniform(-1e9, 1e9, 500),
                               np.array([np.inf, -np.inf, 0.0])])
        with np.errstate(invalid="ignore"):  # inf key * 0 slope is legal
            for size in (1, 2, 7, 1000):
                for slope, intercept in ((0.0, 3.0), (1e-6, -2.0),
                                         (123.456, 1e5), (-1.0, 0.0)):
                    got = backend.predict_clamp(slope, intercept, keys, size)
                    want = NUMPY.predict_clamp(slope, intercept, keys, size)
                    assert got.dtype == np.int64
                    assert got.tolist() == want.tolist()

    def test_empty(self, backend):
        out = backend.predict_clamp(1.0, 0.0, np.empty(0), 10)
        assert out.tolist() == []


@backend_params()
@pytest.mark.parametrize("has_model", [True, False], ids=["model", "cold"])
@pytest.mark.parametrize("n", [0, 1, 3, 50, 400])
class TestSearchParity:
    def test_scalar_positions_and_charges(self, backend, has_model, n):
        rng = np.random.default_rng(n * 2 + has_model)
        keys, occ, raw = make_node_arrays(rng, n)
        slope, intercept = model_of(keys, occ)
        for t in probe_targets(rng, raw, 60):
            t = float(t)
            assert (backend.find_insert_pos(keys, t, has_model, slope,
                                            intercept)
                    == NUMPY.find_insert_pos(keys, t, has_model, slope,
                                             intercept))
            assert (backend.find_key(keys, occ, t, has_model, slope,
                                     intercept)
                    == NUMPY.find_key(keys, occ, t, has_model, slope,
                                      intercept))

    def test_batch_equals_reference_and_scalar_totals(self, backend,
                                                      has_model, n):
        rng = np.random.default_rng(n * 3 + has_model)
        keys, occ, raw = make_node_arrays(rng, n)
        slope, intercept = model_of(keys, occ)
        targets = probe_targets(rng, raw, 150)

        pos, charge = backend.find_insert_pos_many(keys, targets, has_model,
                                                   slope, intercept)
        ref_pos, ref_charge = NUMPY.find_insert_pos_many(
            keys, targets, has_model, slope, intercept)
        assert pos.tolist() == ref_pos.tolist()
        assert charge == ref_charge
        # The batch charge is exactly the per-lane scalar total.
        assert charge == sum(
            backend.find_insert_pos(keys, float(t), has_model, slope,
                                    intercept)[1] for t in targets)

        fpos, fcharge, fresolve = backend.find_keys_many(
            keys, occ, targets, has_model, slope, intercept)
        rpos, rcharge, rresolve = NUMPY.find_keys_many(
            keys, occ, targets, has_model, slope, intercept)
        assert fpos.tolist() == rpos.tolist()
        assert (fcharge, fresolve) == (rcharge, rresolve)
        scalar = [backend.find_key(keys, occ, float(t), has_model, slope,
                                   intercept) for t in targets]
        assert fpos.tolist() == [s[0] for s in scalar]
        assert fcharge == sum(s[1] for s in scalar)
        assert fresolve == sum(s[2] for s in scalar)


@backend_params()
class TestWriteKernelParity:
    def test_closest_gaps_every_position(self, backend):
        rng = np.random.default_rng(77)
        keys, occ, _ = make_node_arrays(rng, 60)
        cap = len(keys)
        for pos in range(cap):
            assert (backend.closest_gaps(occ, pos, 0, cap)
                    == NUMPY.closest_gaps(occ, pos, 0, cap))
        # Sub-ranges (PMA segments search within their own window).
        for lo, hi in ((0, cap // 2), (cap // 3, cap), (5, 6)):
            for pos in range(lo, hi):
                assert (backend.closest_gaps(occ, pos, lo, hi)
                        == NUMPY.closest_gaps(occ, pos, lo, hi))

    def test_shift_and_fill_state_parity(self, backend):
        rng = np.random.default_rng(88)
        keys, occ, raw = make_node_arrays(rng, 80)

        def clone():
            return keys.copy(), occ.copy()

        cap = len(keys)
        for pos in range(cap):
            left, right = NUMPY.closest_gaps(occ, pos, 0, cap)
            if right < cap and pos < right:
                (k1, o1), (k2, o2) = clone(), clone()
                backend.shift_right(k1, o1, pos, right)
                NUMPY.shift_right(k2, o2, pos, right)
                assert k1.tolist() == k2.tolist()
                assert o1.tolist() == o2.tolist()
            if left >= 0 and left < pos:
                (k1, o1), (k2, o2) = clone(), clone()
                backend.shift_left(k1, o1, left, pos)
                NUMPY.shift_left(k2, o2, left, pos)
                assert k1.tolist() == k2.tolist()
                assert o1.tolist() == o2.tolist()

    def test_place_and_erase_fill_parity(self, backend):
        rng = np.random.default_rng(99)
        keys, occ, raw = make_node_arrays(rng, 70)
        cap = len(keys)
        gaps = np.flatnonzero(~occ)
        for gap in gaps.tolist():
            key = float(keys[gap]) - 1e-9  # legal: below the mirror value
            (k1, o1), (k2, o2) = (keys.copy(), occ.copy()), (keys.copy(),
                                                             occ.copy())
            f1 = backend.place_fill(k1, o1, gap, key)
            f2 = NUMPY.place_fill(k2, o2, gap, key)
            assert f1 == f2
            assert k1.tolist() == k2.tolist()
            assert o1.tolist() == o2.tolist()
        for pos in np.flatnonzero(occ).tolist():
            right_key = (float(keys[pos + 1]) if pos + 1 < cap
                         else GAP_SENTINEL)
            (k1, o1), (k2, o2) = (keys.copy(), occ.copy()), (keys.copy(),
                                                             occ.copy())
            f1 = backend.erase_fill(k1, o1, pos, right_key)
            f2 = NUMPY.erase_fill(k2, o2, pos, right_key)
            assert f1 == f2 >= 1
            assert k1.tolist() == k2.tolist()
            assert o1.tolist() == o2.tolist()


@pytest.mark.parametrize("name", COMPILED or ["numpy"])
class TestEndToEndCounterParity:
    """An index built on a compiled backend must report the *same work
    counters* as the numpy build for an identical operation stream."""

    def test_identical_counters_and_contents(self, name):
        def run(backend_name):
            rng = np.random.default_rng(4321)
            keys = np.unique(rng.uniform(0, 1e8, 3000))
            init, extra = keys[:2400], keys[2400:]
            index = AlexIndex.bulk_load(
                init, config=ga_armi(max_keys_per_node=256,
                                     kernel_backend=backend_name))
            for k in extra:
                index.insert(float(k), "x")
            probes = rng.choice(keys, 500, replace=True)
            got = [index.get(float(k), None) for k in probes]
            got.append(index.get_many(probes, "MISS"))
            for k in extra[:100]:
                index.delete(float(k))
            index.validate()
            return got, list(index.keys()), index.counters
        ref = run("numpy")
        other = run(name)
        assert other[0] == ref[0]
        assert other[1] == ref[1]
        assert other[2] == ref[2]


class TestResolution:
    def test_singletons(self):
        for name in AVAILABLE:
            assert K.get_kernels(name) is K.get_kernels(name)
            assert K.get_kernels(name).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            K.get_kernels("fortran")

    def test_default_comes_from_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        assert K.default_backend_name() == "numpy"
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "auto")
        assert K.default_backend_name() == "auto"

    def test_numpy_always_available(self):
        assert "numpy" in AVAILABLE
        assert not NUMPY.compiled
        assert NUMPY.compile_events() == 0

    def test_auto_resolves_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            backend = K.get_kernels("auto")
        assert backend.name in K.BACKEND_NAMES

    def test_describe_runtime_shape(self):
        meta = K.describe_runtime()
        assert meta["default_kernel_backend"] in K.BACKEND_NAMES
        assert "numpy" in meta["available_kernel_backends"]
        assert meta["numpy_version"] == np.__version__


class TestNumbaAbsentFallback:
    """With numba unimportable the whole stack must run on the numpy
    fallback: selecting ``numba`` warns once, then stays silent."""

    @pytest.fixture
    def no_numba(self, monkeypatch):
        # Simulate an environment without numba even when it is
        # installed: a None entry makes ``import numba`` raise
        # ImportError, and dropping the backend module forces a fresh
        # import attempt through that block.
        monkeypatch.setitem(sys.modules, "numba", None)
        monkeypatch.delitem(sys.modules, "repro.core.kernels.numba_backend",
                            raising=False)
        K.clear_cache()
        yield
        K.clear_cache()

    def test_degrades_to_numpy_with_one_warning(self, no_numba):
        with pytest.warns(RuntimeWarning, match="numba kernel backend "
                                                "unavailable"):
            backend = K.get_kernels("numba")
        assert backend.name == "numpy"
        with warnings.catch_warnings():  # second resolve: silent
            warnings.simplefilter("error")
            assert K.get_kernels("numba").name == "numpy"

    def test_index_still_works_on_fallback(self, no_numba):
        rng = np.random.default_rng(5)
        keys = np.unique(rng.uniform(0, 1e6, 800))
        with pytest.warns(RuntimeWarning):
            index = AlexIndex.bulk_load(
                keys, config=ga_armi(kernel_backend="numba"))
        assert index.contains_many(keys[:50]).all()
        assert [index.contains(float(k)) for k in keys[:20]] == [True] * 20
        index.insert(keys.max() + 1.0, "new")
        index.validate()

    def test_auto_still_resolves_silently(self, no_numba):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            backend = K.get_kernels("auto")
        assert backend.name in ("cffi", "numpy")


@pytest.mark.parametrize("name", COMPILED)
class TestWarmup:
    """Compiled backends pay compilation at provisioning, never on the
    request path."""

    def test_warm_is_idempotent_and_request_path_is_compile_free(self,
                                                                 name):
        backend = K.get_kernels(name)
        backend.warm()
        events = backend.compile_events()
        assert events >= 1  # something actually compiled or loaded
        backend.warm()
        assert backend.compile_events() == events

        # A full request mix on a provisioned index: still no events.
        rng = np.random.default_rng(11)
        keys = np.unique(rng.uniform(0, 1e7, 2000))
        index = AlexIndex.bulk_load(
            keys[:1500], config=ga_armi(max_keys_per_node=256,
                                        kernel_backend=name))
        index.get_many(rng.choice(keys, 300, replace=True), "MISS")
        index.insert_many(keys[1500:])
        for k in keys[:50]:
            index.lookup(float(k))
        for k in keys[1500:1520]:
            index.delete(float(k))
        assert backend.compile_events() == events

    def test_provisioned_sharded_service_request_path(self, name):
        from repro.serve import ShardedAlexIndex

        rng = np.random.default_rng(13)
        keys = np.unique(rng.uniform(0, 1e7, 3000))
        service = ShardedAlexIndex.bulk_load(
            keys, num_shards=3,
            config=ga_armi(max_keys_per_node=256, kernel_backend=name))
        backend = K.get_kernels(name)
        events = backend.compile_events()  # provisioning already warmed
        assert events >= 1
        service.get_many(rng.choice(keys, 400, replace=True), "MISS")
        service.insert_many(np.setdiff1d(
            np.unique(rng.uniform(0, 1e7, 300)), keys))
        assert backend.compile_events() == events
        service.close()
