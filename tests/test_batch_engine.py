"""Property-based equivalence tests for the batch execution engine.

The batch engine (vectorized routing, lock-step in-node search, batched
point reads) must produce results *identical* to the scalar code paths.
These tests drive seeded-random scenarios across both node layouts, both
RMI modes, cold-started and bulk-loaded indexes, and batch sizes
{1, 7, 1000}, checking `lookup_many` / `get_many` / `contains_many` /
`route_many` / the vectorized model-based build against scalar execution.

The whole module additionally runs once per *available kernel backend*
(numpy always; numba/cffi when their toolchains work): the autouse
fixture below sets the process-default backend, which every config built
by these tests inherits, so scalar/batch equivalence — results and
counters — is asserted under the compiled kernels too.
"""

import zlib

import numpy as np
import pytest

from repro.core.alex import AlexIndex
from repro.core.batch import bulk_insert
from repro.core.config import ga_armi, ga_srmi, pma_armi, pma_srmi
from repro.core.errors import KeyNotFoundError
from repro.core.gapped_array import GappedArrayNode
from repro.core.kernels import available_backends
from repro.core.pma import PMANode
from repro.core.rmi import InnerNode
from repro.core.stats import Counters


@pytest.fixture(params=available_backends(), autouse=True,
                ids=lambda name: f"kernels-{name}")
def kernel_backend(request, monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", request.param)
    return request.param


CONFIGS = {
    "ga-srmi": lambda: ga_srmi(num_models=16),
    "ga-armi": lambda: ga_armi(max_keys_per_node=256),
    "pma-srmi": lambda: pma_srmi(num_models=16),
    "pma-armi": lambda: pma_armi(max_keys_per_node=256),
}
BATCH_SIZES = (1, 7, 1000)


def _seed(parts) -> int:
    """Deterministic per-case seed (str hash() is randomized per run)."""
    return zlib.crc32(repr(parts).encode())


def build_bulk_loaded(config, rng, n=3000):
    keys = np.unique(rng.uniform(0, 1e9, n + 200))[:n]
    payloads = [f"p{i}" for i in range(len(keys))]
    return AlexIndex.bulk_load(keys, payloads, config=config), keys


def build_cold_start(config, rng, n=600):
    keys = np.unique(rng.uniform(0, 1e9, n + 50))[:n]
    index = AlexIndex(config)
    for i in rng.permutation(len(keys)):
        index.insert(float(keys[i]), f"p{int(i)}")
    return index, keys


BUILDERS = {"bulk-loaded": build_bulk_loaded, "cold-start": build_cold_start}


def probe_mix(keys, rng, size):
    """Half present keys, half uniform-random (mostly absent), shuffled."""
    hits = rng.choice(keys, size - size // 2, replace=True)
    misses = rng.uniform(-1e8, 1.1e9, size // 2)
    probes = np.concatenate([hits, misses])
    rng.shuffle(probes)
    return probes


@pytest.mark.parametrize("builder", BUILDERS, ids=list(BUILDERS))
@pytest.mark.parametrize("variant", CONFIGS, ids=list(CONFIGS))
@pytest.mark.parametrize("batch_size", BATCH_SIZES)
class TestBatchReadEquivalence:
    def test_get_and_contains_match_scalar(self, variant, builder, batch_size):
        rng = np.random.default_rng(_seed((variant, builder, batch_size)))
        index, keys = BUILDERS[builder](CONFIGS[variant](), rng)
        probes = probe_mix(keys, rng, batch_size)

        scalar_get = [index.get(float(k), "MISS") for k in probes]
        scalar_contains = [index.contains(float(k)) for k in probes]

        assert index.get_many(probes, "MISS") == scalar_get
        assert index.contains_many(probes).tolist() == scalar_contains

    def test_lookup_many_matches_scalar_on_hits(self, variant, builder,
                                                batch_size):
        rng = np.random.default_rng(_seed(("hits", variant, builder,
                                           batch_size)))
        index, keys = BUILDERS[builder](CONFIGS[variant](), rng)
        probes = rng.choice(keys, batch_size, replace=True)
        assert index.lookup_many(probes) == [index.lookup(float(k))
                                             for k in probes]

    def test_lookup_many_raises_on_any_miss(self, variant, builder,
                                            batch_size):
        rng = np.random.default_rng(_seed(("miss", variant, builder,
                                           batch_size)))
        index, keys = BUILDERS[builder](CONFIGS[variant](), rng)
        probes = rng.choice(keys, batch_size, replace=True)
        probes[rng.integers(len(probes))] = -12345.6  # guaranteed absent
        with pytest.raises(KeyNotFoundError):
            index.lookup_many(probes)


@pytest.mark.parametrize("variant", CONFIGS, ids=list(CONFIGS))
class TestRouteManyEquivalence:
    def test_groups_match_scalar_routing(self, variant):
        rng = np.random.default_rng(5150)
        index, keys = build_bulk_loaded(CONFIGS[variant](), rng)
        probes = np.sort(probe_mix(keys, rng, 500))
        groups = index._route_many(probes)
        # Groups tile [0, n) in order, and every key lands in the same
        # leaf (with the same parent) the scalar traversal chooses.
        expected_lo = 0
        for leaf, parent, lo, hi in groups:
            assert lo == expected_lo and hi > lo
            expected_lo = hi
            for key in probes[lo:hi:17]:
                scalar_leaf, scalar_parent = index._route(float(key))
                assert scalar_leaf is leaf
                assert scalar_parent is parent
        assert expected_lo == len(probes)

    def test_inner_node_route_many_boundaries(self, variant):
        rng = np.random.default_rng(51)
        index, keys = build_bulk_loaded(CONFIGS[variant](), rng)
        if not isinstance(index._root, InnerNode):
            pytest.skip("root is a single leaf")
        probes = np.sort(rng.choice(keys, 300, replace=True))
        leaves, bounds = index._root.route_many(probes)
        assert len(bounds) == len(leaves) + 1
        assert bounds[0] == 0 and bounds[-1] == len(probes)
        for leaf, lo, hi in zip(leaves, bounds[:-1], bounds[1:]):
            for key in probes[lo:hi:11]:
                assert index._route(float(key))[0] is leaf


class TestVectorizedBuildEquivalence:
    """The np.maximum.accumulate placement must reproduce the sequential
    collision-resolution loop slot for slot."""

    @staticmethod
    def scalar_placement(predicted, n, capacity):
        out = []
        last = -1
        for i in range(n):
            pos = int(predicted[i])
            if pos <= last:
                pos = last + 1
            max_pos = capacity - (n - i)
            if pos > max_pos:
                pos = max_pos
            out.append(pos)
            last = pos
        return out

    @pytest.mark.parametrize("node_cls", [GappedArrayNode, PMANode],
                             ids=["ga", "pma"])
    @pytest.mark.parametrize("n", [0, 1, 5, 100, 1000])
    def test_build_slots_match_scalar_loop(self, node_cls, n):
        rng = np.random.default_rng(n + 1)
        keys = np.unique(rng.uniform(0, 1e6, n + 10))[:n]
        node = node_cls(ga_armi(), Counters())
        node.build(keys, [f"v{i}" for i in range(n)])
        node.check_invariants()
        if node.model is not None:
            predicted = node.model.predict_pos_vec(keys, node.capacity)
            expected = self.scalar_placement(predicted, n, node.capacity)
            assert np.flatnonzero(node.occupied).tolist() == expected
        # Round-trip: the node holds exactly the built keys and payloads.
        out_keys, out_payloads = node.export_sorted()
        assert out_keys.tolist() == keys.tolist()
        assert out_payloads == [f"v{i}" for i in range(n)]

    def test_adversarial_clustered_predictions(self):
        # Keys nearly identical: the model predicts one slot for everything
        # and the collision cascade plus the trailing-room cap must still
        # produce a legal, order-preserving placement.
        keys = 1000.0 + np.arange(200) * 1e-9
        node = GappedArrayNode(ga_armi(), Counters())
        node.build(keys)
        node.check_invariants()
        assert node.num_keys == 200


class TestFindKeysMany:
    @pytest.mark.parametrize("node_cls", [GappedArrayNode, PMANode],
                             ids=["ga", "pma"])
    @pytest.mark.parametrize("n", [0, 3, 40, 400])
    def test_matches_scalar_find_key(self, node_cls, n):
        rng = np.random.default_rng(n + 7)
        keys = np.unique(rng.uniform(0, 1e6, n + 10))[:n]
        node = node_cls(ga_armi(), Counters())
        node.build(keys)
        probes = np.concatenate([keys, rng.uniform(-1e5, 1.2e6, 50)])
        rng.shuffle(probes)
        scalar = [node.find_key(float(k)) for k in probes]
        assert node.find_keys_many(probes).tolist() == scalar

    def test_counters_match_scalar_totals(self):
        # Aggregated batch counters equal the sum of per-key scalar charges.
        rng = np.random.default_rng(77)
        keys = np.unique(rng.uniform(0, 1e6, 500))
        probes = probe_mix(keys, rng, 300)

        scalar_node = GappedArrayNode(ga_armi(), Counters())
        scalar_node.build(keys)
        scalar_node.counters.reset()
        for k in probes:
            scalar_node.find_key(float(k))

        batch_node = GappedArrayNode(ga_armi(), Counters())
        batch_node.build(keys)
        batch_node.counters.reset()
        batch_node.find_keys_many(probes)

        assert (batch_node.counters.probes
                == scalar_node.counters.probes)
        assert (batch_node.counters.comparisons
                == scalar_node.counters.comparisons)
        assert (batch_node.counters.model_inferences
                == scalar_node.counters.model_inferences)


class TestBulkInsertEquivalence:
    @pytest.mark.parametrize("variant", CONFIGS, ids=list(CONFIGS))
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_same_contents_as_scalar_inserts(self, variant, batch_size):
        rng = np.random.default_rng(_seed((variant, batch_size)))
        keys = np.unique(rng.uniform(0, 1e9, 2000 + batch_size))
        init, batch = keys[:2000], keys[2000:2000 + batch_size]
        rng.shuffle(batch)

        batched = AlexIndex.bulk_load(init, config=CONFIGS[variant]())
        bulk_insert(batched, batch, [f"b{i}" for i in range(len(batch))])

        scalar = AlexIndex.bulk_load(init, config=CONFIGS[variant]())
        for i, key in enumerate(batch):
            scalar.insert(float(key), f"b{i}")

        assert list(batched.keys()) == list(scalar.keys())
        assert batched.lookup_many(batch) == [f"b{i}"
                                              for i in range(len(batch))]
        batched.validate()


class TestInsertManyEquivalence:
    """insert_many (the method bulk_insert now delegates to) must leave the
    index identical to a scalar insert loop, split handling included."""

    @pytest.mark.parametrize("variant", CONFIGS, ids=list(CONFIGS))
    def test_method_matches_scalar_inserts_with_splits(self, variant):
        rng = np.random.default_rng(_seed(("insert_many", variant)))
        keys = np.unique(rng.uniform(0, 1e9, 4000))
        init, batch = keys[:2500], keys[2500:]
        rng.shuffle(batch)

        batched = AlexIndex.bulk_load(init, config=CONFIGS[variant]())
        batched.insert_many(batch, [f"b{i}" for i in range(len(batch))])

        scalar = AlexIndex.bulk_load(init, config=CONFIGS[variant]())
        for i, key in enumerate(batch):
            scalar.insert(float(key), f"b{i}")

        assert list(batched.keys()) == list(scalar.keys())
        assert len(batched) == len(scalar)
        batched.validate()

    def test_all_or_nothing_on_duplicates(self):
        from repro.core.errors import DuplicateKeyError

        rng = np.random.default_rng(_seed("atomic"))
        keys = np.unique(rng.uniform(0, 1e9, 1000))
        index = AlexIndex.bulk_load(keys, config=ga_armi())
        before = list(index.keys())
        poisoned = np.concatenate([rng.uniform(2e9, 3e9, 50), keys[:1]])
        with pytest.raises(DuplicateKeyError):
            index.insert_many(poisoned)
        assert list(index.keys()) == before


@pytest.mark.parametrize("variant", CONFIGS, ids=list(CONFIGS))
@pytest.mark.parametrize("batch_size", BATCH_SIZES)
class TestRangeQueryManyEquivalence:
    def test_matches_scalar_range_query(self, variant, batch_size):
        rng = np.random.default_rng(_seed(("rq", variant, batch_size)))
        index, keys = build_bulk_loaded(CONFIGS[variant](), rng)
        los = rng.uniform(-1e8, 1.1e9, batch_size)
        his = los + rng.uniform(0, 2e8, batch_size)
        his[::7] = los[::7] - 1.0  # inverted bounds yield empty results
        batch = index.range_query_many(los, his)
        scalar = [index.range_query(float(lo), float(hi))
                  for lo, hi in zip(los, his)]
        assert batch == scalar

    def test_unsorted_bounds_return_in_input_order(self, variant,
                                                   batch_size):
        rng = np.random.default_rng(_seed(("rqo", variant, batch_size)))
        index, keys = build_bulk_loaded(CONFIGS[variant](), rng)
        los = rng.choice(keys, batch_size, replace=True)[::-1].copy()
        his = los + 5e7
        batch = index.range_query_many(los, his)
        for result, lo, hi in zip(batch, los, his):
            assert result == index.range_query(float(lo), float(hi))


class TestScalarFastPath:
    """The single-key fast path must stay observationally identical to the
    batch engine with a one-element batch."""

    @pytest.mark.parametrize("variant", CONFIGS, ids=list(CONFIGS))
    def test_results_match_single_element_batches(self, variant):
        rng = np.random.default_rng(_seed(("fast", variant)))
        index, keys = build_bulk_loaded(CONFIGS[variant](), rng)
        for key in probe_mix(keys, rng, 60):
            key = float(key)
            assert (index.get(key, "MISS")
                    == index.get_many(np.array([key]), "MISS")[0])
            assert index.contains(key) == bool(
                index.contains_many(np.array([key]))[0])
        for key in rng.choice(keys, 40):
            key = float(key)
            assert index.lookup(key) == index.lookup_many(np.array([key]))[0]
        with pytest.raises(KeyNotFoundError):
            index.lookup(-777.0)

    def test_lookup_counter_parity_with_batch(self):
        rng = np.random.default_rng(_seed("fastcnt"))
        index, keys = build_bulk_loaded(ga_armi(), rng)
        hits = rng.choice(keys, 100, replace=True)
        index.counters.reset()
        for key in hits:
            index.lookup(float(key))
        scalar_lookups = index.counters.lookups
        index.counters.reset()
        index.lookup_many(hits)
        assert index.counters.lookups == scalar_lookups == 100


class TestWorkloadRunnerBatching:
    def test_batched_reads_identical_tallies(self):
        from repro.workloads import READ_HEAVY
        from repro.workloads.runner import run_workload

        rng = np.random.default_rng(4242)
        keys = np.unique(rng.uniform(0, 1e8, 2500))
        init, inserts = keys[:2000], keys[2000:]

        tallies = {}
        for read_batch in (1, 64):
            index = AlexIndex.bulk_load(init, config=ga_armi())
            result = run_workload(index, init.copy(), inserts.copy(),
                                  READ_HEAVY, 800, seed=3,
                                  read_batch=read_batch)
            tallies[read_batch] = result
            index.validate()
        assert tallies[1].reads == tallies[64].reads
        assert tallies[1].inserts == tallies[64].inserts
        assert tallies[1].ops == tallies[64].ops
        # Batching only amortizes traversal work; it never adds any.
        assert (tallies[64].work.pointer_follows
                <= tallies[1].work.pointer_follows)

    def test_batched_writes_identical_contents_and_tallies(self):
        from repro.workloads import WRITE_HEAVY
        from repro.workloads.runner import run_workload

        rng = np.random.default_rng(2424)
        keys = np.unique(rng.uniform(0, 1e8, 3500))
        init, inserts = keys[:2500], keys[2500:]

        contents = {}
        tallies = {}
        for write_batch in (1, 64):
            index = AlexIndex.bulk_load(init, config=ga_armi())
            result = run_workload(index, init.copy(), inserts.copy(),
                                  WRITE_HEAVY, 900, seed=5,
                                  write_batch=write_batch)
            tallies[write_batch] = result
            contents[write_batch] = list(index.keys())
            index.validate()
        assert tallies[1].inserts == tallies[64].inserts
        assert tallies[1].reads == tallies[64].reads
        assert tallies[1].scans == tallies[64].scans
        assert tallies[1].scanned_records == tallies[64].scanned_records
        assert tallies[1].ops == tallies[64].ops
        assert contents[1] == contents[64]
