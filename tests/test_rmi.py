"""Unit tests for repro.core.rmi (inner nodes, static RMI builder)."""

import numpy as np

from repro.core.config import AlexConfig, STATIC_RMI, PACKED_MEMORY_ARRAY
from repro.core.linear_model import LinearModel
from repro.core.pma import PMANode
from repro.core.rmi import (
    InnerNode,
    build_static_rmi,
    link_leaves,
    make_data_node,
    partition_by_model,
)
from repro.core.stats import Counters


def build(keys, num_models=8, **overrides):
    config = AlexConfig(rmi_mode=STATIC_RMI, num_models=num_models, **overrides)
    counters = Counters()
    keys = np.asarray(keys, dtype=np.float64)
    root, leaves = build_static_rmi(keys, [None] * len(keys), config, counters)
    return root, leaves, counters


class TestPartitionByModel:
    def test_bounds_cover_all_keys(self):
        keys = np.sort(np.random.default_rng(0).uniform(0, 100, 200))
        model = LinearModel.train_cdf(keys, 10)
        bounds = partition_by_model(keys, model, 10)
        assert bounds[0] == 0
        assert bounds[-1] == len(keys)
        assert (np.diff(bounds) >= 0).all()

    def test_assignment_matches_routing(self):
        keys = np.sort(np.random.default_rng(1).uniform(0, 100, 300))
        model = LinearModel.train_cdf(keys, 16)
        bounds = partition_by_model(keys, model, 16)
        for slot in range(16):
            for i in range(int(bounds[slot]), int(bounds[slot + 1])):
                assert model.predict_pos(float(keys[i]), 16) == slot

    def test_empty_keys(self):
        bounds = partition_by_model(np.empty(0), LinearModel(), 4)
        assert bounds.tolist() == [0, 0, 0, 0, 0]


class TestInnerNode:
    def test_route_slot_uses_model(self):
        counters = Counters()
        model = LinearModel.train_endpoints(0.0, 100.0, 4)
        node = InnerNode(model, ["a", "b", "c", "d"], counters)
        assert node.children[node.route_slot(10.0)] == "a"
        assert node.children[node.route_slot(90.0)] == "d"
        assert counters.model_inferences == 2

    def test_child_for_counts_pointer_follow(self):
        counters = Counters()
        model = LinearModel.train_endpoints(0.0, 10.0, 2)
        node = InnerNode(model, ["x", "y"], counters)
        node.child_for(1.0)
        assert counters.pointer_follows == 1

    def test_replace_child_redirects_all_slots(self):
        node = InnerNode(LinearModel(), ["a", "a", "b"], Counters())
        node.replace_child("a", "z")
        assert node.children == ["z", "z", "b"]

    def test_distinct_children_collapses_runs(self):
        node = InnerNode(LinearModel(), ["a", "a", "b", "b", "b", "c"],
                         Counters())
        assert node.distinct_children() == ["a", "b", "c"]

    def test_size_accounts_model_pointers_metadata(self):
        node = InnerNode(LinearModel(), [None] * 10, Counters())
        assert node.size_bytes() == 16 + 10 * 8 + 16


class TestBuildStaticRmi:
    def test_all_keys_routable(self):
        rng = np.random.default_rng(2)
        keys = np.sort(np.unique(rng.uniform(0, 1000, 500)))
        root, leaves, _ = build(keys, num_models=16)
        for key in keys[::7]:
            leaf = root.child_for(float(key))
            assert leaf.contains(float(key))

    def test_one_distinct_leaf_per_model(self):
        keys = np.sort(np.unique(np.random.default_rng(3).uniform(0, 100, 300)))
        root, leaves, _ = build(keys, num_models=8)
        assert len(leaves) == 8
        assert root.num_slots == 8

    def test_leaves_linked_in_key_order(self):
        keys = np.sort(np.unique(np.random.default_rng(4).uniform(0, 100, 400)))
        _, leaves, _ = build(keys, num_models=8)
        chained = []
        leaf = leaves[0]
        while leaf is not None:
            chained.extend(k for k, _ in leaf.iter_items())
            leaf = leaf.next_leaf
        assert chained == keys.tolist()

    def test_skewed_keys_waste_models(self):
        # Paper Section 3.4: a skewed distribution leaves most static-RMI
        # leaves nearly empty (the "wasted models" problem).
        rng = np.random.default_rng(5)
        keys = np.sort(np.unique(rng.lognormal(0, 2, 2000)))
        _, leaves, _ = build(keys, num_models=32)
        sizes = np.array([leaf.num_keys for leaf in leaves])
        assert (sizes < len(keys) / 64).sum() > len(leaves) / 4

    def test_empty_keys_yield_single_leaf(self):
        root, leaves, _ = build([], num_models=8)
        assert len(leaves) == 1
        assert leaves[0].num_keys == 0

    def test_pma_layout_honoured(self):
        keys = np.arange(200, dtype=np.float64)
        config = AlexConfig(rmi_mode=STATIC_RMI,
                            node_layout=PACKED_MEMORY_ARRAY, num_models=4)
        root, leaves = build_static_rmi(keys, [None] * 200, config, Counters())
        assert all(isinstance(leaf, PMANode) for leaf in leaves)


class TestLinkLeaves:
    def test_links_both_directions(self):
        config = AlexConfig()
        counters = Counters()
        leaves = []
        for start in range(0, 30, 10):
            leaf = make_data_node(config, counters)
            leaf.build(np.arange(start, start + 10, dtype=np.float64))
            leaves.append(leaf)
        link_leaves(leaves)
        assert leaves[0].prev_leaf is None
        assert leaves[0].next_leaf is leaves[1]
        assert leaves[2].prev_leaf is leaves[1]
        assert leaves[2].next_leaf is None

    def test_single_leaf_unlinked(self):
        leaf = make_data_node(AlexConfig(), Counters())
        leaf.build(np.arange(3, dtype=np.float64))
        link_leaves([leaf])
        assert leaf.next_leaf is None and leaf.prev_leaf is None
