"""Tests for the adaptive PMA extension (Section 7, data skew)."""

import numpy as np

from repro.core.config import AlexConfig
from repro.core.pma import PMANode
from repro.core.stats import Counters
from repro.ext.adaptive_pma import AdaptivePMANode


def make_node(keys=None):
    node = AdaptivePMANode(AlexConfig(), Counters())
    node.build(np.asarray(keys if keys is not None else [], dtype=np.float64))
    return node


class TestCorrectness:
    def test_behaves_like_plain_pma_on_lookups(self):
        rng = np.random.default_rng(9)
        keys = np.sort(np.unique(rng.uniform(0, 1000, 300)))
        node = make_node(keys)
        for key in keys[::7]:
            assert node.contains(float(key))
        node.check_invariants()
        node.check_pma_invariants()

    def test_random_insert_delete_sequence(self):
        rng = np.random.default_rng(10)
        node = make_node(np.arange(0, 100, dtype=np.float64))
        live = set(float(k) for k in range(100))
        for _ in range(1500):
            if rng.random() < 0.7:
                key = float(rng.uniform(0, 1000))
                if key not in live:
                    node.insert(key)
                    live.add(key)
            elif live:
                victim = live.pop()
                node.delete(victim)
        node.check_invariants()
        assert node.num_keys == len(live)

    def test_sequential_inserts_stay_valid(self):
        node = make_node(np.arange(128, dtype=np.float64))
        for key in np.arange(128.0, 3000.0):
            node.insert(float(key))
        node.check_invariants()
        node.check_pma_invariants()
        assert node.num_keys == 3000


class TestHotspotPredictor:
    def test_hotness_tracks_insert_location(self):
        node = make_node(np.arange(0, 512, 2, dtype=np.float64))
        for key in np.arange(511.0, 560.0):  # hammer the right end
            node.insert(float(key))
        profile = node.hotspot_profile()
        # The hottest segment should be in the right half.
        assert int(np.argmax(profile)) >= len(profile) // 2

    def test_hotness_decays(self):
        node = make_node(np.arange(0, 512, 2, dtype=np.float64))
        node.insert(1.5)
        early = node.hotspot_profile().max()
        for key in np.arange(511.0, 600.0):
            node.insert(float(key))
        # The early left-end signal decayed below the right-end signal,
        # which by now exceeds the left end's old peak.
        profile = node.hotspot_profile()
        assert profile[0] < profile.max()
        assert profile.max() >= early

    def test_profile_resets_on_rebuild(self):
        node = make_node(np.arange(256, dtype=np.float64))
        node.insert(256.5)
        node.expand()
        assert node.hotspot_profile().sum() == 0


class TestAdaptiveRebalanceWins:
    def test_less_total_movement_on_sequential_inserts(self):
        # The Section 7 conjecture: the adaptive PMA handles the Fig. 5c
        # pattern better than the uniform-rebalance PMA.
        def run(cls):
            node = cls(AlexConfig(), Counters())
            node.build(np.arange(256.0))
            for key in np.arange(256.0, 4000.0):
                node.insert(float(key))
            node.check_invariants()
            return node.counters.shifts + node.counters.rebalance_moves

        plain = run(PMANode)
        adaptive = run(AdaptivePMANode)
        assert adaptive < plain

    def test_no_regression_on_uniform_inserts(self):
        def run(cls, seed=11):
            rng = np.random.default_rng(seed)
            keys = np.unique(rng.uniform(0, 1e6, 3000))
            node = cls(AlexConfig(), Counters())
            node.build(np.sort(keys[:256]))
            for key in keys[256:]:
                node.insert(float(key))
            node.check_invariants()
            return node.counters.shifts + node.counters.rebalance_moves

        plain = run(PMANode)
        adaptive = run(AdaptivePMANode)
        assert adaptive < 2.0 * plain  # at worst a modest constant factor
