"""Tests for the benchmark harness, tuning, and reporting modules."""

import numpy as np
import pytest

from repro.bench import (
    SYSTEMS,
    SystemParams,
    best_alex_variant_for,
    build_index,
    format_bytes,
    format_table,
    format_throughput,
    grid_search,
    learned_index_model_grid,
    ratio,
    run_experiment,
    static_model_grid,
)
from repro.baselines.bptree import BPlusTree
from repro.workloads import RANGE_SCAN, READ_HEAVY, READ_ONLY, WRITE_HEAVY


class TestBuildIndex:
    @pytest.mark.parametrize("system", SYSTEMS)
    def test_every_system_builds_and_looks_up(self, system):
        keys = np.unique(np.random.default_rng(91).uniform(0, 1e5, 800))
        index = build_index(system, keys, SystemParams(max_keys_per_node=256))
        for key in keys[::37]:
            index.lookup(float(key))
        assert index.index_size_bytes() > 0
        assert index.data_size_bytes() > 0

    def test_unknown_system_raises(self):
        with pytest.raises(ValueError):
            build_index("nope", np.array([1.0]))

    def test_space_overhead_parameter(self):
        keys = np.arange(1000, dtype=np.float64)
        lean = build_index("ALEX-GA-SRMI", keys,
                           SystemParams(space_overhead=0.2))
        fat = build_index("ALEX-GA-SRMI", keys,
                          SystemParams(space_overhead=2.0))
        assert fat.data_size_bytes() > lean.data_size_bytes()


class TestRunExperiment:
    @pytest.mark.parametrize("system", ["ALEX-GA-ARMI", "BPlusTree"])
    def test_experiment_produces_throughput(self, system):
        result = run_experiment(system, "lognormal", READ_HEAVY,
                                init_size=2000, num_ops=500, seed=1)
        assert result.ops == 500
        assert result.throughput > 0
        assert result.extras["inserts"] == 25

    def test_read_only_needs_no_insert_keys(self):
        result = run_experiment("ALEX-GA-SRMI", "ycsb", READ_ONLY,
                                init_size=1000, num_ops=300, seed=2)
        assert result.extras["inserts"] == 0

    def test_custom_keys_override(self):
        keys = np.arange(3000, dtype=np.float64)
        rng = np.random.default_rng(3)
        rng.shuffle(keys[:2000])
        result = run_experiment("BPlusTree", "longitudes", WRITE_HEAVY,
                                init_size=2000, num_ops=400, keys=keys)
        assert result.ops == 400

    def test_scan_workload(self):
        result = run_experiment("ALEX-GA-ARMI", "longitudes", RANGE_SCAN,
                                init_size=1500, num_ops=200, seed=4)
        assert result.extras["scanned_records"] > 0


class TestVariantSelection:
    def test_paper_variant_per_workload(self):
        assert best_alex_variant_for(READ_ONLY) == "ALEX-GA-SRMI"
        assert best_alex_variant_for(READ_HEAVY) == "ALEX-GA-ARMI"
        assert best_alex_variant_for(WRITE_HEAVY) == "ALEX-GA-ARMI"
        assert best_alex_variant_for(READ_HEAVY, shifting=True) == "ALEX-PMA-ARMI"


class TestTuning:
    def test_grid_search_returns_best_param(self):
        keys = np.unique(np.random.default_rng(92).uniform(0, 1e6, 3000))
        init, inserts = keys[:2500], keys[2500:]

        def build(page_size):
            return BPlusTree.bulk_load(init, page_size=page_size)

        result = grid_search(build, (128, 1024), init, inserts, READ_HEAVY,
                             300, seed=5)
        assert result.parameter in (128, 1024)
        assert result.throughput > 0

    def test_grid_search_tunes_alex_max_keys(self):
        from repro.bench import build_index
        keys = np.unique(np.random.default_rng(93).uniform(0, 1e6, 4000))
        init, inserts = keys[:3000], keys[3000:]

        def build(max_keys):
            return build_index("ALEX-GA-ARMI", init,
                               SystemParams(max_keys_per_node=max_keys))

        result = grid_search(build, (256, 1024), init, inserts,
                             WRITE_HEAVY, 400, seed=6)
        assert result.parameter in (256, 1024)

    def test_learned_index_grid_respects_cap(self):
        grid = learned_index_model_grid(100_000)
        assert max(grid) <= 100_000 // 2000
        assert min(grid) >= 1

    def test_static_model_grid_scales_with_n(self):
        assert max(static_model_grid(64_000)) == 1000


class TestReport:
    def test_format_table_aligns_columns(self):
        table = format_table(["a", "long-header"], [[1, 2.5], ["xx", 3]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "long-header" in lines[0]

    def test_format_throughput_scales(self):
        assert format_throughput(2.5e6) == "2.50 Mops/s"
        assert format_throughput(3.2e3) == "3.20 Kops/s"
        assert format_throughput(12.0) == "12.0 ops/s"

    def test_format_bytes_scales(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.0 KiB"
        assert "MiB" in format_bytes(5 * 1024 * 1024)

    def test_ratio(self):
        assert ratio(10, 4) == "2.50x"
        assert ratio(1, 0) == "inf"
