"""Tests for the programmatic experiment suite."""

import pytest

from repro.bench.suite import (
    HEADLINE_DATASETS,
    HEADLINE_WORKLOADS,
    SuiteReport,
    run_headline_suite,
)
from repro.bench import SystemParams


@pytest.fixture(scope="module")
def report():
    return run_headline_suite(init_size=1200, num_ops=600,
                              params=SystemParams(keys_per_model=128,
                                                  max_keys_per_node=256),
                              seed=3)


class TestSuiteShape:
    def test_full_grid_covered(self, report):
        assert report.cells() == len(HEADLINE_WORKLOADS) * len(HEADLINE_DATASETS)
        assert len(report.results) == 2 * report.cells()

    def test_by_retrieves_cells(self, report):
        cell = report.by("read-only", "ycsb", "BPlusTree")
        assert cell.system == "BPlusTree"
        with pytest.raises(KeyError):
            report.by("read-only", "ycsb", "NotASystem")

    def test_ratios_positive(self, report):
        for ratio in report.throughput_ratios().values():
            assert ratio > 0


class TestHeadlineClaims:
    def test_alex_wins_most_cells(self, report):
        assert report.wins() >= report.cells() * 0.75

    def test_max_ratios_in_paper_direction(self, report):
        assert report.max_throughput_ratio() > 1.3
        assert report.max_index_size_ratio() > 3.0


class TestEmptyReport:
    def test_accessors_on_empty(self):
        report = SuiteReport()
        assert report.results == []
        assert report.throughput_ratios() == {}
        assert report.cells() == 0
