"""Failure injection: corrupted structures must be *detected*, failed
operations must leave the index unchanged (strong exception safety for the
paths that promise it), and killed shard workers must be respawned from
their durable state without losing an acknowledged write."""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.baselines.bptree import BPlusTree
from repro.core.alex import AlexIndex
from repro.core.config import ga_armi, ga_srmi
from repro.core.data_node import GAP_SENTINEL
from repro.core.errors import DuplicateKeyError, KeyNotFoundError
from repro import obs
from repro.core.rmi import InnerNode


@pytest.fixture
def index():
    keys = np.unique(np.random.default_rng(151).uniform(0, 1e6, 2000))
    return AlexIndex.bulk_load(keys, config=ga_armi(max_keys_per_node=256))


def snapshot(index):
    return list(index.items()), len(index)


class TestValidateDetectsCorruption:
    def test_swapped_keys_in_leaf(self, index):
        leaf = next(iter(index.leaves()))
        positions = np.flatnonzero(leaf.occupied)
        leaf.keys[positions[0]], leaf.keys[positions[-1]] = (
            leaf.keys[positions[-1]], leaf.keys[positions[0]])
        with pytest.raises(AssertionError):
            index.validate()

    def test_wrong_num_keys(self, index):
        next(iter(index.leaves())).num_keys += 1
        with pytest.raises(AssertionError):
            index.validate()

    def test_broken_leaf_chain_order(self, index):
        leaves = list(index.leaves())
        if len(leaves) < 3:
            pytest.skip("needs several leaves")
        # Swap two adjacent leaves in the chain only (tree untouched).
        a, b = leaves[1], leaves[2]
        prev_leaf, next_leaf = a.prev_leaf, b.next_leaf
        prev_leaf.next_leaf = b
        b.prev_leaf = prev_leaf
        b.next_leaf = a
        a.prev_leaf = b
        a.next_leaf = next_leaf
        if next_leaf is not None:
            next_leaf.prev_leaf = a
        with pytest.raises(AssertionError):
            index.validate()

    def test_chain_dropped_leaf(self, index):
        leaves = list(index.leaves())
        if len(leaves) < 3:
            pytest.skip("needs several leaves")
        # Unlink one leaf from the chain while it stays in the tree.
        victim = leaves[1]
        victim.prev_leaf.next_leaf = victim.next_leaf
        victim.next_leaf.prev_leaf = victim.prev_leaf
        with pytest.raises(AssertionError):
            index.validate()

    def test_misrouted_child(self, index):
        root = index._root
        if not isinstance(root, InnerNode):
            pytest.skip("single-leaf tree")
        distinct = root.distinct_children()
        if len(distinct) < 2:
            pytest.skip("needs two children")
        # Point the first slot at the last child: min-key routing breaks.
        root.children[0] = root.children[-1]
        with pytest.raises(AssertionError):
            index.validate()

    def test_stale_total_count(self, index):
        index._num_keys += 5
        with pytest.raises(AssertionError):
            index.validate()

    def test_corrupted_gap_fill_value(self, index):
        for leaf in index.leaves():
            gaps = np.flatnonzero(~leaf.occupied)
            interior = [g for g in gaps if leaf.keys[g] != GAP_SENTINEL]
            if interior:
                leaf.keys[interior[0]] -= 1.0
                break
        else:
            pytest.skip("no interior gaps found")
        with pytest.raises(AssertionError):
            index.validate()


class TestExceptionSafety:
    def test_duplicate_insert_leaves_index_unchanged(self, index):
        items, size = snapshot(index)
        victim = items[123][0]
        with pytest.raises(DuplicateKeyError):
            index.insert(victim, "overwrite-attempt")
        assert snapshot(index) == (items, size)
        assert index.lookup(victim) == items[123][1]

    def test_failed_delete_leaves_index_unchanged(self, index):
        items, size = snapshot(index)
        with pytest.raises(KeyNotFoundError):
            index.delete(-1e12)
        assert snapshot(index) == (items, size)

    def test_failed_update_leaves_index_unchanged(self, index):
        items, size = snapshot(index)
        with pytest.raises(KeyNotFoundError):
            index.update(-1e12, "x")
        assert snapshot(index) == (items, size)

    def test_failed_bulk_load_builds_nothing_usable(self):
        with pytest.raises(DuplicateKeyError):
            AlexIndex.bulk_load([1.0, 1.0, 2.0])

    def test_bptree_duplicate_insert_unchanged(self):
        tree = BPlusTree.bulk_load(np.arange(500.0), page_size=128)
        before = list(tree.items())
        with pytest.raises(DuplicateKeyError):
            tree.insert(250.0)
        assert list(tree.items()) == before
        tree.validate()


class TestRecoveryAfterHeavyChurn:
    @pytest.mark.parametrize("factory", [ga_srmi, ga_armi])
    def test_index_survives_pathological_mix(self, factory):
        # Churn one narrow key region hard: repeated insert/delete of the
        # same keys stresses expansion/contraction cycling.
        index = AlexIndex.bulk_load(np.arange(0.0, 1000.0),
                                    config=factory(num_models=8,
                                                   max_keys_per_node=256))
        hot = np.arange(500.0, 520.0) + 0.5
        for round_no in range(50):
            for key in hot:
                index.insert(float(key))
            for key in hot:
                index.delete(float(key))
        index.validate()
        assert len(index) == 1000

    def test_interleaved_scan_during_churn(self, index):
        rng = np.random.default_rng(152)
        sorted_keys = np.sort([k for k, _ in index.items()])
        for _ in range(200):
            key = float(rng.uniform(0, 1e6))
            if not index.contains(key):
                index.insert(key)
            out = index.range_scan(float(rng.choice(sorted_keys)), 20)
            got = [k for k, _ in out]
            assert got == sorted(got)
        index.validate()


class TestWorkerCrashMidWorkload:
    """Durability-backed crash recovery for the serving tier: SIGKILL a
    shard worker in the middle of a live workload and require the service
    to keep serving (respawn from checkpoint + WAL) with every
    acknowledged write intact."""

    def test_kill_mid_workload_service_self_heals(self, tmp_path):
        from repro.workloads import run_crash_recovery_scenario
        result = run_crash_recovery_scenario(
            str(tmp_path / "dur"), num_keys=2000, num_ops=600,
            spec="write-heavy", backend="process", num_shards=2,
            fsync="off", kill_worker_at=0.4, seed=31)
        assert result["worker_killed"]
        assert result["ops"] == 600  # the stream never stalled
        assert result["contents_match"], result

    def test_kill_during_two_phase_apply_keeps_batch_atomic(self,
                                                            tmp_path):
        """Kill a worker *between* the write-ahead append and its apply:
        the respawned shard must surface the batch (its WAL frame was
        logged) so the cross-shard batch stays all-or-nothing."""
        from repro.serve import ShardedAlexIndex

        keys = np.unique(np.random.default_rng(32).uniform(0, 1e6, 3000))
        service = ShardedAlexIndex.bulk_load(
            keys, num_shards=3, backend="process",
            durability_dir=str(tmp_path / "dur"), fsync="off",
            checkpoint_every=1 << 30)
        try:
            original_scatter = service.backend.scatter_batch
            killed = {}

            def scatter_with_kill(batch, jobs):
                # First apply-phase scatter: kill one involved worker
                # just before the requests go out.
                if (not killed
                        and any(m == "insert_sorted_unchecked"
                                for _, m, _, _, _ in jobs)):
                    victim = jobs[0][0]
                    os.kill(service.backend.worker_pids()[victim],
                            signal.SIGKILL)
                    killed["shard"] = victim
                    time.sleep(0.1)
                return original_scatter(batch, jobs)

            service.backend.scatter_batch = scatter_with_kill
            batch = np.unique(
                np.random.default_rng(33).uniform(0, 1e6, 200))
            batch = batch[~np.isin(batch, keys)]
            service.insert_many(batch)  # acked despite the crash
            service.backend.scatter_batch = original_scatter

            assert killed, "the kill hook never fired"
            expected = set(keys.tolist()) | set(batch.tolist())
            assert {k for k, _ in service.items()} == expected
            service.validate()
        finally:
            service.close()


class TestReplicaFailover:
    """SIGKILL a primary mid-workload with replication on: the shard's
    replica must *promote* (never cold-respawn from checkpoint), every
    acknowledged write must stay readable, and once promotion settles no
    read may fail."""

    def test_promotion_serves_through_primary_crash(self, tmp_path):
        from repro.serve import ReadOptions, ShardedAlexIndex

        keys = np.arange(3000, dtype=np.float64)
        service = ShardedAlexIndex.bulk_load(
            keys, num_shards=2, backend="process",
            durability_dir=str(tmp_path / "dur"), fsync="batch",
            checkpoint_every=1 << 30, replicate=True)
        try:
            # The obs registry is process-global and cumulative across
            # tests; assert on deltas from this baseline.
            base = service.metrics_snapshot()["merged"]["counters"]
            acked = []
            read_errors = []
            stop = threading.Event()

            def reader():
                # Concurrent primary and replica reads throughout the
                # crash: none may ever surface an error to the client.
                rng = np.random.default_rng(7)
                while not stop.is_set():
                    key = float(rng.choice(keys))
                    try:
                        service.lookup(key)
                        service.lookup(key, options="replica_ok")
                    except Exception as exc:  # pragma: no cover
                        read_errors.append(exc)

            thread = threading.Thread(target=reader)
            thread.start()
            victim = service.backend.worker_pids()[1]
            try:
                for i in range(40):
                    # All batches land on shard 1, the one whose
                    # primary dies: writes in flight across the crash.
                    batch = 10_000.0 + 100 * i + np.arange(
                        60, dtype=np.float64)
                    service.insert_many(batch)
                    acked.extend(batch.tolist())
                    if i == 15:
                        os.kill(victim, signal.SIGKILL)
            finally:
                stop.set()
                thread.join(timeout=30)

            assert not read_errors, read_errors[0]
            counters = service.metrics_snapshot()["merged"]["counters"]

            def delta(name):
                return counters.get(name, 0) - base.get(name, 0)

            if obs.enabled():
                # Counters only record with the obs layer on (the
                # REPRO_OBS=off suite still proves failover worked via
                # the functional asserts below).
                assert delta("serve.replica_promotions") >= 1
                # The replica path served the crash — the cold
                # checkpoint-replay respawn never ran.
                assert delta("serve.worker_respawns") == 0
            # Every acked write is readable, including under the
            # strictest consistency the API offers.
            opts = ReadOptions.read_your_writes(service.write_token())
            for key in acked[:100] + acked[-100:]:
                assert service.contains(key, options=opts)
            expected = set(keys.tolist()) | set(acked)
            assert {k for k, _ in service.items()} == expected
            service.validate()
        finally:
            service.close()
