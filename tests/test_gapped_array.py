"""Unit tests for the Gapped Array leaf node (paper Section 3.3.1)."""

import numpy as np
import pytest

from repro.core.config import AlexConfig, GAPPED_ARRAY, STATIC_RMI
from repro.core.errors import DuplicateKeyError, KeyNotFoundError
from repro.core.gapped_array import GappedArrayNode
from repro.core.stats import Counters


def make_node(keys=None, **config_overrides):
    config = AlexConfig(node_layout=GAPPED_ARRAY, rmi_mode=STATIC_RMI,
                        **config_overrides)
    node = GappedArrayNode(config, Counters())
    node.build(np.asarray(keys if keys is not None else [], dtype=np.float64))
    return node


@pytest.fixture
def node_100():
    rng = np.random.default_rng(7)
    keys = np.sort(np.unique(rng.uniform(0, 1000, 100)))
    return make_node(keys), keys


class TestBuild:
    def test_build_density_is_d_squared(self):
        node = make_node(np.arange(100, dtype=np.float64))
        assert node.density == pytest.approx(node.config.density_at_build,
                                             abs=0.05)

    def test_all_keys_findable_after_build(self, node_100):
        node, keys = node_100
        for key in keys:
            assert node.contains(float(key))

    def test_invariants_after_build(self, node_100):
        node, _ = node_100
        node.check_invariants()

    def test_empty_build(self):
        node = make_node([])
        assert node.num_keys == 0
        assert node.capacity >= node.MIN_CAPACITY
        assert not node.contains(1.0)

    def test_model_based_placement_mostly_exact(self):
        # Uniform keys are perfectly linear: most keys should sit exactly at
        # their predicted slot (the paper's direct-hit argument).
        keys = np.arange(0, 1000, 10, dtype=np.float64)
        node = make_node(keys)
        errors = [node.prediction_error(float(k)) for k in keys]
        assert np.mean(np.array(errors) == 0) > 0.5

    def test_build_replaces_previous_content(self, node_100):
        node, _ = node_100
        node.build(np.array([1.0, 2.0, 3.0]))
        assert node.num_keys == 3
        assert node.contains(2.0)


class TestInsert:
    def test_insert_then_lookup(self, node_100):
        node, keys = node_100
        node.insert(keys[0] + 0.5, "value")
        assert node.lookup(keys[0] + 0.5) == "value"
        node.check_invariants()

    def test_insert_below_min_and_above_max(self, node_100):
        node, keys = node_100
        node.insert(float(keys.min()) - 1.0)
        node.insert(float(keys.max()) + 1.0)
        node.check_invariants()
        assert node.min_key() == float(keys.min()) - 1.0
        assert node.max_key() == float(keys.max()) + 1.0

    def test_duplicate_insert_raises(self, node_100):
        node, keys = node_100
        with pytest.raises(DuplicateKeyError):
            node.insert(float(keys[10]))

    def test_many_inserts_keep_invariants(self):
        rng = np.random.default_rng(8)
        keys = np.unique(rng.uniform(0, 100, 400))
        node = make_node(keys[:50])
        for key in keys[50:]:
            node.insert(float(key))
        node.check_invariants()
        assert node.num_keys == len(keys)
        for key in keys[::13]:
            assert node.contains(float(key))

    def test_density_bound_respected(self):
        node = make_node(np.arange(50, dtype=np.float64))
        for key in np.arange(50, 400, dtype=np.float64):
            node.insert(float(key))
            assert node.density <= node.config.density_upper + 1e-9

    def test_expansion_triggered_and_counted(self):
        node = make_node(np.arange(50, dtype=np.float64))
        before = node.counters.expansions
        for key in np.arange(1000, 1200, dtype=np.float64):
            node.insert(float(key))
        assert node.counters.expansions > before

    def test_cold_start_node_gets_model_after_enough_keys(self):
        node = make_node([], min_keys_for_model=8)
        for key in range(20):
            node.insert(float(key))
        assert node.model is not None
        node.check_invariants()

    def test_cold_start_uses_binary_search(self):
        node = make_node([1.0, 2.0], min_keys_for_model=8)
        assert node.model is None
        assert node.contains(1.0)
        assert not node.contains(1.5)

    def test_inserts_into_gapped_node_shift_little(self):
        # With ~30% gaps, the shift distance to the nearest gap stays tiny
        # (the gapped array's whole point: amortized O(log n) inserts).
        node = make_node(np.arange(0, 100, 2, dtype=np.float64))
        before = node.counters.shifts
        inserts = np.arange(1.0, 99.0, 4.0)  # odd keys, uniform over the space
        for key in inserts:
            node.insert(float(key))
        assert (node.counters.shifts - before) / len(inserts) < 4


class TestExpand:
    def test_expand_grows_by_inverse_density(self):
        node = make_node(np.arange(100, dtype=np.float64))
        old_capacity = node.capacity
        node.expand()
        assert node.capacity >= old_capacity / node.config.density_upper - 1

    def test_expand_preserves_content(self, node_100):
        node, keys = node_100
        node.expand()
        node.check_invariants()
        for key in keys:
            assert node.contains(float(key))

    def test_expand_retrains_model(self, node_100):
        node, _ = node_100
        before = node.counters.retrains
        node.expand()
        assert node.counters.retrains > before


class TestDelete:
    def test_delete_then_absent(self, node_100):
        node, keys = node_100
        node.delete(float(keys[5]))
        assert not node.contains(float(keys[5]))
        node.check_invariants()

    def test_delete_missing_raises(self, node_100):
        node, _ = node_100
        with pytest.raises(KeyNotFoundError):
            node.delete(-12345.0)

    def test_delete_all_leaves_empty_node(self, node_100):
        node, keys = node_100
        for key in keys:
            node.delete(float(key))
        assert node.num_keys == 0
        node.check_invariants()

    def test_delete_contracts_sparse_node(self):
        node = make_node(np.arange(500, dtype=np.float64))
        capacity_before = node.capacity
        for key in range(450):
            node.delete(float(key))
        assert node.capacity < capacity_before
        node.check_invariants()

    def test_reinsert_after_delete(self, node_100):
        node, keys = node_100
        node.delete(float(keys[7]))
        node.insert(float(keys[7]), "back")
        assert node.lookup(float(keys[7])) == "back"


class TestUpdateAndPayloads:
    def test_update_replaces_payload(self, node_100):
        node, keys = node_100
        node.update(float(keys[3]), "new")
        assert node.lookup(float(keys[3])) == "new"

    def test_update_missing_raises(self, node_100):
        node, _ = node_100
        with pytest.raises(KeyNotFoundError):
            node.update(-1.0, "x")

    def test_payloads_follow_shifts(self):
        keys = np.arange(0, 40, dtype=np.float64)
        node = make_node(keys)
        for key in keys:
            node.update(float(key), f"p{key}")
        # Force shifting by filling the gaps around a region.
        for key in np.arange(0.1, 20.1, 1.0):
            node.insert(float(key), f"n{key}")
        for key in keys:
            assert node.lookup(float(key)) == f"p{key}"


class TestPackedRegions:
    def test_detects_packed_runs(self):
        node = make_node(np.arange(20, dtype=np.float64))
        regions = node.fully_packed_regions()
        assert sum(length for _, length in regions) == node.num_keys
        assert node.largest_packed_run() >= 1

    def test_empty_node_has_no_runs(self):
        node = make_node([])
        assert node.fully_packed_regions() == []
        assert node.largest_packed_run() == 0


class TestScan:
    def test_scan_from_returns_sorted_pairs(self, node_100):
        node, keys = node_100
        out = node.scan_from(float(keys[10]), 25)
        assert [k for k, _ in out] == sorted(keys)[10:35]

    def test_scan_skips_gaps(self, node_100):
        node, keys = node_100
        out = node.scan_from(-1e9, len(keys) + 50)
        assert len(out) == len(keys)

    def test_scan_counts_bitmap_words(self, node_100):
        node, keys = node_100
        before = node.counters.bitmap_words_scanned
        node.scan_from(float(keys[0]), 10)
        assert node.counters.bitmap_words_scanned > before
