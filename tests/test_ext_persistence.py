"""Tests for index persistence (save/load round trips)."""

import dataclasses
import os

import numpy as np
import pytest

from repro.analysis import alex_prediction_errors
from repro.core.alex import AlexIndex
from repro.core.config import ga_armi, ga_srmi, pma_armi
from repro.core.errors import PersistenceError
from repro.ext.persistence import (FORMAT_MAGIC, FORMAT_VERSION,
                                   load_index, save_index,
                                   save_load_roundtrip_equal)


@pytest.fixture
def keys():
    return np.unique(np.random.default_rng(12).uniform(0, 1e6, 2000))


@pytest.mark.parametrize("factory", [ga_srmi, ga_armi, pma_armi],
                         ids=["ga-srmi", "ga-armi", "pma-armi"])
class TestRoundTrip:
    def test_contents_preserved(self, tmp_path, keys, factory):
        index = AlexIndex.bulk_load(keys, [f"p{i}" for i in range(len(keys))],
                                    config=factory(max_keys_per_node=256,
                                                   num_models=16))
        path = str(tmp_path / "index.npz")
        assert save_load_roundtrip_equal(index, path)

    def test_loaded_index_supports_all_operations(self, tmp_path, keys,
                                                  factory):
        index = AlexIndex.bulk_load(keys, config=factory(
            max_keys_per_node=256, num_models=16))
        path = str(tmp_path / "index.npz")
        save_index(index, path)
        loaded = load_index(path)
        loaded.insert(-1.0, "new")
        assert loaded.lookup(-1.0) == "new"
        loaded.delete(float(keys[0]))
        assert not loaded.contains(float(keys[0]))
        out = loaded.range_scan(float(np.sort(keys)[10]), 5)
        assert len(out) == 5
        loaded.validate()

    def test_models_preserved_exactly(self, tmp_path, keys, factory):
        # Loading must NOT retrain: prediction errors are bit-identical.
        index = AlexIndex.bulk_load(keys, config=factory(
            max_keys_per_node=256, num_models=16))
        path = str(tmp_path / "index.npz")
        save_index(index, path)
        loaded = load_index(path)
        assert np.array_equal(alex_prediction_errors(index),
                              alex_prediction_errors(loaded))


class TestStructuralEdgeCases:
    def test_empty_index(self, tmp_path):
        index = AlexIndex.bulk_load([])
        path = str(tmp_path / "empty.npz")
        save_index(index, path)
        loaded = load_index(path)
        assert len(loaded) == 0
        loaded.insert(1.0)
        assert loaded.contains(1.0)

    def test_single_leaf_root(self, tmp_path):
        index = AlexIndex.bulk_load(np.arange(50.0))
        path = str(tmp_path / "leaf.npz")
        assert save_load_roundtrip_equal(index, path)

    def test_split_tree_with_shared_inner_slots(self, tmp_path, keys):
        # After node splitting, one inner node may occupy several parent
        # slots; the format must deduplicate it.
        config = dataclasses.replace(ga_armi(max_keys_per_node=128),
                                     split_on_inserts=True)
        sorted_keys = np.sort(keys)
        index = AlexIndex.bulk_load(sorted_keys[:1000], config=config)
        for key in sorted_keys[1000:]:
            index.insert(float(key))
        assert index.counters.splits > 0
        path = str(tmp_path / "split.npz")
        assert save_load_roundtrip_equal(index, path)

    def _rewrite_header(self, path, mutate):
        import json
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        header = json.loads(bytes(arrays["header"]).decode())
        mutate(header)
        arrays["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8)
        with open(path, "wb") as f:
            np.savez_compressed(f, **arrays)

    def _saved(self, tmp_path, keys, name):
        index = AlexIndex.bulk_load(keys[:100])
        path = str(tmp_path / name)
        save_index(index, path)
        return path

    def test_format_is_version_stamped(self, tmp_path, keys):
        import json
        path = self._saved(tmp_path, keys, "v.npz")
        with np.load(path) as archive:
            header = json.loads(bytes(archive["header"]).decode())
        assert header["format"] == FORMAT_MAGIC
        assert header["version"] == FORMAT_VERSION

    def test_unsupported_version_raises_persistence_error(self, tmp_path,
                                                          keys):
        path = self._saved(tmp_path, keys, "v.npz")
        self._rewrite_header(path, lambda h: h.update(version=999))
        with pytest.raises(PersistenceError, match="version"):
            load_index(path)

    def test_wrong_format_stamp_raises_persistence_error(self, tmp_path,
                                                         keys):
        path = self._saved(tmp_path, keys, "v.npz")
        self._rewrite_header(path,
                             lambda h: h.update(format="someone-elses"))
        with pytest.raises(PersistenceError, match="format stamp"):
            load_index(path)

    def test_version_1_archive_without_stamp_still_loads(self, tmp_path,
                                                         keys):
        path = self._saved(tmp_path, keys, "v1.npz")
        self._rewrite_header(
            path, lambda h: (h.pop("format"), h.update(version=1)))
        loaded = load_index(path)
        assert len(loaded) == 100

    def test_foreign_npz_raises_persistence_error_not_keyerror(
            self, tmp_path):
        path = str(tmp_path / "foreign.npz")
        np.savez(path, data=np.arange(10.0))
        with pytest.raises(PersistenceError, match="no index header"):
            load_index(path)

    def test_non_npz_file_raises_persistence_error(self, tmp_path):
        path = str(tmp_path / "garbage.npz")
        with open(path, "wb") as f:
            f.write(b"this is not an archive")
        with pytest.raises(PersistenceError):
            load_index(path)

    def test_file_size_reasonable(self, tmp_path, keys):
        index = AlexIndex.bulk_load(keys)
        path = str(tmp_path / "size.npz")
        save_index(index, path)
        # Compressed file should be within a few x of the raw key bytes.
        assert os.path.getsize(path) < 40 * len(keys)
