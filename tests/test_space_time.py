"""Tests for the space-time frontier analysis."""

import numpy as np
import pytest

from repro.analysis.space_time import (
    FrontierPoint,
    recommend_expansion_factor,
    space_time_frontier,
)
from repro.datasets import load


@pytest.fixture(params=["longitudes", "lognormal", "ycsb"])
def keys(request):
    return load(request.param, 2000, seed=161)


class TestFrontier:
    def test_one_point_per_c(self, keys):
        frontier = space_time_frontier(keys, c_values=(1.0, 2.0, 4.0))
        assert [p.c for p in frontier] == [1.0, 2.0, 4.0]

    def test_space_grows_linearly_with_c(self, keys):
        frontier = space_time_frontier(keys, c_values=(1.0, 2.0))
        assert frontier[1].bytes_per_key == pytest.approx(
            2 * frontier[0].bytes_per_key)

    def test_hit_fraction_trends_up(self, keys):
        frontier = space_time_frontier(keys, c_values=(1.0, 8.0, 64.0))
        assert frontier[-1].direct_hit_fraction >= frontier[0].direct_hit_fraction

    def test_probes_trend_down(self, keys):
        frontier = space_time_frontier(keys, c_values=(1.0, 8.0, 64.0))
        assert frontier[-1].expected_probes <= frontier[0].expected_probes + 0.25

    def test_hit_fraction_bounds(self, keys):
        for point in space_time_frontier(keys):
            assert 0.0 <= point.direct_hit_fraction <= 1.0
            assert point.expected_probes >= 2.0  # floor of the probe model

    def test_empty_keys(self):
        frontier = space_time_frontier(np.empty(0), c_values=(1.0,))
        assert frontier[0].direct_hit_fraction == 0.0


class TestRecommendation:
    def test_recommends_a_sweep_point(self, keys):
        best = recommend_expansion_factor(keys)
        assert isinstance(best, FrontierPoint)
        assert best.c in (1.0, 1.2, 1.43, 2.0, 3.0, 4.0, 8.0)

    def test_uniform_keys_need_no_extra_space(self):
        # Perfectly linear data: c = 1 already gives all direct hits.
        keys = np.arange(2000, dtype=np.float64)
        best = recommend_expansion_factor(keys)
        assert best.c == 1.0
        assert best.direct_hit_fraction == pytest.approx(1.0)

    def test_heavy_space_penalty_prefers_small_c(self, keys):
        frugal = recommend_expansion_factor(keys, space_weight=10.0)
        lavish = recommend_expansion_factor(keys, space_weight=0.001)
        assert frugal.c <= lavish.c
