"""Unit tests for repro.core.linear_model."""

import numpy as np
import pytest

from repro.core.linear_model import LinearModel


class TestTrain:
    def test_perfect_line_recovered(self):
        keys = np.array([1.0, 2.0, 3.0, 4.0])
        positions = 2.0 * keys + 5.0
        model = LinearModel.train(keys, positions)
        assert model.slope == pytest.approx(2.0)
        assert model.intercept == pytest.approx(5.0)

    def test_least_squares_on_noisy_data(self):
        rng = np.random.default_rng(0)
        keys = np.sort(rng.uniform(0, 100, 200))
        positions = 3.0 * keys + rng.normal(0, 0.1, 200)
        model = LinearModel.train(keys, positions)
        assert model.slope == pytest.approx(3.0, abs=0.01)

    def test_empty_input_gives_flat_model(self):
        model = LinearModel.train(np.empty(0), np.empty(0))
        assert model.slope == 0.0
        assert model.intercept == 0.0

    def test_single_key_predicts_its_position(self):
        model = LinearModel.train(np.array([7.0]), np.array([3.0]))
        assert model.predict(7.0) == pytest.approx(3.0)
        assert model.slope == 0.0

    def test_identical_keys_predict_mean_position(self):
        model = LinearModel.train(np.array([5.0, 5.0, 5.0]),
                                  np.array([0.0, 1.0, 2.0]))
        assert model.slope == 0.0
        assert model.intercept == pytest.approx(1.0)

    def test_train_accepts_lists(self):
        model = LinearModel.train([0.0, 1.0], [0.0, 1.0])
        assert model.slope == pytest.approx(1.0)


class TestTrainCdf:
    def test_uniform_keys_map_to_full_range(self):
        keys = np.arange(100, dtype=np.float64)
        model = LinearModel.train_cdf(keys, 100)
        assert model.predict(0.0) == pytest.approx(0.0, abs=1.0)
        assert model.predict(99.0) == pytest.approx(99.0, abs=1.0)

    def test_scales_to_requested_positions(self):
        keys = np.arange(50, dtype=np.float64)
        model = LinearModel.train_cdf(keys, 200)
        assert model.slope == pytest.approx(4.0, rel=0.05)

    def test_empty_keys(self):
        model = LinearModel.train_cdf(np.empty(0), 10)
        assert model.predict(1.0) == 0.0

    def test_monotone_nondecreasing_slope(self):
        rng = np.random.default_rng(1)
        keys = np.sort(rng.lognormal(0, 2, 500))
        model = LinearModel.train_cdf(keys, 64)
        assert model.slope >= 0.0


class TestTrainEndpoints:
    def test_interpolates_linearly(self):
        model = LinearModel.train_endpoints(10.0, 20.0, 100)
        assert model.predict(10.0) == pytest.approx(0.0)
        assert model.predict(20.0) == pytest.approx(100.0)
        assert model.predict(15.0) == pytest.approx(50.0)

    def test_degenerate_range_is_flat(self):
        model = LinearModel.train_endpoints(5.0, 5.0, 100)
        assert model.slope == 0.0


class TestPredictPos:
    def test_clamps_low(self):
        model = LinearModel(slope=1.0, intercept=-100.0)
        assert model.predict_pos(5.0, 10) == 0

    def test_clamps_high(self):
        model = LinearModel(slope=1.0, intercept=100.0)
        assert model.predict_pos(5.0, 10) == 9

    def test_floors_fractional_predictions(self):
        model = LinearModel(slope=1.0, intercept=0.9)
        assert model.predict_pos(3.0, 10) == 3

    def test_vectorized_matches_scalar(self):
        model = LinearModel(slope=0.37, intercept=-4.2)
        keys = np.linspace(-100, 100, 57)
        vec = model.predict_pos_vec(keys, 40)
        scalar = [model.predict_pos(float(k), 40) for k in keys]
        assert vec.tolist() == scalar


class TestScaleAndCopy:
    def test_scale_multiplies_output(self):
        model = LinearModel(slope=2.0, intercept=3.0)
        model.scale(10.0)
        assert model.predict(1.0) == pytest.approx(50.0)

    def test_copy_is_independent(self):
        model = LinearModel(slope=1.0, intercept=1.0)
        clone = model.copy()
        clone.scale(5.0)
        assert model.slope == 1.0
        assert clone.slope == 5.0

    def test_size_bytes_is_two_doubles(self):
        assert LinearModel().size_bytes() == 16
