"""Unit tests for the dense SortedArray substrate."""

import numpy as np
import pytest

from repro.baselines.sorted_array import SortedArray
from repro.core.stats import Counters


@pytest.fixture
def array():
    return SortedArray.from_sorted(np.arange(0, 100, 10, dtype=np.float64),
                                   [f"p{i}" for i in range(10)], Counters())


class TestFromSorted:
    def test_contents(self, array):
        assert len(array) == 10
        assert array.key_at(3) == 30.0
        assert list(array.items())[0] == (0.0, "p0")

    def test_no_shifts_counted(self, array):
        assert array.counters.shifts == 0


class TestLowerBound:
    def test_exact_and_between(self, array):
        assert array.lower_bound(30.0) == 3
        assert array.lower_bound(35.0) == 4
        assert array.lower_bound(-1.0) == 0
        assert array.lower_bound(1e9) == 10


class TestInsertAt:
    def test_inserts_maintain_order(self, array):
        array.insert_at(array.lower_bound(35.0), 35.0, "new")
        keys = [k for k, _ in array.items()]
        assert keys == sorted(keys)
        assert array.payloads[4] == "new"

    def test_shift_count_equals_suffix_length(self, array):
        before = array.counters.shifts
        array.insert_at(2, 15.0, None)   # 8 elements to the right
        assert array.counters.shifts - before == 8

    def test_append_shifts_nothing(self, array):
        before = array.counters.shifts
        array.insert_at(len(array), 999.0, None)
        assert array.counters.shifts == before

    def test_growth_beyond_capacity(self):
        array = SortedArray(Counters())
        for i in range(100):
            array.insert_at(i, float(i), i)
        assert len(array) == 100
        assert [k for k, _ in array.items()] == [float(i) for i in range(100)]


class TestDeleteAt:
    def test_delete_shifts_suffix(self, array):
        before = array.counters.shifts
        array.delete_at(0)
        assert array.counters.shifts - before == 9
        assert array.key_at(0) == 10.0
        assert len(array) == 9

    def test_delete_last_is_free(self, array):
        before = array.counters.shifts
        array.delete_at(len(array) - 1)
        assert array.counters.shifts == before
