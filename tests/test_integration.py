"""Cross-module integration tests: full paper-style scenarios end to end."""

import dataclasses

import numpy as np
import pytest

from repro.bench import SystemParams, build_index, run_experiment
from repro.core.alex import AlexIndex
from repro.core.config import ga_armi, pma_armi
from repro.datasets import load, sequential, shifted_halves
from repro.workloads import (
    RANGE_SCAN,
    READ_HEAVY,
    READ_ONLY,
    WRITE_HEAVY,
    WorkloadRunner,
)

DATASET_NAMES = ["longitudes", "longlat", "lognormal", "ycsb"]
ALEX_SYSTEMS = ["ALEX-GA-SRMI", "ALEX-GA-ARMI", "ALEX-PMA-SRMI",
                "ALEX-PMA-ARMI"]


class TestAllSystemsAllDatasets:
    @pytest.mark.parametrize("dataset", DATASET_NAMES)
    @pytest.mark.parametrize("system", ALEX_SYSTEMS + ["BPlusTree",
                                                       "LearnedIndex"])
    def test_read_heavy_workload_completes(self, system, dataset):
        result = run_experiment(system, dataset, READ_HEAVY,
                                init_size=1500, num_ops=400,
                                params=SystemParams(max_keys_per_node=256),
                                seed=5)
        assert result.ops == 400
        assert result.throughput > 0

    @pytest.mark.parametrize("dataset", DATASET_NAMES)
    def test_alex_index_valid_after_write_heavy(self, dataset):
        keys = load(dataset, 3000, seed=6)
        init, inserts = keys[:2000], keys[2000:]
        index = build_index("ALEX-GA-ARMI", init,
                            SystemParams(max_keys_per_node=256))
        runner = WorkloadRunner(index, init.copy(), inserts.copy(), seed=7)
        runner.run(WRITE_HEAVY, 1500)
        index.validate()


class TestPaperScenarios:
    def test_read_only_alex_beats_bptree_in_simulated_time(self):
        # Figure 4a's qualitative claim at reduced scale.
        from repro.analysis import DEFAULT_COST_MODEL
        alex = run_experiment("ALEX-GA-SRMI", "ycsb", READ_ONLY,
                              init_size=4000, num_ops=1500, seed=8)
        bptree = run_experiment("BPlusTree", "ycsb", READ_ONLY,
                                init_size=4000, num_ops=1500, seed=8)
        assert alex.throughput > bptree.throughput

    def test_alex_index_orders_of_magnitude_smaller_than_bptree(self):
        # Figure 4e's qualitative claim.
        alex = run_experiment("ALEX-GA-SRMI", "ycsb", READ_ONLY,
                              init_size=5000, num_ops=100, seed=9)
        bptree = run_experiment("BPlusTree", "ycsb", READ_ONLY,
                                init_size=5000, num_ops=100, seed=9)
        assert alex.index_bytes * 5 < bptree.index_bytes

    def test_learned_index_write_collapse(self):
        # Section 5.2.2: the Learned Index is orders of magnitude slower on
        # inserts, which is why Fig. 4b/4c exclude it.
        alex = run_experiment("ALEX-GA-ARMI", "lognormal", WRITE_HEAVY,
                              init_size=3000, num_ops=800, seed=10)
        learned = run_experiment("LearnedIndex", "lognormal", WRITE_HEAVY,
                                 init_size=3000, num_ops=800, seed=10)
        assert alex.throughput > 5 * learned.throughput

    def test_distribution_shift_with_splitting(self):
        # Figure 5b's scenario: init on one half of the key domain, insert
        # the disjoint other half; ARMI with splitting must stay valid and
        # reasonably balanced.
        first, second = shifted_halves(4000, seed=11)
        config = dataclasses.replace(ga_armi(max_keys_per_node=256),
                                     split_on_inserts=True)
        index = AlexIndex.bulk_load(first, config=config)
        for key in second:
            index.insert(float(key))
        index.validate()
        assert index.counters.splits > 0
        assert int(index.leaf_sizes().max()) <= 4 * 256

    def test_sequential_inserts_complete_with_pma_armi(self):
        # Figure 5c: adversarial append-only stream.  ALEX-PMA-ARMI is the
        # best variant; it must stay correct (performance degrades, which
        # the bench measures).
        config = dataclasses.replace(pma_armi(max_keys_per_node=256),
                                     split_on_inserts=True)
        keys = sequential(3000)
        index = AlexIndex.bulk_load(keys[:500], config=config)
        for key in keys[500:]:
            index.insert(float(key))
        index.validate()
        assert len(index) == 3000

    def test_lifetime_mini(self):
        # Figure 6 in miniature: insert from 500 to 4000 keys, pausing for
        # lookups; structure must stay valid throughout and lookup work must
        # not blow up.
        from repro.analysis import DEFAULT_COST_MODEL
        keys = load("longitudes", 4000, seed=12)
        config = ga_armi(max_keys_per_node=256)
        index = AlexIndex.bulk_load(keys[:500], config=config)
        runner = WorkloadRunner(index, keys[:500].copy(), keys[500:].copy(),
                                seed=13)
        from repro.workloads import WRITE_ONLY
        lookup_costs = []
        while runner.inserts_remaining > 0:
            runner.run(WRITE_ONLY, 500)
            index.validate()
            probe = runner.run(READ_ONLY, 200)
            lookup_costs.append(
                DEFAULT_COST_MODEL.nanos_per_op(probe.ops, probe.work))
        assert len(lookup_costs) >= 7
        # Lookup cost stays flat-ish over the index's lifetime (Fig. 6).
        assert lookup_costs[-1] < 4 * lookup_costs[0]

    def test_range_scan_shares_of_work(self):
        # Figure 4d: scan-heavy workloads spend their time copying payloads,
        # not searching.
        result = run_experiment("ALEX-GA-ARMI", "ycsb", RANGE_SCAN,
                                init_size=3000, num_ops=500, seed=14)
        assert result.work.payload_bytes_copied > 0
        assert result.extras["scanned_records"] > result.extras["scans"]


class TestMixedOperationSoak:
    @pytest.mark.parametrize("system", ALEX_SYSTEMS)
    def test_soak_alex(self, system):
        rng = np.random.default_rng(15)
        keys = np.unique(rng.uniform(0, 1e6, 2500))
        index = build_index(system, keys[:1000],
                            SystemParams(max_keys_per_node=128))
        live = set(float(k) for k in keys[:1000])
        pool = [float(k) for k in keys[1000:]]
        for step in range(3000):
            r = rng.random()
            if r < 0.4 and pool:
                key = pool.pop()
                index.insert(key, step)
                live.add(key)
            elif r < 0.6 and live:
                victim = live.pop()
                index.delete(victim)
            elif live:
                sample = next(iter(live))
                assert index.contains(sample)
        index.validate()
        assert len(index) == len(live)
