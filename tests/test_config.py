"""Tests for AlexConfig validation and derived quantities."""

import math

import pytest

from repro.core.config import (
    ALL_VARIANTS,
    AlexConfig,
    GAPPED_ARRAY,
    PACKED_MEMORY_ARRAY,
    STATIC_RMI,
    ga_armi,
    ga_srmi,
    pma_armi,
    pma_srmi,
)


class TestValidation:
    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError):
            AlexConfig(node_layout="btree")

    def test_unknown_rmi_mode_rejected(self):
        with pytest.raises(ValueError):
            AlexConfig(rmi_mode="magic")

    @pytest.mark.parametrize("d", [0.0, -0.5, 1.5])
    def test_bad_density(self, d):
        with pytest.raises(ValueError):
            AlexConfig(density_upper=d)

    def test_bad_model_count(self):
        with pytest.raises(ValueError):
            AlexConfig(num_models=0)

    def test_bad_max_keys(self):
        with pytest.raises(ValueError):
            AlexConfig(max_keys_per_node=2)

    def test_bad_fanout(self):
        with pytest.raises(ValueError):
            AlexConfig(split_fanout=1)

    def test_bad_pma_bounds(self):
        with pytest.raises(ValueError):
            AlexConfig(pma_root_density=0.95, pma_segment_density=0.9)


class TestDerivedQuantities:
    def test_expansion_factor_is_inverse_density_squared(self):
        config = AlexConfig(density_upper=0.8)
        assert config.expansion_factor == pytest.approx(1 / 0.64)
        assert config.density_at_build == pytest.approx(0.64)

    def test_default_matches_paper_43_percent(self):
        # Default d ~ 0.836 gives c ~ 1.43: the paper's 43% space overhead.
        config = AlexConfig()
        assert config.expansion_factor == pytest.approx(1.43, abs=0.01)

    def test_with_space_overhead_roundtrip(self):
        config = AlexConfig().with_space_overhead(2.0)
        assert config.expansion_factor == pytest.approx(3.0)
        assert config.density_upper == pytest.approx(math.sqrt(1 / 3.0))

    def test_with_space_overhead_validation(self):
        with pytest.raises(ValueError):
            AlexConfig().with_space_overhead(0.0)


class TestTunedPMADensityBounds:
    """Pin the density bounds chosen by the PMA density sweep.

    ``benchmarks/bench_pma_density.py`` (artifact:
    ``BENCH_pma_density.json``) swept the segment/root density grid over
    random and append insert workloads.  Denser segments (0.95) cut
    append rebalance moves ~16% versus 0.92 with unchanged search
    probes; a root bound of 0.70 is the knee of the write-cost /
    read-locality curve (0.60 saves ~17% write wall clock but costs
    ~43% more append read probes, 0.80 the reverse).  Changing either
    default should be a deliberate re-sweep, not a drive-by edit —
    hence the exact-value pin.
    """

    def test_defaults_match_sweep_choice(self):
        config = AlexConfig()
        assert config.pma_segment_density == 0.95
        assert config.pma_root_density == 0.70

    def test_ordering_still_validated(self):
        # The sweep-chosen pair must itself satisfy the config invariant
        # 0 < root < segment <= 1 (guards a future pin edit that would
        # silently make every PMA construction raise).
        config = AlexConfig()
        assert 0.0 < config.pma_root_density < config.pma_segment_density <= 1.0


class TestVariants:
    def test_variant_names(self):
        assert ga_srmi().variant_name == "ALEX-GA-SRMI"
        assert ga_armi().variant_name == "ALEX-GA-ARMI"
        assert pma_srmi().variant_name == "ALEX-PMA-SRMI"
        assert pma_armi().variant_name == "ALEX-PMA-ARMI"

    def test_registry_complete(self):
        assert set(ALL_VARIANTS) == {"ALEX-GA-SRMI", "ALEX-GA-ARMI",
                                     "ALEX-PMA-SRMI", "ALEX-PMA-ARMI"}
        for name, factory in ALL_VARIANTS.items():
            assert factory().variant_name == name

    def test_factories_accept_overrides(self):
        config = ga_srmi(num_models=7, payload_size=80)
        assert config.num_models == 7
        assert config.payload_size == 80
        assert config.node_layout == GAPPED_ARRAY
        assert config.rmi_mode == STATIC_RMI

    def test_config_is_frozen(self):
        config = pma_armi()
        with pytest.raises(Exception):
            config.num_models = 5
        assert config.node_layout == PACKED_MEMORY_ARRAY
