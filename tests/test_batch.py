"""Tests for batch operations (bulk_insert, merge_indexes)."""

import numpy as np
import pytest

from repro.core.alex import AlexIndex
from repro.core.batch import bulk_insert, merge_indexes
from repro.core.config import ga_armi, ga_srmi, pma_armi
from repro.core.errors import DuplicateKeyError


@pytest.fixture
def base():
    keys = np.unique(np.random.default_rng(141).uniform(0, 1e6, 3000))
    index = AlexIndex.bulk_load(keys[:2000],
                                config=ga_armi(max_keys_per_node=512))
    return index, keys[:2000], keys[2000:]


class TestBulkInsert:
    def test_all_keys_present_after(self, base):
        index, init, batch = base
        bulk_insert(index, batch, [f"b{i}" for i in range(len(batch))])
        assert len(index) == len(init) + len(batch)
        for i, key in enumerate(batch[::37]):
            assert index.lookup(float(key)) == f"b{int(37 * i)}"
        index.validate()

    def test_unsorted_batch(self, base):
        index, init, batch = base
        shuffled = batch.copy()
        np.random.default_rng(1).shuffle(shuffled)
        bulk_insert(index, shuffled)
        assert len(index) == len(init) + len(batch)
        index.validate()

    def test_empty_batch_is_noop(self, base):
        index, init, _ = base
        bulk_insert(index, [])
        assert len(index) == len(init)

    def test_duplicate_within_batch_rejected_before_mutation(self, base):
        index, init, batch = base
        bad = np.concatenate([batch[:10], batch[:1]])
        with pytest.raises(DuplicateKeyError):
            bulk_insert(index, bad)
        assert len(index) == len(init)
        index.validate()

    def test_duplicate_against_index_rejected_before_mutation(self, base):
        index, init, batch = base
        bad = np.concatenate([batch[:10], init[:1]])
        with pytest.raises(DuplicateKeyError):
            bulk_insert(index, bad)
        assert len(index) == len(init)
        index.validate()

    def test_payload_length_mismatch(self, base):
        index, _, batch = base
        with pytest.raises(ValueError):
            bulk_insert(index, batch[:5], ["only-one"])

    def test_small_batch_uses_plain_inserts(self, base):
        index, init, batch = base
        bulk_insert(index, batch[:2])
        assert len(index) == len(init) + 2
        index.validate()

    @pytest.mark.parametrize("factory", [ga_srmi, pma_armi],
                             ids=["ga-srmi", "pma-armi"])
    def test_other_variants(self, factory):
        keys = np.unique(np.random.default_rng(142).uniform(0, 1e4, 1500))
        index = AlexIndex.bulk_load(keys[:1000], config=factory(
            num_models=8, max_keys_per_node=512))
        bulk_insert(index, keys[1000:])
        assert len(index) == len(keys)
        index.validate()

    def test_batch_cheaper_than_loop_for_dense_batches(self):
        keys = np.arange(0.0, 8000.0, 2.0)
        batch = np.arange(1.0, 8000.0, 2.0)

        loop_index = AlexIndex.bulk_load(keys, config=ga_srmi(num_models=8))
        for key in batch:
            loop_index.insert(float(key))
        loop_work = loop_index.counters.shifts

        batch_index = AlexIndex.bulk_load(keys, config=ga_srmi(num_models=8))
        bulk_insert(batch_index, batch)
        batch_work = batch_index.counters.shifts

        assert batch_work < loop_work
        assert list(batch_index.keys()) == list(loop_index.keys())


class TestBulkInsertSplits:
    """Regression: a rebuilt leaf used to bypass the node-size limit —
    ``bulk_insert`` called ``_model_based_build`` directly and never split,
    so a merged leaf could exceed ``max_keys_per_node`` even with node
    splitting enabled."""

    @pytest.mark.parametrize("factory", [ga_armi, pma_armi],
                             ids=["ga-armi", "pma-armi"])
    def test_oversized_rebuilt_leaf_splits(self, factory):
        config = factory(max_keys_per_node=64, split_on_inserts=True)
        index = AlexIndex.bulk_load(np.arange(0.0, 64.0), config=config)
        # The whole batch routes beyond the last leaf's key range, merging
        # into a single leaf ~10x over the bound.
        bulk_insert(index, np.arange(1000.0, 1600.0))
        assert len(index) == 664
        assert index.leaf_sizes().max() <= 64
        index.validate()
        assert index.lookup(1234.0) is None
        assert index.contains(63.0)

    def test_cold_start_bulk_insert_splits(self):
        index = AlexIndex(ga_armi(max_keys_per_node=64))
        keys = np.random.default_rng(9).permutation(np.arange(500.0))
        bulk_insert(index, keys)
        assert len(index) == 500
        assert index.leaf_sizes().max() <= 64
        index.validate()

    def test_splitting_disabled_keeps_oversized_leaf(self):
        # With splitting off (the paper's bulk-load default) the old
        # behavior is intentional: the merged leaf may exceed the bound.
        config = ga_armi(max_keys_per_node=64, split_on_inserts=False)
        index = AlexIndex.bulk_load(np.arange(0.0, 64.0), config=config)
        bulk_insert(index, np.arange(1000.0, 1600.0))
        assert index.leaf_sizes().max() > 64
        index.validate()


class TestMergeIndexes:
    def test_disjoint_merge(self):
        left = AlexIndex.bulk_load(np.arange(0.0, 100.0),
                                   [f"l{i}" for i in range(100)])
        right = AlexIndex.bulk_load(np.arange(100.0, 150.0),
                                    [f"r{i}" for i in range(50)])
        merged = merge_indexes(left, right)
        assert len(merged) == 150
        assert merged.lookup(42.0) == "l42"
        assert merged.lookup(120.0) == "r20"
        merged.validate()

    def test_interleaved_keys(self):
        left = AlexIndex.bulk_load(np.arange(0.0, 100.0, 2.0))
        right = AlexIndex.bulk_load(np.arange(1.0, 100.0, 2.0))
        merged = merge_indexes(left, right)
        assert list(merged.keys()) == [float(i) for i in range(100)]

    def test_overlapping_keys_rejected(self):
        left = AlexIndex.bulk_load([1.0, 2.0])
        right = AlexIndex.bulk_load([2.0, 3.0])
        with pytest.raises(DuplicateKeyError):
            merge_indexes(left, right)

    def test_config_override(self):
        left = AlexIndex.bulk_load(np.arange(50.0), config=ga_srmi())
        right = AlexIndex.bulk_load(np.arange(50.0, 100.0), config=ga_srmi())
        merged = merge_indexes(left, right, config=pma_armi())
        assert merged.variant_name == "ALEX-PMA-ARMI"

    def test_merge_with_empty(self):
        left = AlexIndex.bulk_load(np.arange(20.0))
        right = AlexIndex.bulk_load([])
        merged = merge_indexes(left, right)
        assert len(merged) == 20
