"""Tests for the adaptation policy layer (repro.core.policy).

The two load-bearing properties:

* **policy invariance** — HeuristicPolicy and CostModelPolicy may build
  arbitrarily different *structures*, but the index *contents* (key →
  payload) are identical under any interleaving of inserts, deletes, and
  lookups, batched or scalar;
* **leaf-merge invariants** — a merge never produces a leaf over the
  node-size bound or below the occupancy of either victim, and the leaf
  chain stays sorted, linked, and consistent with the tree.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.adaptive import merge_leaves, split_leaf_sideways
from repro.core.alex import AlexIndex
from repro.core.config import ga_armi, pma_armi
from repro.core.errors import KeyNotFoundError
from repro.core.policy import (CostModelPolicy, HeuristicPolicy,
                               NodePressure, PressureEvent, ShardSummary,
                               SMO_NONE, EV_INSERT, EV_READ)
from repro.core.rmi import InnerNode

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

key_lists = st.lists(
    st.floats(min_value=-1e9, max_value=1e9,
              allow_nan=False, allow_infinity=False),
    min_size=0, max_size=150, unique=True)

# (op, key) sequences: op 0=insert, 1=delete, 2=lookup.
op_sequences = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 400)),
    min_size=1, max_size=250,
)


def _drive(index, reference, ops):
    for op, raw in ops:
        key = float(raw) * 1.5
        if op == 0 and key not in reference:
            index.insert(key, raw)
            reference[key] = raw
        elif op == 1 and key in reference:
            index.delete(key)
            del reference[key]
        elif op == 2:
            if key in reference:
                assert index.lookup(key) == reference[key]
            else:
                assert not index.contains(key)


@pytest.mark.parametrize("factory", [ga_armi, pma_armi],
                         ids=["ga-armi", "pma-armi"])
class TestPolicyInvariance:
    @SETTINGS
    @given(initial=key_lists, ops=op_sequences)
    def test_policies_agree_on_contents(self, factory, initial, ops):
        config = dataclasses.replace(
            factory(max_keys_per_node=64), split_on_inserts=True)
        keys = np.array(initial, dtype=np.float64)
        results = []
        for policy in (HeuristicPolicy(), CostModelPolicy()):
            index = AlexIndex.bulk_load(keys, config=config, policy=policy)
            reference = {float(k): None for k in initial}
            _drive(index, reference, ops)
            index.validate()
            results.append((sorted(reference), list(index.items())))
        (ref_a, items_a), (ref_b, items_b) = results
        assert ref_a == ref_b
        assert items_a == items_b

    @SETTINGS
    @given(initial=key_lists, deletes=st.data())
    def test_policies_agree_under_batch_deletes(self, factory, initial,
                                                deletes):
        config = factory(max_keys_per_node=64)
        keys = np.array(initial, dtype=np.float64)
        count = deletes.draw(st.integers(0, len(initial)))
        victims = keys[:count]
        observed = []
        for policy in (HeuristicPolicy(), CostModelPolicy()):
            index = AlexIndex.bulk_load(keys, config=config, policy=policy)
            index.delete_many(victims)
            index.validate()
            observed.append(list(index.keys()))
        assert observed[0] == observed[1]
        assert observed[0] == sorted(set(initial) - set(victims.tolist()))


class TestLeafMergeInvariants:
    def _shrunken_index(self, rng, n=4000, keep=400):
        keys = np.unique(rng.uniform(0, 1e9, n + 500))[:n]
        index = AlexIndex.bulk_load(
            keys, config=ga_armi(max_keys_per_node=128),
            policy=CostModelPolicy())
        victims = rng.permutation(keys)[:n - keep]
        index.delete_many(victims)
        return index, sorted(set(keys.tolist())
                             - set(victims.tolist()))

    @SETTINGS
    @given(seed=st.integers(0, 50))
    def test_merge_respects_bounds_and_chain(self, seed):
        rng = np.random.default_rng(seed)
        index, survivors = self._shrunken_index(rng)
        # validate() checks the chain is sorted, linked, and covers the
        # tree; on top of that: no leaf exceeds the node-size bound, and
        # merging consolidated the shrunken index well above the
        # one-leaf-per-peak-leaf shape.
        index.validate()
        floor = (index.policy.merge_occupancy
                 * index.config.max_keys_per_node)
        sizes = [leaf.num_keys for leaf in index.leaves()]
        assert all(s <= index.config.max_keys_per_node for s in sizes)
        # Any leaf below the merge floor must have no same-parent
        # neighbour it could legally merge with (otherwise the policy
        # would have folded it already).
        for leaf in index.leaves():
            if leaf.num_keys >= floor or index.num_leaves() == 1:
                continue
            parents = [node for node in index.nodes()
                       if isinstance(node, InnerNode)
                       and any(c is leaf for c in node.children)]
            assert parents, "leaf unreachable from the tree"
            parent = parents[0]
            cap = index.policy.max_merged_keys(index.config)
            for sibling in (leaf.prev_leaf, leaf.next_leaf):
                if sibling is None:
                    continue
                if not any(c is sibling for c in parent.children):
                    continue
                assert leaf.num_keys + sibling.num_keys > cap
        assert list(index.keys()) == survivors

    def test_merge_leaves_direct_invariants(self):
        rng = np.random.default_rng(7)
        keys = np.unique(rng.uniform(0, 1e6, 600))[:512]
        index = AlexIndex.bulk_load(keys,
                                    config=ga_armi(max_keys_per_node=128))
        # Thin the index so some adjacent pair fits under the bound.
        index.delete_many(rng.permutation(keys)[:384])
        for leaf in index.leaves():
            sibling = leaf.next_leaf
            if (sibling is None
                    or leaf.num_keys + sibling.num_keys > 128):
                continue
            parent = next(node for node in index.nodes()
                          if isinstance(node, InnerNode)
                          and any(c is leaf for c in node.children))
            if not any(c is sibling for c in parent.children):
                continue
            before = leaf.num_keys + sibling.num_keys
            merged = merge_leaves(leaf, parent, index.config,
                                  index.counters)
            assert merged is not None
            assert merged.num_keys == before
            assert merged.num_keys >= max(leaf.num_keys,
                                          before - leaf.num_keys)
            assert merged.num_keys <= index.config.max_keys_per_node
            index.validate()
            assert index.counters.merges == 1
            return
        raise AssertionError("no mergeable same-parent pair after thinning")

    def test_merge_refuses_oversized_union(self):
        rng = np.random.default_rng(8)
        keys = np.unique(rng.uniform(0, 1e6, 400))[:256]
        index = AlexIndex.bulk_load(keys,
                                    config=ga_armi(max_keys_per_node=96))
        for leaf in index.leaves():
            if leaf.next_leaf is None:
                continue
            if leaf.num_keys + leaf.next_leaf.num_keys > 96:
                parent = next(node for node in index.nodes()
                              if isinstance(node, InnerNode)
                              and any(c is leaf for c in node.children))
                if not any(c is leaf.next_leaf for c in parent.children):
                    continue
                if (leaf.prev_leaf is not None
                        and any(c is leaf.prev_leaf
                                for c in parent.children)
                        and leaf.num_keys + leaf.prev_leaf.num_keys <= 96):
                    continue  # the other side could legally merge
                assert merge_leaves(leaf, parent, index.config,
                                    index.counters) is None
                return
        pytest.skip("no oversized pair in this layout")


class TestSidewaysSplit:
    def test_sideways_split_preserves_contents_and_routing(self):
        rng = np.random.default_rng(11)
        keys = np.unique(rng.uniform(0, 1e6, 3000))[:2500]
        index = AlexIndex.bulk_load(
            keys, config=ga_armi(max_keys_per_node=512),
            policy=CostModelPolicy())  # slot reserve: multi-slot leaves
        for leaf in index.leaves():
            parents = [node for node in index.nodes()
                       if isinstance(node, InnerNode)
                       and sum(c is leaf for c in node.children) >= 2]
            if not parents:
                continue
            result = split_leaf_sideways(leaf, parents[0], index.config,
                                         index.counters)
            if result is None:
                continue
            left, right = result
            assert left.num_keys + right.num_keys > 0
            assert left.max_key() < right.min_key()
            index.validate()  # includes routing min/max back to each leaf
            return
        pytest.skip("no multi-slot leaf to split sideways")

    def test_sideways_needs_two_slots(self):
        keys = np.arange(64, dtype=np.float64)
        index = AlexIndex.bulk_load(keys, config=ga_armi())
        leaf = index.first_leaf()
        assert split_leaf_sideways(leaf, None, index.config,
                                   index.counters) is None


class TestBatchDeletes:
    def test_delete_many_matches_scalar(self):
        rng = np.random.default_rng(3)
        keys = np.unique(rng.uniform(0, 1e9, 3000))[:2500]
        a = AlexIndex.bulk_load(keys, list(range(len(keys))))
        b = AlexIndex.bulk_load(keys, list(range(len(keys))))
        victims = rng.permutation(keys)[:1200]
        a.delete_many(victims)
        for key in victims:
            b.delete(float(key))
        assert list(a.items()) == list(b.items())
        assert len(a) == len(b) == len(keys) - len(victims)
        a.validate()

    def test_delete_many_is_all_or_nothing(self):
        keys = np.arange(100, dtype=np.float64)
        index = AlexIndex.bulk_load(keys)
        with pytest.raises(KeyNotFoundError):
            index.delete_many([5.0, 50.0, 1000.0])
        assert len(index) == 100
        assert index.contains(5.0) and index.contains(50.0)
        with pytest.raises(KeyNotFoundError):
            index.delete_many([7.0, 7.0])  # in-batch duplicate
        assert index.contains(7.0)

    def test_erase_many_skips_absent(self):
        keys = np.arange(100, dtype=np.float64)
        index = AlexIndex.bulk_load(keys)
        removed = index.erase_many([5.0, 5.0, 50.0, 1000.0, -3.0])
        assert removed == 2
        assert len(index) == 98
        assert not index.contains(5.0) and not index.contains(50.0)
        assert index.erase_many([]) == 0

    def test_delete_many_counter_totals_match_scalar(self):
        rng = np.random.default_rng(13)
        keys = np.unique(rng.uniform(0, 1e9, 600))[:500]
        index = AlexIndex.bulk_load(keys)
        before = index.counters.snapshot()
        index.delete_many(rng.permutation(keys)[:200])
        assert index.counters.diff(before).deletes == 200


class TestHeuristicEquivalence:
    """HeuristicPolicy must reproduce the pre-policy decisions exactly."""

    def test_split_condition_matches_legacy(self):
        config = dataclasses.replace(ga_armi(max_keys_per_node=64),
                                     split_on_inserts=True)
        index = AlexIndex.bulk_load(np.arange(64, dtype=np.float64),
                                    config=config)
        leaf = index.first_leaf()
        assert index.policy.choose_insert_smo(leaf, None, index) != SMO_NONE
        small = AlexIndex.bulk_load(np.arange(10, dtype=np.float64),
                                    config=config)
        assert small.policy.choose_insert_smo(
            small.first_leaf(), None, small) == SMO_NONE

    def test_no_delete_smo_ever(self):
        index = AlexIndex.bulk_load(np.arange(256, dtype=np.float64),
                                    config=ga_armi(max_keys_per_node=64))
        for _ in range(250):
            index.delete(float(len(index) - 1))
        leaves_before = index.num_leaves()
        assert index.counters.merges == 0
        assert index.num_leaves() == leaves_before

    def test_shard_policy_matches_legacy_thresholds(self):
        policy = HeuristicPolicy()
        hot = [ShardSummary(900, 100), ShardSummary(50, 100),
               ShardSummary(50, 100)]
        decision = policy.choose_shard_smo(hot, 0.5, 100)
        assert decision is not None and decision.action == "split"
        assert decision.shard == 0
        assert policy.choose_shard_smo(hot, 0.5, 10 ** 9) is None
        cold = [ShardSummary(300, 100)] * 4
        assert policy.choose_shard_smo(cold, 0.5, 100) is None  # no merges


class TestCostModelDecisions:
    def test_pressure_ema_tracks_mix(self):
        pressure = NodePressure()
        pressure.observe(PressureEvent(EV_READ, 30, probes=90))
        pressure.observe(PressureEvent(EV_INSERT, 10, shifts=40,
                                       searches=10))
        assert pressure.write_fraction == pytest.approx(0.25)
        assert pressure.probes_per_op == pytest.approx(90 / 40)
        assert pressure.shifts_per_insert == pytest.approx(4.0)
        # batch rebuilds (searches omitted on a write) must not dilute
        # the search-cost denominator
        pressure.observe(PressureEvent(EV_INSERT, 100))
        assert pressure.probes_per_op == pytest.approx(90 / 40)
        before = pressure.ops
        pressure.observe(PressureEvent(EV_READ, NodePressure.WINDOW))
        assert pressure.ops < before + NodePressure.WINDOW  # decayed

    def test_cold_pair_merges(self):
        policy = CostModelPolicy()
        summaries = [ShardSummary(500, 100), ShardSummary(2, 100),
                     ShardSummary(2, 100), ShardSummary(500, 100)]
        decision = policy.choose_shard_smo(summaries, 0.9, 100)
        assert decision is not None
        assert decision.action == "merge"
        assert decision.shard == 1

    def test_retrain_on_drift(self):
        config = ga_armi(max_keys_per_node=4096)
        policy = CostModelPolicy(min_node_ops=8)
        index = AlexIndex.bulk_load(
            np.arange(512, dtype=np.float64), config=config, policy=policy)
        leaf = index.first_leaf()
        # Fresh baseline: cheap searches...
        for _ in range(3):
            policy.record(leaf, PressureEvent(EV_READ, 8, probes=24))
        assert leaf.pressure.baseline > 0
        # ...then the observed cost explodes (a drifted model).
        policy.record(leaf, PressureEvent(EV_READ, 64, probes=64 * 50))
        action = policy.choose_insert_smo(leaf, None, index)
        assert action == "retrain"

    def test_policy_decision_log_is_bounded(self):
        policy = CostModelPolicy()
        for i in range(policy.LOG_LIMIT + 100):
            policy._log("leaf", "merge", i, "x")
            policy.note_applied("merge")
        assert len(policy.decisions) == policy.LOG_LIMIT
        assert policy.smo_counts["merge"] == policy.LOG_LIMIT + 100

    def test_smo_counts_tally_applied_not_chosen(self):
        # A chosen merge that finds no qualifying sibling must not count.
        keys = np.arange(64, dtype=np.float64)
        index = AlexIndex.bulk_load(keys, config=ga_armi(),
                                    policy=CostModelPolicy())
        assert index.num_leaves() == 1  # root leaf: merge can never apply
        index.delete(0.0)
        assert index.policy.smo_counts.get("merge", 0) == 0
        assert index.counters.merges == 0

    def test_merge_headroom_keeps_hysteresis(self):
        policy = CostModelPolicy()
        config = ga_armi(max_keys_per_node=256)
        cap = policy.max_merged_keys(config)
        assert cap < config.max_keys_per_node
        # a merged leaf must sit at least a burst away from the split
        # trigger, and above the merge floor so it cannot re-merge-churn
        assert cap >= policy.merge_occupancy * config.max_keys_per_node
