"""Request-scoped distributed tracing: contexts, sampling, the flight
recorder, histogram exemplars, cross-process assembly, ingress fan-in
links, and the failover acceptance path — one trace id, pulled off a
histogram exemplar, naming a causal tree that spans ingress, facade,
worker RPC, replica promotion, and the WAL across processes.

(``tests/test_trace.py`` is the *workload* trace-driver suite; this
file covers ``repro.obs.trace``.)
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.obs import trace
from repro.serve import IngressRunner, ShardedAlexIndex


@pytest.fixture
def obs_on(monkeypatch):
    """Observability on, clean registry and recorder, trace knobs at
    their defaults — restored afterwards (the suite may run under
    REPRO_OBS=off; spawn-context workers read the env var at import)."""
    was = obs.enabled()
    monkeypatch.setenv(obs.ENV_VAR, "on")
    obs.set_enabled(True)
    obs.reset()
    trace.set_sample_rate(1.0)
    trace.set_slow_threshold_ms(5.0)
    yield
    obs.reset()
    trace.set_sample_rate(1.0)
    trace.set_slow_threshold_ms(5.0)
    obs.set_enabled(was)


# ---------------------------------------------------------------------------
# Context propagation
# ---------------------------------------------------------------------------


class TestContext:
    def test_attach_accepts_context_wire_and_none(self):
        ctx = trace.TraceContext("a" * 16, "b" * 16)
        assert trace.current() is None
        with trace.attach(ctx) as installed:
            assert installed is ctx
            assert trace.current() is ctx
            assert trace.wire() == ("a" * 16, "b" * 16)
            # Nesting a wire tuple swaps the ambient context...
            with trace.attach(("c" * 16, "d" * 16)):
                assert trace.current().trace_id == "c" * 16
            # ...and ``None`` is a no-op, not a detach.
            with trace.attach(None):
                assert trace.current() is ctx
        assert trace.current() is None and trace.wire() is None

    def test_bound_carries_context_across_threads(self):
        seen = []

        def probe():
            ctx = trace.current()
            seen.append(None if ctx is None else ctx.trace_id)

        # Untraced caller: bound() is the identity, no wrapper cost.
        assert trace.bound(probe) is probe
        with trace.attach(trace.TraceContext("e" * 16, "f" * 16)):
            runner = trace.bound(probe)
        # A raw thread never inherits contextvars; the bound thunk does.
        for fn in (probe, runner):
            thread = threading.Thread(target=fn)
            thread.start()
            thread.join()
        assert seen == [None, "e" * 16]


# ---------------------------------------------------------------------------
# Sampling and the kill switch
# ---------------------------------------------------------------------------


class TestSampling:
    def test_zero_rate_declines_roots_but_keeps_histograms(self, obs_on):
        trace.set_sample_rate(0.0)
        assert trace.start("t.root") is None
        span = trace.span("t.span", root=True)
        # Degrades to exactly the pre-tracing behavior: a plain
        # histogram span, nothing in the recorder, no exemplar.
        assert not isinstance(span, trace.TracedSpan)
        with span:
            pass
        hist = obs.get_registry().histogram("t.span").snapshot()
        assert hist["count"] == 1 and "exemplars" not in hist
        assert trace.snapshot() == {"spans": [], "slow": []}

    def test_force_bypasses_sampling(self, obs_on):
        trace.set_sample_rate(0.0)
        root = trace.start("t.batch", force=True, record=False)
        assert isinstance(root, trace.TracedSpan)
        root.finish()
        snap = trace.snapshot()
        assert [rec["name"] for rec in snap["spans"]] == ["t.batch"]
        # record=False keeps the span out of the histogram table.
        assert obs.get_registry().histogram("t.batch").snapshot()[
            "count"] == 0

    def test_children_inherit_the_trace(self, obs_on):
        with trace.start("t.root", keys=3) as root:
            with trace.span("t.child") as child:
                assert isinstance(child, trace.TracedSpan)
                assert child.ctx.trace_id == root.ctx.trace_id
                assert child.parent == root.ctx.span_id
        recs = {rec["name"]: rec for rec in trace.snapshot()["spans"]}
        assert recs["t.root"]["parent"] is None
        assert recs["t.root"]["keys"] == 3
        assert recs["t.child"]["parent"] == recs["t.root"]["span"]
        assert recs["t.child"]["trace"] == recs["t.root"]["trace"]
        assert recs["t.child"]["pid"] == os.getpid()

    def test_disabled_layer_is_the_shared_noop(self, obs_on):
        obs.set_enabled(False)
        assert trace.start("t.x") is None
        assert trace.span("t.x") is obs.NOOP_SPAN
        assert trace.span("t.x", root=True) is obs.NOOP_SPAN

        @trace.traced("t.fn")
        def fn():
            return 41

        assert fn() == 41
        assert trace.snapshot() == {"spans": [], "slow": []}

    def test_error_spans_stamp_the_exception_name(self, obs_on):
        with pytest.raises(ValueError):
            with trace.start("t.err"):
                raise ValueError("boom")
        (rec,) = trace.snapshot()["spans"]
        assert rec["error"] == "ValueError"


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        rec = trace.FlightRecorder(buffer=4, slow_keep=2)
        for i in range(10):
            rec.commit({"trace": "t", "span": str(i), "parent": None,
                        "name": "n", "start": i, "dur": 0, "pid": 1})
        spans = rec.snapshot()["spans"]
        assert [s["span"] for s in spans] == ["6", "7", "8", "9"]

    def test_slow_roots_are_harvested_and_survive_wrap(self, obs_on):
        trace.set_slow_threshold_ms(0.0)  # every root counts as slow
        with trace.start("t.slow") as root:
            with trace.span("t.slow.kid"):
                pass
        tid = root.ctx.trace_id
        # Wrap the main ring far past its capacity: the slow store must
        # still hold the full harvested trace.
        for _ in range(3000):
            trace.recorder().commit(
                {"trace": "zz", "span": trace._new_id(), "parent": None,
                 "name": "noise", "start": 0, "dur": 0, "pid": 1})
        snap = trace.snapshot()
        assert not any(s["trace"] == tid for s in snap["spans"])
        slow = trace.slow_traces(snap)
        assert slow and slow[0]["trace"] == tid
        assert {s["name"] for s in slow[0]["spans"]} == \
            {"t.slow", "t.slow.kid"}
        spans = trace.assemble(tid, snap)
        assert {s["name"] for s in spans} == {"t.slow", "t.slow.kid"}

    def test_drain_clears_and_absorb_refills(self, obs_on):
        with trace.start("t.d"):
            pass
        drained = trace.drain()
        assert [s["name"] for s in drained["spans"]] == ["t.d"]
        assert trace.snapshot() == {"spans": [], "slow": []}
        # What a worker ships over RPC, the facade folds back in.
        trace.absorb(drained)
        trace.absorb(None)  # dead-worker drains are skipped, not fatal
        assert [s["name"] for s in trace.snapshot()["spans"]] == ["t.d"]

    def test_assemble_follows_fanin_links_both_ways(self):
        def rec(tid, name, start, **extra):
            return {"trace": tid, "span": trace._new_id(),
                    "parent": None, "name": name, "start": start,
                    "dur": 1, "pid": 1, **extra}

        snap = {"spans": [
            rec("m1", "req1", 1, batch="bb"),
            rec("m2", "req2", 2, batch="bb"),
            rec("bb", "batch", 3, links=["m1", "m2"]),
            rec("other", "unrelated", 4),
        ], "slow": []}
        # From a member, through the batch, out to the other member —
        # and from the batch down to every member.  Never the stranger.
        for entry in ("m1", "m2", "bb"):
            names = [s["name"] for s in trace.assemble(entry, snap)]
            assert names == ["req1", "req2", "batch"]


# ---------------------------------------------------------------------------
# Histogram exemplars
# ---------------------------------------------------------------------------


class TestExemplars:
    def test_traced_span_stamps_a_retrievable_exemplar(self, obs_on):
        with trace.start("t.ex") as root:
            time.sleep(0.001)
        snap = obs.get_registry().histogram("t.ex").snapshot()
        exemplar = obs.exemplar_for_percentile(snap, 99)
        assert exemplar is not None
        assert exemplar["trace"] == root.ctx.trace_id
        assert exemplar["value"] > 0
        # The exemplar names a trace the recorder can still produce.
        assert trace.assemble(exemplar["trace"], trace.snapshot())


# ---------------------------------------------------------------------------
# Service integration
# ---------------------------------------------------------------------------


def _spanning(service, trace_id):
    """Assemble a trace from the service-wide recorder view."""
    return trace.assemble(trace_id, service.trace_snapshot())


class TestServiceTracing:
    def test_facade_call_roots_a_trace(self, obs_on):
        keys = np.arange(500, dtype=np.float64)
        service = ShardedAlexIndex.bulk_load(keys, num_shards=2)
        try:
            service.lookup_many(keys[:64])
            hist = obs.get_registry().histogram(
                "serve.lookup_many").snapshot()
            exemplar = obs.exemplar_for_percentile(hist, 99)
            assert exemplar is not None
            spans = _spanning(service, exemplar["trace"])
            names = {s["name"] for s in spans}
            assert "serve.lookup_many" in names
        finally:
            service.close()

    def test_trace_crosses_the_process_boundary(self, obs_on):
        keys = np.arange(800, dtype=np.float64)
        service = ShardedAlexIndex.bulk_load(keys, num_shards=2,
                                             backend="process")
        try:
            with trace.start("test.root") as root:
                service.insert(5000.5, "v")
            spans = _spanning(service, root.ctx.trace_id)
            names = {s["name"] for s in spans}
            assert {"test.root", "serve.insert"} <= names
            assert any(n.startswith("rpc.") for n in names)
            assert any(n.startswith("shard.op.") for n in names)
            pids = {s["pid"] for s in spans}
            assert os.getpid() in pids and len(pids) >= 2
            # One coherent tree: every span carries the root's trace id
            # and every parent pointer resolves within it.
            ids = {s["span"] for s in spans}
            for s in spans:
                assert s["trace"] == root.ctx.trace_id
                assert s["parent"] is None or s["parent"] in ids
        finally:
            service.close()

    def test_wal_and_replica_read_spans_join_the_trace(
            self, obs_on, tmp_path):
        keys = np.arange(1000, dtype=np.float64)
        service = ShardedAlexIndex.bulk_load(
            keys, num_shards=1, durability_dir=str(tmp_path / "dur"),
            fsync="batch", replicate=True)
        try:
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                status = service.backend.replica_status(0)
                if status and status["num_keys"] == len(keys):
                    break
                time.sleep(0.01)
            with trace.start("test.wal") as root:
                service.insert_many(
                    5000.0 + np.arange(32, dtype=np.float64))
            with trace.start("test.rread") as rroot:
                service.lookup(keys[3], options="replica_ok")
            snap = service.trace_snapshot()
            wal_names = {s["name"]
                         for s in trace.assemble(root.ctx.trace_id, snap)}
            assert {"test.wal", "serve.insert_many",
                    "wal.append"} <= wal_names
            read_names = {s["name"] for s in
                          trace.assemble(rroot.ctx.trace_id, snap)}
            assert {"test.rread", "serve.lookup",
                    "serve.replica_read", "replica.read"} <= read_names
        finally:
            service.close()


# ---------------------------------------------------------------------------
# Ingress fan-in
# ---------------------------------------------------------------------------


class TestIngressTracing:
    def test_request_batch_and_facade_spans_link_up(self, obs_on):
        keys = np.arange(600, dtype=np.float64)
        payloads = [float(k) * 2 for k in keys]
        service = ShardedAlexIndex.bulk_load(keys, payloads,
                                             num_shards=2)
        try:
            with IngressRunner(service) as runner:
                assert runner.get(4.0) == 8.0
            hist = obs.get_registry().histogram(
                "ingress.request").snapshot()
            exemplar = obs.exemplar_for_percentile(hist, 99)
            assert exemplar is not None
            spans = _spanning(service, exemplar["trace"])
            by_name = {}
            for s in spans:
                by_name.setdefault(s["name"], []).append(s)
            # The request root carries its coalesced batch's trace id;
            # the batch span links back; the facade call rides under
            # the batch trace — one assembled tree covers all three.
            assert set(by_name) >= {"ingress.request", "ingress.batch",
                                    "serve.get_many"}
            (request,) = by_name["ingress.request"]
            (batch,) = by_name["ingress.batch"]
            assert request["batch"] == batch["trace"]
            assert request["trace"] in batch["links"]
            assert by_name["serve.get_many"][0]["trace"] == \
                batch["trace"]
        finally:
            service.close()


# ---------------------------------------------------------------------------
# The acceptance path: failover under a traced write
# ---------------------------------------------------------------------------


class TestFailoverTrace:
    def test_failover_causal_tree_from_exemplar(self, obs_on, tmp_path):
        """SIGKILL a primary, write through the ingress into the dead
        shard, then retrieve — by trace id taken from a histogram
        exemplar — a single causal tree spanning ingress → facade →
        worker RPC → replica promotion → WAL across ≥2 processes."""
        keys = np.arange(3000, dtype=np.float64)
        service = ShardedAlexIndex.bulk_load(
            keys, num_shards=2, backend="process",
            durability_dir=str(tmp_path / "dur"), fsync="batch",
            checkpoint_every=1 << 30, replicate=True)
        try:
            base = service.metrics_snapshot()["merged"]["counters"]
            with IngressRunner(service) as runner:
                os.kill(service.backend.worker_pids()[1], signal.SIGKILL)
                time.sleep(0.2)
                # Shard 1's key range: the write must cross the dead
                # primary and come back acked via replica promotion.
                batch = 10_000.0 + np.arange(60, dtype=np.float64)
                runner.insert_many(batch)
                assert runner.contains(10_000.0)
            counters = service.metrics_snapshot()["merged"]["counters"]
            assert counters.get("serve.replica_promotions", 0) - \
                base.get("serve.replica_promotions", 0) >= 1

            # The promotion's trace id, straight off the p99 exemplar.
            hist = obs.get_registry().histogram(
                "serve.promote").snapshot()
            exemplar = obs.exemplar_for_percentile(hist, 99)
            assert exemplar is not None, "promotion left no exemplar"
            tid = exemplar["trace"]

            spans = trace.assemble(tid, service.trace_snapshot())
            names = {s["name"] for s in spans}
            assert {"ingress.request", "serve.insert_many",
                    "serve.promote", "wal.flush", "wal.append",
                    "replica.promote"} <= names, names
            assert any(n.startswith("rpc.") for n in names)
            assert any(n.startswith("shard.op.") for n in names)
            # One trace end to end (the passthrough write lane has no
            # fan-in batch, so no linked side-traces)...
            assert {s["trace"] for s in spans} == {tid}
            # ...rooted at the ingress request...
            roots = [s for s in spans if s["parent"] is None]
            assert [r["name"] for r in roots] == ["ingress.request"]
            assert roots[0]["family"] == "write"
            # ...and spanning the facade and the promoted replica's
            # process.
            pids = {s["pid"] for s in spans}
            assert os.getpid() in pids and len(pids) >= 2
            replica_pids = {s["pid"] for s in spans
                            if s["name"] == "replica.promote"}
            assert replica_pids and os.getpid() not in replica_pids
        finally:
            service.close()
