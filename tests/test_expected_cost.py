"""Tests for the analytic lookup-cost model vs measured counters."""

import numpy as np
import pytest

from repro.analysis.expected_cost import (
    measure_alex_lookup,
    measure_bptree_lookup,
    predict_alex_lookup,
    predict_bptree_lookup,
    prediction_accuracy,
)
from repro.baselines.bptree import BPlusTree
from repro.core.alex import AlexIndex
from repro.core.config import ga_armi, ga_srmi
from repro.datasets import load

DATASETS = ["longitudes", "lognormal", "ycsb"]


@pytest.mark.parametrize("dataset", DATASETS)
class TestAlexPrediction:
    def test_prediction_within_band(self, dataset):
        keys = load(dataset, 6000, seed=91)
        index = AlexIndex.bulk_load(keys, config=ga_srmi(num_models=24))
        predicted = predict_alex_lookup(index)
        rng = np.random.default_rng(92)
        probes = rng.choice(keys, 2000)
        measured = measure_alex_lookup(index, probes)
        # The analytic model should land within 40% of the measurement.
        assert prediction_accuracy(predicted.nanos, measured) < 0.4, (
            f"{dataset}: predicted {predicted.nanos:.1f}, "
            f"measured {measured:.1f}")

    def test_structural_components_sane(self, dataset):
        keys = load(dataset, 6000, seed=93)
        index = AlexIndex.bulk_load(keys, config=ga_armi(max_keys_per_node=512))
        predicted = predict_alex_lookup(index)
        assert predicted.pointer_follows >= 1.0
        assert predicted.model_inferences == pytest.approx(
            predicted.pointer_follows + 1.0)
        assert predicted.probes >= 2.0


@pytest.mark.parametrize("dataset", DATASETS)
class TestBPlusTreePrediction:
    def test_prediction_within_band(self, dataset):
        keys = load(dataset, 6000, seed=94)
        tree = BPlusTree.bulk_load(keys, page_size=256)
        predicted = predict_bptree_lookup(tree)
        rng = np.random.default_rng(95)
        probes = rng.choice(keys, 2000)
        measured = measure_bptree_lookup(tree, probes)
        assert prediction_accuracy(predicted.nanos, measured) < 0.4

    def test_pointer_follows_equal_height_minus_one(self, dataset):
        keys = load(dataset, 6000, seed=96)
        tree = BPlusTree.bulk_load(keys, page_size=256)
        predicted = predict_bptree_lookup(tree)
        assert predicted.pointer_follows == tree.height - 1


class TestModelExplainsTheGap:
    def test_predicted_ordering_matches_measured_ordering(self):
        # The analytic model must agree with the measurement about who wins.
        keys = load("ycsb", 8000, seed=97)
        index = AlexIndex.bulk_load(keys, config=ga_srmi(num_models=32))
        tree = BPlusTree.bulk_load(keys, page_size=256)
        predicted_gap = (predict_bptree_lookup(tree).nanos
                         / predict_alex_lookup(index).nanos)
        rng = np.random.default_rng(98)
        probes = rng.choice(keys, 2000)
        measured_gap = (measure_bptree_lookup(tree, probes)
                        / measure_alex_lookup(index, probes))
        assert predicted_gap > 1.0
        assert measured_gap > 1.0
        assert prediction_accuracy(predicted_gap, measured_gap) < 0.5


class TestAccuracyHelper:
    def test_relative_error(self):
        assert prediction_accuracy(110.0, 100.0) == pytest.approx(0.1)
        assert prediction_accuracy(0.0, 0.0) == 0.0
        assert prediction_accuracy(1.0, 0.0) == float("inf")
