"""Unit tests for the Packed Memory Array leaf node (paper Section 3.3.2)."""

import numpy as np
import pytest

from repro.core.config import AlexConfig, PACKED_MEMORY_ARRAY, STATIC_RMI
from repro.core.errors import DuplicateKeyError, KeyNotFoundError
from repro.core.pma import PMANode, next_power_of_two
from repro.core.stats import Counters


def make_node(keys=None, **config_overrides):
    config = AlexConfig(node_layout=PACKED_MEMORY_ARRAY, rmi_mode=STATIC_RMI,
                        **config_overrides)
    node = PMANode(config, Counters())
    node.build(np.asarray(keys if keys is not None else [], dtype=np.float64))
    return node


class TestNextPowerOfTwo:
    @pytest.mark.parametrize("n,want", [(0, 1), (1, 1), (2, 2), (3, 4),
                                        (4, 4), (5, 8), (1000, 1024),
                                        (1024, 1024), (1025, 2048)])
    def test_values(self, n, want):
        assert next_power_of_two(n) == want


class TestGeometry:
    def test_capacity_is_power_of_two(self):
        for n in (0, 1, 7, 100, 500):
            node = make_node(np.arange(n, dtype=np.float64))
            assert node.capacity & (node.capacity - 1) == 0

    def test_segment_size_divides_capacity(self):
        node = make_node(np.arange(300, dtype=np.float64))
        assert node.capacity % node.segment_size == 0
        node.check_pma_invariants()

    def test_density_bounds_decrease_toward_root(self):
        node = make_node(np.arange(1000, dtype=np.float64))
        bounds = [node.upper_density(level)
                  for level in range(node.tree_height + 1)]
        assert bounds == sorted(bounds, reverse=True)
        assert bounds[0] == pytest.approx(node.config.pma_segment_density)
        assert bounds[-1] == pytest.approx(node.config.pma_root_density)

    def test_window_bounds_are_aligned(self):
        node = make_node(np.arange(500, dtype=np.float64))
        seg = node.segment_size
        for pos in (0, 1, seg - 1, seg, node.capacity - 1):
            lo, hi = node.window_bounds(pos, 0)
            assert lo % seg == 0
            assert hi - lo == seg
            assert lo <= pos < hi
        lo, hi = node.window_bounds(0, node.tree_height)
        assert (lo, hi) == (0, node.capacity)


class TestBuildAndLookup:
    def test_all_keys_findable(self):
        rng = np.random.default_rng(11)
        keys = np.sort(np.unique(rng.uniform(0, 1000, 200)))
        node = make_node(keys)
        for key in keys:
            assert node.contains(float(key))
        node.check_invariants()

    def test_empty_build(self):
        node = make_node([])
        assert node.num_keys == 0
        assert not node.contains(3.0)


class TestInsert:
    def test_insert_lookup_roundtrip(self):
        node = make_node(np.arange(0, 100, 2, dtype=np.float64))
        node.insert(1.5, "x")
        assert node.lookup(1.5) == "x"
        node.check_invariants()
        node.check_pma_invariants()

    def test_duplicate_raises(self):
        node = make_node([1.0, 2.0, 3.0] * 1)
        with pytest.raises(DuplicateKeyError):
            node.insert(2.0)

    def test_many_random_inserts(self):
        rng = np.random.default_rng(12)
        keys = np.unique(rng.uniform(0, 1000, 600))
        node = make_node(keys[:64])
        for key in keys[64:]:
            node.insert(float(key))
        node.check_invariants()
        node.check_pma_invariants()
        assert node.num_keys == len(keys)

    def test_sequential_inserts_avoid_quadratic_shifts(self):
        # The PMA's selling point: segment-local shifts plus rebalances keep
        # the per-insert shift count low even under append-only inserts.
        node = make_node(np.arange(64, dtype=np.float64))
        before = node.counters.shifts
        count = 500
        for key in np.arange(64, 64 + count, dtype=np.float64):
            node.insert(float(key))
        shifts_per_insert = (node.counters.shifts - before) / count
        assert shifts_per_insert < node.segment_size

    def test_root_density_respected(self):
        node = make_node(np.arange(32, dtype=np.float64))
        for key in np.arange(32, 600, dtype=np.float64):
            node.insert(float(key))
            assert node.num_keys <= node.config.pma_segment_density * node.capacity + 1

    def test_rebalances_counted(self):
        node = make_node(np.arange(64, dtype=np.float64))
        for key in np.arange(64.1, 120.1, 0.37):
            node.insert(float(key))
        assert node.counters.rebalance_moves > 0


class TestExpand:
    def test_expand_doubles_capacity(self):
        node = make_node(np.arange(100, dtype=np.float64))
        old = node.capacity
        node.expand()
        assert node.capacity == old * 2

    def test_expand_is_model_based(self):
        # After an expansion, prediction errors should be small (ALEX's
        # deviation from the standard uniform-redistribution PMA).
        node = make_node(np.arange(0, 2000, 2, dtype=np.float64))
        node.expand()
        errors = [node.prediction_error(float(k))
                  for k in range(0, 2000, 40)]
        assert np.mean(errors) < 4

    def test_uniformity_drifts_with_rebalances(self):
        rng = np.random.default_rng(13)
        keys = np.unique(rng.uniform(0, 1000, 128))
        node = make_node(keys)
        start = node.gap_uniformity()
        for key in np.unique(rng.uniform(0, 1000, 2000)):
            if not node.contains(float(key)):
                node.insert(float(key))
        # After many inserts + rebalances the spacing stays bounded (no
        # fully-packed blowup): the coefficient of variation is modest.
        assert node.gap_uniformity() < max(2.0, start + 2.0)


class TestDelete:
    def test_delete_roundtrip(self):
        keys = np.arange(0, 100, dtype=np.float64)
        node = make_node(keys)
        node.delete(50.0)
        assert not node.contains(50.0)
        node.check_invariants()

    def test_delete_missing_raises(self):
        node = make_node(np.arange(10, dtype=np.float64))
        with pytest.raises(KeyNotFoundError):
            node.delete(99.0)

    def test_delete_to_empty_and_reuse(self):
        keys = np.arange(0, 60, dtype=np.float64)
        node = make_node(keys)
        for key in keys:
            node.delete(float(key))
        assert node.num_keys == 0
        node.insert(5.0, "fresh")
        assert node.lookup(5.0) == "fresh"


class TestScan:
    def test_scan_matches_sorted_keys(self):
        rng = np.random.default_rng(14)
        keys = np.sort(np.unique(rng.uniform(0, 100, 80)))
        node = make_node(keys)
        out = node.scan_from(float(keys[20]), 30)
        assert [k for k, _ in out] == keys[20:50].tolist()
