"""Unit tests for repro.core.stats.Counters."""

from repro.core.stats import Counters


class TestCounters:
    def test_starts_at_zero(self):
        counters = Counters()
        assert counters.total_events() == 0

    def test_reset_zeroes_everything(self):
        counters = Counters(comparisons=5, shifts=3, splits=1)
        counters.reset()
        assert counters.total_events() == 0

    def test_snapshot_is_independent(self):
        counters = Counters(comparisons=5)
        snap = counters.snapshot()
        counters.comparisons += 10
        assert snap.comparisons == 5
        assert counters.comparisons == 15

    def test_diff_subtracts_fieldwise(self):
        before = Counters(comparisons=5, shifts=2)
        after = Counters(comparisons=9, shifts=2, inserts=1)
        delta = after.diff(before)
        assert delta.comparisons == 4
        assert delta.shifts == 0
        assert delta.inserts == 1

    def test_merge_adds_fieldwise(self):
        a = Counters(comparisons=1, probes=2)
        b = Counters(comparisons=10, splits=3)
        a.merge(b)
        assert a.comparisons == 11
        assert a.probes == 2
        assert a.splits == 3

    def test_as_dict_round_trips(self):
        counters = Counters(comparisons=7, pointer_follows=2)
        rebuilt = Counters(**counters.as_dict())
        assert rebuilt == counters

    def test_total_events_sums_all_fields(self):
        counters = Counters(comparisons=1, shifts=2, model_inferences=3)
        assert counters.total_events() == 6

    def test_equality_is_fieldwise(self):
        assert Counters(comparisons=1) == Counters(comparisons=1)
        assert Counters(comparisons=1) != Counters(shifts=1)
