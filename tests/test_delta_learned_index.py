"""Tests for the delta-buffer Learned Index baseline (paper Section 2.3)."""

import numpy as np
import pytest

from repro.baselines.delta_learned_index import DeltaLearnedIndex
from repro.core.errors import DuplicateKeyError, KeyNotFoundError


@pytest.fixture
def keys_1k():
    return np.unique(np.random.default_rng(61).uniform(0, 1e6, 1000))


@pytest.fixture
def index(keys_1k):
    return DeltaLearnedIndex.bulk_load(keys_1k, num_models=8,
                                       merge_threshold=0.10)


class TestConstruction:
    def test_bulk_load_lookups(self, index, keys_1k):
        for key in keys_1k[::17]:
            index.lookup(float(key))

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            DeltaLearnedIndex(merge_threshold=0.0)

    def test_empty(self):
        index = DeltaLearnedIndex()
        assert len(index) == 0
        index.insert(1.0, "a")
        assert index.lookup(1.0) == "a"


class TestDeltaBuffer:
    def test_inserts_go_to_delta(self, index):
        index.insert(-5.0, "x")
        assert index.delta_size == 1
        assert index.lookup(-5.0) == "x"

    def test_merge_on_threshold(self, index, keys_1k):
        rng = np.random.default_rng(62)
        new = np.setdiff1d(np.unique(rng.uniform(0, 1e6, 400)), keys_1k)
        for key in new[:150]:
            index.insert(float(key))
        assert index.merges >= 1
        assert index.delta_size < 150
        # Everything still findable post-merge.
        for key in new[:150:7]:
            assert index.contains(float(key))

    def test_duplicate_across_structures_rejected(self, index, keys_1k):
        with pytest.raises(DuplicateKeyError):
            index.insert(float(keys_1k[0]))  # lives in main
        index.insert(-1.0)
        with pytest.raises(DuplicateKeyError):
            index.insert(-1.0)               # lives in delta

    def test_inserts_between_merges_are_cheap(self, keys_1k):
        # The whole point of the delta: shifts per insert scale with the
        # delta size, not the main size.
        index = DeltaLearnedIndex.bulk_load(keys_1k, merge_threshold=0.5)
        before = index.counters.shifts
        rng = np.random.default_rng(63)
        new = np.setdiff1d(np.unique(rng.uniform(0, 1e6, 120)), keys_1k)[:100]
        for key in new:
            index.insert(float(key))
        per_insert = (index.counters.shifts - before) / 100
        assert per_insert < len(keys_1k) / 4  # far below naive n/2


class TestDeleteUpdate:
    def test_delete_from_delta(self, index):
        index.insert(-2.0, "tmp")
        index.delete(-2.0)
        assert not index.contains(-2.0)

    def test_delete_from_main(self, index, keys_1k):
        index.delete(float(keys_1k[5]))
        assert not index.contains(float(keys_1k[5]))

    def test_delete_missing_raises(self, index):
        with pytest.raises(KeyNotFoundError):
            index.delete(-99.0)

    def test_update_both_locations(self, index, keys_1k):
        index.update(float(keys_1k[3]), "main-upd")
        assert index.lookup(float(keys_1k[3])) == "main-upd"
        index.insert(-3.0, "old")
        index.update(-3.0, "delta-upd")
        assert index.lookup(-3.0) == "delta-upd"


class TestScan:
    def test_scan_merges_delta_and_main(self, index, keys_1k):
        sorted_keys = np.sort(keys_1k)
        mid = float(sorted_keys[100])
        index.insert(mid + 1e-7, "between")
        out = index.range_scan(mid, 3)
        assert out[0][0] == mid
        assert out[1][0] == pytest.approx(mid + 1e-7)

    def test_items_sorted_across_structures(self, index, keys_1k):
        rng = np.random.default_rng(64)
        new = np.setdiff1d(np.unique(rng.uniform(0, 1e6, 60)), keys_1k)[:50]
        for key in new:
            index.insert(float(key))
        out = [k for k, _ in index.items()]
        assert out == sorted(out)
        assert len(out) == len(index)


class TestAccounting:
    def test_sizes_cover_both_structures(self, index):
        base = index.index_size_bytes()
        index.insert(-1.0)
        assert index.index_size_bytes() == base + 8

    def test_merge_cost_counted(self, index, keys_1k):
        before = index.counters.build_moves
        rng = np.random.default_rng(65)
        new = np.setdiff1d(np.unique(rng.uniform(0, 1e6, 300)), keys_1k)
        for key in new[:150]:
            index.insert(float(key))
        assert index.merges >= 1
        assert index.counters.build_moves > before + len(keys_1k)
