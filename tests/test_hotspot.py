"""Tests for the hotspot and latest key-selection distributions."""

import numpy as np
import pytest

from repro.workloads.hotspot import HotspotGenerator, LatestGenerator


class TestHotspotGenerator:
    def test_indexes_in_range(self):
        gen = HotspotGenerator(1000, seed=1)
        picks = gen.sample(5000)
        assert picks.min() >= 0 and picks.max() < 1000

    def test_hot_set_receives_hot_fraction(self):
        gen = HotspotGenerator(1000, hot_fraction=0.2,
                               hot_access_fraction=0.8, seed=2)
        picks = gen.sample(50_000)
        hot_share = (picks < gen.hot_n).mean()
        assert hot_share == pytest.approx(0.8, abs=0.02)

    def test_uniform_when_no_hot_skew(self):
        gen = HotspotGenerator(100, hot_fraction=0.5,
                               hot_access_fraction=0.5, seed=3)
        picks = gen.sample(50_000)
        hot_share = (picks < gen.hot_n).mean()
        # Cold picks come from the cold half only, so the hot half's share
        # equals the hot access fraction exactly.
        assert hot_share == pytest.approx(0.5, abs=0.02)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HotspotGenerator(0)
        with pytest.raises(ValueError):
            HotspotGenerator(10, hot_fraction=0.0)
        with pytest.raises(ValueError):
            HotspotGenerator(10, hot_access_fraction=1.5)

    def test_deterministic(self):
        a = HotspotGenerator(100, seed=4).sample(100)
        b = HotspotGenerator(100, seed=4).sample(100)
        assert np.array_equal(a, b)


class TestLatestGenerator:
    def test_indexes_within_population(self):
        gen = LatestGenerator(1000, seed=5)
        picks = gen.sample(2000, population=300)
        assert picks.min() >= 0 and picks.max() < 300

    def test_most_recent_is_hottest(self):
        gen = LatestGenerator(1000, seed=6)
        picks = gen.sample(50_000, population=1000)
        newest_share = (picks >= 990).mean()
        oldest_share = (picks < 10).mean()
        assert newest_share > 5 * max(oldest_share, 1e-9)

    def test_population_grows_over_time(self):
        gen = LatestGenerator(1000, seed=7)
        early = gen.sample(1000, population=10)
        assert early.max() < 10
        late = gen.sample(1000, population=1000)
        assert late.max() >= 900

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LatestGenerator(0)
        gen = LatestGenerator(100)
        with pytest.raises(ValueError):
            gen.sample(10, population=0)
        with pytest.raises(ValueError):
            gen.sample(10, population=101)
