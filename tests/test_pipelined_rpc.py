"""Equivalence and fault-injection tests for the pipelined worker RPC.

The process backend now keeps several request frames in flight per
worker, completes them out of order relative to other workers, and
ships numeric reply columns through a shared-memory reply ring.  None
of that may be observable through the facade: results must stay
bit-identical to the synchronous call-and-wait discipline
(``max_inflight=1`` + pickle-pipe replies), counter totals must agree,
and a worker killed with a pipeline full of outstanding requests must
fail *every* one of those futures — never hang one — while logged
writes stay all-or-nothing across shards.
"""

import os
import signal
import threading
import time
import zlib
from concurrent.futures import wait as wait_futures

import numpy as np
import pytest

from repro import obs
from repro.core.config import ga_armi
from repro.core.stats import Counters
from repro.serve import ShardedAlexIndex
from repro.serve.backend import WorkerDiedError
from repro.serve.worker import (DEFAULT_MAX_INFLIGHT, INLINE_BATCH_BYTES,
                                ProcessBackend, _default_max_inflight)

#: Thread backend covers the cheap sweep; the process backend is the
#: subject under test (workers are expensive to spawn on CI, so it
#: rides one representative configuration per test).
BACKENDS = ("thread", "process")


def _seed(parts) -> int:
    return zlib.crc32(repr(parts).encode())


def _build(backend, n=2000, num_shards=2, max_inflight=None, seed=0,
           **kwargs):
    """A service with numeric payloads (reply-ring eligible) plus its
    key set and the key->payload ground truth."""
    rng = np.random.default_rng(_seed(("pipelined", backend, seed)))
    keys = np.unique(rng.lognormal(0, 2, n + 200) * 1e6)[:n]
    payloads = [float(k) * 2.0 for k in keys]
    service = ShardedAlexIndex.bulk_load(
        keys, payloads, num_shards=num_shards,
        config=ga_armi(max_keys_per_node=256), backend=backend,
        max_inflight=max_inflight, **kwargs)
    expected = dict(zip(keys.tolist(), payloads))
    return service, keys, expected


def _total_counters(service) -> Counters:
    total = Counters()
    for shard in service.shard_counters():
        total.merge(shard)
    return total


@pytest.fixture
def obs_on():
    was = obs.enabled()
    obs.set_enabled(True)
    yield
    obs.set_enabled(was)


class TestOutOfOrderEquivalence:
    """Pipelined, concurrently-driven traffic vs the synchronous path."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_concurrent_reads_bit_identical(self, backend):
        """Many threads driving overlapping read batches through the
        pipelined backend return exactly what a sequentially-driven
        ``max_inflight=1`` twin returns, and (process backend) the two
        services account the same algorithmic work."""
        service, keys, _ = _build(backend)
        sync_inflight = 1 if backend == "process" else None
        ref, _, _ = _build(backend, max_inflight=sync_inflight)
        try:
            rng = np.random.default_rng(_seed(("reads", backend)))
            batches = [rng.choice(keys, size=int(rng.integers(8, 400)))
                       for _ in range(24)]
            expected = [ref.get_many(batch) for batch in batches]

            results = [None] * len(batches)
            errors = []

            def drive(lane):
                try:
                    for i in range(lane, len(batches), 4):
                        results[i] = service.get_many(batches[i])
                except Exception as exc:  # surfaced below
                    errors.append(exc)

            threads = [threading.Thread(target=drive, args=(lane,))
                       for lane in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not errors
            assert results == expected
            if backend == "process":
                # Worker processes are single-threaded, so out-of-order
                # *submission* must not change the work accounted: the
                # read multiset is identical, hence so are the totals.
                # (The thread backend shares one Counters per shard
                # across client threads, whose unlocked increments can
                # drop under contention — by design.)
                assert _total_counters(service) == _total_counters(ref)
        finally:
            service.close()
            ref.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_interleaved_reads_and_writes_match_sequential(self, backend):
        """Concurrent lanes of chained insert/read/erase traffic leave
        the service in exactly the state sequential driving leaves a
        twin in, and reads of the stable key set never see the writes
        (their key ranges are disjoint)."""
        service, keys, expected = _build(backend, n=1500)
        sync_inflight = 1 if backend == "process" else None
        ref, _, _ = _build(backend, n=1500, max_inflight=sync_inflight)
        hi = float(keys.max())
        lanes = [hi + 1.0 + 1000.0 * lane + np.arange(64, dtype=np.float64)
                 for lane in range(3)]
        try:
            for fresh in lanes:  # the sequential reference
                ref.insert_many(fresh, [float(k) for k in fresh])
                ref.erase_many(fresh[::2])

            errors = []

            def drive(lane):
                try:
                    rng = np.random.default_rng(
                        _seed(("lane", backend, lane)))
                    fresh = lanes[lane]
                    service.insert_many(fresh, [float(k) for k in fresh])
                    for _ in range(5):
                        batch = rng.choice(keys, size=128)
                        got = service.get_many(batch)
                        want = [expected[float(k)] for k in batch]
                        if got != want:
                            errors.append((lane, "read mismatch"))
                    service.erase_many(fresh[::2])
                except Exception as exc:
                    errors.append((lane, exc))

            threads = [threading.Thread(target=drive, args=(lane,))
                       for lane in range(len(lanes))]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not errors
            assert list(service.items()) == list(ref.items())
            service.validate()
        finally:
            service.close()
            ref.close()

    def test_reply_ring_disabled_equivalent(self, monkeypatch):
        """``use_reply_ring=False`` (pickle-pipe replies only) is purely
        a transport change — same results on ring-eligible numeric
        payloads."""
        original = ProcessBackend.__init__

        def no_ring(self, *args, **kwargs):
            kwargs["use_reply_ring"] = False
            original(self, *args, **kwargs)

        monkeypatch.setattr(ProcessBackend, "__init__", no_ring)
        service, keys, expected = _build("process")
        try:
            assert service.backend.use_reply_ring is False
            batch = keys[::3]
            assert service.get_many(batch) == \
                [expected[float(k)] for k in batch]
            assert service.contains_many(batch).all()
        finally:
            service.close()

    def test_inline_and_segment_batch_paths_agree(self, obs_on):
        """Small coalesced batches ride inline in the request frame,
        large analytic batches keep the shared-memory segment — both
        must return the same answers, and the reply ring must actually
        carry the numeric columns back."""
        service, keys, expected = _build("process", n=6000)
        try:
            small = keys[:64]
            large = np.random.default_rng(7).choice(keys, size=4096)
            assert small.nbytes <= INLINE_BATCH_BYTES < large.nbytes

            before = dict(obs.snapshot().get("counters", {}))
            assert service.get_many(small) == \
                [expected[float(k)] for k in small]
            assert service.get_many(large) == \
                [expected[float(k)] for k in large]
            after = dict(obs.snapshot().get("counters", {}))

            def delta(name):
                return after.get(name, 0) - before.get(name, 0)

            assert delta("rpc.inline_batches") >= 1
            assert delta("rpc.shm_replies") >= 1
        finally:
            service.close()

    def test_max_inflight_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_INFLIGHT", "3")
        assert _default_max_inflight() == 3
        monkeypatch.setenv("REPRO_MAX_INFLIGHT", "0")
        assert _default_max_inflight() == 1
        monkeypatch.setenv("REPRO_MAX_INFLIGHT", "not a number")
        assert _default_max_inflight() == DEFAULT_MAX_INFLIGHT


class TestWorkerDeathMidPipeline:
    """A dead worker must fail *every* outstanding future (satellite:
    no silent hang), report the dirty shutdown, and — with durability —
    leave logged writes all-or-nothing."""

    def test_all_outstanding_futures_fail(self, obs_on):
        """Freeze a worker, queue a pipeline of requests against it,
        then SIGKILL: each queued future raises ``WorkerDiedError`` for
        that shard, the sibling worker keeps serving, and closing the
        service records the dirty shutdown instead of swallowing it."""
        service, _, _ = _build("process", num_shards=2)
        backend = service.backend
        victim = 0
        pid = backend.worker_pids()[victim]
        worker = backend._workers[victim]
        before = dict(obs.snapshot().get("counters", {}))
        try:
            os.kill(pid, signal.SIGSTOP)  # requests queue, none answered
            try:
                futures = [backend._submit(worker, ("call", "num_keys", ()))
                           for _ in range(5)]
            finally:
                os.kill(pid, signal.SIGKILL)
                os.kill(pid, signal.SIGCONT)
            done, not_done = wait_futures(futures, timeout=30)
            assert not not_done, "a future outlived its worker"
            for future in futures:
                exc = future.exception()
                assert isinstance(exc, WorkerDiedError)
                assert exc.shard == victim
            deadline = time.monotonic() + 10
            while (backend.dead_shards() != [victim]
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert backend.dead_shards() == [victim]
            # The sibling's pipeline is untouched.
            sibling = backend._workers[1]
            assert backend._request(sibling, ("call", "num_keys", ())) >= 0
        finally:
            service.close()
        after = dict(obs.snapshot().get("counters", {}))
        assert after.get("serve.dirty_shutdowns", 0) > \
            before.get("serve.dirty_shutdowns", 0)
        kinds = [e.get("kind") for e in obs.snapshot().get("events", [])]
        assert "worker.dirty_shutdown" in kinds
        assert "worker.pipe_lost" in kinds

    def test_sigkill_mid_pipeline_heals_and_stays_atomic(self, tmp_path):
        """SIGKILL a worker while reader threads keep its pipeline full
        and writes land: durability respawns the shard, every read
        (after its transparent retry) stays bit-identical, and each
        cross-shard write batch is either fully present or fully
        absent."""
        service, keys, expected = _build(
            "process", n=1500, num_shards=2,
            durability_dir=str(tmp_path / "svc"), fsync="off")
        stop = threading.Event()
        errors = []

        def reader(lane):
            rng = np.random.default_rng(_seed(("killread", lane)))
            try:
                while not stop.is_set():
                    batch = rng.choice(keys, size=64)
                    got = service.get_many(batch)
                    want = [expected[float(k)] for k in batch]
                    if got != want:
                        errors.append((lane, "read mismatch"))
            except Exception as exc:
                errors.append((lane, exc))

        threads = [threading.Thread(target=reader, args=(lane,))
                   for lane in range(3)]
        try:
            for t in threads:
                t.start()
            time.sleep(0.3)  # pipelines warm on both shards
            os.kill(service.backend.worker_pids()[0], signal.SIGKILL)
            # Cross-shard write batches racing the respawn: half the
            # keys land below the key space, half above, so every batch
            # spans both shards and must commit on both or neither.
            lo, hi = float(keys.min()), float(keys.max())
            batches = [np.concatenate([
                lo - 100.0 * (b + 1) - np.arange(8, dtype=np.float64),
                hi + 100.0 * (b + 1) + np.arange(8, dtype=np.float64)])
                for b in range(4)]
            for batch in batches:
                service.insert_many(batch, [float(k) for k in batch])
            time.sleep(0.2)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=60)
        try:
            assert not errors
            for batch in batches:
                present = service.contains_many(batch)
                assert present.all() or not present.any()
                assert present.all()  # these inserts were acked
            assert service.backend.dead_shards() == []
            service.validate()
        finally:
            service.close()
