"""Tests for the concurrency extension (Section 7, concurrency control)."""

import threading
import time

import numpy as np
import pytest

from repro.core.errors import DuplicateKeyError, KeyNotFoundError
from repro.ext.concurrent import ConcurrentAlexIndex, ReadWriteLock


class TestReadWriteLock:
    def test_multiple_readers_share(self):
        lock = ReadWriteLock()
        holders = []
        barrier = threading.Barrier(3)

        def reader():
            with lock.read():
                barrier.wait(timeout=5)  # all three inside simultaneously
                holders.append(1)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert holders == [1, 1, 1]

    def test_writer_is_exclusive(self):
        lock = ReadWriteLock()
        order = []

        def writer(tag):
            with lock.write():
                order.append(f"{tag}-in")
                time.sleep(0.02)
                order.append(f"{tag}-out")

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        # Writers never interleave: each -in is immediately followed by
        # its own -out.
        for i in range(0, len(order), 2):
            assert order[i].split("-")[0] == order[i + 1].split("-")[0]

    def test_writer_blocks_new_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        result = []

        def writer():
            with lock.write():
                result.append("wrote")

        def late_reader():
            with lock.read():
                result.append("read")

        w = threading.Thread(target=writer)
        w.start()
        time.sleep(0.02)  # writer is now waiting
        r = threading.Thread(target=late_reader)
        r.start()
        time.sleep(0.02)
        assert result == []  # both blocked behind the initial reader
        lock.release_read()
        w.join(timeout=5)
        r.join(timeout=5)
        assert result[0] == "wrote"  # writer preference


class TestConcurrentAlexIndex:
    def test_single_thread_api(self):
        index = ConcurrentAlexIndex.bulk_load(np.arange(100.0))
        index.insert(100.5, "x")
        assert index.lookup(100.5) == "x"
        assert index.contains(50.0)
        assert index.get(-1.0, "dflt") == "dflt"
        index.update(100.5, "y")
        assert index.lookup(100.5) == "y"
        index.upsert(101.5, "z")
        index.delete(101.5)
        assert 100.5 in index
        assert len(index) == 101
        assert len(index.range_scan(0.0, 5)) == 5
        assert len(index.range_query(0.0, 4.0)) == 5
        index.validate()

    def test_errors_propagate(self):
        index = ConcurrentAlexIndex.bulk_load([1.0, 2.0])
        with pytest.raises(DuplicateKeyError):
            index.insert(1.0)
        with pytest.raises(KeyNotFoundError):
            index.lookup(9.0)

    def test_concurrent_readers_and_writer(self):
        rng = np.random.default_rng(0)
        init = np.unique(rng.uniform(0, 1e6, 3000))
        index = ConcurrentAlexIndex.bulk_load(init)
        new_keys = np.setdiff1d(np.unique(rng.uniform(0, 1e6, 3000)), init)
        errors = []
        stop = threading.Event()

        def reader():
            local = np.random.default_rng(threading.get_ident() % 2**32)
            while not stop.is_set():
                key = float(init[local.integers(0, len(init))])
                try:
                    index.lookup(key)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    return

        def writer():
            try:
                for key in new_keys:
                    index.insert(float(key))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        w = threading.Thread(target=writer)
        for t in readers:
            t.start()
        w.start()
        w.join(timeout=60)
        stop.set()
        for t in readers:
            t.join(timeout=10)
        assert not errors
        assert len(index) == len(init) + len(new_keys)
        index.validate()

    def test_concurrent_writers_disjoint_keys(self):
        index = ConcurrentAlexIndex.bulk_load(np.arange(0.0, 100.0))
        errors = []

        def writer(offset):
            try:
                for i in range(500):
                    index.insert(1000.0 + offset + i * 8)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(o,))
                   for o in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert len(index) == 100 + 8 * 500
        index.validate()

    def test_snapshot_items_consistent_length(self):
        index = ConcurrentAlexIndex.bulk_load(np.arange(500.0))
        snapshots = []
        done = threading.Event()

        def snapshotter():
            while not done.is_set():
                snapshots.append(len(index.snapshot_items()))

        t = threading.Thread(target=snapshotter)
        t.start()
        for i in range(300):
            index.insert(1000.0 + i)
        done.set()
        t.join(timeout=10)
        # Every snapshot must be a valid intermediate size (no torn reads).
        assert all(500 <= n <= 800 for n in snapshots)
