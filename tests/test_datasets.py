"""Tests for the dataset generators and CDF analysis (Table 1, Appendix C)."""

import numpy as np
import pytest

from repro.datasets import (
    DATASETS,
    cdf_step_score,
    cdf_window,
    empirical_cdf,
    linear_fit_error,
    load,
    local_nonlinearity,
    lognormal,
    longitudes,
    longlat,
    sequential,
    shifted_halves,
    ycsb,
)

GENERATORS = [longitudes, longlat, lognormal, ycsb]


class TestGeneratorContracts:
    @pytest.mark.parametrize("gen", GENERATORS)
    def test_exact_size_and_uniqueness(self, gen):
        keys = gen(1500, seed=0)
        assert len(keys) == 1500
        assert len(np.unique(keys)) == 1500

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_deterministic_per_seed(self, gen):
        a = gen(500, seed=7)
        b = gen(500, seed=7)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_different_seeds_differ(self, gen):
        assert not np.array_equal(gen(500, seed=1), gen(500, seed=2))

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_shuffled_not_sorted(self, gen):
        keys = gen(1000, seed=0)
        assert not (np.diff(keys) > 0).all()

    def test_longitudes_in_range(self):
        keys = longitudes(1000, seed=0)
        assert keys.min() >= -180.0 and keys.max() <= 180.0

    def test_longlat_transformation_range(self):
        keys = longlat(1000, seed=0)
        assert keys.min() >= 180.0 * -180 - 90
        assert keys.max() <= 180.0 * 180 + 90

    def test_lognormal_positive_integers(self):
        keys = lognormal(1000, seed=0)
        assert (keys > 0).all()
        assert np.array_equal(keys, np.floor(keys))

    def test_ycsb_exactly_representable(self):
        keys = ycsb(1000, seed=0)
        assert (keys < 2.0 ** 53).all()
        assert np.array_equal(keys, np.floor(keys))

    def test_sequential_strictly_increasing(self):
        keys = sequential(100, start=5.0, step=2.0)
        assert keys[0] == 5.0
        assert (np.diff(keys) == 2.0).all()


class TestLoadRegistry:
    def test_load_by_name(self):
        for name in DATASETS:
            assert len(load(name, 200, seed=0)) == 200

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            load("nope", 10)

    def test_payload_sizes_match_table1(self):
        assert DATASETS["ycsb"].payload_size == 80
        assert DATASETS["longitudes"].payload_size == 8


class TestShiftedHalves:
    def test_disjoint_domains(self):
        first, second = shifted_halves(2000, seed=0)
        assert first.max() < second.min()

    def test_halves_are_shuffled(self):
        first, second = shifted_halves(2000, seed=0)
        assert not (np.diff(first) > 0).all()
        assert not (np.diff(second) > 0).all()


class TestCdfTools:
    def test_empirical_cdf_monotone(self):
        keys, cdf = empirical_cdf(longitudes(500, seed=0))
        assert (np.diff(keys) > 0).all()
        assert cdf[0] > 0 and cdf[-1] == pytest.approx(1.0)

    def test_cdf_window_slices(self):
        keys = np.sort(longitudes(1000, seed=0))
        wkeys, wcdf = cdf_window(keys, 0.5, 0.1)
        assert len(wkeys) == pytest.approx(100, abs=2)
        assert 0.4 < wcdf[0] < 0.6

    def test_linear_fit_error_zero_for_uniform(self):
        assert linear_fit_error(np.arange(1000.0)) == pytest.approx(0.0, abs=1e-9)

    def test_longlat_locally_harder_than_longitudes(self):
        # The property Figure 14 illustrates and Section 5.2.1 relies on:
        # longlat's CDF is step-like at small scales.
        lon = longitudes(4000, seed=0)
        ll = longlat(4000, seed=0)
        assert local_nonlinearity(ll) > local_nonlinearity(lon)
        assert cdf_step_score(ll) > cdf_step_score(lon)

    def test_ycsb_easiest_to_model(self):
        # Uniform keys: globally near-linear CDF.
        assert linear_fit_error(ycsb(4000, seed=0)) < linear_fit_error(
            lognormal(4000, seed=0))

    def test_empty_inputs(self):
        keys, cdf = empirical_cdf(np.empty(0))
        assert len(keys) == 0 and len(cdf) == 0
        assert linear_fit_error(np.empty(0)) == 0.0
