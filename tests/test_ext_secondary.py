"""Tests for the secondary-index extension (Section 7)."""

import numpy as np
import pytest

from repro.core.errors import DuplicateKeyError, KeyNotFoundError
from repro.ext.secondary import HeapTable, IndexedTable, PrimaryIndex, SecondaryIndex


class TestHeapTable:
    def test_append_fetch_roundtrip(self):
        heap = HeapTable()
        rid = heap.append({"x": 1})
        assert heap.fetch(rid) == {"x": 1}
        assert len(heap) == 1

    def test_delete_leaves_tombstone(self):
        heap = HeapTable()
        rid = heap.append({"x": 1})
        heap.append({"x": 2})
        assert heap.delete(rid) == {"x": 1}
        with pytest.raises(KeyError):
            heap.fetch(rid)
        assert len(heap) == 1

    def test_update(self):
        heap = HeapTable()
        rid = heap.append({"x": 1})
        heap.update(rid, {"x": 2})
        assert heap.fetch(rid)["x"] == 2

    def test_scan_skips_tombstones(self):
        heap = HeapTable()
        rids = [heap.append({"i": i}) for i in range(5)]
        heap.delete(rids[2])
        assert [r["i"] for _, r in heap.scan()] == [0, 1, 3, 4]

    def test_bad_rid_raises(self):
        heap = HeapTable()
        with pytest.raises(KeyError):
            heap.fetch(0)
        with pytest.raises(KeyError):
            heap.fetch(-1)

    def test_records_are_copied(self):
        heap = HeapTable()
        record = {"x": 1}
        rid = heap.append(record)
        record["x"] = 99
        assert heap.fetch(rid)["x"] == 1


class TestPrimaryIndex:
    def test_insert_and_lookup(self):
        index = PrimaryIndex("id")
        index.insert(10.0, 0)
        index.insert(20.0, 1)
        assert index.rid_for(10.0) == 0
        assert index.rid_for(20.0) == 1

    def test_unique_constraint(self):
        index = PrimaryIndex("id")
        index.insert(10.0, 0)
        with pytest.raises(DuplicateKeyError):
            index.insert(10.0, 1)

    def test_delete_returns_rid(self):
        index = PrimaryIndex("id")
        index.insert(10.0, 7)
        assert index.delete(10.0) == 7
        assert len(index) == 0

    def test_range_rids(self):
        index = PrimaryIndex("id")
        for i in range(10):
            index.insert(float(i), i * 100)
        assert index.range_rids(2.0, 4.0) == [(2.0, 200), (3.0, 300),
                                              (4.0, 400)]


class TestSecondaryIndex:
    def test_non_unique_values(self):
        index = SecondaryIndex("age")
        index.insert(30.0, 0)
        index.insert(30.0, 1)
        index.insert(40.0, 2)
        assert index.rids_for(30.0) == [0, 1]
        assert len(index) == 3

    def test_delete_pair(self):
        index = SecondaryIndex("age")
        index.insert(30.0, 0)
        index.insert(30.0, 1)
        index.delete(30.0, 0)
        assert index.rids_for(30.0) == [1]

    def test_range_rids(self):
        index = SecondaryIndex("age")
        for rid, age in enumerate([20.0, 25.0, 25.0, 30.0, 35.0]):
            index.insert(age, rid)
        assert index.range_rids(25.0, 30.0) == [(25.0, 1), (25.0, 2),
                                                (30.0, 3)]


class TestIndexedTable:
    @pytest.fixture
    def table(self):
        table = IndexedTable("id", ("age", "score"))
        rng = np.random.default_rng(3)
        for i in range(300):
            table.insert({"id": i, "age": int(rng.integers(20, 30)),
                          "score": float(i % 7), "name": f"user{i}"})
        return table

    def test_primary_lookup(self, table):
        assert table.get(42.0)["name"] == "user42"

    def test_secondary_equality(self, table):
        hits = table.find_by("score", 3.0)
        assert all(r["score"] == 3.0 for r in hits)
        assert len(hits) == len([i for i in range(300) if i % 7 == 3])

    def test_secondary_range(self, table):
        hits = table.range_by("age", 22.0, 24.0)
        assert all(22 <= r["age"] <= 24 for r in hits)

    def test_primary_range(self, table):
        hits = table.range_by("id", 10.0, 12.0)
        assert [r["id"] for r in hits] == [10, 11, 12]

    def test_delete_maintains_all_indexes(self, table):
        victim = table.get(100.0)
        table.delete(100.0)
        assert len(table) == 299
        with pytest.raises(KeyNotFoundError):
            table.get(100.0)
        assert all(r["id"] != 100
                   for r in table.find_by("score", victim["score"]))

    def test_duplicate_primary_rolls_back_heap(self, table):
        with pytest.raises(DuplicateKeyError):
            table.insert({"id": 5, "age": 25, "score": 1.0})
        assert len(table) == 300  # heap not polluted by the failed insert

    def test_unknown_secondary_raises(self, table):
        with pytest.raises(KeyNotFoundError):
            table.find_by("height", 1.0)
