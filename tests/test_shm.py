"""Tests for the shared-memory storage views (:mod:`repro.core.shm`).

These cover the single-process contract — pickling handles, zero-copy
attachment, payload encodings, and segment lifecycle; the cross-process
paths are exercised end-to-end by the process-backend tests in
``test_sharded.py``.
"""

import pickle

import numpy as np
import pytest

from repro.core.shm import (PAYLOAD_NONE, PAYLOAD_NUMERIC, PAYLOAD_PICKLE,
                            REPLY_ARRAY, REPLY_LIST, ReplyRing, RingFull,
                            SharedArray, ShardStorageView, decode_reply,
                            encode_reply)


class TestSharedArray:
    def test_round_trip_through_pickle(self):
        data = np.linspace(0, 1, 257)
        handle = SharedArray.create(data)
        try:
            clone = pickle.loads(pickle.dumps(handle))
            assert clone.name == handle.name
            assert np.array_equal(clone.array(), data)
            clone.close()
        finally:
            handle.unlink()

    def test_attached_view_is_zero_copy(self):
        data = np.arange(64, dtype=np.float64)
        handle = SharedArray.create(data)
        try:
            clone = pickle.loads(pickle.dumps(handle))
            view = clone.array()
            # Writes through the creator's mapping are visible in the
            # attached view: same physical pages, not a copy.
            handle.array()[7] = -1.0
            assert view[7] == -1.0
            copied = clone.copy()
            handle.array()[7] = -2.0
            assert copied[7] == -1.0  # the copy is independent
            clone.close()
        finally:
            handle.unlink()

    def test_empty_array(self):
        handle = SharedArray.create(np.empty(0, dtype=np.float64))
        try:
            assert len(handle.array()) == 0
            assert pickle.loads(pickle.dumps(handle)).shape == (0,)
        finally:
            handle.unlink()

    def test_unlink_destroys_segment(self):
        handle = SharedArray.create(np.ones(8))
        name = handle.name
        handle.unlink()
        with pytest.raises(FileNotFoundError):
            SharedArray(name, (8,), "<f8").array()
        handle.unlink()  # idempotent


class TestShardStorageView:
    def _pack_unpack(self, keys, payloads):
        view = ShardStorageView.pack(np.asarray(keys, dtype=np.float64),
                                     payloads)
        try:
            clone = pickle.loads(pickle.dumps(view))
            out_keys, out_payloads = clone.unpack(copy=True)
            clone.close()
            return view.payload_kind, out_keys, out_payloads
        finally:
            view.unlink()

    def test_none_payloads(self):
        kind, keys, payloads = self._pack_unpack([1.0, 2.0, 3.0], None)
        assert kind == PAYLOAD_NONE
        assert keys.tolist() == [1.0, 2.0, 3.0]
        assert payloads == [None, None, None]

    def test_numeric_payloads_round_trip_exactly(self):
        kind, _, payloads = self._pack_unpack([1.0, 2.0, 3.0], [10, 20, 30])
        assert kind == PAYLOAD_NUMERIC
        assert payloads == [10, 20, 30]
        assert all(isinstance(p, int) for p in payloads)

    def test_object_payloads_fall_back_to_pickle(self):
        kind, _, payloads = self._pack_unpack(
            [1.0, 2.0, 3.0], ["a", ("b", 2), None])
        assert kind == PAYLOAD_PICKLE
        assert payloads == ["a", ("b", 2), None]

    def test_unpacked_keys_outlive_the_segments(self):
        view = ShardStorageView.pack(np.arange(32, dtype=np.float64),
                                     None)
        keys, _ = view.unpack(copy=True)
        view.unlink()
        assert keys.sum() == np.arange(32).sum()  # still readable

    def test_empty_shard(self):
        kind, keys, payloads = self._pack_unpack([], None)
        assert kind == PAYLOAD_NONE
        assert len(keys) == 0 and payloads is None


class TestTwoPhaseSegmentEconomy:
    """The two-phase cross-shard writes must copy their key batch into
    shared memory exactly once: ``publish`` pins one segment that both
    the validate and the apply scatter reuse (the PR 4 follow-up that
    folded the two per-phase segment creations into one)."""

    @pytest.mark.parametrize("op", ["insert_many", "delete_many"])
    def test_two_phase_write_creates_one_segment(self, monkeypatch, op):
        from repro.serve import ShardedAlexIndex

        keys = np.unique(np.random.default_rng(60).uniform(0, 1e6, 2000))
        service = ShardedAlexIndex.bulk_load(keys, num_shards=2,
                                             backend="process")
        try:
            creations = []
            real_create = SharedArray.create.__func__

            def counting_create(array):
                creations.append(len(array))
                return real_create(SharedArray, array)

            monkeypatch.setattr(SharedArray, "create",
                                staticmethod(counting_create))
            if op == "insert_many":
                batch = np.unique(
                    np.random.default_rng(61).uniform(2e6, 3e6, 500))
                service.insert_many(batch)
            else:
                batch = keys[100:600]
                service.delete_many(batch)
            assert creations == [len(batch)], (
                "expected exactly one shared segment for the whole "
                f"two-phase {op}, saw {len(creations)} creations")
        finally:
            service.close()


class TestReplyEncoding:
    def test_numeric_arrays_are_eligible(self):
        for array in (np.arange(5, dtype=np.float64),
                      np.array([1, 2, 3], dtype=np.int32),
                      np.array([True, False])):
            column, kind = encode_reply(array)
            assert kind == REPLY_ARRAY
            decoded = decode_reply(column.copy(), kind)
            np.testing.assert_array_equal(decoded, array)
            assert decoded.dtype == array.dtype

    def test_homogeneous_payload_lists_round_trip_exact_types(self):
        for payload in ([1.5, 2.5, -0.25], [1, 2, 3]):
            column, kind = encode_reply(payload)
            assert kind == REPLY_LIST
            decoded = decode_reply(column.copy(), kind)
            assert decoded == payload
            assert [type(v) for v in decoded] == [type(v) for v in payload]

    def test_ineligible_results_stay_on_the_pipe(self):
        assert encode_reply(["a", "b"]) is None          # objects
        assert encode_reply([1.0, None]) is None         # miss holes
        assert encode_reply([1, 2.0]) is None            # mixed numerics
        assert encode_reply([]) is None                  # nothing to ship
        assert encode_reply(np.zeros((2, 2))) is None    # not a column
        assert encode_reply({"k": 1}) is None
        assert encode_reply([10 ** 400]) is None         # overflows float


class TestReplyRing:
    def test_write_read_round_trip(self):
        ring = ReplyRing.create(capacity=1 << 12)
        try:
            column = np.linspace(0, 1, 101)
            descriptor = ring.read(ring.try_write(column))
            np.testing.assert_array_equal(descriptor, column)
        finally:
            ring.unlink()

    def test_wrap_around_pads_and_stays_correct(self):
        """Lanes never straddle the ring edge: a write that would wrap
        pads to the front, and the ordered release accounting keeps the
        free-space arithmetic right across many laps."""
        ring = ReplyRing.create(capacity=1 << 10)  # 1 KiB: forces wraps
        try:
            rng = np.random.default_rng(5)
            for lap in range(200):
                # Worst case needs pad + nbytes < 2*nbytes contiguous
                # bytes, so stay under half the capacity.
                column = rng.uniform(size=int(rng.integers(1, 48)))
                offset, used, shape, dtype = ring.try_write(column)
                assert offset + column.nbytes <= ring.capacity
                assert used >= column.nbytes  # wrap padding counted
                out = ring.read((offset, used, shape, dtype))
                np.testing.assert_array_equal(out, column)
        finally:
            ring.unlink()

    def test_ring_full_raises_with_unread_lanes(self):
        ring = ReplyRing.create(capacity=1 << 10)
        try:
            big = np.zeros(100)  # 800 bytes: only one fits unread
            pending = ring.try_write(big)
            with pytest.raises(RingFull):
                ring.try_write(big)
            ring.read(pending)       # release frees the space
            ring.try_write(big)      # now it fits again
            with pytest.raises(RingFull):
                ring.try_write(np.zeros(1 << 10))  # larger than capacity
        finally:
            ring.unlink()

    def test_pickles_as_an_attachment_handle(self):
        """The worker's copy arrives through spawn pickling: same
        segment, not an owner (unlink stays the parent's job)."""
        ring = ReplyRing.create(capacity=1 << 12)
        try:
            column = np.arange(7, dtype=np.float64)
            descriptor = ring.try_write(column)
            clone = pickle.loads(pickle.dumps(ring))
            assert clone.name == ring.name
            assert clone.capacity == ring.capacity
            assert clone._owner is False
            np.testing.assert_array_equal(clone.read(descriptor), column)
            clone.close()
        finally:
            ring.unlink()
