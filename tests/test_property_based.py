"""Property-based tests (hypothesis) on core data structures and invariants.

Each stateful-style test drives a structure through a random operation
sequence and checks it against a reference model (a Python dict / sorted
list), then asserts the structure's own invariants.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines.bptree import BPlusTree
from repro.baselines.learned_index import LearnedIndex
from repro.core.alex import AlexIndex
from repro.core.config import AlexConfig, ga_armi, ga_srmi, pma_armi
from repro.core.errors import DuplicateKeyError, KeyNotFoundError
from repro.core.gapped_array import GappedArrayNode
from repro.core.pma import PMANode
from repro.core.search import exponential_search
from repro.core.stats import Counters

SETTINGS = settings(max_examples=40, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

finite_keys = st.floats(min_value=-1e9, max_value=1e9,
                        allow_nan=False, allow_infinity=False)

key_lists = st.lists(finite_keys, min_size=0, max_size=120, unique=True)

# (op, key) sequences: op 0=insert, 1=delete, 2=lookup.
op_sequences = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 400)),
    min_size=1, max_size=250,
)


class TestExponentialSearchProperties:
    @SETTINGS
    @given(keys=key_lists, target=finite_keys, hint_frac=st.floats(0, 1))
    def test_matches_searchsorted_for_any_hint(self, keys, target, hint_frac):
        arr = np.sort(np.array(keys, dtype=np.float64))
        n = len(arr)
        hint = int(hint_frac * max(0, n - 1))
        got = exponential_search(arr, target, hint, 0, n)
        want = int(np.searchsorted(arr, target, side="left"))
        assert got == want


def _run_node_ops(node_cls, ops, config=None):
    config = config or AlexConfig()
    node = node_cls(config, Counters())
    node.build(np.empty(0))
    reference = {}
    for op, raw in ops:
        key = float(raw) * 1.5
        if op == 0:
            if key in reference:
                with pytest.raises(DuplicateKeyError):
                    node.insert(key, raw)
            else:
                node.insert(key, raw)
                reference[key] = raw
        elif op == 1:
            if key in reference:
                node.delete(key)
                del reference[key]
            else:
                with pytest.raises(KeyNotFoundError):
                    node.delete(key)
        else:
            if key in reference:
                assert node.lookup(key) == reference[key]
            else:
                assert not node.contains(key)
    return node, reference


class TestGappedArrayProperties:
    @SETTINGS
    @given(ops=op_sequences)
    def test_behaves_like_dict(self, ops):
        node, reference = _run_node_ops(GappedArrayNode, ops)
        node.check_invariants()
        assert node.num_keys == len(reference)
        assert [k for k, _ in node.iter_items()] == sorted(reference)

    @SETTINGS
    @given(keys=key_lists)
    def test_build_then_scan_returns_sorted_keys(self, keys):
        node = GappedArrayNode(AlexConfig(), Counters())
        node.build(np.sort(np.array(keys, dtype=np.float64)))
        node.check_invariants()
        out = [k for k, _ in node.scan_from(-np.inf, len(keys) + 10)]
        assert out == sorted(keys)

    @SETTINGS
    @given(keys=key_lists, d=st.floats(0.5, 0.95))
    def test_density_never_exceeds_bound(self, keys, d):
        config = AlexConfig(density_upper=d)
        node = GappedArrayNode(config, Counters())
        node.build(np.empty(0))
        for key in keys:
            node.insert(float(key))
            assert node.num_keys <= d * node.capacity + 1


class TestPMAProperties:
    @SETTINGS
    @given(ops=op_sequences)
    def test_behaves_like_dict(self, ops):
        node, reference = _run_node_ops(PMANode, ops)
        node.check_invariants()
        node.check_pma_invariants()
        assert node.num_keys == len(reference)
        assert [k for k, _ in node.iter_items()] == sorted(reference)

    @SETTINGS
    @given(keys=key_lists)
    def test_capacity_always_power_of_two(self, keys):
        node = PMANode(AlexConfig(), Counters())
        node.build(np.empty(0))
        for key in keys:
            node.insert(float(key))
            assert node.capacity & (node.capacity - 1) == 0


@pytest.mark.parametrize("factory", [ga_srmi, ga_armi, pma_armi],
                         ids=["ga-srmi", "ga-armi", "pma-armi"])
class TestAlexIndexProperties:
    @SETTINGS
    @given(initial=key_lists, ops=op_sequences)
    def test_behaves_like_dict(self, factory, initial, ops):
        config = dataclasses.replace(
            factory(max_keys_per_node=64, num_models=4),
            split_on_inserts=True)
        index = AlexIndex.bulk_load(np.array(initial, dtype=np.float64),
                                    config=config)
        reference = {float(k): None for k in initial}
        for op, raw in ops:
            key = float(raw) * 1.5
            if op == 0 and key not in reference:
                index.insert(key, raw)
                reference[key] = raw
            elif op == 1 and key in reference:
                index.delete(key)
                del reference[key]
            elif op == 2:
                if key in reference:
                    assert index.lookup(key) == reference[key]
                else:
                    assert not index.contains(key)
        index.validate()
        assert list(index.keys()) == sorted(reference)

    @SETTINGS
    @given(initial=key_lists, start=finite_keys,
           limit=st.integers(0, 50))
    def test_range_scan_matches_sorted_reference(self, factory, initial,
                                                 start, limit):
        index = AlexIndex.bulk_load(np.array(initial, dtype=np.float64),
                                    config=factory(max_keys_per_node=64,
                                                   num_models=4))
        got = [k for k, _ in index.range_scan(start, limit)]
        want = [k for k in sorted(initial) if k >= start][:limit]
        assert got == want


class TestBPlusTreeProperties:
    @SETTINGS
    @given(ops=op_sequences)
    def test_behaves_like_dict(self, ops):
        tree = BPlusTree(page_size=128)
        reference = {}
        for op, raw in ops:
            key = float(raw) * 1.5
            if op == 0 and key not in reference:
                tree.insert(key, raw)
                reference[key] = raw
            elif op == 1 and key in reference:
                tree.delete(key)
                del reference[key]
            elif op == 2:
                if key in reference:
                    assert tree.lookup(key) == reference[key]
                else:
                    assert not tree.contains(key)
        tree.validate()
        assert [k for k, _ in tree.items()] == sorted(reference)

    @SETTINGS
    @given(keys=key_lists, page_size=st.sampled_from([128, 256, 1024]))
    def test_bulk_load_equivalent_to_inserts(self, keys, page_size):
        bulk = BPlusTree.bulk_load(np.array(keys, dtype=np.float64),
                                   page_size=page_size)
        incremental = BPlusTree(page_size=page_size)
        for key in keys:
            incremental.insert(float(key))
        assert ([k for k, _ in bulk.items()]
                == [k for k, _ in incremental.items()])
        bulk.validate()
        incremental.validate()


class TestLearnedIndexProperties:
    @SETTINGS
    @given(initial=key_lists, inserts=key_lists)
    def test_inserts_preserve_lookup_correctness(self, initial, inserts):
        index = LearnedIndex.bulk_load(np.array(initial, dtype=np.float64),
                                       num_models=4, retrain_fraction=0.2)
        present = set(initial)
        for key in inserts:
            if key in present:
                continue
            index.insert(float(key))
            present.add(key)
        for key in sorted(present)[::5]:
            assert index.contains(float(key))
        assert [k for k, _ in index.items()] == sorted(present)
