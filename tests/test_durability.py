"""Durability subsystem: WAL mechanics, checkpoints, recovery semantics,
and the crash-window property tests (no acked write lost, no phantoms)."""

import os
import zlib

import numpy as np
import pytest

from repro.core.alex import AlexIndex
from repro.core.errors import (DuplicateKeyError, KeyNotFoundError,
                               PersistenceError, WALCorruptionError)
from repro.durability import (CheckpointManager, DurableAlexIndex,
                              OP_DELETE, OP_INSERT, WriteAheadLog,
                              iter_frames, recover_index)
from repro.durability.wal import _FRAME_HEADER, list_segments


def wal_dir(tmp_path, name="wal"):
    return str(tmp_path / name)


class TestWALBasics:
    def test_append_and_replay_roundtrip(self, tmp_path):
        with WriteAheadLog(wal_dir(tmp_path), fsync="off") as wal:
            keys1 = np.array([3.0, 1.0, 2.0])
            lsn1 = wal.append(OP_INSERT, keys1, ["a", "b", "c"])
            lsn2 = wal.append(OP_DELETE, np.array([1.0]))
            assert (lsn1, lsn2) == (1, 2)
        frames = list(iter_frames(wal_dir(tmp_path)))
        assert [f.lsn for f in frames] == [1, 2]
        assert frames[0].op == OP_INSERT
        np.testing.assert_array_equal(frames[0].keys, keys1)
        assert frames[0].payloads == ["a", "b", "c"]
        assert frames[1].op == OP_DELETE
        assert frames[1].payloads is None

    def test_after_lsn_filter(self, tmp_path):
        with WriteAheadLog(wal_dir(tmp_path), fsync="off") as wal:
            for i in range(5):
                wal.append(OP_INSERT, np.array([float(i)]), [None])
        assert [f.lsn for f in iter_frames(wal_dir(tmp_path),
                                           after_lsn=3)] == [4, 5]

    def test_lsn_continues_across_reopen(self, tmp_path):
        with WriteAheadLog(wal_dir(tmp_path), fsync="off") as wal:
            wal.append(OP_INSERT, np.array([1.0]), [None])
        with WriteAheadLog(wal_dir(tmp_path), fsync="off") as wal:
            assert wal.last_lsn == 1
            assert wal.append(OP_INSERT, np.array([2.0]), [None]) == 2
        assert [f.lsn for f in iter_frames(wal_dir(tmp_path))] == [1, 2]

    def test_segment_roll_and_truncate(self, tmp_path):
        with WriteAheadLog(wal_dir(tmp_path), fsync="off",
                           segment_bytes=1024) as wal:
            for i in range(50):
                wal.append(OP_INSERT, np.arange(i * 10.0, i * 10.0 + 8),
                           [None] * 8)
            assert wal.num_segments > 1
            # A checkpoint at the head should allow dropping every sealed
            # segment.
            head = wal.last_lsn
            wal.roll()
            removed = wal.truncate_upto(head)
            assert removed >= 1
            # Replay after truncation: nothing before the checkpoint
            # remains, appends continue seamlessly.
            wal.append(OP_INSERT, np.array([1e9]), [None])
            frames = list(wal.frames(after_lsn=head))
            assert [f.lsn for f in frames] == [head + 1]

    def test_fsync_policy_validated(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(wal_dir(tmp_path), fsync="yes-please")

    def test_fsync_modes_all_preserve_frames(self, tmp_path):
        for mode in ("always", "batch", "off"):
            directory = wal_dir(tmp_path, f"wal-{mode}")
            with WriteAheadLog(directory, fsync=mode,
                               group_commit=3) as wal:
                for i in range(10):
                    wal.append(OP_INSERT, np.array([float(i)]), [i])
            assert len(list(iter_frames(directory))) == 10


class TestWALTornTail:
    def _fill(self, tmp_path, n=6):
        with WriteAheadLog(wal_dir(tmp_path), fsync="off") as wal:
            for i in range(n):
                wal.append(OP_INSERT, np.array([float(i)]), [f"p{i}"])
        return list_segments(wal_dir(tmp_path))[-1]

    def test_truncated_final_frame_is_tolerated(self, tmp_path):
        tail = self._fill(tmp_path)
        with open(tail, "r+b") as fh:
            fh.truncate(os.path.getsize(tail) - 7)
        frames = list(iter_frames(wal_dir(tmp_path)))
        assert [f.lsn for f in frames] == [1, 2, 3, 4, 5]

    def test_garbage_after_valid_frames_is_tolerated(self, tmp_path):
        tail = self._fill(tmp_path)
        with open(tail, "ab") as fh:
            fh.write(b"\xde\xad\xbe\xef not a frame")
        assert len(list(iter_frames(wal_dir(tmp_path)))) == 6

    def test_append_after_torn_tail_resumes_cleanly(self, tmp_path):
        tail = self._fill(tmp_path)
        with open(tail, "r+b") as fh:
            fh.truncate(os.path.getsize(tail) - 3)
        with WriteAheadLog(wal_dir(tmp_path), fsync="off") as wal:
            assert wal.last_lsn == 5  # frame 6 was torn away
            assert wal.append(OP_INSERT, np.array([99.0]), [None]) == 6
        frames = list(iter_frames(wal_dir(tmp_path)))
        assert [f.lsn for f in frames] == [1, 2, 3, 4, 5, 6]
        assert frames[-1].keys[0] == 99.0

    def test_bitflip_before_final_frame_raises_not_truncates(self,
                                                             tmp_path):
        """Regression: damage in the *middle* of the final segment —
        valid acknowledged frames exist after it — must raise, and
        reopening must refuse to truncate those frames away.  Only true
        trailing damage is a torn tail."""
        tail = self._fill(tmp_path, n=6)
        size_before = os.path.getsize(tail)
        # Corrupt the body of an early frame (frame boundaries: the
        # header is 16 bytes, each frame is 36 + 8 + small pickle).
        with open(tail, "r+b") as fh:
            fh.seek(80)
            byte = fh.read(1)
            fh.seek(80)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(WALCorruptionError, match="mid-log"):
            list(iter_frames(wal_dir(tmp_path)))
        with pytest.raises(WALCorruptionError, match="mid-log"):
            WriteAheadLog(wal_dir(tmp_path), fsync="off")
        # Nothing was destructively truncated by the failed opens.
        assert os.path.getsize(tail) == size_before

    def test_bitflip_detected_by_crc(self, tmp_path):
        tail = self._fill(tmp_path, n=3)
        size = os.path.getsize(tail)
        with open(tail, "r+b") as fh:
            # Flip one byte inside the *last* frame's body.
            fh.seek(size - 4)
            byte = fh.read(1)
            fh.seek(size - 4)
            fh.write(bytes([byte[0] ^ 0xFF]))
        assert [f.lsn for f in iter_frames(wal_dir(tmp_path))] == [1, 2]

    def test_torn_header_in_final_segment_is_tolerated(self, tmp_path):
        """A crash during a segment roll can leave a final segment whose
        16-byte header never fully landed — that is a torn tail, not
        corruption: recovery keeps every earlier frame and appends
        resume after a header rewrite."""
        with WriteAheadLog(wal_dir(tmp_path), fsync="off") as wal:
            for i in range(4):
                wal.append(OP_INSERT, np.array([float(i)]), [None])
        # Simulate the crash: a next segment file with a partial header.
        torn = os.path.join(wal_dir(tmp_path), "wal-00000002.seg")
        with open(torn, "wb") as fh:
            fh.write(b"\x53")  # 1 of 16 header bytes made it
        assert [f.lsn for f in iter_frames(wal_dir(tmp_path))] == [1, 2,
                                                                   3, 4]
        with WriteAheadLog(wal_dir(tmp_path), fsync="off") as wal:
            assert wal.last_lsn == 4
            assert wal.append(OP_INSERT, np.array([9.0]), [None]) == 5
        assert [f.lsn for f in iter_frames(wal_dir(tmp_path))
                ] == [1, 2, 3, 4, 5]

    def test_empty_final_segment_file_is_tolerated(self, tmp_path):
        with WriteAheadLog(wal_dir(tmp_path), fsync="off") as wal:
            wal.append(OP_INSERT, np.array([1.0]), [None])
        open(os.path.join(wal_dir(tmp_path), "wal-00000002.seg"),
             "wb").close()
        assert [f.lsn for f in iter_frames(wal_dir(tmp_path))] == [1]

    def test_corruption_before_tail_segment_raises(self, tmp_path):
        with WriteAheadLog(wal_dir(tmp_path), fsync="off",
                           segment_bytes=1024) as wal:
            for i in range(60):
                wal.append(OP_INSERT, np.arange(i * 8.0, i * 8.0 + 6),
                           [None] * 6)
            assert wal.num_segments > 2
        first = list_segments(wal_dir(tmp_path))[0]
        with open(first, "r+b") as fh:
            fh.truncate(os.path.getsize(first) - 5)
        with pytest.raises(WALCorruptionError):
            list(iter_frames(wal_dir(tmp_path)))

    def test_frame_header_size_is_fixed_width(self):
        # The record header is a fixed-width little-endian numpy struct;
        # changing it silently would break every existing log.
        assert _FRAME_HEADER.itemsize == 36
        assert zlib.crc32(b"") == 0  # seed used by the frame CRC


class TestCheckpointManager:
    def test_publish_and_latest(self, tmp_path):
        manager = CheckpointManager(str(tmp_path / "d"))
        manager.initialize()
        assert manager.latest() is None
        path = manager.publish(7, lambda tmp: open(tmp, "wb").close())
        assert manager.latest() == (path, 7)
        # A newer checkpoint supersedes and removes the old file.
        path2 = manager.publish(12, lambda tmp: open(tmp, "wb").close())
        assert manager.latest() == (path2, 12)
        assert not os.path.exists(path)

    def test_manifest_naming_missing_checkpoint_raises(self, tmp_path):
        manager = CheckpointManager(str(tmp_path / "d"))
        manager.initialize()
        path = manager.publish(3, lambda tmp: open(tmp, "wb").close())
        os.remove(path)
        with pytest.raises(PersistenceError):
            manager.latest()

    def test_foreign_manifest_rejected(self, tmp_path):
        root = tmp_path / "d"
        root.mkdir()
        (root / "MANIFEST.json").write_text('{"something": "else"}')
        with pytest.raises(PersistenceError):
            CheckpointManager(str(root)).latest()


def build_durable(tmp_path, n=3000, **kwargs):
    keys = np.unique(np.random.default_rng(42).uniform(0, 1e6, n))
    kwargs.setdefault("fsync", "off")
    kwargs.setdefault("checkpoint_every", 1 << 30)
    durable = DurableAlexIndex.bulk_load(
        keys, root=str(tmp_path / "dur"), **kwargs)
    return durable, keys


class TestDurableAlexIndex:
    def test_recovery_equals_live_state(self, tmp_path):
        durable, keys = build_durable(tmp_path)
        rng = np.random.default_rng(7)
        durable.insert_many(np.unique(rng.uniform(2e6, 3e6, 500)),
                            list(range(500)))
        durable.delete_many(keys[100:160])
        durable.insert(-5.0, "x")
        durable.delete(float(keys[0]))
        durable.update(-5.0, "y")
        durable.upsert(9e9, "z")
        assert durable.erase_many(np.concatenate(
            [keys[200:220], [1e12]])) == 20
        live = list(durable.items())
        durable.close()

        result = recover_index(str(tmp_path / "dur"))
        assert result.index is not durable.index
        assert list(result.index.items()) == live
        result.index.validate()

    def test_reads_delegate(self, tmp_path):
        durable, keys = build_durable(tmp_path, n=500)
        key = float(keys[5])
        assert durable.contains(key)
        assert durable.lookup(key) is None
        assert len(durable) == len(keys)
        assert key in durable
        np.testing.assert_array_equal(
            durable.contains_many(keys[:10]), np.ones(10, dtype=bool))
        scan = durable.range_scan(key, 5)
        assert [k for k, _ in scan] == sorted(k for k, _ in scan)
        durable.close()

    def test_failed_ops_are_not_logged(self, tmp_path):
        durable, keys = build_durable(tmp_path, n=400)
        head = durable.wal.last_lsn
        with pytest.raises(DuplicateKeyError):
            durable.insert(float(keys[0]))
        with pytest.raises(KeyNotFoundError):
            durable.delete(-1e12)
        with pytest.raises(DuplicateKeyError):
            durable.insert_many(np.array([keys[1], 7e7]))
        assert durable.wal.last_lsn == head  # nothing reached the log
        durable.close()
        result = recover_index(str(tmp_path / "dur"))
        assert len(result.index) == len(keys)

    def test_checkpoint_bounds_replay(self, tmp_path):
        durable, keys = build_durable(tmp_path, n=1000)
        durable.insert_many(np.arange(2e6, 2e6 + 200))
        durable.checkpoint()
        durable.insert_many(np.arange(3e6, 3e6 + 50))
        durable.close()
        result = recover_index(str(tmp_path / "dur"))
        assert result.frames_replayed == 1
        assert result.ops_replayed == 50
        assert len(result.index) == len(keys) + 250

    def test_auto_checkpoint_by_op_count(self, tmp_path):
        durable, keys = build_durable(tmp_path, n=800,
                                      checkpoint_every=100)
        for i in range(150):
            durable.insert(5e6 + i)
        latest = durable.checkpoint_manager.latest()
        assert latest is not None and latest[1] > 0
        durable.close()
        result = recover_index(str(tmp_path / "dur"))
        assert len(result.index) == len(keys) + 150
        assert result.frames_replayed < 150  # the checkpoint absorbed most

    def test_writes_after_checkpoint_and_reopen_survive(self, tmp_path):
        """Regression: checkpoint truncation can leave a frame-less WAL
        tail; reopening must resume the LSN sequence from the tail
        header, not from zero — otherwise post-reopen acknowledged
        writes get LSNs at or below the checkpoint LSN and recovery's
        ``after_lsn`` filter silently drops them."""
        durable, keys = build_durable(tmp_path, n=500)
        durable.insert_many(np.arange(2e6, 2e6 + 50))
        checkpoint_lsn = durable.checkpoint()
        durable.close()

        reopened = DurableAlexIndex.open(str(tmp_path / "dur"),
                                         fsync="off")
        assert reopened.wal.last_lsn == checkpoint_lsn
        reopened.insert(9e6, "post-reopen")
        assert reopened.wal.last_lsn == checkpoint_lsn + 1
        reopened.sync()
        del reopened  # crash

        result = recover_index(str(tmp_path / "dur"))
        assert result.index.lookup(9e6) == "post-reopen"
        assert result.frames_replayed == 1

    def test_create_refuses_to_clobber(self, tmp_path):
        durable, _ = build_durable(tmp_path, n=100)
        durable.close()
        with pytest.raises(PersistenceError):
            DurableAlexIndex.create(str(tmp_path / "dur"))

    def test_open_sweeps_stale_checkpoint_leftovers(self, tmp_path):
        durable, _ = build_durable(tmp_path, n=200)
        durable.checkpoint()
        current = durable.checkpoint_manager.latest()[0]
        stale = str(tmp_path / "dur" / "ckpt-999999999999.npz.tmp")
        open(stale, "wb").write(b"half-written snapshot")
        durable.close()
        reopened = DurableAlexIndex.open(str(tmp_path / "dur"),
                                         fsync="off")
        assert not os.path.exists(stale)
        assert os.path.exists(current)
        reopened.close()

    def test_open_fresh_directory_creates(self, tmp_path):
        durable = DurableAlexIndex.open(str(tmp_path / "new"), fsync="off")
        durable.insert(1.0, "a")
        durable.close()
        reopened = DurableAlexIndex.open(str(tmp_path / "new"),
                                         fsync="off")
        assert reopened.lookup(1.0) == "a"
        assert reopened.last_recovery.frames_replayed == 1
        reopened.close()


class TestCrashWindows:
    """Property tests for the crash-consistency contract: a crash at any
    point between a WAL append and a checkpoint publication recovers to a
    prefix-consistent index — every acknowledged (synced) write survives,
    and no key that was never written appears."""

    def _run_ops(self, durable, rng, num_ops, log):
        """Random mutations; ``log`` records each op after it is acked."""
        alive = {k for k, _ in durable.items()}
        for i in range(num_ops):
            kind = rng.integers(4)
            if kind == 0 or not alive:
                fresh = float(rng.uniform(2e6, 3e6)) + i * 1e-3
                durable.insert(fresh, f"p{i}")
                alive.add(fresh)
                log.append(("insert", fresh, f"p{i}"))
            elif kind == 1:
                batch = np.unique(rng.uniform(4e6, 5e6, 8)) + i * 1e-2
                durable.insert_many(batch, [None] * len(batch))
                alive.update(batch.tolist())
                log.append(("insert_many", batch, None))
            elif kind == 2:
                victim = rng.choice(sorted(alive))
                durable.delete(float(victim))
                alive.discard(float(victim))
                log.append(("delete", float(victim), None))
            else:
                victim = rng.choice(sorted(alive))
                durable.upsert(float(victim), f"u{i}")
                log.append(("upsert", float(victim), f"u{i}"))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_torn_write_recovers_to_prefix(self, tmp_path, seed):
        """Crash simulation: run ops, then chop the WAL tail at a random
        byte (a torn final frame).  The recovered index must equal the
        reference replay of some *prefix* of the acked op log."""
        rng = np.random.default_rng(seed)
        root = str(tmp_path / "dur")
        keys = np.unique(rng.uniform(0, 1e6, 300))
        durable = DurableAlexIndex.bulk_load(keys, root=root, fsync="off",
                                             checkpoint_every=1 << 30)
        log = []
        self._run_ops(durable, rng, 60, log)
        durable.wal.flush()
        # Tear the tail mid-frame (somewhere after the segment header).
        tail = list_segments(os.path.join(root, "wal"))[-1]
        size = os.path.getsize(tail)
        cut = int(rng.integers(16, size + 1))
        with open(tail, "r+b") as fh:
            fh.truncate(cut)

        result = recover_index(root)
        recovered = dict(result.index.items())

        # Build every prefix state until one matches (payloads included:
        # distinct per op, so each prefix state is unique).
        reference = AlexIndex.bulk_load(keys)
        states = [dict(reference.items())]
        for op, arg, payload in log:
            if op == "insert":
                reference.insert(arg, payload)
            elif op == "insert_many":
                reference.insert_many(arg, [payload] * len(arg))
            elif op == "delete":
                reference.delete(arg)
            else:
                reference.upsert(arg, payload)
            states.append(dict(reference.items()))

        matches = [i for i, state in enumerate(states)
                   if state == recovered]
        assert matches, "recovered state is not any prefix of the op log"
        # Prefix-consistency: frames survive in order, so the number of
        # replayed frames equals the matched prefix length.
        assert result.frames_replayed == matches[0]

    @pytest.mark.parametrize("seed", [3, 4, 5])
    def test_synced_ops_always_survive(self, tmp_path, seed):
        """With a hard sync before the crash, *every* acked op survives
        any torn garbage appended afterwards (no acked write lost), and
        nothing else appears (no phantom keys)."""
        rng = np.random.default_rng(seed)
        root = str(tmp_path / "dur")
        keys = np.unique(rng.uniform(0, 1e6, 300))
        durable = DurableAlexIndex.bulk_load(keys, root=root, fsync="off",
                                             checkpoint_every=1 << 30)
        log = []
        self._run_ops(durable, rng, 40, log)
        durable.sync()
        expected = {k: v for k, v in durable.items()}
        # Crash while a later frame is being appended: garbage tail.
        tail = list_segments(os.path.join(root, "wal"))[-1]
        with open(tail, "ab") as fh:
            fh.write(os.urandom(int(rng.integers(1, 200))))

        result = recover_index(root)
        assert dict(result.index.items()) == expected

    @pytest.mark.parametrize("crash_point", ["snapshot-written", "renamed",
                                             "manifest-published"])
    def test_crash_during_checkpoint_publication(self, tmp_path,
                                                 crash_point):
        """A kill at any step of checkpoint publication leaves a
        recoverable directory with nothing lost: either the old
        checkpoint + full WAL, or the new checkpoint."""

        class SimulatedCrash(BaseException):
            pass

        root = str(tmp_path / "dur")
        keys = np.unique(np.random.default_rng(9).uniform(0, 1e6, 400))
        durable = DurableAlexIndex.bulk_load(keys, root=root, fsync="off",
                                             checkpoint_every=1 << 30)
        durable.insert_many(np.arange(2e6, 2e6 + 100))
        expected = dict(durable.items())

        def boom(point):
            if point == crash_point:
                raise SimulatedCrash

        durable.checkpoint_manager.fault_hook = boom
        with pytest.raises(SimulatedCrash):
            durable.checkpoint()
        durable.wal.flush()  # the "crash" abandons the process

        result = recover_index(root)
        assert dict(result.index.items()) == expected
        result.index.validate()

    def test_kill_between_append_and_checkpoint(self, tmp_path):
        """The satellite's exact window: ops are acked (appended +
        synced) but the next checkpoint never completes — recovery must
        replay them from the previous checkpoint."""
        root = str(tmp_path / "dur")
        keys = np.unique(np.random.default_rng(11).uniform(0, 1e6, 500))
        durable = DurableAlexIndex.bulk_load(keys, root=root, fsync="always",
                                             checkpoint_every=1 << 30)
        durable.insert_many(np.arange(2e6, 2e6 + 64))
        durable.delete_many(keys[:16])
        expected = dict(durable.items())
        # Crash before any checkpoint happens: abandon without close.
        del durable

        result = recover_index(root)
        assert dict(result.index.items()) == expected
        assert result.checkpoint_lsn == 0  # generation-zero bulk snapshot
        assert result.frames_replayed == 2
