"""Tests for the secondary-storage paging extension (Section 7)."""

import numpy as np
import pytest

from repro.core.errors import KeyNotFoundError
from repro.ext.paged import (
    BufferPool,
    PagedAlexIndex,
    PagedBPlusTree,
)


class TestBufferPool:
    def test_miss_then_hit(self):
        pool = BufferPool(4)
        assert pool.touch(1) is False
        assert pool.touch(1) is True
        assert pool.reads == 1
        assert pool.hits == 1

    def test_lru_eviction(self):
        pool = BufferPool(2)
        pool.touch(1)
        pool.touch(2)
        pool.touch(3)            # evicts 1
        assert pool.evictions == 1
        assert pool.touch(2) is True
        assert pool.touch(1) is False  # was evicted

    def test_touch_refreshes_recency(self):
        pool = BufferPool(2)
        pool.touch(1)
        pool.touch(2)
        pool.touch(1)            # 2 becomes LRU
        pool.touch(3)            # evicts 2
        assert pool.touch(1) is True
        assert pool.touch(2) is False

    def test_dirty_eviction_counts_write(self):
        pool = BufferPool(1)
        pool.touch(1, dirty=True)
        pool.touch(2)
        assert pool.writes == 1

    def test_flush_writes_dirty_pages(self):
        pool = BufferPool(4)
        pool.touch(1, dirty=True)
        pool.touch(2, dirty=False)
        pool.flush()
        assert pool.writes == 1
        assert pool.resident == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BufferPool(0)


@pytest.fixture
def keys():
    return np.unique(np.random.default_rng(5).uniform(0, 1e6, 4000))


class TestPagedAlexIndex:
    def test_lookup_correctness(self, keys):
        paged = PagedAlexIndex.bulk_load(keys, buffer_pages=16)
        for key in keys[::31]:
            assert paged.lookup(float(key)) is None

    def test_missing_key_raises(self, keys):
        paged = PagedAlexIndex.bulk_load(keys, buffer_pages=16)
        with pytest.raises(KeyNotFoundError):
            paged.lookup(-1.0)

    def test_cold_lookup_costs_about_one_read(self, keys):
        # The Section 7 claim: the RMI is in memory, so a cold point lookup
        # touches roughly one leaf page.
        paged = PagedAlexIndex.bulk_load(keys, buffer_pages=4)
        rng = np.random.default_rng(6)
        probes = rng.choice(keys, 500)
        for key in probes:
            paged.lookup(float(key))
        assert paged.io_per_op(500) < 1.5

    def test_insert_marks_dirty_and_repages_on_expand(self, keys):
        paged = PagedAlexIndex.bulk_load(keys[:1000], buffer_pages=16)
        extra = [k for k in keys[1000:1400]]
        for key in extra:
            paged.insert(float(key), "v")
        for key in extra[::17]:
            assert paged.lookup(float(key)) == "v"

    def test_scan_touches_range_pages(self, keys):
        paged = PagedAlexIndex.bulk_load(keys, buffer_pages=64)
        reads_before = paged.pool.reads
        out = paged.range_scan(float(np.sort(keys)[100]), 500)
        assert len(out) == 500
        assert paged.pool.reads > reads_before


class TestPagedBPlusTree:
    def test_lookup_correctness(self, keys):
        paged = PagedBPlusTree.bulk_load(keys, page_size=256, buffer_pages=16)
        for key in keys[::31]:
            assert paged.lookup(float(key)) is None
        with pytest.raises(KeyNotFoundError):
            paged.lookup(-1.0)

    def test_cold_lookup_costs_height_reads(self, keys):
        paged = PagedBPlusTree.bulk_load(keys, page_size=256, buffer_pages=4)
        rng = np.random.default_rng(7)
        for key in rng.choice(keys, 500):
            paged.lookup(float(key))
        # One touch per level; the root stays hot, leaves mostly miss.
        assert paged.io_per_op(500) > 1.5

    def test_insert_correct(self, keys):
        paged = PagedBPlusTree.bulk_load(keys[:1000], page_size=256,
                                         buffer_pages=16)
        paged.insert(-5.0, "v")
        assert paged.lookup(-5.0) == "v"


class TestAlexVsBPlusTreePaging:
    def test_alex_needs_fewer_ios_when_cache_is_small(self, keys):
        # The headline Section 7 consequence.
        alex = PagedAlexIndex.bulk_load(keys, buffer_pages=4)
        bptree = PagedBPlusTree.bulk_load(keys, page_size=256, buffer_pages=4)
        rng = np.random.default_rng(8)
        probes = rng.choice(keys, 800)
        for key in probes:
            alex.lookup(float(key))
            bptree.lookup(float(key))
        assert alex.io_per_op(800) < bptree.io_per_op(800)
