"""Tests for the duplicate-key multimap extension (Section 7)."""

import numpy as np
import pytest

from repro.core.errors import KeyNotFoundError
from repro.ext.duplicates import AlexMultimap


@pytest.fixture
def multimap():
    return AlexMultimap.from_pairs(
        [(1.0, "a"), (2.0, "b"), (1.0, "c"), (3.0, "d"), (2.0, "e")])


class TestConstruction:
    def test_from_pairs_groups_by_key(self, multimap):
        assert multimap.get(1.0) == ["a", "c"]
        assert multimap.get(2.0) == ["b", "e"]
        assert multimap.get(3.0) == ["d"]

    def test_sizes(self, multimap):
        assert len(multimap) == 5
        assert multimap.num_distinct_keys() == 3

    def test_empty(self):
        multimap = AlexMultimap()
        assert len(multimap) == 0
        assert multimap.get(1.0) == []
        assert not multimap.contains(1.0)


class TestInsert:
    def test_insert_new_key(self, multimap):
        multimap.insert(9.0, "z")
        assert multimap.get(9.0) == ["z"]
        assert len(multimap) == 6

    def test_insert_duplicate_key_appends(self, multimap):
        multimap.insert(1.0, "x")
        assert multimap.get(1.0) == ["a", "c", "x"]

    def test_duplicate_values_allowed(self, multimap):
        multimap.insert(1.0, "a")
        assert multimap.count(1.0) == 3

    def test_many_duplicates_on_one_key(self):
        multimap = AlexMultimap()
        for i in range(500):
            multimap.insert(7.0, i)
        assert multimap.count(7.0) == 500
        multimap.validate()


class TestRemove:
    def test_remove_value(self, multimap):
        multimap.remove_value(1.0, "a")
        assert multimap.get(1.0) == ["c"]
        assert len(multimap) == 4

    def test_remove_last_value_removes_key(self, multimap):
        multimap.remove_value(3.0, "d")
        assert not multimap.contains(3.0)
        assert multimap.num_distinct_keys() == 2

    def test_remove_missing_pair_raises(self, multimap):
        with pytest.raises(KeyNotFoundError):
            multimap.remove_value(1.0, "nope")
        with pytest.raises(KeyNotFoundError):
            multimap.remove_value(99.0, "a")

    def test_remove_key_returns_count(self, multimap):
        assert multimap.remove_key(2.0) == 2
        assert len(multimap) == 3
        with pytest.raises(KeyNotFoundError):
            multimap.remove_key(2.0)


class TestIterationAndScan:
    def test_items_expand_duplicates_in_key_order(self, multimap):
        assert list(multimap.items()) == [
            (1.0, "a"), (1.0, "c"), (2.0, "b"), (2.0, "e"), (3.0, "d")]

    def test_range_scan_counts_values(self, multimap):
        out = multimap.range_scan(1.0, 3)
        assert out == [(1.0, "a"), (1.0, "c"), (2.0, "b")]

    def test_distinct_keys(self, multimap):
        assert list(multimap.distinct_keys()) == [1.0, 2.0, 3.0]


class TestScale:
    def test_large_mixed_workload(self):
        rng = np.random.default_rng(7)
        multimap = AlexMultimap()
        reference = {}
        for step in range(4000):
            key = float(rng.integers(0, 200))
            if rng.random() < 0.7 or key not in reference:
                multimap.insert(key, step)
                reference.setdefault(key, []).append(step)
            else:
                value = reference[key].pop(0)
                if not reference[key]:
                    del reference[key]
                multimap.remove_value(key, value)
        multimap.validate()
        assert len(multimap) == sum(len(v) for v in reference.values())
        for key, values in list(reference.items())[:20]:
            assert multimap.get(key) == values
