"""Tests for the cost model (counters -> simulated time)."""

import pytest

from repro.analysis.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.core.stats import Counters


class TestSimulatedTime:
    def test_zero_work_zero_time(self):
        assert DEFAULT_COST_MODEL.simulated_nanos(Counters()) == 0.0

    def test_weights_applied_per_field(self):
        model = CostModel()
        work = Counters(comparisons=10)
        assert model.simulated_nanos(work) == 10 * model.comparison_ns
        work = Counters(pointer_follows=3)
        assert model.simulated_nanos(work) == 3 * model.pointer_follow_ns

    def test_mixed_work_sums(self):
        model = CostModel()
        work = Counters(comparisons=2, pointer_follows=1, probes=4)
        expected = (2 * model.comparison_ns + model.pointer_follow_ns
                    + 4 * model.probe_ns)
        assert model.simulated_nanos(work) == pytest.approx(expected)

    def test_seconds_conversion(self):
        work = Counters(pointer_follows=1_000_000)  # 30 ms at 30 ns each
        assert DEFAULT_COST_MODEL.simulated_seconds(work) == pytest.approx(0.03)

    def test_structural_events_have_fixed_overheads(self):
        model = CostModel()
        work = Counters(expansions=2, splits=1, retrains=3)
        expected = (2 * model.expansion_ns + model.split_ns
                    + 3 * model.retrain_ns)
        assert model.simulated_nanos(work) == pytest.approx(expected)


class TestThroughput:
    def test_throughput_is_ops_over_seconds(self):
        work = Counters(pointer_follows=100)  # 3000 ns
        assert DEFAULT_COST_MODEL.throughput(300, work) == pytest.approx(1e8)

    def test_zero_work_infinite_throughput(self):
        assert DEFAULT_COST_MODEL.throughput(10, Counters()) == float("inf")

    def test_nanos_per_op(self):
        work = Counters(comparisons=100)
        assert DEFAULT_COST_MODEL.nanos_per_op(50, work) == pytest.approx(2.0)
        assert DEFAULT_COST_MODEL.nanos_per_op(0, work) == 0.0

    def test_custom_weights_change_ranking(self):
        # A model that makes pointer follows free favours deep trees.
        flat = CostModel(pointer_follow_ns=0.0)
        work = Counters(pointer_follows=1000, comparisons=10)
        assert flat.simulated_nanos(work) < DEFAULT_COST_MODEL.simulated_nanos(work)

    def test_model_is_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COST_MODEL.comparison_ns = 5.0
