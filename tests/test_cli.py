"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--dataset", "nope"])


class TestInfo:
    def test_lists_variants_and_systems(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "ALEX-GA-ARMI" in out
        assert "BPlusTree" in out
        assert "ycsb" in out


class TestDatasets:
    def test_prints_table1(self, capsys):
        assert main(["datasets", "--size", "2000"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        for name in ("longitudes", "longlat", "lognormal", "ycsb"):
            assert name in out


class TestCompare:
    def test_default_comparison_runs(self, capsys):
        code = main(["compare", "--dataset", "lognormal",
                     "--workload", "read-heavy",
                     "--init", "2000", "--ops", "500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ALEX-GA-ARMI" in out
        assert "BPlusTree" in out

    def test_explicit_system_list(self, capsys):
        code = main(["compare", "--dataset", "ycsb",
                     "--workload", "read-only",
                     "--init", "1500", "--ops", "300",
                     "--systems", "ALEX-GA-SRMI", "LearnedIndex"])
        assert code == 0
        out = capsys.readouterr().out
        assert "LearnedIndex" in out
        assert "BPlusTree" not in out

    def test_unknown_system_fails_cleanly(self, capsys):
        code = main(["compare", "--init", "1000", "--ops", "100",
                     "--systems", "NotAnIndex"])
        assert code == 2
        assert "unknown system" in capsys.readouterr().err


class TestAdapt:
    def test_compares_policies_and_logs_decisions(self, capsys):
        code = main(["adapt", "--scenario", "grow-shrink",
                     "--keys", "2000", "--ops", "2000", "--decisions", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "heuristic" in out
        assert "cost-model" in out
        assert "merge" in out
        assert "decisions:" in out

    def test_unknown_policy_rejected(self, capsys):
        code = main(["adapt", "--policies", "nope",
                     "--keys", "2000", "--ops", "2000"])
        assert code == 2
        assert "unknown policy" in capsys.readouterr().err

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["adapt", "--scenario", "nope"])


class TestErrors:
    def test_prints_error_summary(self, capsys):
        assert main(["errors", "--dataset", "longitudes",
                     "--size", "3000"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "LearnedIndex" in out


class TestTheorems:
    def test_prints_bounds(self, capsys):
        assert main(["theorems", "--dataset", "lognormal",
                     "--size", "1000", "--c", "1.0", "4.0"]) == 0
        out = capsys.readouterr().out
        assert "Section 4" in out
        assert "yes" in out


class TestRecover:
    def test_durable_shards_then_recover(self, tmp_path, capsys):
        durable = str(tmp_path / "dur")
        assert main(["shards", "--init", "2000", "--ops", "500",
                     "--shards", "2", "--durable", durable,
                     "--fsync", "off"]) == 0
        out = capsys.readouterr().out
        assert "durable" in out
        assert main(["recover", "--dir", f"{durable}/shards-2",
                     "--verify"]) == 0
        out = capsys.readouterr().out
        assert "recovered 2-shard service" in out
        assert "validated" in out

    def test_recover_single_node_directory(self, tmp_path, capsys):
        import numpy as np
        from repro.durability import DurableAlexIndex
        root = str(tmp_path / "single")
        index = DurableAlexIndex.bulk_load(
            np.arange(0.0, 500.0), root=root, fsync="off")
        index.insert(1e6, "x")
        index.close()
        assert main(["recover", "--dir", root, "--verify"]) == 0
        out = capsys.readouterr().out
        assert "recovered single-node index" in out

    def test_recover_rejects_non_durability_dir(self, tmp_path, capsys):
        assert main(["recover", "--dir", str(tmp_path)]) == 2
        assert "no durability manifest" in capsys.readouterr().err
