"""Pytest root conftest: make ``src/`` importable even when the package has
not been pip-installed (e.g. offline environments where build isolation
cannot fetch setuptools; see README's install notes)."""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
