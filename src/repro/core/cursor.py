"""Cursor: positional, bidirectional iteration over an ALEX index.

Database engines drive indexes through cursors (open-at-key, step
forward/backward, read current) rather than whole-range materialization.
:class:`Cursor` provides that access path on top of the leaf chain and
per-node bitmaps, charging the same counters as scans.

A cursor is a *snapshot-unaware* pointer: mutating the index invalidates
open cursors (like an unprotected B+Tree cursor); the cursor detects the
common cases and raises :class:`CursorInvalidatedError` instead of
returning garbage.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .alex import AlexIndex
from .data_node import DataNode
from .errors import IndexError_


class CursorInvalidatedError(IndexError_):
    """The index mutated under an open cursor."""


class Cursor:
    """A bidirectional cursor over an :class:`AlexIndex`.

    Create via :meth:`AlexIndex`-independent constructor::

        cursor = Cursor(index, start_key=42.0)
        while cursor.valid():
            key, payload = cursor.current()
            cursor.next()
    """

    def __init__(self, index: AlexIndex, start_key: Optional[float] = None):
        self._index = index
        self._expected_size = len(index)
        self._leaf: Optional[DataNode] = None
        self._pos = -1
        if start_key is None:
            self.seek_first()
        else:
            self.seek(float(start_key))

    # ------------------------------------------------------------------
    # Positioning
    # ------------------------------------------------------------------

    def seek(self, key: float) -> None:
        """Position at the first entry with ``entry key >= key``."""
        self._check_generation()
        leaf, _ = self._index._route(float(key))
        pos = leaf.find_insert_pos(float(key))
        self._leaf = leaf
        self._pos = pos - 1
        self.next()

    def seek_first(self) -> None:
        """Position at the smallest key."""
        self._check_generation()
        self._leaf = self._index.first_leaf()
        self._pos = -1
        self.next()

    def seek_last(self) -> None:
        """Position at the largest key."""
        self._check_generation()
        leaf = self._index.first_leaf()
        while leaf.next_leaf is not None:
            leaf = leaf.next_leaf
        self._leaf = leaf
        self._pos = leaf.capacity
        self.prev()

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def next(self) -> bool:
        """Advance to the next real entry; returns validity."""
        self._check_generation()
        leaf, pos = self._leaf, self._pos
        while leaf is not None:
            window = leaf.occupied[pos + 1:]
            hit = np.argmax(window) if window.size else 0
            if window.size and window[hit]:
                self._leaf, self._pos = leaf, pos + 1 + int(hit)
                leaf.counters.probes += 1
                return True
            leaf = leaf.next_leaf
            if leaf is not None:
                leaf.counters.pointer_follows += 1
            pos = -1
        self._leaf, self._pos = None, -1
        return False

    def prev(self) -> bool:
        """Step back to the previous real entry; returns validity."""
        self._check_generation()
        leaf, pos = self._leaf, self._pos
        while leaf is not None:
            window = leaf.occupied[:max(0, pos)]
            if window.size and window.any():
                hit = int(pos - 1 - np.argmax(window[::-1]))
                self._leaf, self._pos = leaf, hit
                leaf.counters.probes += 1
                return True
            leaf = leaf.prev_leaf
            if leaf is not None:
                leaf.counters.pointer_follows += 1
                pos = leaf.capacity
        self._leaf, self._pos = None, -1
        return False

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def valid(self) -> bool:
        """Whether the cursor points at a live entry."""
        return self._leaf is not None and self._pos >= 0

    def current(self) -> Tuple[float, object]:
        """The ``(key, payload)`` under the cursor."""
        self._check_generation()
        if not self.valid():
            raise IndexError_("cursor is exhausted")
        return float(self._leaf.keys[self._pos]), self._leaf.payloads[self._pos]

    def key(self) -> float:
        """The key under the cursor."""
        return self.current()[0]

    def payload(self):
        """The payload under the cursor."""
        return self.current()[1]

    def take(self, count: int) -> list:
        """Read up to ``count`` entries forward (cursor ends after them)."""
        out = []
        while self.valid() and len(out) < count:
            out.append(self.current())
            self.next()
        return out

    def __iter__(self):
        while self.valid():
            yield self.current()
            self.next()

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def _check_generation(self) -> None:
        if len(self._index) != self._expected_size:
            raise CursorInvalidatedError(
                "index was modified while the cursor was open")

    def refresh(self) -> None:
        """Re-arm the cursor after a mutation, keeping its key position."""
        key = None
        if self.valid():
            try:
                key = float(self._leaf.keys[self._pos])
            except Exception:  # leaf may have been rebuilt
                key = None
        self._expected_size = len(self._index)
        if key is not None:
            self.seek(key)
        else:
            self.seek_first()
