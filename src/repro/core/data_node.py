"""Common machinery for ALEX leaf ("data") nodes.

Both leaf layouts of Section 3.3 — the Gapped Array and the Packed Memory
Array — share everything implemented here:

* a key array with *gaps*, where each gap slot holds a copy of the closest
  real key to its right (trailing gaps hold ``+inf``), so the array is
  non-decreasing end-to-end and exponential search needs no occupancy test;
* a per-node occupancy **bitmap** used by range scans to skip gaps
  (Section 5.2.3);
* **model-based builds** (Algorithm 3): train a linear model on the keys,
  rescale it to the array size, then place every key at its predicted slot
  in sorted order, spilling collisions to the first gap on the right;
* **lookups** via model prediction + exponential search (Algorithm 3);
* cold-start behaviour: nodes with very few keys skip the model and use
  plain binary search (Section 3.3.3).

Subclasses implement the insert path (how to open a slot) and the expansion
policy (GA: grow by ``1/d``; PMA: double).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro import obs

from .config import AlexConfig
from .errors import DuplicateKeyError, KeyNotFoundError
from .kernels import get_kernels
from .linear_model import LinearModel
from .policy import DEFAULT_POLICY, AdaptationPolicy
from .stats import Counters

GAP_SENTINEL = np.inf
_BITMAP_WORD_BITS = 64


class DataNode:
    """Base class for ALEX leaf nodes (gapped key array + bitmap + model)."""

    #: minimum capacity a node is ever allocated
    MIN_CAPACITY = 8

    def __init__(self, config: AlexConfig, counters: Counters,
                 policy: Optional[AdaptationPolicy] = None):
        self.config = config
        self.counters = counters
        # The hot-loop implementation (search / predict / shift) for this
        # node; a process-wide singleton, so sharing configs shares kernels.
        self.kernels = get_kernels(config.kernel_backend)
        obs.inc("core.leaf_nodes_created")
        # Structural decisions (expand/contract here; splits and merges at
        # the index level) route through the adaptation policy layer.
        self.policy = policy or DEFAULT_POLICY
        # Per-node EMA pressure state, populated lazily by policies that
        # track it (repro.core.policy.NodePressure).
        self.pressure = None
        self.capacity = 0
        self.num_keys = 0
        self.keys = np.empty(0, dtype=np.float64)
        self.payloads: list = []
        self.occupied = np.zeros(0, dtype=bool)
        self.model: Optional[LinearModel] = None
        # Doubly-linked leaf chain in key order, used by range scans.
        self.next_leaf: Optional["DataNode"] = None
        self.prev_leaf: Optional["DataNode"] = None

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def _initial_capacity(self, n: int) -> int:
        """Capacity for ``n`` keys at the build density ``d**2``."""
        raise NotImplementedError

    def build(self, keys: np.ndarray, payloads: Optional[list] = None) -> None:
        """(Re)initialize this node with sorted, duplicate-free ``keys``."""
        keys = np.asarray(keys, dtype=np.float64)
        if payloads is None:
            payloads = [None] * len(keys)
        capacity = self._initial_capacity(len(keys))
        self._model_based_build(keys, payloads, capacity)

    def _model_based_build(self, keys: np.ndarray, payloads: list,
                           capacity: int) -> None:
        """Algorithm 3: train, rescale, and model-based-insert all keys.

        Keys are placed in sorted order at their predicted position; when
        the model predicts an already-taken slot the key spills to the first
        gap to the right.  The placement also reserves enough trailing room
        for the remaining keys so that every key fits.
        """
        n = len(keys)
        capacity = max(capacity, n, self.MIN_CAPACITY)
        new_keys = np.full(capacity, GAP_SENTINEL, dtype=np.float64)
        new_payloads: list = [None] * capacity
        new_occupied = np.zeros(capacity, dtype=bool)

        if n >= self.config.min_keys_for_model:
            model = LinearModel.train_cdf(keys, capacity)
            self.counters.retrains += 1
            predicted = model.predict_pos_vec(keys, capacity)
            self.counters.model_inferences += n
        else:
            model = None
            # Without a model, spread the keys uniformly (a degenerate
            # "model-based" placement with the identity spacing).
            predicted = ((np.arange(n, dtype=np.float64) * capacity) // max(n, 1)).astype(np.int64)

        if n:
            # Vectorized collision resolution, equivalent to the sequential
            # "place at max(predicted, last + 1), capped to leave room for
            # the rest" loop: the running max(predicted[j] + i - j) gives
            # each key its shifted slot, and because the room cap increases
            # by exactly one per key, applying it after the accumulate
            # yields the same positions the sequential loop would.
            ar = np.arange(n, dtype=np.int64)
            pos = np.maximum.accumulate(predicted - ar) + ar
            pos = np.minimum(pos, capacity - n + ar)
            new_keys[pos] = keys
            new_occupied[pos] = True
            if any(p is not None for p in payloads):
                for p, payload in zip(pos.tolist(), payloads):
                    new_payloads[p] = payload

        self.keys = new_keys
        self.payloads = new_payloads
        self.occupied = new_occupied
        self.capacity = capacity
        self.num_keys = n
        self.model = model
        self.counters.build_moves += n
        self._refill_gap_keys(0, capacity)
        # Every rebuild — bulk build, expansion, contraction, retrain,
        # batch merge-rebuild — lands here, so this is the one place the
        # adaptation policy's per-node drift window is invalidated.
        self.policy.note_smo(self, "rebuild")

    def _refill_gap_keys(self, lo: int, hi: int) -> None:
        """Rewrite gap slots in ``[lo, hi)`` with their nearest real right
        neighbour's key (vectorized backward fill; trailing gaps get the
        first real key at or after ``hi``, or ``+inf``)."""
        if hi <= lo:
            return
        occ = self.occupied[lo:hi]
        idx = np.where(occ, np.arange(lo, hi), self.capacity)
        suffix = np.minimum.accumulate(idx[::-1])[::-1]
        # Seed for trailing gaps: first real slot at or beyond hi.
        tail = self._first_occupied_at_or_after(hi)
        tail_key = self.keys[tail] if tail < self.capacity else GAP_SENTINEL
        seg = self.keys[lo:hi]
        src = np.minimum(suffix, self.capacity - 1)
        filled = np.where(suffix < self.capacity, self.keys[src], tail_key)
        self.keys[lo:hi] = np.where(occ, seg, filled)
        self.counters.gap_fill_writes += int((~occ).sum())

    def _first_occupied_at_or_after(self, pos: int) -> int:
        """Index of the first occupied slot at or after ``pos`` (or
        ``capacity`` when none exists)."""
        if pos >= self.capacity:
            return self.capacity
        rel = np.argmax(self.occupied[pos:])
        if not self.occupied[pos + rel]:
            return self.capacity
        return pos + int(rel)

    def _last_occupied_before(self, pos: int) -> int:
        """Index of the last occupied slot strictly before ``pos`` (or -1)."""
        if pos <= 0:
            return -1
        window = self.occupied[:pos]
        if not window.any():
            return -1
        return int(pos - 1 - np.argmax(window[::-1]))

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def predict_pos(self, key: float) -> int:
        """Model prediction clamped to the array (or the array midpoint
        during cold start)."""
        if self.model is None:
            return self.capacity // 2
        self.counters.model_inferences += 1
        return self.model.predict_pos(key, self.capacity)

    def _model_params(self):
        """``(has_model, slope, intercept)`` for the kernel calls."""
        model = self.model
        if model is None:
            return False, 0.0, 0.0
        return True, model.slope, model.intercept

    def find_insert_pos(self, key: float) -> int:
        """Leftmost position with ``keys[pos] >= key`` (Algorithm 1's
        ``CorrectInsertPosition``): model hint + exponential search, or plain
        binary search during cold start."""
        has_model, slope, intercept = self._model_params()
        if has_model:
            self.counters.model_inferences += 1
        pos, charge = self.kernels.find_insert_pos(self.keys, key, has_model,
                                                   slope, intercept)
        self.counters.comparisons += charge
        self.counters.probes += charge
        return pos

    def find_key(self, key: float) -> int:
        """Position of the *real* (occupied) slot holding ``key``, or -1.

        The lower-bound position may land on a gap that mirrors the key's
        value; the real slot is then the first occupied slot to the right
        with the same value.
        """
        has_model, slope, intercept = self._model_params()
        if has_model:
            self.counters.model_inferences += 1
        pos, charge, probes = self.kernels.find_key(
            self.keys, self.occupied, key, has_model, slope, intercept)
        self.counters.comparisons += charge
        self.counters.probes += charge + probes
        return pos

    def lookup(self, key: float):
        """Return the payload stored for ``key``.

        Raises :class:`KeyNotFoundError` when the key is absent.
        """
        pos = self.find_key(key)
        if pos < 0:
            raise KeyNotFoundError(key)
        self.counters.lookups += 1
        return self.payloads[pos]

    def contains(self, key: float) -> bool:
        """Whether ``key`` is present in this node."""
        return self.find_key(key) >= 0

    # ------------------------------------------------------------------
    # Batch search (the node layer of the batch execution engine)
    # ------------------------------------------------------------------

    def find_insert_pos_many(self, targets: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`find_insert_pos`: one model-inference pass and
        one lock-step search for the whole batch of targets."""
        targets = np.asarray(targets, dtype=np.float64)
        has_model, slope, intercept = self._model_params()
        if has_model:
            self.counters.model_inferences += len(targets)
        pos, charge = self.kernels.find_insert_pos_many(
            self.keys, targets, has_model, slope, intercept)
        self.counters.comparisons += charge
        self.counters.probes += charge
        return pos

    def find_keys_many(self, targets: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`find_key`: the occupied slot holding each
        target, or -1 where absent.

        The rare case of the lower bound landing on a gap slot that mirrors
        the target's value falls back to the scalar rightward walk; every
        other lane resolves in the vectorized pass.
        """
        targets = np.asarray(targets, dtype=np.float64)
        n = len(targets)
        if n == 0 or self.capacity == 0:
            return np.full(n, -1, dtype=np.int64)
        has_model, slope, intercept = self._model_params()
        if has_model:
            self.counters.model_inferences += n
        result, charge, probes = self.kernels.find_keys_many(
            self.keys, self.occupied, targets, has_model, slope, intercept)
        self.counters.comparisons += charge
        self.counters.probes += charge + probes
        return result

    def prediction_error(self, key: float) -> int:
        """Distance between the model's predicted slot and the key's actual
        slot (used by the Figure 7 study).  Raises if the key is absent."""
        pos = self.find_key(key)
        if pos < 0:
            raise KeyNotFoundError(key)
        return abs(self.predict_pos(key) - pos)

    # ------------------------------------------------------------------
    # Insert plumbing shared by both layouts
    # ------------------------------------------------------------------

    def _check_duplicate(self, key: float, ip: int) -> None:
        """Raise if ``key`` already exists.  Because gap slots mirror their
        right neighbour's key, equality at the lower bound implies the key
        is present regardless of occupancy."""
        if ip < self.capacity and self.keys[ip] == key:
            raise DuplicateKeyError(key)

    def _place(self, pos: int, key: float, payload) -> None:
        """Write ``key`` into the (free) slot ``pos`` and maintain the
        gap-fill invariant for the gap run immediately to the left."""
        fills = self.kernels.place_fill(self.keys, self.occupied, pos, key)
        self.payloads[pos] = payload
        self.num_keys += 1
        self.counters.gap_fill_writes += fills

    def _shift_right_into_gap(self, ip: int, gap: int) -> None:
        """Move the fully-occupied run ``[ip, gap)`` one slot right into the
        gap at ``gap``, freeing slot ``ip``."""
        self.kernels.shift_right(self.keys, self.occupied, ip, gap)
        self.payloads[ip + 1:gap + 1] = self.payloads[ip:gap]
        self.counters.shifts += gap - ip

    def _shift_left_into_gap(self, gap: int, ip: int) -> None:
        """Move the fully-occupied run ``(gap, ip)`` one slot left into the
        gap at ``gap``, freeing slot ``ip - 1``.

        Only elements strictly less than the key being inserted move, so
        the caller inserts at ``ip - 1`` to preserve sorted order.
        """
        self.kernels.shift_left(self.keys, self.occupied, gap, ip)
        self.payloads[gap:ip - 1] = self.payloads[gap + 1:ip]
        self.counters.shifts += ip - 1 - gap

    def _closest_gaps(self, pos: int, lo: int, hi: int) -> Tuple[int, int]:
        """Return ``(left_gap, right_gap)`` nearest to ``pos`` within
        ``[lo, hi)`` (-1 / ``hi`` when absent).  ``pos`` itself is excluded
        on the left side and included on the right side."""
        return self.kernels.closest_gaps(self.occupied, pos, lo, hi)

    def _open_slot(self, ip: int, lo: int, hi: int) -> int:
        """Make a free slot at (or directly left of) position ``ip`` by
        shifting the occupied run toward the closest gap in ``[lo, hi)``.

        Returns the position at which the caller must insert, or -1 when
        the window contains no gap at all.
        """
        if ip >= hi:
            ip = hi  # insertion past the window: treat like "shift left"
        elif not self.occupied[ip]:
            return ip
        left, right = self._closest_gaps(ip, lo, hi)
        has_left = left >= 0
        has_right = right < hi
        if not has_left and not has_right:
            return -1
        if has_right and (not has_left or right - ip <= ip - left):
            self._shift_right_into_gap(ip, right)
            return ip
        self._shift_left_into_gap(left, ip)
        return ip - 1

    # ------------------------------------------------------------------
    # Delete / update
    # ------------------------------------------------------------------

    def delete(self, key: float) -> None:
        """Remove ``key``; contracts the node when it becomes sparse.

        Deletes are "strictly easier" than inserts (Section 3.2): the slot
        simply becomes a gap mirroring its right neighbour, and no shifting
        is needed.
        """
        pos = self.find_key(key)
        if pos < 0:
            raise KeyNotFoundError(key)
        self.payloads[pos] = None
        right_key = self.keys[pos + 1] if pos + 1 < self.capacity else GAP_SENTINEL
        fills = self.kernels.erase_fill(self.keys, self.occupied, pos,
                                        right_key)
        self.counters.gap_fill_writes += fills
        self.num_keys -= 1
        self.counters.deletes += 1
        self._maybe_contract()

    def _maybe_contract(self) -> None:
        """Shrink the arrays when the adaptation policy says so (the
        heuristic default: density below half the build density, the
        symmetric counterpart of expansion, Section 3.2)."""
        if not self.policy.should_contract(self):
            return
        keys, payloads = self.export_sorted()
        self._model_based_build(keys, payloads, self._initial_capacity(len(keys)))
        self.counters.contractions += 1

    def update(self, key: float, payload) -> None:
        """Replace the payload of an existing key (Section 3.2: payload-only
        updates are a lookup plus a write)."""
        pos = self.find_key(key)
        if pos < 0:
            raise KeyNotFoundError(key)
        self.payloads[pos] = payload

    # ------------------------------------------------------------------
    # Scans and export
    # ------------------------------------------------------------------

    def scan_from(self, key: float, limit: int) -> list:
        """Return up to ``limit`` ``(key, payload)`` pairs with keys
        ``>= key`` from this node onward, following the leaf chain.

        Uses the bitmap to skip gaps; the bitmap-word counter models the
        paper's observation that the bitmap makes gap-skipping cheap.
        """
        out: list = []
        node: Optional[DataNode] = self
        pos = self.find_insert_pos(key)
        while node is not None and len(out) < limit:
            hi = node.capacity
            node.counters.bitmap_words_scanned += (
                (hi - pos + _BITMAP_WORD_BITS - 1) // _BITMAP_WORD_BITS
            )
            occ_positions = np.flatnonzero(node.occupied[pos:hi]) + pos
            for p in occ_positions:
                out.append((float(node.keys[p]), node.payloads[p]))
                node.counters.payload_bytes_copied += node.config.payload_size
                if len(out) >= limit:
                    return out
            node.counters.pointer_follows += 1
            node = node.next_leaf
            pos = 0
        return out

    def iter_items(self) -> Iterator[Tuple[float, object]]:
        """Yield the node's real ``(key, payload)`` pairs in key order."""
        for pos in np.flatnonzero(self.occupied):
            yield float(self.keys[pos]), self.payloads[pos]

    def export_sorted(self) -> Tuple[np.ndarray, list]:
        """Return ``(keys, payloads)`` of the real elements in key order."""
        positions = np.flatnonzero(self.occupied)
        keys = self.keys[positions].copy()
        payloads = [self.payloads[p] for p in positions]
        return keys, payloads

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def density(self) -> float:
        """Fraction of slots currently holding real keys."""
        return self.num_keys / self.capacity if self.capacity else 0.0

    def density_bound(self) -> float:
        """Upper density limit this layout tolerates before an insert must
        open new space (GA: ``d``, Section 3.3.1; the PMA overrides this
        with its root-window bound)."""
        return self.config.density_upper

    def retrain(self) -> None:
        """Catastrophic retrain (Section 3.4.2): rebuild the node
        model-based at its current capacity.  Chosen by the cost-model
        policy when the model has drifted far from the data but the
        allocation is still right-sized."""
        keys, payloads = self.export_sorted()
        self._model_based_build(keys, payloads, self.capacity)

    def min_key(self) -> float:
        """Smallest real key (raises when empty)."""
        pos = self._first_occupied_at_or_after(0)
        if pos >= self.capacity:
            raise KeyNotFoundError(float("nan"))
        return float(self.keys[pos])

    def max_key(self) -> float:
        """Largest real key (raises when empty)."""
        pos = self._last_occupied_before(self.capacity)
        if pos < 0:
            raise KeyNotFoundError(float("nan"))
        return float(self.keys[pos])

    def data_size_bytes(self) -> int:
        """Allocated data size: key + payload arrays including gaps, plus
        the occupancy bitmap (Section 5.1's accounting)."""
        per_slot = 8 + self.config.payload_size
        bitmap = (self.capacity + 7) // 8
        return self.capacity * per_slot + bitmap

    def model_size_bytes(self) -> int:
        """Index-side footprint of this node: its linear model."""
        return LinearModel.SIZE_BYTES if self.model is not None else 0

    def check_invariants(self) -> None:
        """Assert every structural invariant (used heavily by the tests):

        * real keys appear in strictly increasing order;
        * the full array (gaps included) is non-decreasing;
        * every gap slot mirrors its nearest real right neighbour
          (``+inf`` for trailing gaps);
        * ``num_keys`` matches the bitmap population count.
        """
        positions = np.flatnonzero(self.occupied)
        real = self.keys[positions]
        if len(real) > 1 and not (np.diff(real) > 0).all():
            raise AssertionError("real keys are not strictly increasing")
        finite = self.keys[np.isfinite(self.keys)]
        if len(finite) > 1 and not (np.diff(finite) >= 0).all():
            raise AssertionError("gap-filled key array is not non-decreasing")
        if int(self.occupied.sum()) != self.num_keys:
            raise AssertionError("num_keys does not match bitmap population")
        expect = GAP_SENTINEL
        for pos in range(self.capacity - 1, -1, -1):
            if self.occupied[pos]:
                expect = self.keys[pos]
            elif self.keys[pos] != expect:
                raise AssertionError(
                    f"gap slot {pos} holds {self.keys[pos]}, expected {expect}"
                )

    # ------------------------------------------------------------------
    # Abstract subclass API
    # ------------------------------------------------------------------

    def insert(self, key: float, payload=None) -> None:
        """Insert a new key (layout-specific)."""
        raise NotImplementedError

    def expand(self) -> None:
        """Grow the arrays and rebuild model-based (layout-specific size)."""
        raise NotImplementedError
