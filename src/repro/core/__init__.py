"""Core ALEX implementation: node layouts, RMIs, and the public index."""

from .alex import AlexIndex
from .config import (
    ADAPTIVE_RMI,
    ALL_VARIANTS,
    AlexConfig,
    GAPPED_ARRAY,
    PACKED_MEMORY_ARRAY,
    STATIC_RMI,
    ga_armi,
    ga_srmi,
    pma_armi,
    pma_srmi,
)
from .data_node import DataNode, GAP_SENTINEL
from .errors import DuplicateKeyError, IndexError_, KeyNotFoundError
from .gapped_array import GappedArrayNode
from .linear_model import LinearModel
from .pma import PMANode, next_power_of_two
from .policy import (
    AdaptationPolicy,
    CostModelPolicy,
    HeuristicPolicy,
    NodePressure,
    PolicyDecision,
    PressureEvent,
    SMO_EXPAND,
    SMO_MERGE,
    SMO_NONE,
    SMO_RETRAIN,
    SMO_SPLIT_DOWN,
    SMO_SPLIT_SIDEWAYS,
    ShardDecision,
    ShardSummary,
)
from .rmi import InnerNode, build_static_rmi
from .adaptive import (build_adaptive_rmi, merge_leaves, split_leaf,
                       split_leaf_sideways)
from .batch import bulk_insert, merge_indexes
from .cursor import Cursor, CursorInvalidatedError
from .introspect import StructureReport, format_report, structure_report
from .search import binary_search_bounded, exponential_search, lower_bound
from .stats import Counters

__all__ = [
    "ADAPTIVE_RMI",
    "ALL_VARIANTS",
    "AdaptationPolicy",
    "AlexConfig",
    "AlexIndex",
    "CostModelPolicy",
    "Counters",
    "HeuristicPolicy",
    "NodePressure",
    "PolicyDecision",
    "PressureEvent",
    "SMO_EXPAND",
    "SMO_MERGE",
    "SMO_NONE",
    "SMO_RETRAIN",
    "SMO_SPLIT_DOWN",
    "SMO_SPLIT_SIDEWAYS",
    "ShardDecision",
    "ShardSummary",
    "Cursor",
    "CursorInvalidatedError",
    "DataNode",
    "DuplicateKeyError",
    "GAP_SENTINEL",
    "GAPPED_ARRAY",
    "GappedArrayNode",
    "IndexError_",
    "InnerNode",
    "KeyNotFoundError",
    "LinearModel",
    "PACKED_MEMORY_ARRAY",
    "PMANode",
    "STATIC_RMI",
    "StructureReport",
    "binary_search_bounded",
    "build_adaptive_rmi",
    "build_static_rmi",
    "bulk_insert",
    "exponential_search",
    "format_report",
    "ga_armi",
    "ga_srmi",
    "lower_bound",
    "merge_indexes",
    "merge_leaves",
    "next_power_of_two",
    "pma_armi",
    "pma_srmi",
    "split_leaf",
    "split_leaf_sideways",
    "structure_report",
]
