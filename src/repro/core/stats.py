"""Operation counters: the reproduction's substitute for wall-clock profiling.

The paper evaluates a C++ implementation with wall-clock throughput.  In pure
Python, interpreter overhead would swamp the algorithmic differences the paper
measures, so every index in this repository is instrumented with a
:class:`Counters` object that records the algorithmic work performed:
key comparisons, element shifts, model inferences, pointer follows (a proxy
for cache misses), and structural events (expansions, splits, rebalances).

``repro.analysis.cost_model`` converts these counters into simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class Counters:
    """Mutable tally of algorithmic work performed by an index.

    Attributes
    ----------
    comparisons:
        Key comparisons (search steps, sortedness checks).
    shifts:
        Elements moved by one position to open a slot for an insert.
    gap_fill_writes:
        Gap slots rewritten to maintain the "gap holds its right neighbour's
        key" invariant of the gapped array (cheap sequential writes).
    model_inferences:
        Linear-model evaluations (one multiply + one add + one round).
    pointer_follows:
        Traversals from one node to another (likely cache misses).
    probes:
        Array positions touched during exponential / binary search.
    rebalance_moves:
        Elements moved during PMA window redistributions.
    build_moves:
        Elements placed during (re)builds — node expansions, contractions,
        and bulk loads (the copy cost of Algorithm 3's expansion).
    payload_bytes_copied:
        Bytes of payload copied out during range scans.
    bitmap_words_scanned:
        64-bit bitmap words examined while skipping gaps during scans.
    expansions / contractions:
        Data-node array expansions and contractions.
    splits:
        Data-node splits (adaptive RMI, node splitting on inserts —
        sideways or down, Section 3.4.2).
    merges:
        Data-node merges (underfull sibling leaves folded into one, the
        delete-side inverse of a split).
    retrains:
        Linear-model retraining events.
    inserts / lookups / deletes / scans:
        Completed logical operations.
    """

    comparisons: int = 0
    shifts: int = 0
    gap_fill_writes: int = 0
    model_inferences: int = 0
    pointer_follows: int = 0
    probes: int = 0
    rebalance_moves: int = 0
    build_moves: int = 0
    payload_bytes_copied: int = 0
    bitmap_words_scanned: int = 0
    expansions: int = 0
    contractions: int = 0
    splits: int = 0
    retrains: int = 0
    inserts: int = 0
    lookups: int = 0
    deletes: int = 0
    scans: int = 0
    merges: int = 0

    def reset(self) -> None:
        """Zero every counter in place."""
        for field in fields(self):
            setattr(self, field.name, 0)

    def snapshot(self) -> "Counters":
        """Return an independent copy of the current tallies."""
        return Counters(**{f.name: getattr(self, f.name) for f in fields(self)})

    def diff(self, earlier: "Counters") -> "Counters":
        """Return the work done since ``earlier`` (``self - earlier``)."""
        return Counters(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    def merge(self, other: "Counters") -> None:
        """Add ``other``'s tallies into this object."""
        for field in fields(self):
            setattr(
                self, field.name, getattr(self, field.name) + getattr(other, field.name)
            )

    def total_events(self) -> int:
        """Sum of all tallies; useful as a coarse progress measure."""
        return sum(getattr(self, f.name) for f in fields(self))

    def as_dict(self) -> dict:
        """Return the tallies as a plain ``dict`` (for reports and JSON)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}
