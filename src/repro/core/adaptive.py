"""Adaptive RMI: initialization (Algorithm 4) and node splitting on inserts.

The static RMI suffers from *wasted models* (skew leaves most models nearly
empty) and *fully-packed regions* (a model covering too many keys
concentrates inserts).  Adaptive initialization bounds the number of keys
per leaf and lets the tree depth adapt to the data; node splitting on
inserts (Section 3.4.2) extends the same idea to dynamic distribution
shift and cold starts.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .config import AlexConfig
from .data_node import DataNode
from .linear_model import LinearModel
from .rmi import InnerNode, link_leaves, make_data_node, partition_by_model
from .stats import Counters

#: Hard cap on recursion depth during adaptive initialization; reaching it
#: means the model cannot split the keys (e.g. near-identical values), in
#: which case we accept an oversized leaf rather than recurse forever.
_MAX_DEPTH = 32


def build_adaptive_rmi(keys: np.ndarray, payloads: list, config: AlexConfig,
                       counters: Counters):
    """Algorithm 4: build an adaptively-shaped RMI over sorted ``keys``.

    Returns ``(root, leaves)``.  The root receives enough partitions that
    each holds ``max_keys_per_node`` keys in expectation; non-root inner
    nodes use the fixed ``config.inner_partitions``.  Oversized partitions
    recurse into a deeper inner node; undersized partitions are merged with
    their successors until just below the bound.
    """
    keys = np.asarray(keys, dtype=np.float64)
    leaves: List[DataNode] = []
    root = _initialize(keys, payloads, config, counters, leaves, depth=0)
    link_leaves(leaves)
    return root, leaves


def _initialize(keys: np.ndarray, payloads: list, config: AlexConfig,
                counters: Counters, leaves: List[DataNode], depth: int):
    """Recursive body of Algorithm 4; appends created leaves in key order."""
    n = len(keys)
    max_keys = config.max_keys_per_node
    if n <= max_keys or depth >= _MAX_DEPTH:
        return _make_leaf(keys, payloads, config, counters, leaves)

    if depth == 0:
        num_partitions = max(2, -(-n // max_keys))  # ceil(n / max_keys)
    else:
        num_partitions = config.inner_partitions
    model = LinearModel.train_cdf(keys, num_partitions)
    counters.retrains += 1
    bounds = partition_by_model(keys, model, num_partitions)
    sizes = np.diff(bounds)
    if int(sizes.max()) == n:
        # Degenerate: the model routes every key to one partition, so
        # recursing cannot make progress.  Accept an oversized leaf.
        return _make_leaf(keys, payloads, config, counters, leaves)

    children: List[object] = [None] * num_partitions
    s = 0
    while s < num_partitions:
        size = int(sizes[s])
        if size > max_keys:
            lo, hi = int(bounds[s]), int(bounds[s + 1])
            children[s] = _initialize(keys[lo:hi], payloads[lo:hi], config,
                                      counters, leaves, depth + 1)
            s += 1
            continue
        # Merge this partition with its successors until just below the
        # bound (Algorithm 4's accumulate-then-drop loop).
        e = s + 1
        acc = size
        while e < num_partitions and acc + int(sizes[e]) <= max_keys:
            acc += int(sizes[e])
            e += 1
        lo, hi = int(bounds[s]), int(bounds[e])
        leaf = _make_leaf(keys[lo:hi], payloads[lo:hi], config, counters,
                          leaves)
        for slot in range(s, e):
            children[slot] = leaf
        s = e
    return InnerNode(model, children, counters)


def _make_leaf(keys: np.ndarray, payloads: list, config: AlexConfig,
               counters: Counters, leaves: List[DataNode]) -> DataNode:
    """Build one data node and register it in the in-order leaf list."""
    leaf = make_data_node(config, counters)
    leaf.build(keys, list(payloads))
    leaves.append(leaf)
    return leaf


def split_until_fits(leaf: DataNode, parent: Optional[InnerNode],
                     config: AlexConfig, counters: Counters):
    """Split ``leaf`` (and any oversized children) until every resulting
    leaf holds at most ``config.max_keys_per_node`` keys.

    The batch-insert path rebuilds whole leaves at once, so a single merged
    rebuild can overshoot the node-size bound by far more than one insert's
    worth; this drives :func:`split_leaf` as a worklist until the bound
    holds everywhere (degenerate splits are accepted as oversized leaves,
    exactly like the scalar insert path).

    Returns the inner node that replaced ``leaf``, or ``None`` when no
    split happened (the caller must re-root the tree when ``parent`` is
    ``None`` and a node is returned).
    """
    replacement = None
    work = [(leaf, parent)]
    while work:
        node, par = work.pop()
        if node.num_keys <= config.max_keys_per_node:
            continue
        inner = split_leaf(node, par, config, counters)
        if inner is None:
            continue  # degenerate: the model cannot separate the keys
        if node is leaf:
            replacement = inner
        for child in inner.distinct_children():
            work.append((child, inner))
    return replacement


def split_leaf(leaf: DataNode, parent: Optional[InnerNode],
               config: AlexConfig, counters: Counters):
    """Node splitting on inserts (Section 3.4.2).

    The leaf's model becomes an inner model with ``config.split_fanout``
    children; the data is redistributed to the children *according to the
    original node's model* (its output range rescaled from the array size
    to the fanout).  No rebalancing happens — ALEX is not height-balanced.

    Returns the new :class:`InnerNode`, or ``None`` when the split would be
    degenerate (every key lands in one child), in which case the caller
    should keep the oversized leaf.
    """
    keys, payloads = leaf.export_sorted()
    fanout = config.split_fanout
    if leaf.model is not None and leaf.model.slope > 0:
        model = leaf.model.copy()
        model.scale(fanout / leaf.capacity)
    else:
        model = LinearModel.train_cdf(keys, fanout)
        counters.retrains += 1
    bounds = partition_by_model(keys, model, fanout)
    sizes = np.diff(bounds)
    if len(keys) > 0 and int(sizes.max()) == len(keys):
        return None

    children: List[DataNode] = []
    for s in range(fanout):
        lo, hi = int(bounds[s]), int(bounds[s + 1])
        child = make_data_node(config, counters)
        child.build(keys[lo:hi], payloads[lo:hi])
        children.append(child)

    # Splice the new leaves into the chain where the old leaf sat.
    first, last = children[0], children[-1]
    first.prev_leaf = leaf.prev_leaf
    if leaf.prev_leaf is not None:
        leaf.prev_leaf.next_leaf = first
    last.next_leaf = leaf.next_leaf
    if leaf.next_leaf is not None:
        leaf.next_leaf.prev_leaf = last
    for left, right in zip(children, children[1:]):
        left.next_leaf = right
        right.prev_leaf = left

    inner = InnerNode(model, list(children), counters)
    counters.splits += 1
    if parent is not None:
        parent.replace_child(leaf, inner)
    return inner
