"""Adaptive RMI: initialization (Algorithm 4) and node splitting on inserts.

The static RMI suffers from *wasted models* (skew leaves most models nearly
empty) and *fully-packed regions* (a model covering too many keys
concentrates inserts).  Adaptive initialization bounds the number of keys
per leaf and lets the tree depth adapt to the data; node splitting on
inserts (Section 3.4.2) extends the same idea to dynamic distribution
shift and cold starts.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .config import AlexConfig
from .data_node import DataNode
from .kernels import get_kernels
from .linear_model import LinearModel
from .policy import DEFAULT_POLICY
from .rmi import InnerNode, link_leaves, make_data_node, partition_by_model
from .stats import Counters

#: Hard cap on recursion depth during adaptive initialization; reaching it
#: means the model cannot split the keys (e.g. near-identical values), in
#: which case we accept an oversized leaf rather than recurse forever.
_MAX_DEPTH = 32


def build_adaptive_rmi(keys: np.ndarray, payloads: list, config: AlexConfig,
                       counters: Counters, policy=None):
    """Algorithm 4: build an adaptively-shaped RMI over sorted ``keys``.

    Returns ``(root, leaves)``.  The fanout of each inner node is chosen
    by the adaptation ``policy`` (heuristic default: enough root
    partitions that each holds ``max_keys_per_node`` keys in expectation,
    the fixed ``config.inner_partitions`` below the root).  Oversized
    partitions recurse into a deeper inner node; undersized partitions are
    merged with their successors until just below the bound.
    """
    keys = np.asarray(keys, dtype=np.float64)
    policy = policy or DEFAULT_POLICY
    leaves: List[DataNode] = []
    root = _initialize(keys, payloads, config, counters, policy, leaves,
                       depth=0)
    link_leaves(leaves)
    return root, leaves


def _initialize(keys: np.ndarray, payloads: list, config: AlexConfig,
                counters: Counters, policy, leaves: List[DataNode],
                depth: int):
    """Recursive body of Algorithm 4; appends created leaves in key order."""
    n = len(keys)
    max_keys = config.max_keys_per_node
    if n <= max_keys or depth >= _MAX_DEPTH:
        return _make_leaf(keys, payloads, config, counters, policy, leaves)

    num_partitions = policy.initial_fanout(n, depth, config)
    model = LinearModel.train_cdf(keys, num_partitions)
    counters.retrains += 1
    bounds = partition_by_model(keys, model, num_partitions)
    sizes = np.diff(bounds)
    if int(sizes.max()) == n:
        # Degenerate: the model routes every key to one partition, so
        # recursing cannot make progress.  Accept an oversized leaf.
        return _make_leaf(keys, payloads, config, counters, policy, leaves)

    children: List[object] = [None] * num_partitions
    s = 0
    while s < num_partitions:
        size = int(sizes[s])
        if size > max_keys:
            lo, hi = int(bounds[s]), int(bounds[s + 1])
            children[s] = _initialize(keys[lo:hi], payloads[lo:hi], config,
                                      counters, policy, leaves, depth + 1)
            s += 1
            continue
        # Merge this partition with its successors until just below the
        # bound (Algorithm 4's accumulate-then-drop loop).
        e = s + 1
        acc = size
        while e < num_partitions and acc + int(sizes[e]) <= max_keys:
            acc += int(sizes[e])
            e += 1
        lo, hi = int(bounds[s]), int(bounds[e])
        leaf = _make_leaf(keys[lo:hi], payloads[lo:hi], config, counters,
                          policy, leaves)
        for slot in range(s, e):
            children[slot] = leaf
        s = e
    return InnerNode(model, children, counters,
                     kernels=get_kernels(config.kernel_backend))


def _make_leaf(keys: np.ndarray, payloads: list, config: AlexConfig,
               counters: Counters, policy,
               leaves: List[DataNode]) -> DataNode:
    """Build one data node and register it in the in-order leaf list."""
    leaf = make_data_node(config, counters, policy)
    leaf.build(keys, list(payloads))
    leaves.append(leaf)
    return leaf


def split_until_fits(leaf: DataNode, parent: Optional[InnerNode],
                     config: AlexConfig, counters: Counters):
    """Split ``leaf`` (and any oversized children) until every resulting
    leaf holds at most ``config.max_keys_per_node`` keys.

    The batch-insert path rebuilds whole leaves at once, so a single merged
    rebuild can overshoot the node-size bound by far more than one insert's
    worth; this drives :func:`split_leaf` as a worklist until the bound
    holds everywhere (degenerate splits are accepted as oversized leaves,
    exactly like the scalar insert path).

    Returns the inner node that replaced ``leaf``, or ``None`` when no
    split happened (the caller must re-root the tree when ``parent`` is
    ``None`` and a node is returned).
    """
    replacement = None
    work = [(leaf, parent)]
    while work:
        node, par = work.pop()
        if node.num_keys <= config.max_keys_per_node:
            continue
        inner = split_leaf(node, par, config, counters)
        if inner is None:
            continue  # degenerate: the model cannot separate the keys
        if node is leaf:
            replacement = inner
        for child in inner.distinct_children():
            work.append((child, inner))
    return replacement


def split_leaf(leaf: DataNode, parent: Optional[InnerNode],
               config: AlexConfig, counters: Counters):
    """Node splitting on inserts — the *split down* SMO (Section 3.4.2).

    The leaf's model becomes an inner model with ``config.split_fanout``
    children; the data is redistributed to the children *according to the
    original node's model* (its output range rescaled from the array size
    to the fanout).  No rebalancing happens — ALEX is not height-balanced.
    The tree deepens locally by one level, so every future access to this
    key range pays one more pointer follow and model inference (the cost
    the :class:`repro.core.policy.CostModelPolicy` weighs against *split
    sideways* and *expand in place*).

    Returns the new :class:`InnerNode`, or ``None`` when the split would be
    degenerate (every key lands in one child), in which case the caller
    should keep the oversized leaf.
    """
    keys, payloads = leaf.export_sorted()
    fanout = config.split_fanout
    if leaf.model is not None and leaf.model.slope > 0:
        model = leaf.model.copy()
        model.scale(fanout / leaf.capacity)
    else:
        model = LinearModel.train_cdf(keys, fanout)
        counters.retrains += 1
    bounds = partition_by_model(keys, model, fanout)
    sizes = np.diff(bounds)
    if len(keys) > 0 and int(sizes.max()) == len(keys):
        return None

    children: List[DataNode] = []
    for s in range(fanout):
        lo, hi = int(bounds[s]), int(bounds[s + 1])
        child = make_data_node(config, counters, leaf.policy)
        child.build(keys[lo:hi], payloads[lo:hi])
        children.append(child)

    # Splice the new leaves into the chain where the old leaf sat.
    first, last = children[0], children[-1]
    first.prev_leaf = leaf.prev_leaf
    if leaf.prev_leaf is not None:
        leaf.prev_leaf.next_leaf = first
    last.next_leaf = leaf.next_leaf
    if leaf.next_leaf is not None:
        leaf.next_leaf.prev_leaf = last
    for left, right in zip(children, children[1:]):
        left.next_leaf = right
        right.prev_leaf = left

    inner = InnerNode(model, list(children), counters,
                      kernels=get_kernels(config.kernel_backend))
    counters.splits += 1
    if parent is not None:
        parent.replace_child(leaf, inner)
    return inner


def split_leaf_sideways(leaf: DataNode, parent: Optional[InnerNode],
                        config: AlexConfig, counters: Counters):
    """The *split sideways* SMO (Section 3.4.2): divide ``leaf`` into two
    leaves under its existing parent by splitting the run of parent
    pointer slots that map to it.

    No new level is created — future traversal cost is unchanged — so
    this SMO needs the parent to give the leaf at least two slots (and a
    non-degenerate key split between them).  The keys are partitioned by
    the *parent's* model, which is exactly how future lookups will route,
    so each new leaf receives precisely the keys that will be sent to it.

    Returns the ``(left, right)`` leaves, or ``None`` when sideways
    splitting is infeasible (no parent, a single slot, or all keys
    routing to one side) — callers fall back to :func:`split_leaf`.
    """
    if parent is None:
        return None
    slots = [i for i, child in enumerate(parent.children) if child is leaf]
    if len(slots) < 2:
        return None
    keys, payloads = leaf.export_sorted()
    if len(keys) < 2:
        return None
    slot_of = parent.model.predict_pos_vec(keys, parent.num_slots)
    # Cut at the slot boundary that divides the keys most evenly.
    cuts = np.searchsorted(slot_of, np.array(slots[1:], dtype=np.int64))
    best = int(np.argmin(np.abs(cuts - len(keys) / 2)))
    cut, cut_slot = int(cuts[best]), slots[1 + best]
    if cut == 0 or cut == len(keys):
        return None

    left = make_data_node(config, counters, leaf.policy)
    left.build(keys[:cut], payloads[:cut])
    right = make_data_node(config, counters, leaf.policy)
    right.build(keys[cut:], payloads[cut:])

    # Chain splice: the pair replaces the single leaf in place.
    left.prev_leaf = leaf.prev_leaf
    if leaf.prev_leaf is not None:
        leaf.prev_leaf.next_leaf = left
    right.next_leaf = leaf.next_leaf
    if leaf.next_leaf is not None:
        leaf.next_leaf.prev_leaf = right
    left.next_leaf = right
    right.prev_leaf = left

    # Slots before the cut boundary keep routing left, the rest right.
    for slot in slots:
        parent.children[slot] = left if slot < cut_slot else right
    counters.splits += 1
    return left, right


def merge_leaves(leaf: DataNode, parent: Optional[InnerNode],
                 config: AlexConfig, counters: Counters,
                 max_keys: Optional[int] = None):
    """The *merge* SMO — the delete-side inverse of a sideways split.

    Folds ``leaf`` into an adjacent sibling leaf under the **same**
    parent: the union of both leaves' records is rebuilt model-based into
    one node that takes over both slot runs and the chain positions.
    Deletes are the paper's open follow-up (Section 7, "delete-heavy
    workloads"); without this SMO a shrinking index keeps every leaf it
    ever split into.

    The merged node never exceeds ``max_keys`` (default: the node-size
    bound; policies pass a smaller cap to keep hysteresis between the
    merge and split triggers) — a candidate sibling that would overshoot
    is skipped.  Returns the merged leaf, or ``None`` when no same-parent
    adjacent sibling qualifies.
    """
    if parent is None:
        return None
    if max_keys is None:
        max_keys = config.max_keys_per_node
    for sibling in (leaf.prev_leaf, leaf.next_leaf):
        if sibling is None or sibling is leaf:
            continue
        if leaf.num_keys + sibling.num_keys > max_keys:
            continue
        if not any(child is sibling for child in parent.children):
            continue  # different parent: slots cannot be re-pointed
        left, right = ((sibling, leaf) if sibling is leaf.prev_leaf
                       else (leaf, sibling))
        left_keys, left_payloads = left.export_sorted()
        right_keys, right_payloads = right.export_sorted()
        merged = make_data_node(config, counters, leaf.policy)
        merged.build(np.concatenate([left_keys, right_keys]),
                     left_payloads + right_payloads)

        merged.prev_leaf = left.prev_leaf
        if left.prev_leaf is not None:
            left.prev_leaf.next_leaf = merged
        merged.next_leaf = right.next_leaf
        if right.next_leaf is not None:
            right.next_leaf.prev_leaf = merged

        parent.replace_child(left, merged)
        parent.replace_child(right, merged)
        counters.merges += 1
        return merged
    return None
