"""In-node search primitives: exponential search and bounded binary search.

ALEX uses *exponential search* outward from the model's predicted position
(Section 3.2): when the model is accurate the search terminates after a few
probes, and no error bounds need to be stored.  The Learned Index baseline
instead stores per-model error bounds and runs *binary search* within them.
Figure 11 of the paper compares the two; ``benchmarks/bench_fig11`` replays
that comparison using these exact routines.

All routines return the *lower-bound* position: the leftmost index ``i`` in
``[lo, hi)`` with ``keys[i] >= target`` (or ``hi`` when no such index
exists).  They work on the gap-filled key arrays of the data nodes (where a
gap slot holds a copy of its nearest real right neighbour), because those
arrays are non-decreasing by construction.
"""

from __future__ import annotations

import numpy as np

from .stats import Counters


def lower_bound(keys: np.ndarray, target: float, lo: int, hi: int,
                counters: Counters | None = None) -> int:
    """Plain binary search for the leftmost position with ``key >= target``.

    ``keys[lo:hi]`` must be non-decreasing.  Counts one comparison and one
    probe per halving step.
    """
    steps = 0
    while lo < hi:
        mid = (lo + hi) // 2
        steps += 1
        if keys[mid] < target:
            lo = mid + 1
        else:
            hi = mid
    if counters is not None:
        counters.comparisons += steps
        counters.probes += steps
    return lo


def exponential_search(keys: np.ndarray, target: float, hint: int,
                       lo: int, hi: int,
                       counters: Counters | None = None) -> int:
    """Exponential search outward from ``hint``, then bounded binary search.

    Doubles the step size away from the predicted position until the target
    is bracketed, then finishes with binary search inside the bracket.  Cost
    is ``O(log error)`` where ``error = |actual - hint|``, which is why small
    model errors translate directly into fast lookups (paper Section 5.3.2).
    """
    if hi <= lo:
        return lo
    if hint < lo:
        hint = lo
    elif hint >= hi:
        hint = hi - 1

    probes = 0
    if keys[hint] >= target:
        # Target is at or to the left of the hint: grow the bracket leftward.
        bound = 1
        left = hint - bound
        while left >= lo and keys[left] >= target:
            probes += 1
            bound *= 2
            left = hint - bound
        probes += 1
        search_lo = max(lo, hint - bound)
        search_hi = hint - (bound // 2) + 1
    else:
        # Target is to the right of the hint: grow the bracket rightward.
        bound = 1
        right = hint + bound
        while right < hi and keys[right] < target:
            probes += 1
            bound *= 2
            right = hint + bound
        probes += 1
        search_lo = hint + (bound // 2)
        search_hi = min(hi, hint + bound + 1)

    if counters is not None:
        counters.comparisons += probes
        counters.probes += probes
    return lower_bound(keys, target, search_lo, search_hi, counters)


def binary_search_bounded(keys: np.ndarray, target: float, hint: int,
                          max_error_left: int, max_error_right: int,
                          lo: int, hi: int,
                          counters: Counters | None = None) -> int:
    """Binary search within stored error bounds around ``hint``.

    This is the search strategy of the Learned Index baseline (Kraska et
    al.): each model stores the largest observed under- and over-prediction,
    and lookup binary-searches ``[hint - max_error_left, hint +
    max_error_right]``.  Cost is ``O(log(bound width))`` regardless of the
    actual error, which is the weakness Figure 11 illustrates.
    """
    search_lo = max(lo, hint - max_error_left)
    search_hi = min(hi, hint + max_error_right + 1)
    pos = lower_bound(keys, target, search_lo, search_hi, counters)
    # Guard against stale bounds (possible between inserts and retrains in
    # the baseline): if the answer lands on the edge of the bounded window,
    # the true position may lie outside it, so widen the search.
    if pos == search_hi and search_hi < hi:
        pos = lower_bound(keys, target, search_hi, hi, counters)
    elif pos == search_lo and search_lo > lo:
        pos = lower_bound(keys, target, lo, search_lo + 1, counters)
    return pos
