"""In-node search primitives: exponential search and bounded binary search.

ALEX uses *exponential search* outward from the model's predicted position
(Section 3.2): when the model is accurate the search terminates after a few
probes, and no error bounds need to be stored.  The Learned Index baseline
instead stores per-model error bounds and runs *binary search* within them.
Figure 11 of the paper compares the two; ``benchmarks/bench_fig11`` replays
that comparison using these exact routines.

All routines return the *lower-bound* position: the leftmost index ``i`` in
``[lo, hi)`` with ``keys[i] >= target`` (or ``hi`` when no such index
exists).  They work on the gap-filled key arrays of the data nodes (where a
gap slot holds a copy of its nearest real right neighbour), because those
arrays are non-decreasing by construction.

The ``*_many`` variants are the batch engine's search layer: they take an
array of targets (and per-target hints / bounds) and run every search in
lock-step with NumPy, producing positions identical to the scalar routines.
Counters are aggregated once per batch — the per-lane probe counts are
summed and charged in a single update — so the algorithmic-work accounting
matches a loop over the scalar routines exactly.

The ``*_counted`` cores return ``(positions, charge)`` instead of touching
counters; they are the primitives behind the ``numpy`` kernel backend
(:mod:`repro.core.kernels`), which the compiled backends are
property-tested against.  The public functions here are thin
counter-charging wrappers kept for the baselines and existing callers.
"""

from __future__ import annotations

import numpy as np

from .stats import Counters


def lower_bound_counted(keys: np.ndarray, target: float,
                        lo: int, hi: int) -> tuple:
    """:func:`lower_bound` core: ``(position, halving_steps)``."""
    steps = 0
    while lo < hi:
        mid = (lo + hi) // 2
        steps += 1
        if keys[mid] < target:
            lo = mid + 1
        else:
            hi = mid
    return lo, steps


def lower_bound(keys: np.ndarray, target: float, lo: int, hi: int,
                counters: Counters | None = None) -> int:
    """Plain binary search for the leftmost position with ``key >= target``.

    ``keys[lo:hi]`` must be non-decreasing.  Counts one comparison and one
    probe per halving step.
    """
    pos, steps = lower_bound_counted(keys, target, lo, hi)
    if counters is not None:
        counters.comparisons += steps
        counters.probes += steps
    return pos


def exponential_search_counted(keys: np.ndarray, target: float, hint: int,
                               lo: int, hi: int) -> tuple:
    """:func:`exponential_search` core: ``(position, total_charge)`` where
    the charge covers both the bracket-growing probes and the final
    binary-search steps (each is billed to comparisons *and* probes by
    the wrappers)."""
    if hi <= lo:
        return lo, 0
    if hint < lo:
        hint = lo
    elif hint >= hi:
        hint = hi - 1

    probes = 0
    if keys[hint] >= target:
        # Target is at or to the left of the hint: grow the bracket leftward.
        bound = 1
        left = hint - bound
        while left >= lo and keys[left] >= target:
            probes += 1
            bound *= 2
            left = hint - bound
        probes += 1
        search_lo = max(lo, hint - bound)
        search_hi = hint - (bound // 2) + 1
    else:
        # Target is to the right of the hint: grow the bracket rightward.
        bound = 1
        right = hint + bound
        while right < hi and keys[right] < target:
            probes += 1
            bound *= 2
            right = hint + bound
        probes += 1
        search_lo = hint + (bound // 2)
        search_hi = min(hi, hint + bound + 1)

    pos, steps = lower_bound_counted(keys, target, search_lo, search_hi)
    return pos, probes + steps


def exponential_search(keys: np.ndarray, target: float, hint: int,
                       lo: int, hi: int,
                       counters: Counters | None = None) -> int:
    """Exponential search outward from ``hint``, then bounded binary search.

    Doubles the step size away from the predicted position until the target
    is bracketed, then finishes with binary search inside the bracket.  Cost
    is ``O(log error)`` where ``error = |actual - hint|``, which is why small
    model errors translate directly into fast lookups (paper Section 5.3.2).
    """
    pos, charge = exponential_search_counted(keys, target, hint, lo, hi)
    if counters is not None:
        counters.comparisons += charge
        counters.probes += charge
    return pos


def lower_bound_many_counted(keys: np.ndarray, targets: np.ndarray,
                             los: np.ndarray, his: np.ndarray) -> tuple:
    """:func:`lower_bound_many` core: ``(positions, total_steps)``."""
    lo = np.asarray(los, dtype=np.int64).copy()
    hi = np.asarray(his, dtype=np.int64).copy()
    steps = 0
    active = lo < hi
    while active.any():
        steps += int(active.sum())
        mid = (lo + hi) >> 1
        probe = np.where(active, mid, 0)
        less = keys[probe] < targets
        go_right = active & less
        go_left = active & ~less
        lo[go_right] = mid[go_right] + 1
        hi[go_left] = mid[go_left]
        active = lo < hi
    return lo, steps


def lower_bound_many(keys: np.ndarray, targets: np.ndarray,
                     los: np.ndarray, his: np.ndarray,
                     counters: Counters | None = None) -> np.ndarray:
    """Vectorized :func:`lower_bound` over per-lane ``[los, his)`` windows.

    Runs every binary search in lock-step: each iteration halves the window
    of every still-active lane, so the loop runs ``O(log max-width)`` times
    regardless of how many targets there are.  Returns the same positions
    (and charges the same total comparison/probe counts) as calling
    :func:`lower_bound` once per lane.
    """
    pos, steps = lower_bound_many_counted(keys, targets, los, his)
    if counters is not None:
        counters.comparisons += steps
        counters.probes += steps
    return pos


def _grow_brackets(keys: np.ndarray, targets: np.ndarray, hints: np.ndarray,
                   lanes: np.ndarray, bound: np.ndarray, lo: int, hi: int,
                   leftward: bool) -> int:
    """Double ``bound`` (in place) for the ``lanes`` whose exponential
    bracket has not yet crossed the target, exactly as the scalar doubling
    loop does.  Returns the number of probes performed."""
    probes = 0
    active = lanes
    while active.size:
        pos = hints[active] - bound[active] if leftward else hints[active] + bound[active]
        in_bounds = (pos >= lo) if leftward else (pos < hi)
        keep = np.zeros(active.size, dtype=bool)
        idx_in = np.flatnonzero(in_bounds)
        if idx_in.size:
            vals = keys[pos[idx_in]]
            tv = targets[active[idx_in]]
            keep[idx_in] = (vals >= tv) if leftward else (vals < tv)
        grow = active[keep]
        probes += int(grow.size)
        bound[grow] <<= 1
        active = grow
    return probes


def exponential_search_many_counted(keys: np.ndarray, targets: np.ndarray,
                                    hints: np.ndarray, lo: int,
                                    hi: int) -> tuple:
    """:func:`exponential_search_many` core: ``(positions, total_charge)``."""
    n = len(targets)
    if hi <= lo:
        return np.full(n, lo, dtype=np.int64), 0
    hints = np.clip(np.asarray(hints, dtype=np.int64), lo, hi - 1)
    targets = np.asarray(targets, dtype=np.float64)

    leftward = keys[hints] >= targets
    bound = np.ones(n, dtype=np.int64)
    probes = n  # the scalar routine's unconditional final probe, per lane
    probes += _grow_brackets(keys, targets, hints, np.flatnonzero(leftward),
                             bound, lo, hi, leftward=True)
    probes += _grow_brackets(keys, targets, hints, np.flatnonzero(~leftward),
                             bound, lo, hi, leftward=False)

    half = bound >> 1
    search_lo = np.where(leftward, np.maximum(lo, hints - bound), hints + half)
    search_hi = np.where(leftward, hints - half + 1,
                         np.minimum(hi, hints + bound + 1))
    pos, steps = lower_bound_many_counted(keys, targets, search_lo, search_hi)
    return pos, probes + steps


def exponential_search_many(keys: np.ndarray, targets: np.ndarray,
                            hints: np.ndarray, lo: int, hi: int,
                            counters: Counters | None = None) -> np.ndarray:
    """Vectorized :func:`exponential_search` over arrays of (target, hint).

    All lanes double their brackets in lock-step (one NumPy pass per
    doubling step over the still-growing lanes), then finish with one
    lock-step bounded binary search.  Positions and total counter charges
    are identical to a loop over the scalar routine.
    """
    pos, charge = exponential_search_many_counted(keys, targets, hints, lo, hi)
    if counters is not None:
        counters.comparisons += charge
        counters.probes += charge
    return pos


def binary_search_bounded(keys: np.ndarray, target: float, hint: int,
                          max_error_left: int, max_error_right: int,
                          lo: int, hi: int,
                          counters: Counters | None = None) -> int:
    """Binary search within stored error bounds around ``hint``.

    This is the search strategy of the Learned Index baseline (Kraska et
    al.): each model stores the largest observed under- and over-prediction,
    and lookup binary-searches ``[hint - max_error_left, hint +
    max_error_right]``.  Cost is ``O(log(bound width))`` regardless of the
    actual error, which is the weakness Figure 11 illustrates.
    """
    search_lo = max(lo, hint - max_error_left)
    search_hi = min(hi, hint + max_error_right + 1)
    pos = lower_bound(keys, target, search_lo, search_hi, counters)
    # Guard against stale bounds (possible between inserts and retrains in
    # the baseline): if the answer lands on the edge of the bounded window,
    # the true position may lie outside it, so widen the search.
    if pos == search_hi and search_hi < hi:
        pos = lower_bound(keys, target, search_hi, hi, counters)
    elif pos == search_lo and search_lo > lo:
        pos = lower_bound(keys, target, lo, search_lo + 1, counters)
    return pos
