"""RMI inner nodes and the static RMI (SRMI) builder.

The static RMI mirrors the Learned Index layout (Section 3.2): a two-level
hierarchy with one linear root model routing to a pre-determined number of
leaf data nodes.  The number of leaf models is fixed at initialization
(grid-searched per dataset in the paper's evaluation).

Routing is *model-based*: the root model maps a key to a child slot, with no
comparisons along the way.  Because the model is a monotone non-decreasing
linear function, each child covers a contiguous key range, which keeps range
scans correct via the leaf chain.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .config import AlexConfig, GAPPED_ARRAY
from .data_node import DataNode
from .gapped_array import GappedArrayNode
from .kernels import KernelBackend, get_kernels
from .linear_model import LinearModel
from .pma import PMANode
from .stats import Counters

#: Per-node bookkeeping overhead charged in the index-size accounting
#: (child count, key count, level — Section 5.1 counts "pointers and
#: metadata" on top of the model parameters).
NODE_METADATA_BYTES = 16
POINTER_BYTES = 8


def make_data_node(config: AlexConfig, counters: Counters,
                   policy=None) -> DataNode:
    """Instantiate an empty leaf of the configured layout.

    ``policy`` is the :class:`repro.core.policy.AdaptationPolicy` the leaf
    consults for expand/contract decisions (default: the shared heuristic).
    """
    if config.node_layout == GAPPED_ARRAY:
        return GappedArrayNode(config, counters, policy)
    return PMANode(config, counters, policy)


class InnerNode:
    """An internal RMI node: a linear model over a child-pointer array.

    Multiple consecutive slots may point to the same child (adaptive
    initialization merges small partitions, Section 3.4.1), so
    ``len(children)`` (the slot count) can exceed the number of distinct
    children.
    """

    def __init__(self, model: LinearModel, children: List[object],
                 counters: Counters,
                 kernels: Optional[KernelBackend] = None):
        self.model = model
        self.children = children
        self.counters = counters
        # Hot-loop implementation for batch routing (builders pass the
        # config-selected backend; default: the process-wide default).
        self.kernels = kernels or get_kernels()

    @property
    def num_slots(self) -> int:
        """Number of child-pointer slots (>= number of distinct children)."""
        return len(self.children)

    def route_slot(self, key: float) -> int:
        """Slot index the model assigns to ``key``."""
        self.counters.model_inferences += 1
        return self.model.predict_pos(key, self.num_slots)

    def child_for(self, key: float):
        """The child node responsible for ``key``."""
        child = self.children[self.route_slot(key)]
        self.counters.pointer_follows += 1
        return child

    def route_slots_many(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`route_slot` over a whole key array."""
        self.counters.model_inferences += len(keys)
        return self.kernels.predict_clamp(self.model.slope,
                                          self.model.intercept, keys,
                                          self.num_slots)

    def child_groups(self, keys: np.ndarray, lo: int, hi: int):
        """Yield ``(child, group_lo, group_hi)`` for the contiguous run of
        ``keys[lo:hi]`` each distinct child receives.

        ``keys`` must be sorted; because the model is monotone
        non-decreasing the slot assignments are sorted too, so the runs of
        equal slot values partition the batch, and consecutive runs whose
        slots point at the same child merge into one group.  The cost is
        ``O(#groups)`` python work regardless of the node's slot count.
        One pointer follow is charged per *group* — the batch engine's
        amortization of per-key child dereferences.
        """
        slots = self.route_slots_many(keys[lo:hi])
        changes = (np.flatnonzero(slots[1:] != slots[:-1]) + 1).tolist()
        starts = [0] + changes
        ends = changes + [hi - lo]
        slot_list = slots.tolist()
        children = self.children
        prev_child = None
        prev_lo = prev_hi = 0
        for glo, ghi in zip(starts, ends):
            child = children[slot_list[glo]]
            if child is prev_child:
                prev_hi = ghi + lo  # consecutive slots sharing one child merge
                continue
            if prev_child is not None:
                yield prev_child, prev_lo, prev_hi
            self.counters.pointer_follows += 1
            prev_child, prev_lo, prev_hi = child, glo + lo, ghi + lo
        if prev_child is not None:
            yield prev_child, prev_lo, prev_hi

    def route_many(self, keys: np.ndarray):
        """Batch routing: descend the subtree below this node for a whole
        sorted key array in one pass per level.

        Returns ``(leaves, boundaries)`` where ``leaves`` is the list of
        distinct leaves hit (in key order) and ``boundaries`` has length
        ``len(leaves) + 1`` such that ``keys[boundaries[i]:boundaries[i+1]]``
        belong to ``leaves[i]``.
        """
        groups = route_batch(self, np.asarray(keys, dtype=np.float64))
        leaves = [leaf for leaf, _, _, _ in groups]
        boundaries = np.array([lo for _, _, lo, _ in groups] + [len(keys)],
                              dtype=np.int64)
        return leaves, boundaries

    def replace_child(self, old, new) -> None:
        """Redirect every slot pointing at ``old`` to ``new`` (used by node
        splitting on inserts)."""
        for i, child in enumerate(self.children):
            if child is old:
                self.children[i] = new

    def distinct_children(self) -> list:
        """The distinct child nodes, in slot order."""
        seen: list = []
        for child in self.children:
            if not seen or seen[-1] is not child:
                seen.append(child)
        return seen

    def size_bytes(self) -> int:
        """Model + child-pointer array + metadata (Section 5.1)."""
        return (self.model.size_bytes()
                + self.num_slots * POINTER_BYTES
                + NODE_METADATA_BYTES)


def route_batch(node, keys: np.ndarray, parent: Optional[InnerNode] = None):
    """Descend from ``node`` for an entire sorted key array at once.

    Returns a list of ``(leaf, parent, lo, hi)`` tuples in key order: the
    keys ``keys[lo:hi]`` all route to ``leaf``, whose parent inner node is
    ``parent`` (``None`` when the leaf is the tree root).  The whole batch
    costs one vectorized model prediction per inner node visited instead of
    one scalar inference per key per level.
    """
    groups: list = []
    if len(keys) == 0:
        return groups
    if not isinstance(node, InnerNode):
        return [(node, parent, 0, len(keys))]
    # Iterative depth-first descent (explicit stack, reversed so groups
    # come out in key order): one vectorized model prediction per inner
    # node visited, no per-group python frames.
    append = groups.append
    stack = [(node, parent, 0, len(keys))]
    while stack:
        nd, par, lo, hi = stack.pop()
        if not isinstance(nd, InnerNode):
            append((nd, par, lo, hi))
            continue
        stack.extend([(child, nd, glo, ghi) for child, glo, ghi
                      in nd.child_groups(keys, lo, hi)][::-1])
    return groups


def link_leaves(leaves: List[DataNode]) -> None:
    """Wire the doubly-linked leaf chain in key order."""
    for left, right in zip(leaves, leaves[1:]):
        left.next_leaf = right
        right.prev_leaf = left
    if leaves:
        leaves[0].prev_leaf = None
        leaves[-1].next_leaf = None


def partition_by_model(keys: np.ndarray, model: LinearModel,
                       num_slots: int) -> np.ndarray:
    """Boundaries of the contiguous key runs each model slot receives.

    Returns an array ``bounds`` of length ``num_slots + 1`` such that slot
    ``s`` receives ``keys[bounds[s]:bounds[s+1]]``.  Relies on the model
    being monotone non-decreasing so slot assignments are sorted.
    """
    if len(keys) == 0:
        return np.zeros(num_slots + 1, dtype=np.int64)
    slots = model.predict_pos_vec(np.asarray(keys, dtype=np.float64), num_slots)
    bounds = np.searchsorted(slots, np.arange(num_slots + 1))
    return bounds.astype(np.int64)


def build_static_rmi(keys: np.ndarray, payloads: list, config: AlexConfig,
                     counters: Counters, policy=None):
    """Build a two-level static RMI over sorted ``keys``.

    Returns ``(root, leaves)`` where ``root`` is an :class:`InnerNode` with
    ``config.num_models`` slots, one distinct leaf per slot.
    """
    n = len(keys)
    num_models = config.num_models
    if n == 0:
        leaf = make_data_node(config, counters, policy)
        leaf.build(np.empty(0), [])
        return leaf, [leaf]
    keys = np.asarray(keys, dtype=np.float64)
    root_model = LinearModel.train_cdf(keys, num_models)
    counters.retrains += 1
    bounds = partition_by_model(keys, root_model, num_models)
    leaves: List[DataNode] = []
    children: List[object] = []
    for s in range(num_models):
        lo, hi = int(bounds[s]), int(bounds[s + 1])
        leaf = make_data_node(config, counters, policy)
        leaf.build(keys[lo:hi], payloads[lo:hi])
        leaves.append(leaf)
        children.append(leaf)
    link_leaves(leaves)
    root = InnerNode(root_model, children, counters,
                     kernels=get_kernels(config.kernel_backend))
    return root, leaves
