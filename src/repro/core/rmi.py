"""RMI inner nodes and the static RMI (SRMI) builder.

The static RMI mirrors the Learned Index layout (Section 3.2): a two-level
hierarchy with one linear root model routing to a pre-determined number of
leaf data nodes.  The number of leaf models is fixed at initialization
(grid-searched per dataset in the paper's evaluation).

Routing is *model-based*: the root model maps a key to a child slot, with no
comparisons along the way.  Because the model is a monotone non-decreasing
linear function, each child covers a contiguous key range, which keeps range
scans correct via the leaf chain.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .config import AlexConfig, GAPPED_ARRAY
from .data_node import DataNode
from .gapped_array import GappedArrayNode
from .linear_model import LinearModel
from .pma import PMANode
from .stats import Counters

#: Per-node bookkeeping overhead charged in the index-size accounting
#: (child count, key count, level — Section 5.1 counts "pointers and
#: metadata" on top of the model parameters).
NODE_METADATA_BYTES = 16
POINTER_BYTES = 8


def make_data_node(config: AlexConfig, counters: Counters) -> DataNode:
    """Instantiate an empty leaf of the configured layout."""
    if config.node_layout == GAPPED_ARRAY:
        return GappedArrayNode(config, counters)
    return PMANode(config, counters)


class InnerNode:
    """An internal RMI node: a linear model over a child-pointer array.

    Multiple consecutive slots may point to the same child (adaptive
    initialization merges small partitions, Section 3.4.1), so
    ``len(children)`` (the slot count) can exceed the number of distinct
    children.
    """

    def __init__(self, model: LinearModel, children: List[object],
                 counters: Counters):
        self.model = model
        self.children = children
        self.counters = counters

    @property
    def num_slots(self) -> int:
        """Number of child-pointer slots (>= number of distinct children)."""
        return len(self.children)

    def route_slot(self, key: float) -> int:
        """Slot index the model assigns to ``key``."""
        self.counters.model_inferences += 1
        return self.model.predict_pos(key, self.num_slots)

    def child_for(self, key: float):
        """The child node responsible for ``key``."""
        child = self.children[self.route_slot(key)]
        self.counters.pointer_follows += 1
        return child

    def replace_child(self, old, new) -> None:
        """Redirect every slot pointing at ``old`` to ``new`` (used by node
        splitting on inserts)."""
        for i, child in enumerate(self.children):
            if child is old:
                self.children[i] = new

    def distinct_children(self) -> list:
        """The distinct child nodes, in slot order."""
        seen: list = []
        for child in self.children:
            if not seen or seen[-1] is not child:
                seen.append(child)
        return seen

    def size_bytes(self) -> int:
        """Model + child-pointer array + metadata (Section 5.1)."""
        return (self.model.size_bytes()
                + self.num_slots * POINTER_BYTES
                + NODE_METADATA_BYTES)


def link_leaves(leaves: List[DataNode]) -> None:
    """Wire the doubly-linked leaf chain in key order."""
    for left, right in zip(leaves, leaves[1:]):
        left.next_leaf = right
        right.prev_leaf = left
    if leaves:
        leaves[0].prev_leaf = None
        leaves[-1].next_leaf = None


def partition_by_model(keys: np.ndarray, model: LinearModel,
                       num_slots: int) -> np.ndarray:
    """Boundaries of the contiguous key runs each model slot receives.

    Returns an array ``bounds`` of length ``num_slots + 1`` such that slot
    ``s`` receives ``keys[bounds[s]:bounds[s+1]]``.  Relies on the model
    being monotone non-decreasing so slot assignments are sorted.
    """
    if len(keys) == 0:
        return np.zeros(num_slots + 1, dtype=np.int64)
    slots = model.predict_pos_vec(np.asarray(keys, dtype=np.float64), num_slots)
    bounds = np.searchsorted(slots, np.arange(num_slots + 1))
    return bounds.astype(np.int64)


def build_static_rmi(keys: np.ndarray, payloads: list, config: AlexConfig,
                     counters: Counters):
    """Build a two-level static RMI over sorted ``keys``.

    Returns ``(root, leaves)`` where ``root`` is an :class:`InnerNode` with
    ``config.num_models`` slots, one distinct leaf per slot.
    """
    n = len(keys)
    num_models = config.num_models
    if n == 0:
        leaf = make_data_node(config, counters)
        leaf.build(np.empty(0), [])
        return leaf, [leaf]
    keys = np.asarray(keys, dtype=np.float64)
    root_model = LinearModel.train_cdf(keys, num_models)
    counters.retrains += 1
    bounds = partition_by_model(keys, root_model, num_models)
    leaves: List[DataNode] = []
    children: List[object] = []
    for s in range(num_models):
        lo, hi = int(bounds[s]), int(bounds[s + 1])
        leaf = make_data_node(config, counters)
        leaf.build(keys[lo:hi], payloads[lo:hi])
        leaves.append(leaf)
        children.append(leaf)
    link_leaves(leaves)
    root = InnerNode(root_model, children, counters)
    return root, leaves
