"""Shared-memory storage views: picklable, attachable leaf array snapshots.

ALEX keeps every leaf's keys and payloads in contiguous arrays, which map
naturally onto POSIX shared memory: a :class:`SharedArray` is a picklable
*handle* (segment name + shape + dtype) to a NumPy array living in a
:class:`multiprocessing.shared_memory.SharedMemory` segment, so a parent
process and a long-lived shard worker can exchange whole key batches and
leaf snapshots by sending only the handle over a pipe — the array bytes
are never copied through the pipe, and the receiver maps them zero-copy.

:class:`ShardStorageView` bundles one shard's ``(keys, payloads)`` into
such segments.  Keys are always a ``float64`` :class:`SharedArray`;
payloads take the cheapest faithful encoding:

* ``none``    — every payload is ``None`` (nothing is stored);
* ``numeric`` — a homogeneous int/float column, stored as a second array
  (zero-copy like the keys, round-tripping through ``tolist``);
* ``pickle``  — arbitrary objects, pickled into a byte segment (one copy,
  but still transported out-of-band of the pipe).

Lifecycle contract: the *creator* of a view owns the segments and must
``unlink`` them exactly once, after every attaching process is done
reading (the process backend acks each message before its creator
unlinks).  Attachers only ever ``close``.
"""

from __future__ import annotations

import pickle
from multiprocessing import shared_memory
from typing import List, Optional, Tuple

import numpy as np


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without claiming ownership.

    Python 3.13 grew ``track=False`` so attaching does not register the
    segment with the resource tracker at all.  On older versions the
    attach *does* register — but every attacher here is a spawn child of
    the segment creator, so both talk to the same tracker process and the
    re-registration is an idempotent set-add; the creator's single
    ``unlink`` keeps the bookkeeping exact.  (Do **not** unregister
    manually on attach: with a shared tracker that would erase the
    creator's registration and make its later unlink double-free.)
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        return shared_memory.SharedMemory(name=name)


def _unregister_segment(segment: shared_memory.SharedMemory) -> None:
    """Drop the creator's tracker registration after a cross-process
    unlink (3.13+ attachers are untracked, so their ``unlink`` does not
    unregister; without this the shared tracker would warn about — and
    try to re-unlink — an already-destroyed segment at exit)."""
    if getattr(segment, "_track", True):
        return  # a tracked handle's unlink() already unregistered
    try:
        from multiprocessing import resource_tracker
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass


class SharedArray:
    """A picklable handle to a NumPy array in a shared-memory segment.

    Only ``(name, shape, dtype)`` travel through pickle; the mapping is
    re-established lazily by :meth:`array` in whichever process unpickled
    the handle.
    """

    def __init__(self, name: str, shape: Tuple[int, ...], dtype: str):
        self.name = name
        self.shape = tuple(shape)
        self.dtype = dtype
        self._segment: Optional[shared_memory.SharedMemory] = None
        self._owner = False

    def __getstate__(self) -> dict:
        return {"name": self.name, "shape": self.shape, "dtype": self.dtype}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._segment = None
        self._owner = False

    @classmethod
    def create(cls, array: np.ndarray) -> "SharedArray":
        """Copy ``array`` into a fresh shared segment and return the
        owning handle (the creator must eventually :meth:`unlink`)."""
        array = np.ascontiguousarray(array)
        segment = shared_memory.SharedMemory(create=True,
                                             size=max(1, array.nbytes))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        handle = cls(segment.name, array.shape, array.dtype.str)
        handle._segment = segment
        handle._owner = True
        return handle

    def array(self) -> np.ndarray:
        """The shared array, mapped zero-copy (attaches on first use in a
        non-creator process).  The view is only valid until :meth:`close`."""
        if self._segment is None:
            self._segment = _attach_segment(self.name)
        return np.ndarray(self.shape, dtype=np.dtype(self.dtype),
                          buffer=self._segment.buf)

    def copy(self) -> np.ndarray:
        """An independent copy, safe to keep after the segment is gone."""
        return np.array(self.array(), copy=True)

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        if self._segment is not None:
            self._segment.close()
            self._segment = None

    def unlink(self) -> None:
        """Destroy the segment (creator-side, exactly once)."""
        segment = self._segment
        if segment is None:
            try:
                segment = _attach_segment(self.name)
            except FileNotFoundError:
                return
        try:
            segment.close()
            segment.unlink()
            _unregister_segment(segment)
        except FileNotFoundError:
            pass
        self._segment = None


#: Payload encodings a :class:`ShardStorageView` distinguishes.
PAYLOAD_NONE = "none"
PAYLOAD_NUMERIC = "numeric"
PAYLOAD_PICKLE = "pickle"


class ShardStorageView:
    """One shard's ``(keys, payloads)`` packed into shared memory.

    The picklable unit the process backend ships between parent and
    workers: provisioning a worker, snapshotting a shard for a split or
    merge, and re-provisioning after either all move whole shards through
    these views instead of the pipe.
    """

    def __init__(self, keys: SharedArray, payload_kind: str,
                 payload_data: Optional[SharedArray]):
        self.keys = keys
        self.payload_kind = payload_kind
        self.payload_data = payload_data

    @classmethod
    def pack(cls, keys: np.ndarray,
             payloads: Optional[list]) -> "ShardStorageView":
        """Copy one shard's contents into fresh shared segments."""
        keys_handle = SharedArray.create(
            np.asarray(keys, dtype=np.float64))
        if payloads is None or all(p is None for p in payloads):
            return cls(keys_handle, PAYLOAD_NONE, None)
        # Only a *homogeneous* int or float column takes the array path,
        # so every payload round-trips with its exact Python type.
        if {type(p) for p in payloads} in ({int}, {float}):
            try:
                column = np.asarray(payloads)
            except (ValueError, OverflowError):
                column = None  # e.g. ints beyond int64
            if (column is not None and column.ndim == 1
                    and column.dtype.kind in "if"):
                return cls(keys_handle, PAYLOAD_NUMERIC,
                           SharedArray.create(column))
        blob = np.frombuffer(pickle.dumps(payloads, protocol=-1),
                             dtype=np.uint8)
        return cls(keys_handle, PAYLOAD_PICKLE, SharedArray.create(blob))

    def keys_view(self) -> np.ndarray:
        """The key array, mapped zero-copy (valid until :meth:`close`)."""
        return self.keys.array()

    def unpack(self, copy: bool = True) -> Tuple[np.ndarray, Optional[list]]:
        """``(keys, payloads)`` reconstructed from the segments.

        With ``copy=True`` (the default) the keys are duplicated out of
        shared memory, so the result outlives the segments.
        """
        keys = self.keys.copy() if copy else self.keys_view()
        if self.payload_kind == PAYLOAD_NONE:
            payloads = None if len(keys) == 0 else [None] * len(keys)
            return keys, payloads
        if self.payload_kind == PAYLOAD_NUMERIC:
            return keys, self.payload_data.array().tolist()
        return keys, pickle.loads(self.payload_data.array().tobytes())

    def _handles(self) -> List[SharedArray]:
        handles = [self.keys]
        if self.payload_data is not None:
            handles.append(self.payload_data)
        return handles

    def close(self) -> None:
        """Drop this process's mappings."""
        for handle in self._handles():
            handle.close()

    def unlink(self) -> None:
        """Destroy the segments (creator-side, exactly once)."""
        for handle in self._handles():
            handle.unlink()
