"""Shared-memory storage views: picklable, attachable leaf array snapshots.

ALEX keeps every leaf's keys and payloads in contiguous arrays, which map
naturally onto POSIX shared memory: a :class:`SharedArray` is a picklable
*handle* (segment name + shape + dtype) to a NumPy array living in a
:class:`multiprocessing.shared_memory.SharedMemory` segment, so a parent
process and a long-lived shard worker can exchange whole key batches and
leaf snapshots by sending only the handle over a pipe — the array bytes
are never copied through the pipe, and the receiver maps them zero-copy.

:class:`ShardStorageView` bundles one shard's ``(keys, payloads)`` into
such segments.  Keys are always a ``float64`` :class:`SharedArray`;
payloads take the cheapest faithful encoding:

* ``none``    — every payload is ``None`` (nothing is stored);
* ``numeric`` — a homogeneous int/float column, stored as a second array
  (zero-copy like the keys, round-tripping through ``tolist``);
* ``pickle``  — arbitrary objects, pickled into a byte segment (one copy,
  but still transported out-of-band of the pipe).

:class:`ReplyRing` is the reverse direction: a long-lived
single-producer/single-consumer byte ring, one per shard worker, through
which *numeric replies* (hit masks, homogeneous payload columns) return
to the parent without ever being pickled or pushed through the pipe —
the pipe carries only a tiny ``(req_id, "shm", descriptor)`` frame.

Lifecycle contract: the *creator* of a view owns the segments and must
``unlink`` them exactly once, after every attaching process is done
reading (the process backend acks each message before its creator
unlinks).  Attachers only ever ``close``.
"""

from __future__ import annotations

import pickle
from multiprocessing import shared_memory
from typing import List, Optional, Tuple

import numpy as np


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without claiming ownership.

    Python 3.13 grew ``track=False`` so attaching does not register the
    segment with the resource tracker at all.  On older versions the
    attach *does* register — but every attacher here is a spawn child of
    the segment creator, so both talk to the same tracker process and the
    re-registration is an idempotent set-add; the creator's single
    ``unlink`` keeps the bookkeeping exact.  (Do **not** unregister
    manually on attach: with a shared tracker that would erase the
    creator's registration and make its later unlink double-free.)
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        return shared_memory.SharedMemory(name=name)


def _unregister_segment(segment: shared_memory.SharedMemory) -> None:
    """Drop the creator's tracker registration after a cross-process
    unlink (3.13+ attachers are untracked, so their ``unlink`` does not
    unregister; without this the shared tracker would warn about — and
    try to re-unlink — an already-destroyed segment at exit)."""
    if getattr(segment, "_track", True):
        return  # a tracked handle's unlink() already unregistered
    try:
        from multiprocessing import resource_tracker
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass


class SharedArray:
    """A picklable handle to a NumPy array in a shared-memory segment.

    Only ``(name, shape, dtype)`` travel through pickle; the mapping is
    re-established lazily by :meth:`array` in whichever process unpickled
    the handle.
    """

    def __init__(self, name: str, shape: Tuple[int, ...], dtype: str):
        self.name = name
        self.shape = tuple(shape)
        self.dtype = dtype
        self._segment: Optional[shared_memory.SharedMemory] = None
        self._owner = False

    def __getstate__(self) -> dict:
        return {"name": self.name, "shape": self.shape, "dtype": self.dtype}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._segment = None
        self._owner = False

    @classmethod
    def create(cls, array: np.ndarray) -> "SharedArray":
        """Copy ``array`` into a fresh shared segment and return the
        owning handle (the creator must eventually :meth:`unlink`)."""
        array = np.ascontiguousarray(array)
        segment = shared_memory.SharedMemory(create=True,
                                             size=max(1, array.nbytes))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        handle = cls(segment.name, array.shape, array.dtype.str)
        handle._segment = segment
        handle._owner = True
        return handle

    def array(self) -> np.ndarray:
        """The shared array, mapped zero-copy (attaches on first use in a
        non-creator process).  The view is only valid until :meth:`close`."""
        if self._segment is None:
            self._segment = _attach_segment(self.name)
        return np.ndarray(self.shape, dtype=np.dtype(self.dtype),
                          buffer=self._segment.buf)

    def copy(self) -> np.ndarray:
        """An independent copy, safe to keep after the segment is gone."""
        return np.array(self.array(), copy=True)

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        if self._segment is not None:
            self._segment.close()
            self._segment = None

    def unlink(self) -> None:
        """Destroy the segment (creator-side, exactly once)."""
        segment = self._segment
        if segment is None:
            try:
                segment = _attach_segment(self.name)
            except FileNotFoundError:
                return
        try:
            segment.close()
            segment.unlink()
            _unregister_segment(segment)
        except FileNotFoundError:
            pass
        self._segment = None


#: Payload encodings a :class:`ShardStorageView` distinguishes.
PAYLOAD_NONE = "none"
PAYLOAD_NUMERIC = "numeric"
PAYLOAD_PICKLE = "pickle"


#: Reply encodings a :class:`ReplyRing` lane can carry back to the
#: parent.  ``array`` round-trips a numeric/bool ndarray verbatim;
#: ``list`` restores a homogeneous int/float payload list via
#: ``tolist()`` (exact Python types, mirroring ``PAYLOAD_NUMERIC``).
REPLY_ARRAY = "array"
REPLY_LIST = "list"


def encode_reply(result):
    """``(column, kind)`` when ``result`` can travel through a reply
    ring, else ``None``.

    Eligible results are numeric/bool ndarrays (``contains_many`` hit
    masks, counts) and *homogeneous* int-or-float lists (``get_many`` /
    ``lookup_many`` payload columns) — the same strictness as
    :class:`ShardStorageView`'s numeric payload path, so every value
    round-trips with its exact Python type.  Everything else (mixed
    payloads, ``None`` defaults, arbitrary objects) stays on the pickle
    pipe.
    """
    if isinstance(result, np.ndarray):
        if result.ndim == 1 and result.dtype.kind in "biuf":
            return result, REPLY_ARRAY
        return None
    if (isinstance(result, list) and result
            and {type(p) for p in result} in ({int}, {float})):
        try:
            column = np.asarray(result)
        except (ValueError, OverflowError):
            return None
        if column.ndim == 1 and column.dtype.kind in "if":
            return column, REPLY_LIST
    return None


def decode_reply(column: np.ndarray, kind: str):
    """Reverse of :func:`encode_reply` (``column`` is already a copy)."""
    if kind == REPLY_LIST:
        return column.tolist()
    return column


class RingFull(Exception):
    """The ring lacks contiguous space for a reply (caller falls back to
    the pickle pipe — never an error surfaced to clients)."""


class ReplyRing:
    """A single-producer/single-consumer shared-memory reply ring.

    One per shard worker, created (and eventually unlinked) by the
    parent, attached by the worker.  The worker allocates a contiguous
    lane per numeric reply, copies the result column in, and sends only
    a small descriptor over the pipe; the parent's reply-reader thread —
    the *single* consumer — copies the lane out and releases it **in
    arrival order**, which matches allocation order because the worker
    executes requests serially.  Ordered release keeps the free-space
    arithmetic a pair of monotonically increasing cursors:

    * ``head`` — bytes ever allocated (written only by the worker);
    * ``tail`` — bytes ever released (written only by the reader).

    Both live at the front of the segment.  Cross-process visibility is
    sequenced by the pipe itself: the worker finishes writing the lane
    *before* sending the descriptor, and the reader releases *after*
    copying out, so neither side ever reads bytes the other is mid-write
    on.  A reply that does not fit contiguously (after wrap padding)
    raises :exc:`RingFull` and travels the pickle pipe instead.
    """

    _HEADER = 16  # two uint64 cursors: head, tail

    def __init__(self, name: str, capacity: int):
        self.name = name
        self.capacity = int(capacity)
        self._segment: Optional[shared_memory.SharedMemory] = None
        self._owner = False

    def __getstate__(self) -> dict:
        return {"name": self.name, "capacity": self.capacity}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._segment = None
        self._owner = False

    @classmethod
    def create(cls, capacity: int = 1 << 22) -> "ReplyRing":
        """A fresh ring of ``capacity`` data bytes (parent-side)."""
        capacity = int(capacity)
        segment = shared_memory.SharedMemory(create=True,
                                             size=cls._HEADER + capacity)
        segment.buf[:cls._HEADER] = b"\x00" * cls._HEADER
        ring = cls(segment.name, capacity)
        ring._segment = segment
        ring._owner = True
        return ring

    def _buf(self):
        if self._segment is None:
            self._segment = _attach_segment(self.name)
        return self._segment.buf

    def _cursors(self) -> np.ndarray:
        return np.ndarray(2, dtype=np.uint64, buffer=self._buf())

    # -- producer side (worker process) --------------------------------

    def try_write(self, column: np.ndarray) -> tuple:
        """Copy ``column`` into a fresh lane; returns the descriptor
        ``(offset, used, shape, dtype)`` to send over the pipe (``used``
        counts wrap padding, so the consumer releases exactly what was
        allocated).  Raises :exc:`RingFull` when it cannot fit."""
        column = np.ascontiguousarray(column)
        nbytes = column.nbytes
        cursors = self._cursors()
        head, tail = int(cursors[0]), int(cursors[1])
        pos = head % self.capacity
        pad = self.capacity - pos if pos + nbytes > self.capacity else 0
        used = pad + nbytes
        if nbytes > self.capacity or used > self.capacity - (head - tail):
            raise RingFull(f"{nbytes} bytes do not fit "
                           f"({self.capacity - (head - tail)} free)")
        offset = 0 if pad else pos
        start = self._HEADER + offset
        lane = np.ndarray(column.shape, dtype=column.dtype,
                          buffer=self._buf(), offset=start)
        lane[...] = column
        cursors[0] = head + used
        return offset, used, column.shape, column.dtype.str

    # -- consumer side (parent reply-reader thread) --------------------

    def read(self, descriptor: tuple) -> np.ndarray:
        """Copy one lane out and release it (reader thread only; calls
        must follow descriptor arrival order)."""
        offset, used, shape, dtype = descriptor
        lane = np.ndarray(shape, dtype=np.dtype(dtype), buffer=self._buf(),
                          offset=self._HEADER + offset)
        out = np.array(lane, copy=True)
        cursors = self._cursors()
        cursors[1] = int(cursors[1]) + used
        return out

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (the segment survives)."""
        if self._segment is not None:
            self._segment.close()
            self._segment = None

    def unlink(self) -> None:
        """Destroy the segment (creator-side, exactly once)."""
        segment = self._segment
        if segment is None:
            try:
                segment = _attach_segment(self.name)
            except FileNotFoundError:
                return
        try:
            segment.close()
            segment.unlink()
            _unregister_segment(segment)
        except FileNotFoundError:
            pass
        self._segment = None


class ShardStorageView:
    """One shard's ``(keys, payloads)`` packed into shared memory.

    The picklable unit the process backend ships between parent and
    workers: provisioning a worker, snapshotting a shard for a split or
    merge, and re-provisioning after either all move whole shards through
    these views instead of the pipe.
    """

    def __init__(self, keys: SharedArray, payload_kind: str,
                 payload_data: Optional[SharedArray]):
        self.keys = keys
        self.payload_kind = payload_kind
        self.payload_data = payload_data

    @classmethod
    def pack(cls, keys: np.ndarray,
             payloads: Optional[list]) -> "ShardStorageView":
        """Copy one shard's contents into fresh shared segments."""
        keys_handle = SharedArray.create(
            np.asarray(keys, dtype=np.float64))
        if payloads is None or all(p is None for p in payloads):
            return cls(keys_handle, PAYLOAD_NONE, None)
        # Only a *homogeneous* int or float column takes the array path,
        # so every payload round-trips with its exact Python type.
        if {type(p) for p in payloads} in ({int}, {float}):
            try:
                column = np.asarray(payloads)
            except (ValueError, OverflowError):
                column = None  # e.g. ints beyond int64
            if (column is not None and column.ndim == 1
                    and column.dtype.kind in "if"):
                return cls(keys_handle, PAYLOAD_NUMERIC,
                           SharedArray.create(column))
        blob = np.frombuffer(pickle.dumps(payloads, protocol=-1),
                             dtype=np.uint8)
        return cls(keys_handle, PAYLOAD_PICKLE, SharedArray.create(blob))

    def keys_view(self) -> np.ndarray:
        """The key array, mapped zero-copy (valid until :meth:`close`)."""
        return self.keys.array()

    def unpack(self, copy: bool = True) -> Tuple[np.ndarray, Optional[list]]:
        """``(keys, payloads)`` reconstructed from the segments.

        With ``copy=True`` (the default) the keys are duplicated out of
        shared memory, so the result outlives the segments.
        """
        keys = self.keys.copy() if copy else self.keys_view()
        if self.payload_kind == PAYLOAD_NONE:
            payloads = None if len(keys) == 0 else [None] * len(keys)
            return keys, payloads
        if self.payload_kind == PAYLOAD_NUMERIC:
            return keys, self.payload_data.array().tolist()
        return keys, pickle.loads(self.payload_data.array().tobytes())

    def _handles(self) -> List[SharedArray]:
        handles = [self.keys]
        if self.payload_data is not None:
            handles.append(self.payload_data)
        return handles

    def close(self) -> None:
        """Drop this process's mappings."""
        for handle in self._handles():
            handle.close()

    def unlink(self) -> None:
        """Destroy the segments (creator-side, exactly once)."""
        for handle in self._handles():
            handle.unlink()
