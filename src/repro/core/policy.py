"""The adaptation policy layer: every structural decision in one place.

ALEX's defining mechanism (paper Section 3.4) is that structural
modification operations — *expand in place*, *split sideways*, *split
down*, and the catastrophic *retrain* — are chosen by an expected-cost
model under the observed read/write mix, not by fixed thresholds.  This
module separates those **decision rules** from the **mutation mechanics**
(which live in :mod:`repro.core.data_node`, :mod:`repro.core.adaptive`,
and :mod:`repro.serve.sharded`), so every layer of the system consults the
same pluggable policy object:

* leaf-local: expand vs contract (``DataNode``);
* tree SMOs: split sideways / split down / retrain / merge underfull
  sibling leaves (``AlexIndex``), and the initial fanout of the adaptive
  RMI (``repro.core.adaptive``);
* serving tier: hot-shard split and cold-shard merge
  (``repro.serve.sharded.ShardedAlexIndex``).

Two implementations ship:

:class:`HeuristicPolicy`
    The compatibility default.  It reproduces the pre-policy behaviour
    decision-for-decision (density-threshold expands, the
    ``max_keys_per_node`` split check, median hot-shard splits, no merges),
    so existing configurations build bit-for-bit identical structures.

:class:`CostModelPolicy`
    Paper-faithful: maintains per-node EMA counters of lookups, inserts,
    shift distances, and search iterations (fed by
    :class:`PressureEvent` emissions from the mutation sites) and picks
    the SMO minimizing expected cost per future operation, priced with
    :class:`repro.analysis.cost_model.CostModel` latencies and the
    closed-form terms of :mod:`repro.analysis.expected_cost`.

Mutation sites **emit** :class:`PressureEvent`\\ s (``policy.record``) and
**ask** (``choose_insert_smo`` / ``choose_delete_smo`` / ...); they never
decide.  Policies **decide**; they never mutate.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro import obs

from .config import ADAPTIVE_RMI, AlexConfig

# ---------------------------------------------------------------------------
# SMO vocabulary (paper Section 3.4 names)
# ---------------------------------------------------------------------------

#: No structural change.
SMO_NONE = "none"
#: Grow the node's arrays in place and rebuild model-based (§3.3.1 / Alg. 3).
SMO_EXPAND = "expand"
#: Split a leaf into two leaves under the *same* parent, dividing the
#: parent's pointer slots between them (§3.4.2 "split sideways").
SMO_SPLIT_SIDEWAYS = "split_sideways"
#: Replace a leaf with a new inner node over ``split_fanout`` children,
#: deepening the tree locally (§3.4.2 "split down").
SMO_SPLIT_DOWN = "split_down"
#: Catastrophic retrain: rebuild the node model-based at the same capacity
#: because the model has drifted far from the data (§3.4.2).
SMO_RETRAIN = "retrain"
#: Fold an underfull leaf into an adjacent same-parent sibling (the inverse
#: of a split; the paper lists delete-side SMOs as future work in §7).
SMO_MERGE = "merge"

#: Event kinds carried by :class:`PressureEvent`.
EV_READ = "read"
EV_INSERT = "insert"
EV_DELETE = "delete"


@dataclass(frozen=True)
class PressureEvent:
    """One observation emitted by a mutation/read site about a node.

    ``count`` operations of kind ``kind`` hit the node, costing ``probes``
    search iterations (exponential/binary search steps plus comparisons)
    and ``shifts`` element moves in total.  Batch sites emit one event per
    touched node with ``count > 1`` instead of one event per key.

    ``searches`` is how many of those operations actually performed an
    in-node search whose cost is included in ``probes`` — the denominator
    of the per-op search-cost estimate.  Batch rebuilds place keys without
    searching; counting them as zero-probe searches would dilute the
    estimate (and freeze an artificially low drift baseline, triggering
    spurious retrains of healthy leaves).  Defaults to ``count`` for
    reads (searching is what a read is) and 0 for writes.
    """

    kind: str
    count: int = 1
    probes: int = 0
    shifts: int = 0
    searches: Optional[int] = None

    @property
    def searched(self) -> int:
        if self.searches is not None:
            return self.searches
        return self.count if self.kind == EV_READ else 0


@dataclass
class NodePressure:
    """Per-node EMA counters maintained by :class:`CostModelPolicy`.

    Tallies decay by halving whenever the op window exceeds
    ``WINDOW`` operations, so they track the *recent* read/write mix and
    per-op costs (an exponential moving window) rather than all-time
    totals.

    Accuracy contract (mirroring :class:`repro.core.stats.Counters` in
    the sharded service): tallies are exact for single-client usage and
    for writes (exclusive shard locks).  Concurrent *readers* sharing a
    shard lock update these floats unsynchronized, so read tallies may
    skew under multi-client read contention — they are a measurement
    instrument steering heuristic decisions, not correctness state, and a
    mutex here would sit on the engine's hottest path.
    """

    WINDOW = 1024
    #: Searched operations observed before the post-build search cost
    #: freezes into ``baseline`` (the node's own fresh-model reference
    #: for drift).
    BASELINE_OPS = 16

    reads: float = 0.0
    inserts: float = 0.0
    deletes: float = 0.0
    probes: float = 0.0
    shifts: float = 0.0
    #: Operations that actually searched the node (the denominator of
    #: ``probes_per_op`` — batch rebuilds place keys without searching
    #: and must not dilute the estimate).
    searches: float = 0.0
    #: Search iterations per op measured right after the last (re)build —
    #: the drift detector compares against this, not a closed-form guess,
    #: because real fresh-build error depends on the data's local shape.
    baseline: float = 0.0

    def observe(self, event: PressureEvent) -> None:
        if event.kind == EV_READ:
            self.reads += event.count
        elif event.kind == EV_INSERT:
            self.inserts += event.count
        else:
            self.deletes += event.count
        self.probes += event.probes
        self.shifts += event.shifts
        self.searches += event.searched
        if self.baseline == 0.0 and self.searches >= self.BASELINE_OPS:
            self.baseline = max(self.probes_per_op, 1.0)
        if self.ops > self.WINDOW:
            self.decay()

    def decay(self, factor: float = 0.5) -> None:
        """Scale every tally (the EMA half-step)."""
        self.reads *= factor
        self.inserts *= factor
        self.deletes *= factor
        self.probes *= factor
        self.shifts *= factor
        self.searches *= factor

    @property
    def ops(self) -> float:
        return self.reads + self.inserts + self.deletes

    @property
    def write_fraction(self) -> float:
        """Fraction of recent operations that were inserts/deletes
        (0.5 prior when the node has no history yet)."""
        ops = self.ops
        if ops <= 0:
            return 0.5
        return (self.inserts + self.deletes) / ops

    @property
    def probes_per_op(self) -> float:
        """Observed search iterations per *searched* operation."""
        return self.probes / self.searches if self.searches > 0 else 0.0

    @property
    def shifts_per_insert(self) -> float:
        """Observed shift distance per insert."""
        return self.shifts / self.inserts if self.inserts > 0 else 0.0


@dataclass(frozen=True)
class PolicyDecision:
    """One logged decision, for ``python -m repro adapt`` and debugging."""

    site: str  # "leaf" | "shard" | "fanout"
    action: str
    size: int
    reason: str


@dataclass(frozen=True)
class ShardSummary:
    """The serving tier's per-shard observation handed to the policy."""

    accesses: int
    num_keys: int


@dataclass(frozen=True)
class ShardDecision:
    """A serving-tier SMO: ``("split", s)`` cuts shard ``s`` at its median;
    ``("merge", s)`` folds shards ``s`` and ``s + 1`` into one."""

    action: str  # "split" | "merge"
    shard: int


class AdaptationPolicy:
    """Interface every structural decision routes through.

    Subclasses decide; callers mutate.  ``tracks_pressure`` lets hot paths
    skip the counter snapshots that feed :meth:`record` when the policy
    ignores them (the heuristic default).
    """

    #: Whether mutation sites should pay for :class:`PressureEvent`
    #: bookkeeping (counter snapshots around searches/inserts).
    tracks_pressure = False

    #: Maximum retained :class:`PolicyDecision` entries.
    LOG_LIMIT = 512

    def __init__(self) -> None:
        self.decisions: deque = deque(maxlen=self.LOG_LIMIT)
        self.smo_counts: dict = {}
        # Structural events are rare (one per SMO), so guarding the
        # bookkeeping is cheap — one policy object serves every shard of
        # a sharded service, and two shards' writers may apply SMOs
        # concurrently under different shard locks.
        self._bookkeeping = threading.Lock()

    def __getstate__(self) -> dict:
        # Policies travel to shard worker processes (the sharded
        # service's process backend) carrying their configuration; only
        # the bookkeeping lock is process-local.
        state = self.__dict__.copy()
        state.pop("_bookkeeping", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._bookkeeping = threading.Lock()

    # -- observation ----------------------------------------------------

    def record(self, node, event: PressureEvent) -> None:
        """Ingest one pressure observation about ``node`` (no-op unless the
        policy tracks pressure)."""

    def note_smo(self, node, action: str) -> None:
        """Called after an SMO was applied to ``node`` so the policy can
        reset that node's drift state."""

    def note_applied(self, action: str) -> None:
        """Tally one *applied* SMO.  Callers invoke this after the
        mutation succeeded (a chosen merge can find no qualifying
        sibling, a chosen sideways split can fall back to a split down),
        so ``smo_counts`` matches the structural events that actually
        happened — unlike the decision log, which records intents with
        their reasoning."""
        with self._bookkeeping:
            self.smo_counts[action] = self.smo_counts.get(action, 0) + 1
        obs.inc("policy.applied." + action)
        obs.emit("policy.applied", action=action)

    def _log(self, site: str, action: str, size: int, reason: str) -> None:
        with self._bookkeeping:
            self.decisions.append(PolicyDecision(site, action, size, reason))
        obs.emit("policy.decision", site=site, action=action, size=size,
                 reason=reason)

    # -- leaf-local decisions -------------------------------------------

    def should_expand(self, leaf) -> bool:
        """Whether ``leaf`` must grow before absorbing one more insert
        (the mechanical floor: the gapped array needs a free slot)."""
        raise NotImplementedError

    def should_contract(self, leaf) -> bool:
        """Whether ``leaf`` should shrink its arrays after a delete."""
        raise NotImplementedError

    # -- tree SMO decisions ---------------------------------------------

    def choose_insert_smo(self, leaf, parent, index) -> str:
        """SMO to apply to ``leaf`` *before* inserting one more key."""
        raise NotImplementedError

    def choose_delete_smo(self, leaf, parent, index) -> str:
        """SMO to apply to ``leaf`` *after* a delete (``SMO_MERGE`` folds
        it into a same-parent sibling; ``SMO_NONE`` leaves it)."""
        raise NotImplementedError

    def should_split_oversized(self, leaf, index) -> bool:
        """Whether a leaf rebuilt past the node-size bound by a batch
        insert should be driven through the split worklist."""
        raise NotImplementedError

    def initial_fanout(self, n: int, depth: int, config: AlexConfig) -> int:
        """Partitions an adaptive-RMI inner node creates over ``n`` keys at
        ``depth`` during initialization (Algorithm 4's fanout choice)."""
        raise NotImplementedError

    def max_merged_keys(self, config: AlexConfig) -> int:
        """Largest leaf a merge may produce.  The default allows merging
        right up to the node-size bound; policies that also split should
        leave headroom below the split trigger (hysteresis), or a merged
        leaf sits one insert burst away from being split again."""
        return config.max_keys_per_node

    # -- serving-tier decisions -----------------------------------------

    def choose_shard_smo(self, summaries: List[ShardSummary],
                         hot_access_fraction: float,
                         min_accesses: int) -> Optional[ShardDecision]:
        """Serving-tier SMO given per-shard access tallies, or ``None``."""
        raise NotImplementedError

    # -- shared helpers --------------------------------------------------

    @staticmethod
    def _split_allowed(index) -> bool:
        """The pre-policy gate: adaptive RMI with splitting enabled (or a
        cold start, which must be able to grow by splitting)."""
        config = index.config
        return (config.rmi_mode == ADAPTIVE_RMI
                and (config.split_on_inserts or index._cold_start))


class HeuristicPolicy(AdaptationPolicy):
    """The pre-policy behaviour, extracted verbatim (the default).

    Every decision matches the scattered heuristics this layer replaced,
    so indexes built under this policy are bit-for-bit identical to the
    seed implementation: density-threshold expands (§3.3.1), contraction
    at half the build density (§3.2), split-down at ``max_keys_per_node``
    when splitting is on (§3.4.2), Algorithm 4's fanout, median hot-shard
    splits — and never a merge of any kind.
    """

    def should_expand(self, leaf) -> bool:
        return leaf.num_keys + 1 > leaf.density_bound() * leaf.capacity

    def should_contract(self, leaf) -> bool:
        if leaf.capacity <= leaf.MIN_CAPACITY:
            return False
        return (leaf.num_keys
                < leaf.capacity * leaf.config.density_at_build / 2)

    def choose_insert_smo(self, leaf, parent, index) -> str:
        if (self._split_allowed(index)
                and leaf.num_keys + 1 > index.config.max_keys_per_node):
            self._log("leaf", SMO_SPLIT_DOWN, leaf.num_keys,
                      f"num_keys+1 > {index.config.max_keys_per_node}")
            return SMO_SPLIT_DOWN
        return SMO_NONE

    def choose_delete_smo(self, leaf, parent, index) -> str:
        return SMO_NONE

    def should_split_oversized(self, leaf, index) -> bool:
        return (self._split_allowed(index)
                and leaf.num_keys > index.config.max_keys_per_node)

    def initial_fanout(self, n: int, depth: int, config: AlexConfig) -> int:
        if depth == 0:
            return max(2, -(-n // config.max_keys_per_node))
        return config.inner_partitions

    def choose_shard_smo(self, summaries: List[ShardSummary],
                         hot_access_fraction: float,
                         min_accesses: int) -> Optional[ShardDecision]:
        total = sum(s.accesses for s in summaries)
        if total < min_accesses:
            return None
        hot = max(range(len(summaries)), key=lambda s: summaries[s].accesses)
        if summaries[hot].accesses / total < hot_access_fraction:
            return None
        self._log("shard", "split", summaries[hot].num_keys,
                  f"shard {hot} absorbs "
                  f"{summaries[hot].accesses / total:.0%} of accesses")
        return ShardDecision("split", hot)


class CostModelPolicy(HeuristicPolicy):
    """Expected-cost-minimizing adaptation (paper Section 3.4).

    Per-node :class:`NodePressure` EMAs estimate each node's read/write
    mix, search iterations per op, and shift distance per insert.  When a
    leaf comes under pressure (its density bound or the node-size bound
    would be crossed by one more insert) the policy prices the candidate
    SMOs per future operation on that node:

    ``expand``
        intra-node cost at the grown size — search iterations reset to
        the fresh-build expectation (Algorithm 3 rebuilds model-based),
        shift pressure halves (twice the gaps) — plus the amortized
        rebuild.

    ``split sideways``
        intra-node cost of a half-sized leaf; feasible only when the
        parent gives the leaf at least two pointer slots to divide.

    ``split down``
        intra-node cost of a ``1/split_fanout``-sized leaf **plus** one
        extra pointer follow and model inference on every future access
        (the TraverseToLeaf term the new level adds).

    ``retrain``
        chosen outside the density trigger when observed search
        iterations drift to ``drift_factor`` times the fresh-build
        expectation: a catastrophic rebuild at unchanged capacity.

    Note: this policy deliberately ignores ``config.split_on_inserts``
    (and the cold-start gate).  That flag is the *heuristic's* knob — the
    paper's "adaptive RMI does not do node splitting on inserts" default
    describes the fixed-threshold baseline, and
    :class:`HeuristicPolicy` honors it exactly.  The cost model's whole
    purpose is to replace fixed gates with priced decisions, so under an
    adaptive RMI it may split (sideways or down) whenever splitting wins
    the cost comparison; to reproduce the paper's no-split baseline, use
    the heuristic policy.

    Delete-side, a leaf whose occupancy falls below
    ``merge_occupancy * max_keys_per_node`` is folded into a same-parent
    sibling when the combined node saves more intra-node cost than the
    merge costs.  The serving tier splits hot shards exactly like the
    heuristic but additionally merges the coldest adjacent shard pair
    when its combined share of traffic falls below ``cold_factor`` of a
    fair ``1/num_shards`` share.
    """

    tracks_pressure = True

    def __init__(self, cost_model=None, drift_factor: float = 2.0,
                 merge_occupancy: float = 0.5,
                 cold_factor: float = 0.5,
                 min_node_ops: int = 32,
                 slot_reserve: int = 2,
                 merge_headroom: float = 0.75) -> None:
        super().__init__()
        if cost_model is None:
            # Imported lazily: repro.analysis packages import repro.core at
            # module load, so a top-level import here would be circular.
            from repro.analysis.cost_model import DEFAULT_COST_MODEL
            cost_model = DEFAULT_COST_MODEL
        self.cost_model = cost_model
        self.drift_factor = drift_factor
        self.merge_occupancy = merge_occupancy
        self.cold_factor = cold_factor
        self.min_node_ops = min_node_ops
        self.slot_reserve = slot_reserve
        self.merge_headroom = merge_headroom

    # -- observation ----------------------------------------------------

    def record(self, node, event: PressureEvent) -> None:
        pressure = node.pressure
        if pressure is None:
            pressure = node.pressure = NodePressure()
        pressure.observe(event)

    def note_smo(self, node, action: str) -> None:
        # A rebuild invalidates everything the old layout's window
        # described — per-op costs, the fresh-model baseline, and the op
        # mix (callers re-record any surviving observations afterwards);
        # record() lazily recreates an all-zero window on the next event
        # and the baseline is re-learned from the next few operations.
        node.pressure = None

    # -- cost terms ------------------------------------------------------

    @staticmethod
    def _expected_probes(n: int) -> float:
        from repro.analysis.expected_cost import expected_search_probes
        return expected_search_probes(n)

    def _intra_node_nanos(self, n: int, write_fraction: float,
                          shifts_per_insert: float,
                          probes_per_op: Optional[float] = None) -> float:
        """Expected simulated ns of one operation *inside* a leaf of ``n``
        keys: model inference + search probes, plus the shift term on the
        write fraction (the intra-node half of the paper's expected cost;
        TraverseToLeaf is added by the caller where levels change)."""
        cm = self.cost_model
        probes = (self._expected_probes(n) if probes_per_op is None
                  else probes_per_op)
        nanos = cm.model_inference_ns + cm.probe_ns * probes
        nanos += write_fraction * cm.shift_ns * shifts_per_insert
        return nanos

    def _amortized_rebuild_nanos(self, n: int, event_ns: float) -> float:
        """Per-operation share of a rebuild over ``n`` keys, amortized over
        roughly one node-size worth of future operations (the slack a
        model-based build at density ``d**2`` opens up)."""
        cm = self.cost_model
        total = event_ns + cm.build_move_ns * n + cm.retrain_ns
        return total / max(n, 1)

    # -- leaf-local decisions -------------------------------------------
    #
    # should_expand / should_contract are inherited from HeuristicPolicy:
    # the density bound is a mechanical floor (past it the array may have
    # no gap left for the next insert), not a tunable — the *policy* part,
    # preferring a split over growing, runs at the index level in
    # choose_insert_smo before the node-local insert executes.

    # -- tree SMO decisions ---------------------------------------------

    def choose_insert_smo(self, leaf, parent, index) -> str:
        config = index.config
        n = leaf.num_keys
        pressure = leaf.pressure
        # Catastrophic drift (§3.4.2): observed search iterations far above
        # the node's own fresh-model baseline — retrain regardless of
        # density.
        if (pressure is not None and pressure.baseline > 0.0
                and pressure.searches >= self.min_node_ops
                and n >= config.min_keys_for_model):
            threshold = self.drift_factor * max(pressure.baseline, 2.0)
            if pressure.probes_per_op > threshold:
                self._log("leaf", SMO_RETRAIN, n,
                          f"probes/op {pressure.probes_per_op:.1f} > "
                          f"{self.drift_factor:.0f}x baseline "
                          f"{pressure.baseline:.1f}")
                return SMO_RETRAIN
        at_density = n + 1 > leaf.density_bound() * leaf.capacity
        oversized = n + 1 > config.max_keys_per_node
        if not (at_density or oversized):
            return SMO_NONE
        splittable = (config.rmi_mode == ADAPTIVE_RMI
                      and n >= 2 * config.min_keys_for_model)
        if not splittable:
            return SMO_NONE  # the node-local expand floor handles density

        write_frac = pressure.write_fraction if pressure is not None else 0.5
        shifts = pressure.shifts_per_insert if pressure is not None else 0.0
        cm = self.cost_model
        candidates: List[Tuple[float, str]] = []
        if at_density:
            # Expand in place: same key count, fresh model, halved shift
            # pressure (the rebuild doubles the gap budget).
            candidates.append((
                self._intra_node_nanos(n, write_frac, shifts / 2.0)
                + self._amortized_rebuild_nanos(n, cm.expansion_ns),
                SMO_EXPAND))
        else:
            # Merely oversized: the no-op candidate keeps the leaf as is.
            # It must be priced — otherwise "oversized" would force a
            # mutation on every insert.  All candidates use the same
            # closed-form probe estimate (observed drift is the retrain
            # trigger's job); pricing "stay" with observed costs but the
            # SMOs with fresh-build optimism would bias toward mutating.
            candidates.append((
                self._intra_node_nanos(n, write_frac, shifts),
                SMO_NONE))
        if parent is not None and self._sideways_slots(leaf, parent):
            candidates.append((
                self._intra_node_nanos(n // 2, write_frac, shifts / 2.0)
                + self._amortized_rebuild_nanos(n, cm.split_ns),
                SMO_SPLIT_SIDEWAYS))
        candidates.append((
            self._intra_node_nanos(n // config.split_fanout, write_frac,
                                   shifts / config.split_fanout)
            + cm.pointer_follow_ns + cm.model_inference_ns
            + self._amortized_rebuild_nanos(n, cm.split_ns),
            SMO_SPLIT_DOWN))
        cost, action = min(candidates)
        if action != SMO_NONE:
            self._log("leaf", action, n,
                      f"min expected cost {cost:.1f}ns/op at write mix "
                      f"{write_frac:.0%} ({len(candidates)} candidates)")
        return action

    @staticmethod
    def _sideways_slots(leaf, parent) -> bool:
        """A sideways split needs at least two parent slots to divide."""
        count = 0
        for child in parent.children:
            if child is leaf:
                count += 1
                if count >= 2:
                    return True
        return False

    def choose_delete_smo(self, leaf, parent, index) -> str:
        config = index.config
        if parent is None or config.rmi_mode != ADAPTIVE_RMI:
            return SMO_NONE
        floor = self.merge_occupancy * config.max_keys_per_node
        if leaf.num_keys >= floor:
            return SMO_NONE
        self._log("leaf", SMO_MERGE, leaf.num_keys,
                  f"occupancy {leaf.num_keys} below floor {floor:.0f}")
        return SMO_MERGE

    def max_merged_keys(self, config: AlexConfig) -> int:
        """Hysteresis between the merge and split SMOs: a merge may fill a
        leaf only to ``merge_headroom`` of the node-size bound, so the
        merged node sits a whole insert burst — not one insert — away
        from being split again.  Without the gap, a mixed insert/delete
        workload at the boundary would thrash (merge, re-split, merge)
        with an O(n) rebuild each time."""
        return int(self.merge_headroom * config.max_keys_per_node)

    def should_split_oversized(self, leaf, index) -> bool:
        # Batch rebuilds can overshoot the bound by whole batches; restore
        # it whenever the tree may adapt (the worklist itself is
        # mechanics, repro.core.adaptive.split_until_fits).
        return (index.config.rmi_mode == ADAPTIVE_RMI
                and leaf.num_keys > index.config.max_keys_per_node)

    def initial_fanout(self, n: int, depth: int, config: AlexConfig) -> int:
        if depth > 0:
            return config.inner_partitions
        # Leaf *size* is governed by Algorithm 4's accumulate-then-drop
        # merging, which packs partitions up to max_keys_per_node no
        # matter how fine the root model partitions; what the fanout
        # choice really controls is slot *granularity*.  slot_reserve
        # multiplies the partition count so each packed leaf ends up
        # holding several parent pointer slots — the granularity a future
        # *sideways* split needs (a leaf with one slot can only split
        # down, paying cost_model.pointer_follow_ns on every later access
        # to the range).  The price is a few pointer bytes per leaf; the
        # payoff is level-free splits wherever insert pressure lands.
        reserve = max(1, self.slot_reserve)
        fanout = max(2, -(-n // config.max_keys_per_node)) * reserve
        self._log("fanout", "initial_fanout", fanout,
                  f"x{reserve} slot reserve over "
                  f"{config.max_keys_per_node}-key leaves, keeping "
                  f"sideways splits (no "
                  f"{self.cost_model.pointer_follow_ns:.0f}ns level cost) "
                  f"feasible")
        self.note_applied("initial_fanout")
        return fanout

    # -- serving-tier decisions -----------------------------------------

    def choose_shard_smo(self, summaries: List[ShardSummary],
                         hot_access_fraction: float,
                         min_accesses: int) -> Optional[ShardDecision]:
        split = super().choose_shard_smo(summaries, hot_access_fraction,
                                         min_accesses)
        if split is not None:
            return split
        total = sum(s.accesses for s in summaries)
        if total < min_accesses or len(summaries) < 2:
            return None
        # Cold-shard merge: the adjacent pair with the least combined
        # traffic merges when it earns under cold_factor of one fair
        # 1/num_shards share — undoing splits the hotspot has moved past.
        pair = min(range(len(summaries) - 1),
                   key=lambda s: (summaries[s].accesses
                                  + summaries[s + 1].accesses))
        pair_accesses = (summaries[pair].accesses
                         + summaries[pair + 1].accesses)
        fair = total / len(summaries)
        if pair_accesses < self.cold_factor * fair:
            self._log("shard", "merge",
                      summaries[pair].num_keys
                      + summaries[pair + 1].num_keys,
                      f"shards {pair},{pair + 1} earn "
                      f"{pair_accesses / total:.1%} of accesses "
                      f"(fair share {fair / total:.1%})")
            return ShardDecision("merge", pair)
        return None


#: Shared stateless-by-construction default used by nodes created without
#: an explicit policy (persistence loads, direct node construction in
#: tests).  Heuristic decisions depend only on node + config state, so
#: sharing one instance is safe; its decision log is best-effort.
DEFAULT_POLICY = HeuristicPolicy()

__all__ = [
    "AdaptationPolicy",
    "CostModelPolicy",
    "DEFAULT_POLICY",
    "EV_DELETE",
    "EV_INSERT",
    "EV_READ",
    "HeuristicPolicy",
    "NodePressure",
    "PolicyDecision",
    "PressureEvent",
    "ShardDecision",
    "ShardSummary",
    "SMO_EXPAND",
    "SMO_MERGE",
    "SMO_NONE",
    "SMO_RETRAIN",
    "SMO_SPLIT_DOWN",
    "SMO_SPLIT_SIDEWAYS",
]
