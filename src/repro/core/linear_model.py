"""Linear regression models used at every level of the RMI.

The paper uses plain linear regression (``y = a * x + b``) for the root, the
inner nodes, and the leaf nodes, because a linear model needs only two
parameters (16 bytes) and one multiply + one add per inference, and because
retraining it is cheap enough to do on every node expansion (Section 3.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class LinearModel:
    """A one-dimensional linear regression model ``y = slope * x + intercept``.

    The model maps a key to a (fractional) position.  Callers round/clamp the
    prediction into their array bounds via :meth:`predict_pos`.
    """

    slope: float = 0.0
    intercept: float = 0.0

    def predict(self, key: float) -> float:
        """Return the raw (unrounded, unclamped) predicted position."""
        return self.slope * key + self.intercept

    def predict_pos(self, key: float, size: int) -> int:
        """Return the predicted position rounded down and clamped to
        ``[0, size - 1]``.  Non-finite predictions (infinite keys, NaN)
        clamp to the nearest edge."""
        pos = self.slope * key + self.intercept
        if not (pos > 0):  # catches NaN and -inf too
            return 0
        if pos >= size:
            return size - 1
        return int(pos)

    def predict_pos_vec(self, keys: np.ndarray, size: int) -> np.ndarray:
        """Vectorized :meth:`predict_pos` for bulk operations."""
        pos = self.slope * keys + self.intercept
        pos = np.clip(pos, 0, size - 1)       # clamp before the int cast so
        pos = np.nan_to_num(pos, nan=0.0)     # non-finite values stay legal
        return pos.astype(np.int64)

    def scale(self, factor: float) -> None:
        """Rescale the output range by ``factor`` in place.

        Used by Algorithm 3: after a node expansion the model trained to
        predict positions in ``[0, num_keys)`` is multiplied by
        ``expanded_size / num_keys`` so that it predicts into the expanded
        array.
        """
        self.slope *= factor
        self.intercept *= factor

    def copy(self) -> "LinearModel":
        """Return an independent copy of this model."""
        return LinearModel(self.slope, self.intercept)

    @classmethod
    def train(cls, keys: np.ndarray, positions: np.ndarray) -> "LinearModel":
        """Fit ``positions ≈ slope * keys + intercept`` by least squares.

        Degenerate inputs (fewer than two keys, or all keys equal) produce a
        flat model that predicts the mean position, which downstream code
        treats as "model is uninformative" and compensates for with search.
        """
        n = len(keys)
        if n == 0:
            return cls(0.0, 0.0)
        if n == 1:
            return cls(0.0, float(positions[0]))
        keys = np.asarray(keys, dtype=np.float64)
        positions = np.asarray(positions, dtype=np.float64)
        key_mean = float(keys.mean())
        pos_mean = float(positions.mean())
        centered = keys - key_mean
        denom = float(np.dot(centered, centered))
        if denom == 0.0:
            return cls(0.0, pos_mean)
        slope = float(np.dot(centered, positions - pos_mean)) / denom
        intercept = pos_mean - slope * key_mean
        return cls(slope, intercept)

    @classmethod
    def train_cdf(cls, keys: np.ndarray, n_positions: int) -> "LinearModel":
        """Fit a model mapping sorted ``keys`` onto ``[0, n_positions)``.

        This is the standard "learn the CDF" construction: key ``keys[i]``
        is regressed against the scaled rank ``i * n_positions / len(keys)``.
        """
        n = len(keys)
        if n == 0:
            return cls(0.0, 0.0)
        ranks = np.arange(n, dtype=np.float64) * (n_positions / n)
        return cls.train(np.asarray(keys, dtype=np.float64), ranks)

    @classmethod
    def train_endpoints(cls, lo_key: float, hi_key: float, n_positions: int) -> "LinearModel":
        """Fit a model that maps ``[lo_key, hi_key]`` linearly onto
        ``[0, n_positions)`` (pure interpolation, used for key-space
        partitioning at inner nodes)."""
        if hi_key <= lo_key:
            return cls(0.0, 0.0)
        slope = n_positions / (hi_key - lo_key)
        return cls(slope, -slope * lo_key)

    SIZE_BYTES = 16  # two float64 parameters, per Section 5.1

    def size_bytes(self) -> int:
        """Storage footprint of the model parameters (paper Section 5.1)."""
        return self.SIZE_BYTES
