"""Exceptions shared by every index implementation in this repository."""

from __future__ import annotations


class IndexError_(Exception):
    """Base class for index errors (named with a trailing underscore to
    avoid shadowing the built-in :class:`IndexError`)."""


class DuplicateKeyError(IndexError_):
    """Raised when inserting a key that is already present.

    The paper's datasets contain no duplicate values and Section 7 lists
    duplicate-key support as an open limitation, so all indexes here treat
    duplicates as errors rather than silently overwriting.
    """

    def __init__(self, key: float):
        super().__init__(f"key {key!r} is already present")
        self.key = key

    def __reduce__(self):
        # Rebuild from the key, not the formatted message, so the error
        # survives a pickle round-trip (worker process -> parent) with
        # ``.key`` intact.
        return (type(self), (self.key,))


class KeyNotFoundError(IndexError_):
    """Raised when an operation requires a key that is not in the index."""

    def __init__(self, key: float):
        super().__init__(f"key {key!r} not found")
        self.key = key

    def __reduce__(self):
        return (type(self), (self.key,))


class PersistenceError(IndexError_):
    """Raised when an on-disk index or durability artifact cannot be
    loaded: not one of our files, an unsupported format version, or a
    corrupt/incomplete structure.  Replaces the cryptic ``KeyError`` /
    ``ValueError`` a foreign or stale ``.npz`` would otherwise surface."""


class WALCorruptionError(PersistenceError):
    """Raised when a write-ahead-log segment is corrupt *before* its final
    frame — a torn tail (the expected signature of a crash mid-append) is
    tolerated and truncated, but damage in the middle of the log means
    acknowledged history is gone and recovery must not silently skip it."""


class ReplicationError(IndexError_):
    """Base class for replication errors.  Lives in ``core.errors`` (like
    :class:`WALCorruptionError`) so both ``repro.replication`` and
    ``repro.serve`` can raise/catch them without importing each other."""


class ReplicaStaleError(ReplicationError):
    """A replica cannot serve a read within the caller's consistency
    bounds: its applied LSN is behind the read's ``min_lsn`` (a
    read-your-writes token) or its staleness exceeds ``max_staleness_s``.
    The router treats this as "fall back to the primary", never as a
    failure surfaced to the client."""


class ReplicaUnavailableError(ReplicationError):
    """No replica can serve the request at all — none attached for the
    shard, the replica worker died, or it was stopped/promoted.  Like
    :class:`ReplicaStaleError` this routes the read to the primary."""
