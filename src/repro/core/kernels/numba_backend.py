"""Numba kernel backend: the per-lane hot loops under ``@njit``.

Identical control flow to the C backend (and hence identical positions and
counter charges to the NumPy reference); compiled with ``nopython=True``
and ``nogil=True`` so the thread serving backend can scale across cores,
and ``cache=True`` so warmup is paid once per machine, not per process.

Importing this module is cheap (``@njit`` compiles lazily); constructing
:class:`NumbaKernels` warms every kernel eagerly, so a broken numba
installation fails at resolve time and the registry degrades the caller
to the numpy backend.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from numba import njit

from . import KernelBackend


@njit(nogil=True, cache=True)
def _predict_1(slope, intercept, key, size):
    pos = slope * key + intercept
    if not (pos > 0.0):  # catches NaN and -inf too
        return np.int64(0)
    if pos >= size:
        return np.int64(size - 1)
    return np.int64(pos)


@njit(nogil=True, cache=True)
def _predict_clamp(slope, intercept, keys, size, out):
    edge = float(size - 1)
    for i in range(keys.shape[0]):
        pos = slope * keys[i] + intercept
        if not (pos > 0.0):
            pos = 0.0
        elif pos > edge:
            pos = edge
        out[i] = np.int64(pos)


@njit(nogil=True, cache=True)
def _lb_1(keys, target, lo, hi):
    steps = 0
    while lo < hi:
        mid = (lo + hi) // 2
        steps += 1
        if keys[mid] < target:
            lo = mid + 1
        else:
            hi = mid
    return lo, steps


@njit(nogil=True, cache=True)
def _exp_1(keys, target, hint, lo, hi):
    if hi <= lo:
        return lo, 0
    if hint < lo:
        hint = lo
    elif hint >= hi:
        hint = hi - 1
    probes = 0
    if keys[hint] >= target:
        bound = 1
        left = hint - bound
        while left >= lo and keys[left] >= target:
            probes += 1
            bound *= 2
            left = hint - bound
        probes += 1
        search_lo = max(lo, hint - bound)
        search_hi = hint - bound // 2 + 1
    else:
        bound = 1
        right = hint + bound
        while right < hi and keys[right] < target:
            probes += 1
            bound *= 2
            right = hint + bound
        probes += 1
        search_lo = hint + bound // 2
        search_hi = min(hi, hint + bound + 1)
    pos, steps = _lb_1(keys, target, search_lo, search_hi)
    return pos, probes + steps


@njit(nogil=True, cache=True)
def _find_insert_pos(keys, target, has_model, slope, intercept):
    cap = keys.shape[0]
    if not has_model:
        return _lb_1(keys, target, 0, cap)
    hint = _predict_1(slope, intercept, target, cap)
    return _exp_1(keys, target, hint, 0, cap)


@njit(nogil=True, cache=True)
def _resolve_1(keys, occ, target, pos):
    cap = keys.shape[0]
    probes = 0
    while pos < cap and keys[pos] == target:
        probes += 1
        if occ[pos]:
            return pos, probes
        pos += 1
    return -1, probes


@njit(nogil=True, cache=True)
def _find_key(keys, occ, target, has_model, slope, intercept):
    pos, charge = _find_insert_pos(keys, target, has_model, slope, intercept)
    pos, probes = _resolve_1(keys, occ, target, pos)
    return pos, charge, probes


@njit(nogil=True, cache=True)
def _find_insert_pos_many(keys, targets, has_model, slope, intercept, out):
    charge = 0
    for i in range(targets.shape[0]):
        pos, c = _find_insert_pos(keys, targets[i], has_model, slope,
                                  intercept)
        out[i] = pos
        charge += c
    return charge


@njit(nogil=True, cache=True)
def _find_keys_many(keys, occ, targets, has_model, slope, intercept, out):
    charge = 0
    probes = 0
    for i in range(targets.shape[0]):
        pos, c = _find_insert_pos(keys, targets[i], has_model, slope,
                                  intercept)
        pos, p = _resolve_1(keys, occ, targets[i], pos)
        out[i] = pos
        charge += c
        probes += p
    return charge, probes


@njit(nogil=True, cache=True)
def _closest_gaps(occ, pos, lo, hi):
    right = hi
    for i in range(pos, hi):
        if not occ[i]:
            right = i
            break
    left = -1
    for i in range(pos - 1, lo - 1, -1):
        if not occ[i]:
            left = i
            break
    return left, right


@njit(nogil=True, cache=True)
def _shift_right(keys, occ, ip, gap):
    for i in range(gap, ip, -1):
        keys[i] = keys[i - 1]
    occ[gap] = True
    occ[ip] = False


@njit(nogil=True, cache=True)
def _shift_left(keys, occ, gap, ip):
    for i in range(gap, ip - 1):
        keys[i] = keys[i + 1]
    occ[gap] = True
    occ[ip - 1] = False


@njit(nogil=True, cache=True)
def _place_fill(keys, occ, pos, key):
    keys[pos] = key
    occ[pos] = True
    fills = 0
    i = pos - 1
    while i >= 0 and not occ[i]:
        keys[i] = key
        fills += 1
        i -= 1
    return fills


@njit(nogil=True, cache=True)
def _erase_fill(keys, occ, pos, right_key):
    occ[pos] = False
    fills = 0
    i = pos
    while i >= 0 and not occ[i]:
        keys[i] = right_key
        fills += 1
        i -= 1
    return fills


class NumbaKernels(KernelBackend):
    """JIT backend (``nopython`` + ``nogil`` + on-disk compilation cache)."""

    name = "numba"
    compiled = True

    #: Every dispatcher, for signature counting and eager warmup.
    _DISPATCHERS = (_predict_1, _predict_clamp, _lb_1, _exp_1,
                    _find_insert_pos, _resolve_1, _find_key,
                    _find_insert_pos_many, _find_keys_many, _closest_gaps,
                    _shift_right, _shift_left, _place_fill, _erase_fill)

    def __init__(self) -> None:
        self.warm()  # fail here, at resolve time, not on the first call

    # -- lifecycle ----------------------------------------------------

    def warm(self) -> None:
        """Exercise every kernel once with production argument types so
        all compilation happens now (a no-op once compiled)."""
        keys = np.array([1.0, 2.0, 2.0, np.inf], dtype=np.float64)
        occ = np.array([True, True, False, False])
        targets = np.array([2.0], dtype=np.float64)
        self.predict_clamp(0.5, 0.0, targets, 4)
        self.find_insert_pos(keys, 2.0, True, 0.5, 0.0)
        self.find_insert_pos(keys, 2.0, False, 0.0, 0.0)
        self.find_key(keys, occ, 2.0, True, 0.5, 0.0)
        self.find_insert_pos_many(keys, targets, True, 0.5, 0.0)
        self.find_insert_pos_many(keys, targets, False, 0.0, 0.0)
        self.find_keys_many(keys, occ, targets, True, 0.5, 0.0)
        self.closest_gaps(occ, 1, 0, 4)
        scratch_keys = keys.copy()
        scratch_occ = occ.copy()
        self.shift_right(scratch_keys, scratch_occ, 0, 2)
        self.shift_left(scratch_keys, scratch_occ, 2, 4)
        self.place_fill(scratch_keys, scratch_occ, 2, 3.0)
        self.erase_fill(scratch_keys, scratch_occ, 2, np.inf)

    def compile_events(self) -> int:
        return sum(len(d.signatures) for d in self._DISPATCHERS)

    # -- kernel 1: linear-model predict + clamp -----------------------

    def predict_clamp(self, slope: float, intercept: float,
                      keys: np.ndarray, size: int) -> np.ndarray:
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        out = np.empty(len(keys), dtype=np.int64)
        _predict_clamp(float(slope), float(intercept), keys, size, out)
        return out

    # -- kernel 2: lock-step exponential/binary search ----------------

    def find_insert_pos(self, keys: np.ndarray, target: float,
                        has_model: bool, slope: float,
                        intercept: float) -> Tuple[int, int]:
        pos, charge = _find_insert_pos(keys, float(target), has_model,
                                       float(slope), float(intercept))
        return int(pos), int(charge)

    def find_key(self, keys: np.ndarray, occupied: np.ndarray,
                 target: float, has_model: bool, slope: float,
                 intercept: float) -> Tuple[int, int, int]:
        pos, charge, probes = _find_key(keys, occupied, float(target),
                                        has_model, float(slope),
                                        float(intercept))
        return int(pos), int(charge), int(probes)

    def find_insert_pos_many(self, keys: np.ndarray, targets: np.ndarray,
                             has_model: bool, slope: float,
                             intercept: float) -> Tuple[np.ndarray, int]:
        targets = np.ascontiguousarray(targets, dtype=np.float64)
        out = np.empty(len(targets), dtype=np.int64)
        charge = _find_insert_pos_many(keys, targets, has_model,
                                       float(slope), float(intercept), out)
        return out, int(charge)

    def find_keys_many(self, keys: np.ndarray, occupied: np.ndarray,
                       targets: np.ndarray, has_model: bool, slope: float,
                       intercept: float) -> Tuple[np.ndarray, int, int]:
        targets = np.ascontiguousarray(targets, dtype=np.float64)
        n = len(targets)
        if n == 0 or len(keys) == 0:
            return np.full(n, -1, dtype=np.int64), 0, 0
        out = np.empty(n, dtype=np.int64)
        charge, probes = _find_keys_many(keys, occupied, targets, has_model,
                                         float(slope), float(intercept), out)
        return out, int(charge), int(probes)

    # -- kernel 3: gapped-array / PMA shift-and-insert ----------------

    def closest_gaps(self, occupied: np.ndarray, pos: int, lo: int,
                     hi: int) -> Tuple[int, int]:
        left, right = _closest_gaps(occupied, pos, lo, hi)
        return int(left), int(right)

    def shift_right(self, keys: np.ndarray, occupied: np.ndarray,
                    ip: int, gap: int) -> None:
        _shift_right(keys, occupied, ip, gap)

    def shift_left(self, keys: np.ndarray, occupied: np.ndarray,
                   gap: int, ip: int) -> None:
        _shift_left(keys, occupied, gap, ip)

    def place_fill(self, keys: np.ndarray, occupied: np.ndarray,
                   pos: int, key: float) -> int:
        return int(_place_fill(keys, occupied, pos, float(key)))

    def erase_fill(self, keys: np.ndarray, occupied: np.ndarray,
                   pos: int, right_key: float) -> int:
        return int(_erase_fill(keys, occupied, pos, float(right_key)))
