"""C kernel backend: the hot loops compiled with the system C compiler.

The kernels are the per-lane scalar algorithms (identical control flow to
the extracted NumPy reference, so positions *and* counter charges match
bit-for-bit), compiled through :mod:`cffi` in API mode.  The extension is
built once per machine into a cache directory keyed by a hash of the C
source (``$REPRO_KERNEL_CACHE`` or ``~/.cache/repro-kernels``) and loaded
from there afterwards, so only the first process on a machine ever pays
the compile; CFFI releases the GIL around every call, which lets the
thread serving backend scale these kernels across cores.

Construction compiles/loads eagerly: if anything is missing (cffi, a C
compiler) it raises and the registry degrades the caller to the numpy
backend.
"""

from __future__ import annotations

import hashlib
import importlib.machinery
import importlib.util
import os
import threading
from pathlib import Path
from typing import Tuple

import numpy as np

from . import KernelBackend

_CACHE_ENV = "REPRO_KERNEL_CACHE"

_CDEF = """
void k_predict_clamp(double slope, double intercept, const double *keys,
                     int64_t n, int64_t size, int64_t *out);
int64_t k_find_insert_pos(const double *keys, int64_t cap, double target,
                          int has_model, double slope, double intercept,
                          int64_t *charge);
int64_t k_find_key(const double *keys, const uint8_t *occ, int64_t cap,
                   double target, int has_model, double slope,
                   double intercept, int64_t *charge, int64_t *probes);
void k_find_insert_pos_many(const double *keys, int64_t cap,
                            const double *targets, int64_t n, int has_model,
                            double slope, double intercept, int64_t *out,
                            int64_t *charge);
void k_find_keys_many(const double *keys, const uint8_t *occ, int64_t cap,
                      const double *targets, int64_t n, int has_model,
                      double slope, double intercept, int64_t *out,
                      int64_t *charge, int64_t *probes);
void k_closest_gaps(const uint8_t *occ, int64_t pos, int64_t lo, int64_t hi,
                    int64_t *out2);
void k_shift_right(double *keys, uint8_t *occ, int64_t ip, int64_t gap);
void k_shift_left(double *keys, uint8_t *occ, int64_t gap, int64_t ip);
int64_t k_place_fill(double *keys, uint8_t *occ, int64_t pos, double key);
int64_t k_erase_fill(double *keys, uint8_t *occ, int64_t pos,
                     double right_key);
"""

_SOURCE = r"""
#include <stdint.h>
#include <string.h>

/* Floor + clamp of the model prediction into [0, size - 1]; the !(p > 0)
 * test pins NaN and -inf to the left edge exactly like the Python
 * reference, and truncation toward zero equals floor for the surviving
 * non-negative values. */
static int64_t predict_1(double slope, double intercept, double key,
                         int64_t size)
{
    double pos = slope * key + intercept;
    if (!(pos > 0.0))
        return 0;
    if (pos >= (double)size)
        return size - 1;
    return (int64_t)pos;
}

static int64_t lb_1(const double *keys, double target, int64_t lo,
                    int64_t hi, int64_t *charge)
{
    while (lo < hi) {
        int64_t mid = (lo + hi) >> 1;
        (*charge)++;
        if (keys[mid] < target)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

static int64_t exp_1(const double *keys, double target, int64_t hint,
                     int64_t lo, int64_t hi, int64_t *charge)
{
    int64_t slo, shi;
    if (hi <= lo)
        return lo;
    if (hint < lo)
        hint = lo;
    else if (hint >= hi)
        hint = hi - 1;
    if (keys[hint] >= target) {
        int64_t bound = 1;
        int64_t left = hint - bound;
        while (left >= lo && keys[left] >= target) {
            (*charge)++;
            bound <<= 1;
            left = hint - bound;
        }
        (*charge)++;
        slo = hint - bound;
        if (slo < lo)
            slo = lo;
        shi = hint - (bound >> 1) + 1;
    } else {
        int64_t bound = 1;
        int64_t right = hint + bound;
        while (right < hi && keys[right] < target) {
            (*charge)++;
            bound <<= 1;
            right = hint + bound;
        }
        (*charge)++;
        slo = hint + (bound >> 1);
        shi = hint + bound + 1;
        if (shi > hi)
            shi = hi;
    }
    return lb_1(keys, target, slo, shi, charge);
}

void k_predict_clamp(double slope, double intercept, const double *keys,
                     int64_t n, int64_t size, int64_t *out)
{
    double edge = (double)(size - 1);
    int64_t i;
    for (i = 0; i < n; i++) {
        double pos = slope * keys[i] + intercept;
        if (!(pos > 0.0))
            pos = 0.0;
        else if (pos > edge)
            pos = edge;
        out[i] = (int64_t)pos;
    }
}

int64_t k_find_insert_pos(const double *keys, int64_t cap, double target,
                          int has_model, double slope, double intercept,
                          int64_t *charge)
{
    if (!has_model)
        return lb_1(keys, target, 0, cap, charge);
    return exp_1(keys, target, predict_1(slope, intercept, target, cap),
                 0, cap, charge);
}

/* Occupied-slot resolution: the lower bound may land on a gap slot that
 * mirrors the target's value; the real slot is then the first occupied
 * slot to the right with the same value. */
static int64_t resolve_1(const double *keys, const uint8_t *occ, int64_t cap,
                         double target, int64_t pos, int64_t *probes)
{
    while (pos < cap && keys[pos] == target) {
        (*probes)++;
        if (occ[pos])
            return pos;
        pos++;
    }
    return -1;
}

int64_t k_find_key(const double *keys, const uint8_t *occ, int64_t cap,
                   double target, int has_model, double slope,
                   double intercept, int64_t *charge, int64_t *probes)
{
    int64_t pos = k_find_insert_pos(keys, cap, target, has_model, slope,
                                    intercept, charge);
    return resolve_1(keys, occ, cap, target, pos, probes);
}

void k_find_insert_pos_many(const double *keys, int64_t cap,
                            const double *targets, int64_t n, int has_model,
                            double slope, double intercept, int64_t *out,
                            int64_t *charge)
{
    int64_t i;
    if (has_model) {
        for (i = 0; i < n; i++)
            out[i] = exp_1(keys, targets[i],
                           predict_1(slope, intercept, targets[i], cap),
                           0, cap, charge);
    } else {
        for (i = 0; i < n; i++)
            out[i] = lb_1(keys, targets[i], 0, cap, charge);
    }
}

void k_find_keys_many(const double *keys, const uint8_t *occ, int64_t cap,
                      const double *targets, int64_t n, int has_model,
                      double slope, double intercept, int64_t *out,
                      int64_t *charge, int64_t *probes)
{
    int64_t i;
    for (i = 0; i < n; i++) {
        int64_t pos = k_find_insert_pos(keys, cap, targets[i], has_model,
                                        slope, intercept, charge);
        out[i] = resolve_1(keys, occ, cap, targets[i], pos, probes);
    }
}

void k_closest_gaps(const uint8_t *occ, int64_t pos, int64_t lo, int64_t hi,
                    int64_t *out2)
{
    int64_t left = -1, right = hi, i;
    for (i = pos; i < hi; i++) {
        if (!occ[i]) {
            right = i;
            break;
        }
    }
    for (i = pos - 1; i >= lo; i--) {
        if (!occ[i]) {
            left = i;
            break;
        }
    }
    out2[0] = left;
    out2[1] = right;
}

void k_shift_right(double *keys, uint8_t *occ, int64_t ip, int64_t gap)
{
    memmove(keys + ip + 1, keys + ip, (size_t)(gap - ip) * sizeof(double));
    occ[gap] = 1;
    occ[ip] = 0;
}

void k_shift_left(double *keys, uint8_t *occ, int64_t gap, int64_t ip)
{
    memmove(keys + gap, keys + gap + 1,
            (size_t)(ip - 1 - gap) * sizeof(double));
    occ[gap] = 1;
    occ[ip - 1] = 0;
}

int64_t k_place_fill(double *keys, uint8_t *occ, int64_t pos, double key)
{
    int64_t fills = 0, i;
    keys[pos] = key;
    occ[pos] = 1;
    for (i = pos - 1; i >= 0 && !occ[i]; i--) {
        keys[i] = key;
        fills++;
    }
    return fills;
}

int64_t k_erase_fill(double *keys, uint8_t *occ, int64_t pos,
                     double right_key)
{
    int64_t fills = 0, i;
    occ[pos] = 0;
    for (i = pos; i >= 0 && !occ[i]; i--) {
        keys[i] = right_key;
        fills++;
    }
    return fills;
}
"""


def _cache_dir() -> Path:
    override = os.environ.get(_CACHE_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-kernels"


def _find_built(cache_dir: Path, modname: str):
    for suffix in importlib.machinery.EXTENSION_SUFFIXES:
        candidate = cache_dir / (modname + suffix)
        if candidate.exists():
            return candidate
    return None


class CffiKernels(KernelBackend):
    """Compiled C backend (per-lane loops, GIL released around calls)."""

    name = "cffi"
    compiled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._compile_events = 0
        self._ffi = None
        self._lib = None
        self.warm()  # fail here, at resolve time, not on the first call

    # -- lifecycle ----------------------------------------------------

    def warm(self) -> None:
        with self._lock:
            if self._lib is not None:
                return
            import cffi  # raises ImportError -> registry falls back

            digest = hashlib.sha256(
                (_CDEF + _SOURCE).encode()).hexdigest()[:16]
            modname = f"_repro_kernels_{digest}"
            cache_dir = _cache_dir()
            cache_dir.mkdir(parents=True, exist_ok=True)
            built = _find_built(cache_dir, modname)
            if built is None:
                ffibuilder = cffi.FFI()
                ffibuilder.cdef(_CDEF)
                ffibuilder.set_source(modname, _SOURCE,
                                      extra_compile_args=["-O3"])
                built = Path(ffibuilder.compile(tmpdir=str(cache_dir)))
                self._compile_events += 1
            spec = importlib.util.spec_from_file_location(modname, built)
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
            self._ffi = module.ffi
            self._lib = module.lib
            self._compile_events += 1  # loading the extension counts too

    def compile_events(self) -> int:
        return self._compile_events

    # -- buffer plumbing ----------------------------------------------

    def _dbuf(self, arr: np.ndarray):
        return self._ffi.from_buffer("double[]", arr)

    def _ibuf(self, arr: np.ndarray):
        return self._ffi.from_buffer("int64_t[]", arr)

    def _obuf(self, occupied: np.ndarray):
        return self._ffi.from_buffer("uint8_t[]", occupied.view(np.uint8))

    # -- kernel 1: linear-model predict + clamp -----------------------

    def predict_clamp(self, slope: float, intercept: float,
                      keys: np.ndarray, size: int) -> np.ndarray:
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        out = np.empty(len(keys), dtype=np.int64)
        if len(keys):
            self._lib.k_predict_clamp(slope, intercept, self._dbuf(keys),
                                      len(keys), size, self._ibuf(out))
        return out

    # -- kernel 2: lock-step exponential/binary search ----------------

    def find_insert_pos(self, keys: np.ndarray, target: float,
                        has_model: bool, slope: float,
                        intercept: float) -> Tuple[int, int]:
        charge = self._ffi.new("int64_t *", 0)
        pos = self._lib.k_find_insert_pos(
            self._dbuf(keys), len(keys), target, int(has_model),
            slope, intercept, charge)
        return int(pos), int(charge[0])

    def find_key(self, keys: np.ndarray, occupied: np.ndarray,
                 target: float, has_model: bool, slope: float,
                 intercept: float) -> Tuple[int, int, int]:
        counts = self._ffi.new("int64_t[2]")
        pos = self._lib.k_find_key(
            self._dbuf(keys), self._obuf(occupied), len(keys), target,
            int(has_model), slope, intercept, counts, counts + 1)
        return int(pos), int(counts[0]), int(counts[1])

    def find_insert_pos_many(self, keys: np.ndarray, targets: np.ndarray,
                             has_model: bool, slope: float,
                             intercept: float) -> Tuple[np.ndarray, int]:
        targets = np.ascontiguousarray(targets, dtype=np.float64)
        n = len(targets)
        out = np.empty(n, dtype=np.int64)
        if n == 0:
            return out, 0
        charge = self._ffi.new("int64_t *", 0)
        self._lib.k_find_insert_pos_many(
            self._dbuf(keys), len(keys), self._dbuf(targets), n,
            int(has_model), slope, intercept, self._ibuf(out), charge)
        return out, int(charge[0])

    def find_keys_many(self, keys: np.ndarray, occupied: np.ndarray,
                       targets: np.ndarray, has_model: bool, slope: float,
                       intercept: float) -> Tuple[np.ndarray, int, int]:
        targets = np.ascontiguousarray(targets, dtype=np.float64)
        n = len(targets)
        if n == 0 or len(keys) == 0:
            return np.full(n, -1, dtype=np.int64), 0, 0
        out = np.empty(n, dtype=np.int64)
        counts = self._ffi.new("int64_t[2]")
        self._lib.k_find_keys_many(
            self._dbuf(keys), self._obuf(occupied), len(keys),
            self._dbuf(targets), n, int(has_model), slope, intercept,
            self._ibuf(out), counts, counts + 1)
        return out, int(counts[0]), int(counts[1])

    # -- kernel 3: gapped-array / PMA shift-and-insert ----------------

    def closest_gaps(self, occupied: np.ndarray, pos: int, lo: int,
                     hi: int) -> Tuple[int, int]:
        out2 = self._ffi.new("int64_t[2]")
        self._lib.k_closest_gaps(self._obuf(occupied), pos, lo, hi, out2)
        return int(out2[0]), int(out2[1])

    def shift_right(self, keys: np.ndarray, occupied: np.ndarray,
                    ip: int, gap: int) -> None:
        self._lib.k_shift_right(self._dbuf(keys), self._obuf(occupied),
                                ip, gap)

    def shift_left(self, keys: np.ndarray, occupied: np.ndarray,
                   gap: int, ip: int) -> None:
        self._lib.k_shift_left(self._dbuf(keys), self._obuf(occupied),
                               gap, ip)

    def place_fill(self, keys: np.ndarray, occupied: np.ndarray,
                   pos: int, key: float) -> int:
        return int(self._lib.k_place_fill(self._dbuf(keys),
                                          self._obuf(occupied), pos, key))

    def erase_fill(self, keys: np.ndarray, occupied: np.ndarray,
                   pos: int, right_key: float) -> int:
        return int(self._lib.k_erase_fill(self._dbuf(keys),
                                          self._obuf(occupied), pos,
                                          right_key))
