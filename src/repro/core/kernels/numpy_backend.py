"""Reference kernel backend: the existing pure-NumPy/pure-Python hot loops.

This is the code the compiled backends are property-tested against —
every routine here is the pre-kernel implementation from
:mod:`repro.core.search`, :mod:`repro.core.linear_model` and
:mod:`repro.core.data_node`, extracted behind the
:class:`~repro.core.kernels.KernelBackend` interface with counter
charges returned instead of applied.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from . import KernelBackend
from ..search import (exponential_search_counted,
                      exponential_search_many_counted, lower_bound_counted,
                      lower_bound_many_counted)


def _predict_pos_scalar(slope: float, intercept: float, key: float,
                        size: int) -> int:
    """``LinearModel.predict_pos``: floor + clamp to ``[0, size - 1]``
    with non-finite predictions pinned to the nearest edge."""
    pos = slope * key + intercept
    if not (pos > 0):  # catches NaN and -inf too
        return 0
    if pos >= size:
        return size - 1
    return int(pos)


class NumpyKernels(KernelBackend):
    """Always-available interpreter-loop backend (the extracted originals)."""

    name = "numpy"
    compiled = False

    # -- kernel 1: linear-model predict + clamp -----------------------

    def predict_clamp(self, slope: float, intercept: float,
                      keys: np.ndarray, size: int) -> np.ndarray:
        pos = slope * keys + intercept
        pos = np.clip(pos, 0, size - 1)       # clamp before the int cast so
        pos = np.nan_to_num(pos, nan=0.0)     # non-finite values stay legal
        return pos.astype(np.int64)

    # -- kernel 2: lock-step exponential/binary search ----------------

    def find_insert_pos(self, keys: np.ndarray, target: float,
                        has_model: bool, slope: float,
                        intercept: float) -> Tuple[int, int]:
        capacity = len(keys)
        if not has_model:
            return lower_bound_counted(keys, target, 0, capacity)
        hint = _predict_pos_scalar(slope, intercept, target, capacity)
        return exponential_search_counted(keys, target, hint, 0, capacity)

    def find_key(self, keys: np.ndarray, occupied: np.ndarray,
                 target: float, has_model: bool, slope: float,
                 intercept: float) -> Tuple[int, int, int]:
        capacity = len(keys)
        pos, charge = self.find_insert_pos(keys, target, has_model,
                                           slope, intercept)
        probes = 0
        while pos < capacity and keys[pos] == target:
            probes += 1
            if occupied[pos]:
                return pos, charge, probes
            pos += 1
        return -1, charge, probes

    def find_insert_pos_many(self, keys: np.ndarray, targets: np.ndarray,
                             has_model: bool, slope: float,
                             intercept: float) -> Tuple[np.ndarray, int]:
        capacity = len(keys)
        n = len(targets)
        if not has_model:
            los = np.zeros(n, dtype=np.int64)
            his = np.full(n, capacity, dtype=np.int64)
            return lower_bound_many_counted(keys, targets, los, his)
        hints = self.predict_clamp(slope, intercept, targets, capacity)
        return exponential_search_many_counted(keys, targets, hints, 0,
                                               capacity)

    def find_keys_many(self, keys: np.ndarray, occupied: np.ndarray,
                       targets: np.ndarray, has_model: bool, slope: float,
                       intercept: float) -> Tuple[np.ndarray, int, int]:
        capacity = len(keys)
        n = len(targets)
        if n == 0 or capacity == 0:
            return np.full(n, -1, dtype=np.int64), 0, 0
        pos, charge = self.find_insert_pos_many(keys, targets, has_model,
                                                slope, intercept)
        safe = np.minimum(pos, capacity - 1)
        matched = (pos < capacity) & (keys[safe] == targets)
        probes = int(matched.sum())
        result = np.where(matched, pos, np.int64(-1))
        # The rare case of the lower bound landing on a gap slot that
        # mirrors the target's value falls back to the scalar rightward
        # walk; every other lane resolves in the vectorized pass.
        gap_hits = matched & ~occupied[safe]
        for lane in np.flatnonzero(gap_hits):
            p = int(pos[lane]) + 1
            target = targets[lane]
            found = -1
            while p < capacity and keys[p] == target:
                probes += 1
                if occupied[p]:
                    found = p
                    break
                p += 1
            result[lane] = found
        return result, charge, probes

    # -- kernel 3: gapped-array / PMA shift-and-insert ----------------

    def closest_gaps(self, occupied: np.ndarray, pos: int, lo: int,
                     hi: int) -> Tuple[int, int]:
        window = occupied[pos:hi]
        rel = np.argmax(~window) if window.size else 0
        if window.size and not window[rel]:
            right = pos + int(rel)
        else:
            right = hi
        window = occupied[lo:pos]
        if window.size and not window.all():
            left = lo + int(pos - lo - 1 - np.argmax(~window[::-1]))
        else:
            left = -1
        return left, right

    def shift_right(self, keys: np.ndarray, occupied: np.ndarray,
                    ip: int, gap: int) -> None:
        keys[ip + 1:gap + 1] = keys[ip:gap]
        occupied[gap] = True
        occupied[ip] = False

    def shift_left(self, keys: np.ndarray, occupied: np.ndarray,
                   gap: int, ip: int) -> None:
        keys[gap:ip - 1] = keys[gap + 1:ip]
        occupied[gap] = True
        occupied[ip - 1] = False

    def place_fill(self, keys: np.ndarray, occupied: np.ndarray,
                   pos: int, key: float) -> int:
        keys[pos] = key
        occupied[pos] = True
        fills = 0
        i = pos - 1
        while i >= 0 and not occupied[i]:
            keys[i] = key
            fills += 1
            i -= 1
        return fills

    def erase_fill(self, keys: np.ndarray, occupied: np.ndarray,
                   pos: int, right_key: float) -> int:
        occupied[pos] = False
        fills = 0
        i = pos
        while i >= 0 and not occupied[i]:
            keys[i] = right_key
            fills += 1
            i -= 1
        return fills
