"""Pluggable compiled kernels for the three innermost hot loops.

The honest batch-vs-scalar ratio of the pure-NumPy engine is ~1.4x
(BENCH_batch.json): interpreter dispatch, not memory bandwidth, is the
ceiling on every read and write.  This package moves the three loops the
profile is made of — (1) linear-model predict + clamp, (2) lock-step
exponential/binary search over leaf key arrays, and (3) the gapped-array /
PMA shift-and-insert — behind one narrow kernel interface with multiple
implementations:

``numpy``
    The existing pure-NumPy/pure-Python code, extracted verbatim.  Always
    available; the reference every other backend is property-tested
    against.
``numba``
    ``@njit(nogil=True, cache=True)`` per-lane loops.  Lazily imported;
    when numba is not installed (or a kernel fails to compile) the
    resolver degrades to ``numpy`` with a one-time warning.
``cffi``
    The same loops as C compiled on first use with the system C compiler
    (via :mod:`cffi`) and cached on disk keyed by a source hash.  CFFI
    releases the GIL around every call, so these kernels — like numba's
    ``nogil`` ones — let the thread backend scale on cores.
``auto``
    Best available: ``numba`` if importable, else ``cffi`` if a C
    compiler works, else ``numpy``.

Selection is per-index via ``CoreConfig.kernel_backend``
(:class:`repro.core.config.AlexConfig`), defaulting to the
``REPRO_KERNEL_BACKEND`` environment variable (or ``numpy``).  Backends
are process-wide singletons: resolving the same name twice returns the
same object, and compilation happens at most once per process (serving
workers call :meth:`KernelBackend.warm` at provisioning so no JIT ever
runs on the request path).

Every kernel returns its work tallies (search probes, gap-fill writes)
instead of touching :class:`~repro.core.stats.Counters` directly; the
caller charges them.  This keeps the accounting *identical* across
backends — the scalar/batch equivalence suites run against each backend
and assert bit-equal results and counter totals.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, Optional, Tuple

import numpy as np

from repro import obs

#: Recognized ``kernel_backend`` spellings.
BACKEND_NAMES = ("numpy", "numba", "cffi", "auto")


class KernelUnavailableError(RuntimeError):
    """A requested kernel backend cannot run in this environment."""


class KernelBackend:
    """Interface every kernel backend implements.

    All ``keys`` arrays are the full, contiguous, gap-filled float64 key
    array of one node (non-decreasing end to end); ``occupied`` is the
    node's boolean occupancy bitmap; ``targets`` is a contiguous float64
    array.  ``has_model`` selects model-hinted exponential search versus
    the cold-start plain binary search over the whole array.  Charges are
    returned, never applied: ``search_charge`` feeds both ``comparisons``
    and ``probes``, ``resolve_probes`` and gap-fill counts feed their
    single counter.
    """

    #: Backend name as selected through ``CoreConfig.kernel_backend``.
    name: str = "?"
    #: Whether the backend runs machine code rather than interpreter loops.
    compiled: bool = False

    # -- lifecycle ----------------------------------------------------

    def warm(self) -> None:
        """Force all one-time compilation/loading now (no-op for numpy).

        Long-lived serving workers call this at provisioning so JIT
        warmup is paid before the first request, never on it.
        """

    def compile_events(self) -> int:
        """Number of compile/load events this backend has performed in
        this process (monotone; the warmup tests assert it stays flat
        across the request path)."""
        return 0

    # -- kernel 1: linear-model predict + clamp -----------------------

    def predict_clamp(self, slope: float, intercept: float,
                      keys: np.ndarray, size: int) -> np.ndarray:
        """Vectorized ``predict_pos``: ``slope * keys + intercept``
        floored and clamped into ``[0, size - 1]`` (non-finite → edge),
        as an int64 array."""
        raise NotImplementedError

    # -- kernel 2: lock-step exponential/binary search ----------------

    def find_insert_pos(self, keys: np.ndarray, target: float,
                        has_model: bool, slope: float,
                        intercept: float) -> Tuple[int, int]:
        """Scalar lower-bound position for ``target`` plus the search
        charge (model-hinted exponential search, or plain binary search
        when ``has_model`` is false)."""
        raise NotImplementedError

    def find_key(self, keys: np.ndarray, occupied: np.ndarray,
                 target: float, has_model: bool, slope: float,
                 intercept: float) -> Tuple[int, int, int]:
        """Scalar occupied-slot resolution: ``(pos, search_charge,
        resolve_probes)`` where ``pos`` is the occupied slot holding
        ``target`` or -1."""
        raise NotImplementedError

    def find_insert_pos_many(self, keys: np.ndarray, targets: np.ndarray,
                             has_model: bool, slope: float,
                             intercept: float) -> Tuple[np.ndarray, int]:
        """Batch :meth:`find_insert_pos`: ``(positions, search_charge)``
        with positions identical to a loop over the scalar routine and
        the charge equal to the per-lane total."""
        raise NotImplementedError

    def find_keys_many(self, keys: np.ndarray, occupied: np.ndarray,
                       targets: np.ndarray, has_model: bool, slope: float,
                       intercept: float) -> Tuple[np.ndarray, int, int]:
        """Batch :meth:`find_key`: ``(positions, search_charge,
        resolve_probes)`` (-1 where absent)."""
        raise NotImplementedError

    # -- kernel 3: gapped-array / PMA shift-and-insert ----------------

    def closest_gaps(self, occupied: np.ndarray, pos: int, lo: int,
                     hi: int) -> Tuple[int, int]:
        """``(left_gap, right_gap)`` nearest to ``pos`` within
        ``[lo, hi)`` (-1 / ``hi`` when absent); ``pos`` itself excluded
        on the left side, included on the right."""
        raise NotImplementedError

    def shift_right(self, keys: np.ndarray, occupied: np.ndarray,
                    ip: int, gap: int) -> None:
        """Move the occupied key run ``[ip, gap)`` one slot right into
        the gap at ``gap`` (bitmap updated; payloads are the caller's)."""
        raise NotImplementedError

    def shift_left(self, keys: np.ndarray, occupied: np.ndarray,
                   gap: int, ip: int) -> None:
        """Move the occupied key run ``(gap, ip)`` one slot left into the
        gap at ``gap``, freeing slot ``ip - 1``."""
        raise NotImplementedError

    def place_fill(self, keys: np.ndarray, occupied: np.ndarray,
                   pos: int, key: float) -> int:
        """Write ``key`` into free slot ``pos`` and rewrite the gap run
        to its left with ``key`` (the gap-mirror invariant).  Returns the
        number of gap-fill writes."""
        raise NotImplementedError

    def erase_fill(self, keys: np.ndarray, occupied: np.ndarray,
                   pos: int, right_key: float) -> int:
        """Clear slot ``pos`` and rewrite the now-extended gap run ending
        at ``pos`` with ``right_key``.  Returns the number of gap-fill
        writes (always >= 1: slot ``pos`` itself is rewritten)."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# Registry / resolution
# ----------------------------------------------------------------------

_CACHE: Dict[str, KernelBackend] = {}
_WARNED: set = set()
_DEFAULT_ENV = "REPRO_KERNEL_BACKEND"


def default_backend_name() -> str:
    """The process-default backend name (``$REPRO_KERNEL_BACKEND`` or
    ``numpy``) — what ``CoreConfig`` uses when not set explicitly."""
    return os.environ.get(_DEFAULT_ENV, "numpy")


def _warn_once(key: str, message: str) -> None:
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, RuntimeWarning, stacklevel=3)


def _numpy() -> KernelBackend:
    if "numpy" not in _CACHE:
        from .numpy_backend import NumpyKernels
        _CACHE["numpy"] = NumpyKernels()
    return _CACHE["numpy"]


def _try_numba() -> Optional[KernelBackend]:
    if "numba" in _CACHE:
        return _CACHE["numba"]
    try:
        from .numba_backend import NumbaKernels
        backend: KernelBackend = NumbaKernels()
    except Exception as exc:  # ImportError or a jit-compile failure
        _warn_once("numba", "numba kernel backend unavailable "
                            f"({exc!r}); falling back to numpy kernels")
        return None
    _CACHE["numba"] = backend
    return backend


def _try_cffi() -> Optional[KernelBackend]:
    if "cffi" in _CACHE:
        return _CACHE["cffi"]
    try:
        from .cffi_backend import CffiKernels
        backend: KernelBackend = CffiKernels()
    except Exception as exc:  # no cffi, no compiler, compile failure
        _warn_once("cffi", "cffi kernel backend unavailable "
                           f"({exc!r}); falling back to numpy kernels")
        return None
    _CACHE["cffi"] = backend
    return backend


def get_kernels(name: Optional[str] = None) -> KernelBackend:
    """Resolve a backend name to its process-wide singleton.

    ``"numba"`` / ``"cffi"`` degrade gracefully to the numpy fallback
    (with a one-time :class:`RuntimeWarning`) when the toolchain is
    absent, so selecting a compiled backend is always safe.  ``"auto"``
    prefers numba, then cffi, then numpy, warning about nothing.
    """
    name = name or default_backend_name()
    if name == "numpy":
        backend = _numpy()
    elif name == "numba":
        backend = _try_numba() or _numpy()
    elif name == "cffi":
        backend = _try_cffi() or _numpy()
    elif name == "auto":
        backend = None
        try:  # auto never warns: absence of optional toolchains is fine
            from .numba_backend import NumbaKernels
            backend = _CACHE.setdefault("numba", NumbaKernels())
        except Exception:
            try:
                from .cffi_backend import CffiKernels
                backend = _CACHE.setdefault("cffi", CffiKernels())
            except Exception:
                backend = None
        backend = backend or _numpy()
    else:
        raise ValueError(f"unknown kernel backend {name!r}; "
                         f"choose one of {BACKEND_NAMES}")
    obs.inc("kernel.dispatch." + backend.name)
    return backend


def available_backends() -> Tuple[str, ...]:
    """Names that resolve to a *distinct, working* backend right now
    (``numpy`` always; ``numba`` / ``cffi`` when their toolchains work).
    The test matrices parameterize over this."""
    names = ["numpy"]
    if _try_numba() is not None:
        names.append("numba")
    if _try_cffi() is not None:
        names.append("cffi")
    return tuple(names)


def clear_cache() -> None:
    """Drop resolved backends and warning dedup state (test hook: the
    numba-absent fallback test re-resolves after monkeypatching the
    import machinery)."""
    _CACHE.clear()
    _WARNED.clear()


def describe_runtime() -> dict:
    """Self-describing kernel metadata for bench artifacts: what could
    run here and what versions were involved."""
    try:
        import numba
        numba_version: Optional[str] = numba.__version__
    except Exception:
        numba_version = None
    try:
        import cffi
        cffi_version: Optional[str] = cffi.__version__
    except Exception:
        cffi_version = None
    return {
        "default_kernel_backend": default_backend_name(),
        "available_kernel_backends": list(available_backends()),
        "numba_version": numba_version,
        "cffi_version": cffi_version,
        "numpy_version": np.__version__,
    }
