"""Batch operations: bulk inserts and index merges.

One-at-a-time inserts pay a full RMI traversal and possible shifting per
key.  When a large sorted (or sortable) batch arrives at once — nightly
loads, LSM-style flushes — it is cheaper to *rebuild affected leaves*:
route the batch once, group keys by target leaf, and rebuild each touched
leaf with a single model-based build over the union of its old and new
keys (Algorithm 3 amortized over the whole group).

``bulk_insert`` implements that, falling back to plain inserts for tiny
batches.  ``merge_indexes`` builds a fresh index over the union of two
indexes' contents (the classic way to merge a delta structure).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .alex import AlexIndex
from .config import AlexConfig
from .errors import DuplicateKeyError

#: Below this many keys per touched leaf, plain inserts win.
_REBUILD_THRESHOLD = 4


def bulk_insert(index: AlexIndex, keys, payloads: Optional[list] = None) -> None:
    """Insert a batch of unique new keys into ``index`` efficiently.

    Keys may arrive unsorted; duplicates (within the batch or against the
    index) raise :class:`DuplicateKeyError` *before* any mutation, so the
    operation is all-or-nothing.
    """
    keys = np.asarray(keys, dtype=np.float64)
    if payloads is None:
        payloads = [None] * len(keys)
    elif len(payloads) != len(keys):
        raise ValueError("payloads length must match keys length")
    if len(keys) == 0:
        return
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    payloads = [payloads[i] for i in order]
    dup = np.flatnonzero(np.diff(keys) == 0)
    if len(dup):
        raise DuplicateKeyError(float(keys[dup[0]]))

    # Route every key and group by target leaf (validation pass: no
    # duplicates against the index either).
    groups: dict = {}
    leaf_refs: dict = {}
    for i, key in enumerate(keys):
        leaf, _ = index._route(float(key))
        if leaf.contains(float(key)):
            raise DuplicateKeyError(float(key))
        groups.setdefault(id(leaf), []).append(i)
        leaf_refs[id(leaf)] = leaf

    for leaf_id, positions in groups.items():
        leaf = leaf_refs[leaf_id]
        if len(positions) < _REBUILD_THRESHOLD:
            for i in positions:
                leaf.insert(float(keys[i]), payloads[i])
            continue
        old_keys, old_payloads = leaf.export_sorted()
        new_keys = keys[positions]
        new_payloads = [payloads[i] for i in positions]
        merged_keys = np.concatenate([old_keys, new_keys])
        merged_payloads = old_payloads + new_payloads
        merge_order = np.argsort(merged_keys, kind="stable")
        merged_keys = merged_keys[merge_order]
        merged_payloads = [merged_payloads[j] for j in merge_order]
        leaf._model_based_build(merged_keys, merged_payloads,
                                leaf._initial_capacity(len(merged_keys)))
        leaf.counters.inserts += len(positions)
    index._num_keys += len(keys)


def merge_indexes(left: AlexIndex, right: AlexIndex,
                  config: Optional[AlexConfig] = None) -> AlexIndex:
    """Build a fresh index over the union of two indexes' contents.

    Key sets must be disjoint (raises :class:`DuplicateKeyError`
    otherwise).  The result uses ``config`` (default: ``left``'s config).
    """
    config = config or left.config
    left_keys, left_payloads = _export(left)
    right_keys, right_payloads = _export(right)
    keys = np.concatenate([left_keys, right_keys])
    payloads = left_payloads + right_payloads
    return AlexIndex.bulk_load(keys, payloads, config=config)


def _export(index: AlexIndex):
    keys = np.empty(len(index), dtype=np.float64)
    payloads: list = [None] * len(index)
    for i, (key, payload) in enumerate(index.items()):
        keys[i] = key
        payloads[i] = payload
    return keys, payloads
