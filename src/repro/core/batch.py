"""Batch operations: bulk inserts and index merges.

One-at-a-time inserts pay a full RMI traversal and possible shifting per
key.  When a large sorted (or sortable) batch arrives at once — nightly
loads, LSM-style flushes — it is cheaper to *rebuild affected leaves*:
route the batch once, group keys by target leaf, and rebuild each touched
leaf with a single model-based build over the union of its old and new
keys (Algorithm 3 amortized over the whole group).

``bulk_insert`` is the functional spelling of
:meth:`repro.core.alex.AlexIndex.insert_many`, which implements that on top
of the batch execution engine: the entire batch is routed with one
vectorized RMI descent, the per-leaf duplicate validation runs as one
lock-step search per touched leaf, and rebuilt leaves that overshoot the
adaptive RMI's node-size bound are routed through the split path
(:func:`repro.core.adaptive.split_until_fits`) exactly as scalar inserts
would be.  Tiny per-leaf groups fall back to plain inserts.

``merge_indexes`` builds a fresh index over the union of two indexes'
contents (the classic way to merge a delta structure); its export walks
the leaf chain and concatenates each leaf's arrays directly instead of
iterating items one by one.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .alex import AlexIndex
from .config import AlexConfig


def bulk_insert(index: AlexIndex, keys, payloads: Optional[list] = None) -> None:
    """Insert a batch of unique new keys into ``index`` efficiently.

    Alias for :meth:`AlexIndex.insert_many` (kept for callers that treat
    batch loading as a free function rather than an index method).
    """
    index.insert_many(keys, payloads)


def merge_indexes(left: AlexIndex, right: AlexIndex,
                  config: Optional[AlexConfig] = None) -> AlexIndex:
    """Build a fresh index over the union of two indexes' contents.

    Key sets must be disjoint (raises :class:`DuplicateKeyError`
    otherwise).  The result uses ``config`` (default: ``left``'s config).
    """
    config = config or left.config
    left_keys, left_payloads = export_arrays(left)
    right_keys, right_payloads = export_arrays(right)
    keys = np.concatenate([left_keys, right_keys])
    payloads = left_payloads + right_payloads
    return AlexIndex.bulk_load(keys, payloads, config=config)


def export_arrays(index: AlexIndex):
    """``(keys, payloads)`` of the whole index, via a leaf-chain walk that
    concatenates each leaf's arrays directly (no per-item iteration)."""
    key_parts: list = []
    payloads: list = []
    for leaf in index.leaves():
        leaf_keys, leaf_payloads = leaf.export_sorted()
        key_parts.append(leaf_keys)
        payloads.extend(leaf_payloads)
    if not key_parts:
        return np.empty(0, dtype=np.float64), payloads
    return np.concatenate(key_parts), payloads
