"""Batch operations: bulk inserts and index merges.

One-at-a-time inserts pay a full RMI traversal and possible shifting per
key.  When a large sorted (or sortable) batch arrives at once — nightly
loads, LSM-style flushes — it is cheaper to *rebuild affected leaves*:
route the batch once, group keys by target leaf, and rebuild each touched
leaf with a single model-based build over the union of its old and new
keys (Algorithm 3 amortized over the whole group).

``bulk_insert`` implements that on top of the batch execution engine: the
entire batch is routed with one vectorized RMI descent
(:meth:`AlexIndex._route_many`), the per-leaf duplicate validation runs as
one lock-step search per touched leaf, and rebuilt leaves that overshoot
the adaptive RMI's node-size bound are routed through the split path
(:func:`repro.core.adaptive.split_until_fits`) exactly as scalar inserts
would be.  Tiny per-leaf groups fall back to plain inserts.

``merge_indexes`` builds a fresh index over the union of two indexes'
contents (the classic way to merge a delta structure); its export walks
the leaf chain and concatenates each leaf's arrays directly instead of
iterating items one by one.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .adaptive import split_until_fits
from .alex import AlexIndex
from .config import ADAPTIVE_RMI, AlexConfig
from .errors import DuplicateKeyError

#: Below this many keys per touched leaf, plain inserts win.
_REBUILD_THRESHOLD = 4


def _splitting_enabled(index: AlexIndex) -> bool:
    """Whether the index honors the node-size bound by splitting (mirrors
    :meth:`AlexIndex._should_split`'s mode test)."""
    return (index.config.rmi_mode == ADAPTIVE_RMI
            and (index.config.split_on_inserts or index._cold_start))


def bulk_insert(index: AlexIndex, keys, payloads: Optional[list] = None) -> None:
    """Insert a batch of unique new keys into ``index`` efficiently.

    Keys may arrive unsorted; duplicates (within the batch or against the
    index) raise :class:`DuplicateKeyError` *before* any mutation, so the
    operation is all-or-nothing.  The whole batch is routed with a single
    vectorized RMI traversal; each touched leaf is rebuilt once over the
    union of its old and new keys, then split if the merged leaf exceeds
    the adaptive RMI's node-size bound (with splitting enabled).
    """
    keys = np.asarray(keys, dtype=np.float64)
    if payloads is None:
        payloads = [None] * len(keys)
    elif len(payloads) != len(keys):
        raise ValueError("payloads length must match keys length")
    if len(keys) == 0:
        return
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    payloads = [payloads[i] for i in order]
    dup = np.flatnonzero(np.diff(keys) == 0)
    if len(dup):
        raise DuplicateKeyError(float(keys[dup[0]]))

    # One vectorized traversal routes the whole batch; the validation pass
    # (no duplicates against the index either) runs as one lock-step search
    # per touched leaf.
    groups = index._route_many(keys)
    for leaf, _, lo, hi in groups:
        present = np.flatnonzero(leaf.find_keys_many(keys[lo:hi]) >= 0)
        if present.size:
            raise DuplicateKeyError(float(keys[lo + int(present[0])]))

    split_ok = _splitting_enabled(index)
    for leaf, parent, lo, hi in groups:
        count = hi - lo
        if count < _REBUILD_THRESHOLD:
            # Tiny groups: plain inserts through the index, which also
            # honors the node-size bound via the scalar split path.
            for i in range(lo, hi):
                index.insert(float(keys[i]), payloads[i])
            continue
        old_keys, old_payloads = leaf.export_sorted()
        merged_keys = np.concatenate([old_keys, keys[lo:hi]])
        merged_payloads = old_payloads + payloads[lo:hi]
        merge_order = np.argsort(merged_keys, kind="stable")
        merged_keys = merged_keys[merge_order]
        merged_payloads = [merged_payloads[j] for j in merge_order]
        leaf._model_based_build(merged_keys, merged_payloads,
                                leaf._initial_capacity(len(merged_keys)))
        leaf.counters.inserts += count
        index._num_keys += count
        if split_ok and leaf.num_keys > index.config.max_keys_per_node:
            inner = split_until_fits(leaf, parent, index.config,
                                     index.counters)
            if inner is not None and parent is None:
                index._root = inner


def merge_indexes(left: AlexIndex, right: AlexIndex,
                  config: Optional[AlexConfig] = None) -> AlexIndex:
    """Build a fresh index over the union of two indexes' contents.

    Key sets must be disjoint (raises :class:`DuplicateKeyError`
    otherwise).  The result uses ``config`` (default: ``left``'s config).
    """
    config = config or left.config
    left_keys, left_payloads = _export(left)
    right_keys, right_payloads = _export(right)
    keys = np.concatenate([left_keys, right_keys])
    payloads = left_payloads + right_payloads
    return AlexIndex.bulk_load(keys, payloads, config=config)


def _export(index: AlexIndex):
    """``(keys, payloads)`` of the whole index, via a leaf-chain walk that
    concatenates each leaf's arrays directly (no per-item iteration)."""
    key_parts: list = []
    payloads: list = []
    for leaf in index.leaves():
        leaf_keys, leaf_payloads = leaf.export_sorted()
        key_parts.append(leaf_keys)
        payloads.extend(leaf_payloads)
    if not key_parts:
        return np.empty(0, dtype=np.float64), payloads
    return np.concatenate(key_parts), payloads
