"""ALEX: the public index facade tying together node layouts and RMIs.

This is the paper's primary contribution as a library type.  An
:class:`AlexIndex` is an in-memory, updatable learned index over float64
keys with opaque payloads.  The four paper variants are chosen through
:class:`~repro.core.config.AlexConfig`:

>>> from repro import AlexIndex, ga_armi
>>> index = AlexIndex.bulk_load(sorted_keys, config=ga_armi())
>>> index.insert(42.0, b"payload")
>>> index.lookup(42.0)
b'payload'
>>> index.range_scan(40.0, limit=10)  # doctest: +SKIP

Keys must be unique (the paper's datasets contain no duplicates and
Section 7 lists duplicates as an open limitation).

**Batch API.**  Point reads come in batch form — :meth:`AlexIndex.lookup_many`,
:meth:`AlexIndex.get_many`, and :meth:`AlexIndex.contains_many` accept whole
key arrays and execute them through the vectorized batch engine: one sort,
one RMI descent per batch (``route_batch`` groups keys by leaf with
vectorized model predictions), and one lock-step in-node search per touched
leaf.  Writes batch through :meth:`AlexIndex.insert_many` (one routed
traversal, per-leaf grouped merges with split handling) and
:meth:`AlexIndex.delete_many` / :meth:`AlexIndex.erase_many` (one routed
traversal, per-leaf grouped removal rebuilds, all-or-nothing validation),
and range queries through :meth:`AlexIndex.range_query_many` (all lower
bounds routed in one descent, leaf arrays sliced per touched node).
Results are identical to a loop over the scalar operations; work counters
are aggregated once per batch.

The scalar ``lookup`` / ``get`` / ``contains`` methods share the batch
engine's kernels at lane width one — the same model-predict + exponential
search the lock-step kernels vectorize — but skip the batch wrappers' array
construction and sort entirely, so single-key latency is not taxed with
NumPy constant overhead.

>>> index.lookup_many([42.0, 7.0, 13.0])  # doctest: +SKIP
[b'payload', b'p7', b'p13']
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro import obs

from .adaptive import (build_adaptive_rmi, merge_leaves, split_leaf,
                       split_leaf_sideways, split_until_fits)
from .config import ADAPTIVE_RMI, AlexConfig
from .data_node import DataNode
from .errors import DuplicateKeyError, KeyNotFoundError
from .policy import (AdaptationPolicy, EV_DELETE, EV_INSERT, EV_READ,
                     HeuristicPolicy, PressureEvent, SMO_EXPAND, SMO_MERGE,
                     SMO_NONE, SMO_RETRAIN, SMO_SPLIT_DOWN,
                     SMO_SPLIT_SIDEWAYS)
from .rmi import (InnerNode, NODE_METADATA_BYTES, build_static_rmi,
                  make_data_node, route_batch)
from .stats import Counters


class AlexIndex:
    """An updatable adaptive learned index (paper Section 3).

    Create an empty index and fill it incrementally (a "cold start",
    Section 3.4.2), or :meth:`bulk_load` a sorted key array, which is how
    the paper initializes every experiment.

    Every structural decision — leaf expand/contract, split sideways,
    split down, catastrophic retrain, leaf merge, and the adaptive RMI's
    initial fanout — routes through one
    :class:`repro.core.policy.AdaptationPolicy` object.  The default
    :class:`~repro.core.policy.HeuristicPolicy` reproduces the classic
    fixed-threshold behaviour; pass a
    :class:`~repro.core.policy.CostModelPolicy` for the paper's
    expected-cost-driven adaptation (Section 3.4).
    """

    def __init__(self, config: Optional[AlexConfig] = None,
                 policy: Optional[AdaptationPolicy] = None):
        self.config = config or AlexConfig()
        self.policy = policy or HeuristicPolicy()
        self.counters = Counters()
        self._num_keys = 0
        leaf = make_data_node(self.config, self.counters, self.policy)
        leaf.build(np.empty(0), [])
        self._root: object = leaf
        # A cold-started adaptive index must be able to grow by splitting
        # even when the config leaves splitting off for bulk-loaded runs.
        self._cold_start = True

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def bulk_load(cls, keys, payloads: Optional[list] = None,
                  config: Optional[AlexConfig] = None,
                  policy: Optional[AdaptationPolicy] = None) -> "AlexIndex":
        """Build an index over ``keys`` (need not be pre-sorted).

        ``payloads[i]`` is stored with ``keys[i]``; payloads default to
        ``None``.  Raises :class:`DuplicateKeyError` on repeated keys.
        """
        index = cls(config, policy=policy)
        keys = np.asarray(keys, dtype=np.float64)
        if payloads is None:
            payloads = [None] * len(keys)
        elif len(payloads) != len(keys):
            raise ValueError("payloads length must match keys length")
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        payloads = [payloads[i] for i in order]
        if len(keys) > 1:
            dup = np.flatnonzero(np.diff(keys) == 0)
            if len(dup):
                raise DuplicateKeyError(float(keys[dup[0]]))
        if index.config.rmi_mode == ADAPTIVE_RMI:
            root, _ = build_adaptive_rmi(keys, payloads, index.config,
                                         index.counters, index.policy)
        else:
            root, _ = build_static_rmi(keys, payloads, index.config,
                                       index.counters, index.policy)
        index._root = root
        index._num_keys = len(keys)
        index._cold_start = False
        return index

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def _route(self, key: float) -> Tuple[DataNode, Optional[InnerNode]]:
        """Descend the RMI to the leaf responsible for ``key``; also return
        the leaf's parent (for splitting)."""
        node = self._root
        parent: Optional[InnerNode] = None
        while isinstance(node, InnerNode):
            parent = node
            node = node.child_for(key)
        return node, parent

    def _route_path(self, key: float) -> Tuple[DataNode, List[InnerNode]]:
        """Like :meth:`_route` but returns the whole inner-node path (root
        first, parent last; empty for a root leaf) — the delete-side SMOs
        need it to collapse inner nodes left with a single child after
        leaf merges."""
        node = self._root
        path: List[InnerNode] = []
        while isinstance(node, InnerNode):
            path.append(node)
            node = node.child_for(key)
        return node, path

    def _route_many(self, sorted_keys: np.ndarray):
        """Batch routing: one vectorized RMI descent for a whole sorted key
        array.  Returns ``(leaf, parent, lo, hi)`` groups in key order (see
        :func:`repro.core.rmi.route_batch`)."""
        return route_batch(self._root, sorted_keys)

    @staticmethod
    def _normalize_batch(keys, payloads: Optional[list]):
        """Normalize a write batch: float64 keys sorted stably with their
        payloads aligned (``None``-filled when omitted), raising on length
        mismatch or in-batch duplicates.  Shared by the single-index and
        sharded batch-insert paths."""
        keys = np.asarray(keys, dtype=np.float64)
        if payloads is None:
            payloads = [None] * len(keys)
        elif len(payloads) != len(keys):
            raise ValueError("payloads length must match keys length")
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        payloads = [payloads[i] for i in order]
        if len(keys) > 1:
            dup = np.flatnonzero(np.diff(keys) == 0)
            if len(dup):
                raise DuplicateKeyError(float(keys[dup[0]]))
        return keys, payloads

    @staticmethod
    def _normalize_delete_batch(keys) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Normalize a delete batch: float64 keys sorted, raising
        :class:`KeyNotFoundError` on in-batch duplicates (the second
        removal of the same key could never succeed).  Shared by the
        single-index and sharded batch-delete paths."""
        skeys, order = AlexIndex._sort_batch(keys)
        if len(skeys) > 1:
            dup = np.flatnonzero(np.diff(skeys) == 0)
            if len(dup):
                raise KeyNotFoundError(float(skeys[dup[0]]))
        return skeys, order

    @staticmethod
    def _sort_batch(keys) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Normalize a batch of keys for routing: float64 array plus the
        argsort order (``None`` when already sorted, the common trace
        shape, so the engine skips the re-permutation)."""
        keys = np.asarray(keys, dtype=np.float64)
        if keys.ndim != 1:
            raise ValueError(f"batch keys must be 1-D, got shape {keys.shape}")
        if len(keys) <= 1 or bool((np.diff(keys) >= 0).all()):
            return keys, None
        # Introsort, not stable: equal keys resolve to the same slot and
        # payload, and the write paths reject in-batch duplicates, so
        # stability buys nothing here and costs ~5x on large batches.
        order = np.argsort(keys)
        return keys[order], order

    def first_leaf(self) -> DataNode:
        """Leftmost leaf of the tree (start of the leaf chain)."""
        node = self._root
        while isinstance(node, InnerNode):
            node = node.children[0]
        return node

    def leaves(self) -> Iterator[DataNode]:
        """Yield every leaf in key order via the leaf chain."""
        leaf: Optional[DataNode] = self.first_leaf()
        while leaf is not None:
            yield leaf
            leaf = leaf.next_leaf

    def nodes(self) -> Iterator[object]:
        """Yield every node (inner and leaf), depth-first."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, InnerNode):
                stack.extend(node.distinct_children())

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------

    def insert(self, key: float, payload=None) -> None:
        """Insert a new key.  Raises :class:`DuplicateKeyError` if present.

        The adaptation policy picks the pre-insert SMO (Section 3.4.2):
        under the default :class:`~repro.core.policy.HeuristicPolicy` a
        leaf pushed past ``max_keys_per_node`` is split down before the
        insert (when the adaptive RMI has splitting enabled or the index
        is cold-started), exactly the classic behaviour; the cost-model
        policy may instead expand in place, split sideways, or retrain.
        """
        key = float(key)
        leaf, parent = self._route(key)
        action = self.policy.choose_insert_smo(leaf, parent, self)
        if action != SMO_NONE and self._apply_leaf_smo(action, leaf, parent):
            leaf, parent = self._route(key)
        if self.policy.tracks_pressure:
            c = self.counters
            before_shifts = c.shifts
            before_probes = c.probes + c.comparisons
            leaf.insert(key, payload)
            self.policy.record(leaf, PressureEvent(
                EV_INSERT, 1, c.probes + c.comparisons - before_probes,
                c.shifts - before_shifts, searches=1))
        else:
            leaf.insert(key, payload)
        self._num_keys += 1

    def _apply_leaf_smo(self, action: str, leaf: DataNode,
                        parent: Optional[InnerNode],
                        path: Optional[List[InnerNode]] = None) -> bool:
        """Run one policy-chosen SMO on ``leaf`` (mutation mechanics only;
        the decision already happened).  Returns whether the tree shape
        changed, i.e. whether the caller must re-route.

        A degenerate sideways split (single parent slot, or every key on
        one side) falls back to a split down, mirroring how a degenerate
        split down is accepted as an oversized leaf.  ``path`` (the full
        inner-node route to ``leaf``) enables the merge-up collapse after
        a leaf merge; without it merges still work but inner nodes with a
        single child are kept.
        """
        if action == SMO_EXPAND:
            leaf.expand()  # resets the drift window via _model_based_build
            self.policy.note_applied(action)
            return False
        if action == SMO_RETRAIN:
            leaf.retrain()  # resets the drift window via _model_based_build
            self.policy.note_applied(action)
            return False
        if action == SMO_SPLIT_SIDEWAYS:
            if split_leaf_sideways(leaf, parent, self.config,
                                   self.counters) is not None:
                self.policy.note_applied(SMO_SPLIT_SIDEWAYS)
                return True
            action = SMO_SPLIT_DOWN  # degenerate sideways: fall back
        if action == SMO_SPLIT_DOWN:
            inner = split_leaf(leaf, parent, self.config, self.counters)
            if inner is not None:
                if parent is None:
                    self._root = inner
                self.policy.note_applied(SMO_SPLIT_DOWN)
            return inner is not None
        if action == SMO_MERGE:
            merged = merge_leaves(leaf, parent, self.config, self.counters,
                                  self.policy.max_merged_keys(self.config))
            if merged is not None:
                if path:
                    self._collapse_path(merged, path)
                self.policy.note_applied(SMO_MERGE)
            return merged is not None
        return False

    def _collapse_path(self, node: DataNode, path: List[InnerNode]) -> None:
        """Merge *up* (the inverse of split down): splice out every inner
        node on ``path`` whose slots all point at ``node`` after a leaf
        merge, restoring the traversal depth the splits added."""
        for i in range(len(path) - 1, -1, -1):
            inner = path[i]
            if not all(child is node for child in inner.children):
                break
            if i == 0:
                self._root = node
            else:
                path[i - 1].replace_child(inner, node)
        return

    def _find_key_observed(self, leaf: DataNode, key: float) -> int:
        """``leaf.find_key`` plus a read :class:`PressureEvent` carrying
        the search-iteration cost, when the policy tracks pressure."""
        if not self.policy.tracks_pressure:
            return leaf.find_key(key)
        c = self.counters
        before = c.probes + c.comparisons
        pos = leaf.find_key(key)
        self.policy.record(leaf, PressureEvent(
            EV_READ, 1, c.probes + c.comparisons - before, 0))
        return pos

    def _find_keys_many_observed(self, leaf: DataNode,
                                 targets: np.ndarray) -> np.ndarray:
        """Batch counterpart of :meth:`_find_key_observed`: one event per
        touched leaf with the whole group's count and search cost."""
        if not self.policy.tracks_pressure:
            return leaf.find_keys_many(targets)
        c = self.counters
        before = c.probes + c.comparisons
        pos = leaf.find_keys_many(targets)
        self.policy.record(leaf, PressureEvent(
            EV_READ, len(targets), c.probes + c.comparisons - before, 0))
        return pos

    def lookup(self, key: float):
        """Return the payload stored for ``key``; raises
        :class:`KeyNotFoundError` when absent.

        Single-key fast path: one scalar descent plus the scalar search
        kernel (the lane-width-1 counterpart of the batch engine's
        lock-step search), with no batch array construction or sorting.
        Results and counter totals match a one-element :meth:`lookup_many`.
        """
        key = float(key)
        leaf, _ = self._route(key)
        pos = self._find_key_observed(leaf, key)
        if pos < 0:
            raise KeyNotFoundError(key)
        self.counters.lookups += 1
        return leaf.payloads[pos]

    def get(self, key: float, default=None):
        """Like :meth:`lookup` but returns ``default`` when absent."""
        key = float(key)
        leaf, _ = self._route(key)
        pos = self._find_key_observed(leaf, key)
        if pos < 0:
            return default
        self.counters.lookups += 1
        return leaf.payloads[pos]

    def contains(self, key: float) -> bool:
        """Whether ``key`` is present (single-key fast path, see
        :meth:`lookup`)."""
        key = float(key)
        leaf, _ = self._route(key)
        return self._find_key_observed(leaf, key) >= 0

    # ------------------------------------------------------------------
    # Batch point operations (the API layer of the batch engine)
    # ------------------------------------------------------------------

    @obs.timed("core.lookup_many")
    def lookup_many(self, keys) -> list:
        """Return the payloads for a whole batch of keys, in input order.

        One sort + one vectorized RMI descent + one lock-step search per
        touched leaf, instead of a full traversal per key.  Raises
        :class:`KeyNotFoundError` when any key is absent (no partial
        result is returned); results are identical to ``[self.lookup(k)
        for k in keys]``.
        """
        skeys, order = self._sort_batch(keys)
        n = len(skeys)
        if n == 0:
            return []
        # Assemble in sorted order (cheap slice assignment per leaf) and
        # permute back to input order once at the end.
        sorted_out: list = [None] * n
        for leaf, _, lo, hi in self._route_many(skeys):
            pos = self._find_keys_many_observed(leaf, skeys[lo:hi])
            missing = np.flatnonzero(pos < 0)
            if missing.size:
                raise KeyNotFoundError(float(skeys[lo + int(missing[0])]))
            sorted_out[lo:hi] = map(leaf.payloads.__getitem__, pos.tolist())
        self.counters.lookups += n
        if order is None:
            return sorted_out
        # Gather through the vectorized inverse permutation: a C-level
        # read beats an element-wise scatter write by ~3x at batch scale.
        inverse = np.empty(n, dtype=np.int64)
        inverse[order] = np.arange(n, dtype=np.int64)
        return list(map(sorted_out.__getitem__, inverse.tolist()))

    @obs.timed("core.get_many")
    def get_many(self, keys, default=None) -> list:
        """Like :meth:`lookup_many` but absent keys yield ``default``
        instead of raising."""
        skeys, order = self._sort_batch(keys)
        n = len(skeys)
        if n == 0:
            return []
        sorted_out: list = [default] * n
        found = 0
        for leaf, _, lo, hi in self._route_many(skeys):
            pos = self._find_keys_many_observed(leaf, skeys[lo:hi])
            payloads = leaf.payloads
            hits = int((pos >= 0).sum())
            if hits == hi - lo:  # no misses: C-level gather
                sorted_out[lo:hi] = map(payloads.__getitem__, pos.tolist())
            else:
                sorted_out[lo:hi] = [default if p < 0 else payloads[p]
                                     for p in pos.tolist()]
            found += hits
        self.counters.lookups += found
        if order is None:
            return sorted_out
        inverse = np.empty(n, dtype=np.int64)
        inverse[order] = np.arange(n, dtype=np.int64)
        return list(map(sorted_out.__getitem__, inverse.tolist()))

    @obs.timed("core.contains_many")
    def contains_many(self, keys) -> np.ndarray:
        """Vectorized membership test: a boolean array aligned with the
        input batch, identical to ``[self.contains(k) for k in keys]``."""
        skeys, order = self._sort_batch(keys)
        n = len(skeys)
        result = np.zeros(n, dtype=bool)
        for leaf, _, lo, hi in self._route_many(skeys):
            hits = self._find_keys_many_observed(leaf, skeys[lo:hi]) >= 0
            if order is None:
                result[lo:hi] = hits
            else:
                result[order[lo:hi]] = hits
        return result

    #: Below this many new keys per touched leaf, plain inserts win over a
    #: merge-rebuild of the leaf.
    _REBUILD_THRESHOLD = 4

    @obs.timed("core.insert_many")
    def insert_many(self, keys, payloads: Optional[list] = None) -> None:
        """Insert a batch of unique new keys in one routed traversal.

        Keys may arrive unsorted; duplicates (within the batch or against
        the index) raise :class:`DuplicateKeyError` *before* any mutation,
        so the operation is all-or-nothing.  The whole batch is routed with
        a single vectorized RMI descent (:meth:`_route_many`); each touched
        leaf receives its keys as one group — large groups merge-rebuild
        the leaf over the union of its old and new keys (Algorithm 3
        amortized over the group), tiny groups fall back to plain inserts —
        and leaves pushed past the adaptive RMI's node-size bound are split
        (:func:`repro.core.adaptive.split_until_fits`) exactly as scalar
        inserts would split them.
        """
        keys, payloads = self._normalize_batch(keys, payloads)
        if len(keys) == 0:
            return

        # One vectorized traversal routes the whole batch; the validation
        # pass (no duplicates against the index either) runs as one
        # lock-step search per touched leaf.
        groups = self._route_many(keys)
        for leaf, _, lo, hi in groups:
            present = np.flatnonzero(leaf.find_keys_many(keys[lo:hi]) >= 0)
            if present.size:
                raise DuplicateKeyError(float(keys[lo + int(present[0])]))
        self._apply_insert_groups(groups, keys, payloads)

    def insert_sorted_unchecked(self, keys: np.ndarray,
                                payloads: list) -> None:
        """:meth:`insert_many` minus normalization and validation, for
        callers that already guarantee the preconditions.

        ``keys`` must be a sorted, duplicate-free float64 array of keys
        known to be absent from the index, with ``payloads`` aligned; the
        sharded service's batch-write path validates once across all
        shards and then applies through this method, instead of paying a
        second routed validation descent per shard.  Violating the
        preconditions corrupts the index.
        """
        if len(keys) == 0:
            return
        self._apply_insert_groups(self._route_many(keys), keys, payloads)

    def _apply_insert_groups(self, groups, keys: np.ndarray,
                             payloads: list) -> None:
        """Mutation phase of a validated batch insert: per-leaf grouped
        merge-rebuilds (plain inserts for tiny groups) with split
        handling (the oversized-rebuild decision routes through the
        adaptation policy)."""
        for leaf, parent, lo, hi in groups:
            count = hi - lo
            if count < self._REBUILD_THRESHOLD:
                # Tiny groups: plain inserts through the index, which also
                # honors the node-size bound via the scalar SMO path.
                for i in range(lo, hi):
                    self.insert(float(keys[i]), payloads[i])
                continue
            old_keys, old_payloads = leaf.export_sorted()
            merged_keys = np.concatenate([old_keys, keys[lo:hi]])
            merged_payloads = old_payloads + payloads[lo:hi]
            merge_order = np.argsort(merged_keys, kind="stable")
            merged_keys = merged_keys[merge_order]
            merged_payloads = [merged_payloads[j] for j in merge_order]
            leaf._model_based_build(merged_keys, merged_payloads,
                                    leaf._initial_capacity(len(merged_keys)))
            leaf.counters.inserts += count
            self._num_keys += count
            if self.policy.tracks_pressure:
                # _model_based_build reset the drift window; record the
                # batch afterwards so the write mix it represents
                # survives into the fresh window (searches=0: a rebuild
                # places keys without searching).
                self.policy.record(leaf, PressureEvent(EV_INSERT, count))
            if self.policy.should_split_oversized(leaf, self):
                before_splits = self.counters.splits
                inner = split_until_fits(leaf, parent, self.config,
                                         self.counters)
                if inner is not None and parent is None:
                    self._root = inner
                for _ in range(self.counters.splits - before_splits):
                    self.policy.note_applied(SMO_SPLIT_DOWN)

    def delete(self, key: float) -> None:
        """Remove ``key``; raises :class:`KeyNotFoundError` when absent.

        After the delete the adaptation policy may fold an underfull leaf
        into a same-parent sibling (:func:`repro.core.adaptive
        .merge_leaves`, the delete-side SMO; the default heuristic never
        merges, matching the classic behaviour).
        """
        key = float(key)
        leaf, path = self._route_path(key)
        parent = path[-1] if path else None
        leaf.delete(key)
        self._num_keys -= 1
        if self.policy.tracks_pressure:
            self.policy.record(leaf, PressureEvent(EV_DELETE, 1))
        action = self.policy.choose_delete_smo(leaf, parent, self)
        if action != SMO_NONE:
            self._apply_leaf_smo(action, leaf, parent, path)

    @obs.timed("core.delete_many")
    def delete_many(self, keys) -> None:
        """Remove a batch of keys in one routed traversal, all-or-nothing.

        The batch is sorted and routed with a single vectorized RMI
        descent (:meth:`_route_many`), every key is located with one
        lock-step search per touched leaf *before* any mutation (a missing
        key — or a duplicate within the batch, whose second removal could
        not succeed — raises :class:`KeyNotFoundError` with nothing
        deleted), and each touched leaf then applies its whole group at
        once: large groups rebuild the leaf over the surviving records
        (the delete-side mirror of :meth:`insert_many`'s merge-rebuild),
        tiny groups fall back to scalar deletes.  Delete-side SMOs (leaf
        contraction and policy-chosen merges) run after the batch lands.
        """
        skeys, _ = self._normalize_delete_batch(keys)
        if len(skeys) == 0:
            return
        groups = self._route_many(skeys)
        positions = []
        for leaf, _, lo, hi in groups:
            pos = leaf.find_keys_many(skeys[lo:hi])
            missing = np.flatnonzero(pos < 0)
            if missing.size:
                raise KeyNotFoundError(float(skeys[lo + int(missing[0])]))
            positions.append(pos)
        self._apply_delete_groups(groups, skeys, positions)

    @obs.timed("core.erase_many")
    def erase_many(self, keys) -> int:
        """Like :meth:`delete_many` but absent keys are skipped instead of
        raising; returns the number of keys actually removed (the
        C++ ALEX ``erase`` contract, batched)."""
        skeys, _ = self._sort_batch(keys)
        if len(skeys) == 0:
            return 0
        if len(skeys) > 1:
            # The second copy of an in-batch duplicate is "already absent".
            skeys = skeys[np.concatenate([[True], np.diff(skeys) > 0])]
        groups = self._route_many(skeys)
        positions = [leaf.find_keys_many(skeys[lo:hi])
                     for leaf, _, lo, hi in groups]
        return self._apply_delete_groups(groups, skeys, positions)

    def delete_sorted_unchecked(self, keys: np.ndarray) -> None:
        """:meth:`delete_many` minus normalization and validation, for
        callers that already guarantee the preconditions (sorted,
        duplicate-free float64 keys all present in the index) — the
        sharded service's batch-delete path validates once across all
        shards and applies through this, mirroring
        :meth:`insert_sorted_unchecked`."""
        if len(keys) == 0:
            return
        groups = self._route_many(keys)
        positions = [leaf.find_keys_many(keys[lo:hi])
                     for leaf, _, lo, hi in groups]
        self._apply_delete_groups(groups, keys, positions)

    def _apply_delete_groups(self, groups, keys: np.ndarray,
                             positions: list) -> int:
        """Mutation phase of a batch delete: apply each leaf's group
        (scalar deletes for tiny groups, one rebuild over the survivors
        otherwise), then run the policy's delete-side SMOs.

        ``positions[g]`` holds each key's occupied slot in its leaf, -1
        where the key should be skipped (the :meth:`erase_many` path).
        SMOs are deferred until every group has landed: a merge replaces
        leaves, which would invalidate the handles later groups carry.
        """
        deleted = 0
        touched: list = []
        for (leaf, parent, lo, hi), pos in zip(groups, positions):
            present = pos >= 0
            count = int(present.sum())
            if count == 0:
                continue
            if count < self._REBUILD_THRESHOLD:
                for i in np.flatnonzero(present):
                    leaf.delete(float(keys[lo + int(i)]))
            else:
                keep = leaf.occupied.copy()
                keep[pos[present]] = False
                kept = np.flatnonzero(keep)
                new_keys = leaf.keys[kept].copy()
                new_payloads = [leaf.payloads[p] for p in kept]
                leaf._model_based_build(new_keys, new_payloads,
                                        leaf._initial_capacity(len(new_keys)))
                leaf.counters.deletes += count
            deleted += count
            self._num_keys -= count
            if self.policy.tracks_pressure:
                self.policy.record(leaf, PressureEvent(EV_DELETE, count))
            touched.append(float(keys[lo]))
        for probe_key in touched:
            # A batch delete can leave a leaf far below the merge floor;
            # keep merging (each step folds in one sibling) until the
            # policy is satisfied or no candidate remains.
            for _ in range(64):
                leaf, path = self._route_path(probe_key)
                parent = path[-1] if path else None
                action = self.policy.choose_delete_smo(leaf, parent, self)
                if action == SMO_NONE or not self._apply_leaf_smo(
                        action, leaf, parent, path):
                    break
        return deleted

    def update(self, key: float, payload) -> None:
        """Replace the payload of an existing key."""
        leaf, _ = self._route(float(key))
        leaf.update(float(key), payload)

    def upsert(self, key: float, payload) -> None:
        """Insert ``key`` or update its payload when already present
        (Section 3.2: key-preserving updates are lookup + write)."""
        try:
            self.update(key, payload)
        except KeyNotFoundError:
            self.insert(key, payload)

    # ------------------------------------------------------------------
    # Range operations
    # ------------------------------------------------------------------

    def range_scan(self, start_key: float, limit: int) -> list:
        """Return up to ``limit`` ``(key, payload)`` pairs with key >=
        ``start_key``, in key order (the paper's Workload-E-style scan)."""
        leaf, _ = self._route(float(start_key))
        self.counters.scans += 1
        return leaf.scan_from(float(start_key), limit)

    def range_query(self, lo: float, hi: float) -> list:
        """All ``(key, payload)`` pairs with ``lo <= key <= hi``."""
        lo = float(lo)
        leaf, _ = self._route(lo)
        self.counters.scans += 1
        return self._collect_range(leaf, leaf.find_insert_pos(lo), float(hi))

    @obs.timed("core.range_query_many")
    def range_query_many(self, los, his) -> list:
        """Vectorized :meth:`range_query` for a whole batch of bounds.

        Returns one result list per ``(los[i], his[i])`` pair, in input
        order, identical to ``[self.range_query(lo, hi) for lo, hi in
        zip(los, his)]``.  All lower bounds are routed in a single
        vectorized RMI descent, each touched leaf resolves its start
        positions with one lock-step search, and the matching records are
        sliced out of the leaf arrays node by node instead of probing
        per record.
        """
        los = np.asarray(los, dtype=np.float64)
        his = np.asarray(his, dtype=np.float64)
        if los.ndim != 1 or los.shape != his.shape:
            raise ValueError("los and his must be 1-D arrays of equal length")
        n = len(los)
        if n == 0:
            return []
        sorted_los, order = self._sort_batch(los)
        out: list = [None] * n
        self.counters.scans += n
        for leaf, _, lo, hi in self._route_many(sorted_los):
            starts = leaf.find_insert_pos_many(sorted_los[lo:hi])
            for i, start in zip(range(lo, hi), starts.tolist()):
                q = i if order is None else int(order[i])
                out[q] = self._collect_range(leaf, int(start), float(his[q]))
        return out

    def _collect_range(self, leaf: DataNode, pos: int, hi: float) -> list:
        """Collect ``(key, payload)`` pairs from ``leaf[pos:]`` onward along
        the leaf chain while keys stay ``<= hi`` (vectorized per-node
        slicing shared by the scalar and batch range queries)."""
        out: list = []
        node: Optional[DataNode] = leaf
        while node is not None:
            occ = np.flatnonzero(node.occupied[pos:]) + pos
            if occ.size:
                seg_keys = node.keys[occ]
                cut = int(np.searchsorted(seg_keys, hi, side="right"))
                payloads = node.payloads
                for k, p in zip(seg_keys[:cut].tolist(), occ[:cut].tolist()):
                    out.append((k, payloads[p]))
                node.counters.payload_bytes_copied += (
                    cut * self.config.payload_size)
                if cut < occ.size:
                    return out
            node = node.next_leaf
            pos = 0
            self.counters.pointer_follows += 1
        return out

    def items(self) -> Iterator[Tuple[float, object]]:
        """Yield all ``(key, payload)`` pairs in key order."""
        for leaf in self.leaves():
            yield from leaf.iter_items()

    def keys(self) -> Iterator[float]:
        """Yield all keys in key order."""
        for key, _ in self.items():
            yield key

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._num_keys

    def __contains__(self, key) -> bool:
        return self.contains(float(key))

    def __getitem__(self, key):
        return self.lookup(float(key))

    def __setitem__(self, key, payload) -> None:
        self.upsert(float(key), payload)

    def __delitem__(self, key) -> None:
        self.delete(float(key))

    def __iter__(self) -> Iterator[float]:
        return self.keys()

    # ------------------------------------------------------------------
    # Introspection and accounting
    # ------------------------------------------------------------------

    @property
    def variant_name(self) -> str:
        """The paper's name for this configuration (e.g. ``ALEX-GA-ARMI``)."""
        return self.config.variant_name

    def num_leaves(self) -> int:
        """Number of data nodes."""
        return sum(1 for _ in self.leaves())

    def num_models(self) -> int:
        """Number of linear models (inner + leaf), the paper's model count."""
        count = 0
        for node in self.nodes():
            if isinstance(node, InnerNode) or node.model is not None:
                count += 1
        return count

    def depth(self) -> int:
        """Maximum number of inner levels above any leaf (0 = root leaf)."""
        def _depth(node) -> int:
            if not isinstance(node, InnerNode):
                return 0
            return 1 + max(_depth(child) for child in node.distinct_children())
        return _depth(self._root)

    def index_size_bytes(self) -> int:
        """Index footprint: models + child pointers + metadata
        (Section 5.1's accounting; excludes the data arrays)."""
        total = 0
        for node in self.nodes():
            if isinstance(node, InnerNode):
                total += node.size_bytes()
            else:
                total += node.model_size_bytes() + NODE_METADATA_BYTES
        return total

    def data_size_bytes(self) -> int:
        """Data footprint: allocated key/payload arrays (gaps included)
        plus per-node bitmaps."""
        return sum(leaf.data_size_bytes() for leaf in self.leaves())

    def leaf_sizes(self) -> np.ndarray:
        """Key count per leaf (Figure 12's distribution)."""
        return np.array([leaf.num_keys for leaf in self.leaves()], dtype=np.int64)

    def validate(self) -> None:
        """Check every structural invariant; raises ``AssertionError`` on
        corruption.  Used by the tests and safe to call in production.

        Validates each leaf's internal invariants, the key-ordering of the
        leaf chain, that the chain covers exactly the tree's leaves, and
        that routing sends each leaf's min/max key back to that leaf.
        """
        chain = list(self.leaves())
        tree_leaves = [n for n in self.nodes() if not isinstance(n, InnerNode)]
        if len(chain) != len(tree_leaves):
            raise AssertionError(
                f"leaf chain has {len(chain)} nodes, tree has {len(tree_leaves)}"
            )
        if set(map(id, chain)) != set(map(id, tree_leaves)):
            raise AssertionError("leaf chain and tree disagree on leaves")
        total = 0
        prev_max: Optional[float] = None
        for leaf in chain:
            leaf.check_invariants()
            total += leaf.num_keys
            if leaf.num_keys == 0:
                continue
            if prev_max is not None and leaf.min_key() <= prev_max:
                raise AssertionError("leaf chain keys are not increasing")
            prev_max = leaf.max_key()
            for probe in (leaf.min_key(), leaf.max_key()):
                routed, _ = self._route(probe)
                if routed is not leaf:
                    raise AssertionError(
                        f"routing sends key {probe} to a different leaf"
                    )
        if total != self._num_keys:
            raise AssertionError(
                f"leaf keys total {total}, index believes {self._num_keys}"
            )
