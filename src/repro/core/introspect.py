"""Index introspection: structural statistics reports.

Operators of a production index want to see *why* it performs the way it
does: leaf occupancy, model accuracy, packed-run lengths, depth profile,
space breakdown.  :func:`structure_report` collects all of it in one pass;
:func:`format_report` renders the human-readable version used by the
examples and the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from .alex import AlexIndex
from .gapped_array import GappedArrayNode
from .rmi import InnerNode


@dataclass
class StructureReport:
    """One-pass structural summary of an ALEX index."""

    num_keys: int = 0
    num_leaves: int = 0
    num_inner_nodes: int = 0
    depth: int = 0
    index_bytes: int = 0
    data_bytes: int = 0
    leaf_keys_min: int = 0
    leaf_keys_median: float = 0.0
    leaf_keys_max: int = 0
    density_mean: float = 0.0
    density_min: float = 0.0
    largest_packed_run: int = 0
    mean_prediction_error: float = 0.0
    exact_prediction_fraction: float = 0.0
    cold_leaves: int = 0
    depth_histogram: Dict[int, int] = field(default_factory=dict)


def structure_report(index: AlexIndex) -> StructureReport:
    """Collect a :class:`StructureReport` for ``index``."""
    report = StructureReport()
    report.num_keys = len(index)
    report.depth = index.depth()
    report.index_bytes = index.index_size_bytes()
    report.data_bytes = index.data_size_bytes()

    # Depth histogram and inner count via one walk.
    def walk(node, depth):
        if isinstance(node, InnerNode):
            report.num_inner_nodes += 1
            for child in node.distinct_children():
                walk(child, depth + 1)
        else:
            report.depth_histogram[depth] = (
                report.depth_histogram.get(depth, 0) + 1)

    walk(index._root, 0)

    sizes: List[int] = []
    densities: List[float] = []
    errors: List[np.ndarray] = []
    for leaf in index.leaves():
        report.num_leaves += 1
        sizes.append(leaf.num_keys)
        if leaf.capacity:
            densities.append(leaf.density)
        if leaf.model is None:
            report.cold_leaves += 1
        else:
            positions = np.flatnonzero(leaf.occupied)
            if len(positions):
                predicted = leaf.model.predict_pos_vec(
                    leaf.keys[positions], leaf.capacity)
                errors.append(np.abs(predicted - positions))
        if isinstance(leaf, GappedArrayNode):
            report.largest_packed_run = max(report.largest_packed_run,
                                            leaf.largest_packed_run())
    if sizes:
        arr = np.array(sizes)
        report.leaf_keys_min = int(arr.min())
        report.leaf_keys_median = float(np.median(arr))
        report.leaf_keys_max = int(arr.max())
    if densities:
        report.density_mean = float(np.mean(densities))
        report.density_min = float(np.min(densities))
    if errors:
        all_errors = np.concatenate(errors)
        report.mean_prediction_error = float(all_errors.mean())
        report.exact_prediction_fraction = float((all_errors == 0).mean())
    return report


def format_report(report: StructureReport) -> str:
    """Human-readable rendering of a :class:`StructureReport`."""
    depth_profile = ", ".join(
        f"depth {d}: {n}" for d, n in sorted(report.depth_histogram.items()))
    lines = [
        f"keys:            {report.num_keys:,}",
        f"leaves:          {report.num_leaves:,} "
        f"({report.cold_leaves} cold) across {report.num_inner_nodes} "
        f"inner nodes, max depth {report.depth}",
        f"leaf profile:    {depth_profile}",
        f"leaf keys:       min {report.leaf_keys_min}, "
        f"median {report.leaf_keys_median:.0f}, max {report.leaf_keys_max}",
        f"density:         mean {report.density_mean:.2f}, "
        f"min {report.density_min:.2f}",
        f"packed run:      longest {report.largest_packed_run}",
        f"model accuracy:  mean |error| {report.mean_prediction_error:.2f}, "
        f"exact {report.exact_prediction_fraction:.1%}",
        f"space:           index {report.index_bytes:,} B, "
        f"data {report.data_bytes:,} B",
    ]
    return "\n".join(lines)
