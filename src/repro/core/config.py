"""Configuration for the four ALEX variants.

The paper evaluates a 2x2 design space (Section 5.1): node layout in
{Gapped Array, Packed Memory Array} times model hierarchy in {static RMI,
adaptive RMI}.  :class:`AlexConfig` captures that choice plus every tunable
the evaluation grid-searches (number of static models, max keys per leaf,
density bounds / space overhead, split fanout).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from .kernels import BACKEND_NAMES, default_backend_name

GAPPED_ARRAY = "gapped_array"
PACKED_MEMORY_ARRAY = "pma"
STATIC_RMI = "static"
ADAPTIVE_RMI = "adaptive"


@dataclass(frozen=True)
class AlexConfig:
    """Tunable parameters of an ALEX index.

    Parameters
    ----------
    node_layout:
        ``"gapped_array"`` or ``"pma"`` (Section 3.3).
    rmi_mode:
        ``"static"`` or ``"adaptive"`` (Section 3.4).
    density_upper:
        Upper density limit ``d`` of a gapped array.  At build time each
        node is allocated so that its density is ``d**2``; the expansion
        factor is ``c = 1 / d**2``.  The paper's default parameterization
        gives ~43% data-space overhead, i.e. ``c ≈ 1.43`` and
        ``d ≈ sqrt(1/1.43) ≈ 0.836``.
    num_models:
        Number of leaf models for the static RMI (grid-searched per dataset
        in the paper).
    max_keys_per_node:
        Maximum bound on keys per leaf for the adaptive RMI (Algorithm 4).
    inner_partitions:
        Number of partitions a non-root inner node creates during adaptive
        initialization (Algorithm 4: "a fixed number of partitions that is
        tuned or learned for each dataset").
    split_fanout:
        Number of children created when a leaf splits on insert
        (Section 3.4.2).
    split_on_inserts:
        Whether adaptive RMI performs node splitting on inserts.  Matches
        the paper's default: "Unless otherwise stated, adaptive RMI does not
        do node splitting on inserts" — benches that need it (Fig. 5b/5c,
        cold starts) turn it on explicitly.
    min_keys_for_model:
        Below this occupancy a node runs plain binary search instead of
        building a model ("cold start", Section 3.3.3).
    pma_segment_density / pma_root_density:
        PMA implicit-tree density bounds at the leaf segments and at the
        root (Bender & Hu).  Intermediate levels interpolate linearly.
    payload_size:
        Payload bytes per record, used only for space accounting.
    kernel_backend:
        Which hot-loop kernel implementation the index's nodes use:
        ``"numpy"`` (pure-NumPy reference, always available), ``"numba"``
        (JIT, falls back to numpy with a warning when numba is absent),
        ``"cffi"`` (C via the system compiler, same fallback), or
        ``"auto"`` (best available).  Defaults to the
        ``REPRO_KERNEL_BACKEND`` environment variable, or ``"numpy"``.
    """

    node_layout: str = GAPPED_ARRAY
    rmi_mode: str = ADAPTIVE_RMI
    density_upper: float = 0.836
    num_models: int = 64
    max_keys_per_node: int = 1024
    inner_partitions: int = 16
    split_fanout: int = 4
    split_on_inserts: bool = False
    min_keys_for_model: int = 16
    # Defaults picked by benchmarks/bench_pma_density.py: at fixed root
    # density, denser segments cut rebalance moves (fewer window
    # rebalances trigger) without hurting search probes, while the root
    # bound trades write cost against post-append read locality — 0.70
    # sits at the knee of that curve.  Pinned by tests/test_config.py.
    pma_segment_density: float = 0.95
    pma_root_density: float = 0.70
    payload_size: int = 8
    kernel_backend: str = field(default_factory=default_backend_name)

    def __post_init__(self) -> None:
        if self.kernel_backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown kernel backend {self.kernel_backend!r}; "
                f"choose one of {BACKEND_NAMES}")
        if self.node_layout not in (GAPPED_ARRAY, PACKED_MEMORY_ARRAY):
            raise ValueError(f"unknown node layout {self.node_layout!r}")
        if self.rmi_mode not in (STATIC_RMI, ADAPTIVE_RMI):
            raise ValueError(f"unknown RMI mode {self.rmi_mode!r}")
        if not 0.0 < self.density_upper <= 1.0:
            raise ValueError("density_upper must be in (0, 1]")
        if self.num_models < 1:
            raise ValueError("num_models must be >= 1")
        if self.max_keys_per_node < 4:
            raise ValueError("max_keys_per_node must be >= 4")
        if self.split_fanout < 2:
            raise ValueError("split_fanout must be >= 2")
        if not 0.0 < self.pma_root_density < self.pma_segment_density <= 1.0:
            raise ValueError("PMA density bounds must satisfy 0 < root < segment <= 1")

    @property
    def expansion_factor(self) -> float:
        """The paper's ``c = 1 / d**2``: allocated slots per key at build."""
        return 1.0 / (self.density_upper ** 2)

    @property
    def density_at_build(self) -> float:
        """Density ``d**2`` right after a build or expansion."""
        return self.density_upper ** 2

    def with_space_overhead(self, overhead: float) -> "AlexConfig":
        """Return a copy parameterized for a given data-space overhead.

        ``overhead = 0.43`` reproduces the paper's default (43% extra space,
        like B+Tree); ``overhead = 2.0`` is the paper's "2x" configuration
        of Figure 10 (allocated space = 3x the keys), etc.  The expansion
        factor is ``c = 1 + overhead`` and ``d = sqrt(1/c)``.
        """
        if overhead <= 0:
            raise ValueError("overhead must be positive")
        c = 1.0 + overhead
        return replace(self, density_upper=math.sqrt(1.0 / c))

    @property
    def variant_name(self) -> str:
        """Human-readable variant name in the paper's notation, e.g.
        ``ALEX-GA-ARMI``."""
        layout = "GA" if self.node_layout == GAPPED_ARRAY else "PMA"
        rmi = "SRMI" if self.rmi_mode == STATIC_RMI else "ARMI"
        return f"ALEX-{layout}-{rmi}"


def ga_srmi(**overrides) -> AlexConfig:
    """Config for ALEX-GA-SRMI (best for read-only workloads, Section 5.2.1)."""
    return AlexConfig(node_layout=GAPPED_ARRAY, rmi_mode=STATIC_RMI, **overrides)


def ga_armi(**overrides) -> AlexConfig:
    """Config for ALEX-GA-ARMI (best for read-write workloads, Section 5.2.2)."""
    return AlexConfig(node_layout=GAPPED_ARRAY, rmi_mode=ADAPTIVE_RMI, **overrides)


def pma_srmi(**overrides) -> AlexConfig:
    """Config for ALEX-PMA-SRMI."""
    return AlexConfig(node_layout=PACKED_MEMORY_ARRAY, rmi_mode=STATIC_RMI, **overrides)


def pma_armi(**overrides) -> AlexConfig:
    """Config for ALEX-PMA-ARMI (best for sequential inserts, Section 5.2.5)."""
    return AlexConfig(node_layout=PACKED_MEMORY_ARRAY, rmi_mode=ADAPTIVE_RMI, **overrides)


#: Alias used by code that treats this as the whole core's configuration
#: (the kernel layer and the serving tier) rather than one ALEX variant's.
CoreConfig = AlexConfig

ALL_VARIANTS = {
    "ALEX-GA-SRMI": ga_srmi,
    "ALEX-GA-ARMI": ga_armi,
    "ALEX-PMA-SRMI": pma_srmi,
    "ALEX-PMA-ARMI": pma_armi,
}
