"""Gapped Array leaf node (paper Section 3.3.1, Algorithms 1 and 3).

The gapped array lets model-based inserts "naturally" distribute free space
between the elements.  Inserting at the model-predicted slot is O(1) in the
best case; when the slot is taken the node shifts the occupied run toward
the closest gap.  When an insert would push the density over the upper limit
``d`` the node expands by a factor of ``1/d``, retrains its linear model,
and re-inserts every key model-based — restoring density ``d**2`` and the
model's accuracy at once.

The gapped array is the fastest layout for lookups but its worst case is a
*fully-packed region* (Figure 3): a contiguous gap-free run that makes a
single insert shift O(n) elements.  The PMA layout (``repro.core.pma``)
trades some lookup locality to avoid that case.
"""

from __future__ import annotations

import math

import numpy as np

from .data_node import DataNode


class GappedArrayNode(DataNode):
    """ALEX leaf node backed by a gapped array."""

    def _initial_capacity(self, n: int) -> int:
        """Allocate ``c * n`` slots (``c = 1/d**2``) so the build density is
        ``d**2`` (Section 3.3.1)."""
        return max(self.MIN_CAPACITY,
                   int(math.ceil(n * self.config.expansion_factor)))

    def insert(self, key: float, payload=None) -> None:
        """Algorithm 1: expand if needed, find the corrected insert position,
        make a gap if the slot is occupied, and place the key.

        The expand decision routes through the adaptation policy (the
        heuristic default reproduces the density-bound check of §3.3.1).
        """
        if self.policy.should_expand(self):
            self.expand()
        ip = self.find_insert_pos(key)
        self._check_duplicate(key, ip)
        slot = self._open_slot(ip, 0, self.capacity)
        # The density bound guarantees at least one gap exists.
        assert slot >= 0, "gapped array unexpectedly full"
        self._place(slot, key, payload)
        self.counters.inserts += 1
        if self.model is None and self.num_keys >= self.config.min_keys_for_model:
            # Cold start is over: build the model and re-place model-based.
            keys, payloads = self.export_sorted()
            self._model_based_build(keys, payloads, self.capacity)

    def expand(self) -> None:
        """Algorithm 3: grow the array by ``1/d``, retrain + rescale the
        model, and model-based-insert every key into the new array."""
        keys, payloads = self.export_sorted()
        new_capacity = max(
            int(math.ceil(self.capacity / self.config.density_upper)),
            self.capacity + 1,
        )
        self._model_based_build(keys, payloads, new_capacity)
        self.counters.expansions += 1

    def fully_packed_regions(self) -> list:
        """Return ``(start, length)`` of every maximal gap-free occupied run.

        Fully-packed regions are the gapped array's failure mode
        (Section 3.3.1 / Figure 3); benches use this to visualize them.
        """
        if self.capacity == 0:
            return []
        occ = self.occupied.astype(np.int8)
        edges = np.diff(occ)
        starts = np.flatnonzero(edges == 1) + 1
        ends = np.flatnonzero(edges == -1) + 1
        if occ[0]:
            starts = np.concatenate([[0], starts])
        if occ[-1]:
            ends = np.concatenate([ends, [self.capacity]])
        return [(int(s), int(e - s)) for s, e in zip(starts, ends)]

    def largest_packed_run(self) -> int:
        """Length of the longest gap-free occupied run."""
        regions = self.fully_packed_regions()
        return max((length for _, length in regions), default=0)
