"""Packed Memory Array leaf node (paper Section 3.3.2, Algorithm 2).

A PMA keeps its gaps *uniformly spaced* by construction: the array (always a
power-of-two capacity) is divided into power-of-two segments, an implicit
binary tree is built over the segments, and each tree level carries an upper
density bound — high near the leaves, low near the root (Bender & Hu).  When
an insert would violate a segment's bound, the smallest enclosing window
that can absorb the insert is *rebalanced*: its elements are redistributed
uniformly.  When even the root window cannot absorb the insert, the array
doubles.

ALEX-specific deviation (Section 3.3.2): after an *expansion* the keys are
re-inserted **model-based** (Algorithm 3) rather than uniformly, so the node
starts each doubling epoch with gapped-array-like search locality and drifts
toward uniform spacing as rebalances accumulate — "a middle ground between
the performances of the gapped array and the regular PMA."
"""

from __future__ import annotations

import math

import numpy as np

from .data_node import DataNode


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= ``n`` (>= 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


class PMANode(DataNode):
    """ALEX leaf node backed by a Packed Memory Array."""

    def _initial_capacity(self, n: int) -> int:
        """Power-of-two capacity targeting the same ``c = 1/d**2`` space
        budget as the gapped array (for a fair space comparison)."""
        target = max(self.MIN_CAPACITY,
                     int(math.ceil(n * self.config.expansion_factor)))
        return next_power_of_two(target)

    # ------------------------------------------------------------------
    # Implicit tree geometry
    # ------------------------------------------------------------------

    @property
    def segment_size(self) -> int:
        """Segment length: the power of two nearest Θ(log2 capacity)."""
        log = max(1, int(math.log2(self.capacity)))
        return min(self.capacity, next_power_of_two(log))

    @property
    def tree_height(self) -> int:
        """Height of the implicit binary tree (0 when one segment)."""
        return int(math.log2(self.capacity // self.segment_size))

    def upper_density(self, level: int) -> float:
        """Upper density bound at ``level`` (0 = segment leaves, height =
        root), linearly interpolated between the configured endpoints."""
        height = self.tree_height
        if height == 0:
            return self.config.pma_segment_density
        frac = level / height
        return (self.config.pma_segment_density
                - (self.config.pma_segment_density - self.config.pma_root_density) * frac)

    def window_bounds(self, pos: int, level: int):
        """``(lo, hi)`` of the level-``level`` window containing ``pos``."""
        size = self.segment_size << level
        lo = (pos // size) * size
        return lo, lo + size

    # ------------------------------------------------------------------
    # Insert (Algorithm 2)
    # ------------------------------------------------------------------

    def insert(self, key: float, payload=None) -> None:
        """Insert at the model-predicted (corrected) position; open a slot
        within the position's segment, rebalancing up the implicit tree when
        the segment has no gap; expand (doubling, model-based rebuild) when
        even the root window is too dense.

        The pre-insert expand decision routes through the adaptation
        policy (heuristic default: the root-density bound); the mid-loop
        expands below are mechanical necessities, not policy choices.
        """
        if self.policy.should_expand(self):
            self.expand()
        ip = self.find_insert_pos(key)
        self._check_duplicate(key, ip)
        slot = self._open_slot_in_segment(ip)
        # When the segment is fully packed, rebalance ever-larger windows
        # (redistribution rounding can re-pack a small window, so the level
        # escalates monotonically until a window absorbs the insert); if no
        # window qualifies, double the array and start over.
        min_level = 1
        attempts = 0
        while slot < 0:
            attempts += 1
            assert attempts < 64, "PMA insert failed to converge"
            level = self._find_rebalance_level(ip, min_level)
            if level is None:
                self.expand()
                min_level = 1
            else:
                lo, hi = self.window_bounds(min(ip, self.capacity - 1), level)
                self._redistribute(lo, hi)
                min_level = level + 1
            ip = self.find_insert_pos(key)
            slot = self._open_slot_in_segment(ip)
        self._place(slot, key, payload)
        self.counters.inserts += 1
        self._enforce_density(slot)
        if self.model is None and self.num_keys >= self.config.min_keys_for_model:
            keys, payloads = self.export_sorted()
            self._model_based_build(keys, payloads, self.capacity)

    def _open_slot_in_segment(self, ip: int) -> int:
        """Open a slot at the insert position by shifting toward the closest
        gap *within the segment* (PMA shifts are segment-local), or -1 when
        the segment is fully packed."""
        seg_lo, seg_hi = self.window_bounds(min(ip, self.capacity - 1), 0)
        return self._open_slot(ip, seg_lo, seg_hi)

    def _find_rebalance_level(self, pos: int, min_level: int):
        """Smallest tree level >= ``min_level`` whose window around ``pos``
        stays within its density bound after one more insert (or ``None``
        when even the root window is too dense)."""
        pos = min(pos, self.capacity - 1)
        for level in range(min_level, self.tree_height + 1):
            lo, hi = self.window_bounds(pos, level)
            count = int(self.occupied[lo:hi].sum())
            if count + 1 <= self.upper_density(level) * (hi - lo):
                return level
        return None

    def _enforce_density(self, pos: int) -> None:
        """Post-insert density sweep: if the segment exceeds its bound, find
        the smallest enclosing window within bounds and redistribute it;
        expand when the root window itself is over-dense."""
        lo, hi = self.window_bounds(pos, 0)
        count = int(self.occupied[lo:hi].sum())
        if count <= self.upper_density(0) * (hi - lo):
            return
        for level in range(1, self.tree_height + 1):
            lo, hi = self.window_bounds(pos, level)
            count = int(self.occupied[lo:hi].sum())
            if count <= self.upper_density(level) * (hi - lo):
                self._redistribute(lo, hi)
                return
        self.expand()

    def _redistribute(self, lo: int, hi: int) -> None:
        """Uniformly respace the real elements of ``[lo, hi)`` (the default
        PMA rebalance; deliberately *not* model-based — see module docstring)."""
        positions = np.flatnonzero(self.occupied[lo:hi]) + lo
        count = len(positions)
        if count == 0:
            return
        keys = self.keys[positions].copy()
        payloads = [self.payloads[p] for p in positions]
        width = hi - lo
        self.occupied[lo:hi] = False
        self.payloads[lo:hi] = [None] * width
        targets = lo + (np.arange(count, dtype=np.int64) * width) // count
        self.keys[targets] = keys
        self.occupied[targets] = True
        for j, target in enumerate(targets.tolist()):
            self.payloads[target] = payloads[j]
        self.counters.rebalance_moves += count
        self._refill_gap_keys(lo, hi)

    # ------------------------------------------------------------------
    # Expansion (Algorithm 3, ALEX-flavoured)
    # ------------------------------------------------------------------

    def density_bound(self) -> float:
        """The PMA's pre-insert pressure point is the *root window* bound
        (the whole array is the root window)."""
        return self.config.pma_root_density

    def expand(self) -> None:
        """Double the capacity and rebuild with model-based inserts."""
        keys, payloads = self.export_sorted()
        self._model_based_build(keys, payloads, max(self.capacity * 2,
                                                    self.MIN_CAPACITY))
        self.counters.expansions += 1

    def gap_uniformity(self) -> float:
        """Coefficient of variation of inter-element gap run lengths; lower
        means more uniformly spaced gaps (benches use this to show the PMA
        drifting from model-based placement toward uniform spacing)."""
        positions = np.flatnonzero(self.occupied)
        if len(positions) < 2:
            return 0.0
        spacing = np.diff(positions).astype(np.float64)
        mean = spacing.mean()
        if mean == 0:
            return 0.0
        return float(spacing.std() / mean)

    def check_pma_invariants(self) -> None:
        """Assert capacity/segment geometry and the root density bound."""
        if self.capacity & (self.capacity - 1):
            raise AssertionError("PMA capacity is not a power of two")
        if self.capacity % self.segment_size:
            raise AssertionError("segment size does not divide capacity")
        if self.num_keys > self.capacity:
            raise AssertionError("overfull PMA")
