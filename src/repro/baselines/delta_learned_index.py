"""Learned Index with a delta buffer — the mitigation Kraska et al. suggest.

Section 2.3 of the ALEX paper: "Kraska et al. suggest building
delta-indexes to handle inserts."  This baseline implements that design so
the repository can evaluate the suggestion ALEX positions itself against:

* the *main* structure is a read-only :class:`LearnedIndex` (RMI over a
  dense sorted array);
* inserts go to a small sorted *delta buffer*;
* lookups probe the delta first (it holds the newest data), then the main
  index;
* when the delta outgrows ``merge_threshold`` (a fraction of the main
  size), the two are merged and the RMI retrained — an O(n) stop-the-world
  event whose cost the counters capture.

Compared to ALEX this recovers insert throughput between merges but pays
(1) a second probe on every lookup and (2) periodic full-merge spikes —
``benchmarks/bench_delta_baseline.py`` measures both.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.core.errors import DuplicateKeyError, KeyNotFoundError
from repro.core.stats import Counters

from .learned_index import LearnedIndex
from .sorted_array import SortedArray


class DeltaLearnedIndex:
    """A Learned Index made updatable with a merge-on-threshold delta."""

    def __init__(self, num_models: int = 64, payload_size: int = 8,
                 merge_threshold: float = 0.10,
                 counters: Optional[Counters] = None):
        if not 0.0 < merge_threshold <= 1.0:
            raise ValueError("merge_threshold must be in (0, 1]")
        self.counters = counters or Counters()
        self.num_models = num_models
        self.payload_size = payload_size
        self.merge_threshold = merge_threshold
        self.main = LearnedIndex(num_models=num_models,
                                 payload_size=payload_size,
                                 counters=self.counters)
        self.delta = SortedArray(self.counters)
        self.merges = 0

    @classmethod
    def bulk_load(cls, keys, payloads: Optional[list] = None,
                  num_models: int = 64, payload_size: int = 8,
                  merge_threshold: float = 0.10,
                  counters: Optional[Counters] = None) -> "DeltaLearnedIndex":
        """Build the main RMI over ``keys``; the delta starts empty."""
        index = cls(num_models=num_models, payload_size=payload_size,
                    merge_threshold=merge_threshold, counters=counters)
        index.main = LearnedIndex.bulk_load(
            keys, payloads, num_models=num_models, payload_size=payload_size,
            counters=index.counters)
        return index

    # ------------------------------------------------------------------
    # Reads: delta first, then main
    # ------------------------------------------------------------------

    def _delta_find(self, key: float) -> int:
        pos = self.delta.lower_bound(key)
        if pos < len(self.delta) and self.delta.key_at(pos) == key:
            return pos
        return -1

    def lookup(self, key: float):
        """Probe the delta, then the main index."""
        key = float(key)
        pos = self._delta_find(key)
        if pos >= 0:
            self.counters.lookups += 1
            return self.delta.payloads[pos]
        return self.main.lookup(key)

    def get(self, key: float, default=None):
        """Like :meth:`lookup` but with a default."""
        try:
            return self.lookup(key)
        except KeyNotFoundError:
            return default

    def contains(self, key: float) -> bool:
        """Membership across both structures."""
        return self._delta_find(float(key)) >= 0 or self.main.contains(key)

    # ------------------------------------------------------------------
    # Writes: delta absorbs them; merge on threshold
    # ------------------------------------------------------------------

    def insert(self, key: float, payload=None) -> None:
        """Insert into the delta; merge when it outgrows the threshold."""
        key = float(key)
        if self.contains(key):
            raise DuplicateKeyError(key)
        self.delta.insert_at(self.delta.lower_bound(key), key, payload)
        self.counters.inserts += 1
        if len(self.delta) > max(16, self.merge_threshold * len(self.main)):
            self._merge()

    def delete(self, key: float) -> None:
        """Delete from whichever structure holds the key."""
        key = float(key)
        pos = self._delta_find(key)
        if pos >= 0:
            self.delta.delete_at(pos)
            self.counters.deletes += 1
            return
        self.main.delete(key)

    def update(self, key: float, payload) -> None:
        """Update in whichever structure holds the key."""
        key = float(key)
        pos = self._delta_find(key)
        if pos >= 0:
            self.delta.payloads[pos] = payload
            return
        self.main.update(key, payload)

    def _merge(self) -> None:
        """Merge delta into main and retrain the whole RMI (O(n))."""
        merged_keys = []
        merged_payloads = []
        main_items = self.main.items()
        delta_items = self.delta.items()
        a = next(main_items, None)
        b = next(delta_items, None)
        while a is not None or b is not None:
            if b is None or (a is not None and a[0] < b[0]):
                merged_keys.append(a[0])
                merged_payloads.append(a[1])
                a = next(main_items, None)
            else:
                merged_keys.append(b[0])
                merged_payloads.append(b[1])
                b = next(delta_items, None)
        # The merge copies every record: charge it.
        self.counters.build_moves += len(merged_keys)
        self.main = LearnedIndex.bulk_load(
            np.array(merged_keys, dtype=np.float64), merged_payloads,
            num_models=self.num_models, payload_size=self.payload_size,
            counters=self.counters)
        self.delta = SortedArray(self.counters)
        self.merges += 1

    # ------------------------------------------------------------------
    # Scans and accounting
    # ------------------------------------------------------------------

    def range_scan(self, start_key: float, limit: int) -> list:
        """Merge-scan both structures."""
        start_key = float(start_key)
        out: list = []
        main_pos = self.main._search(start_key)
        delta_pos = self.delta.lower_bound(start_key)
        while len(out) < limit:
            main_key = (self.main.data.key_at(main_pos)
                        if main_pos < len(self.main.data) else None)
            delta_key = (self.delta.key_at(delta_pos)
                         if delta_pos < len(self.delta) else None)
            if main_key is None and delta_key is None:
                break
            if delta_key is None or (main_key is not None
                                     and main_key <= delta_key):
                out.append((main_key, self.main.data.payloads[main_pos]))
                main_pos += 1
            else:
                out.append((delta_key, self.delta.payloads[delta_pos]))
                delta_pos += 1
            self.counters.payload_bytes_copied += self.payload_size
        self.counters.scans += 1
        return out

    def items(self) -> Iterator[Tuple[float, object]]:
        """All pairs across both structures, in key order."""
        return iter(self.range_scan(-np.inf, len(self)))

    def __len__(self) -> int:
        return len(self.main) + len(self.delta)

    def __contains__(self, key) -> bool:
        return self.contains(float(key))

    @property
    def delta_size(self) -> int:
        """Records currently buffered in the delta."""
        return len(self.delta)

    def index_size_bytes(self) -> int:
        """Main RMI models plus the delta's key array."""
        return self.main.index_size_bytes() + len(self.delta) * 8

    def data_size_bytes(self) -> int:
        """Dense main array plus delta records."""
        return (self.main.data_size_bytes()
                + len(self.delta) * (8 + self.payload_size))
