"""Best-effort reimplementation of the Learned Index (Kraska et al.).

This mirrors the baseline the paper evaluates against (Section 5.1): a
two-level RMI with linear models at every node, *stored error bounds* per
leaf model, *binary search within the bounds* for lookups, and all records
in a single densely-packed sorted array.  (The paper notes, from private
communication with Kraska et al., that a neural-net root is not worth its
complexity, so linear models everywhere is the faithful configuration.)

Inserts follow the naive strategy of Section 2.3: shift the suffix of the
dense array right, widening the stale models' error bounds, and retrain the
whole RMI when staleness exceeds a fraction of the data — the behaviour
that makes the Learned Index "orders of magnitude" slower than ALEX on
inserts (Section 5.2.2) and dominates Figure 8's shifts-per-insert.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.core.errors import DuplicateKeyError, KeyNotFoundError
from repro.core.linear_model import LinearModel
from repro.core.search import binary_search_bounded
from repro.core.stats import Counters

from .sorted_array import SortedArray

#: Size of one leaf model in the paper's accounting: slope + intercept plus
#: the two stored error bounds ("two additional integers").
MODEL_BYTES = LinearModel.SIZE_BYTES + 16
ROOT_BYTES = LinearModel.SIZE_BYTES


class _LeafModel:
    """One second-level model: a linear model plus observed error bounds."""

    __slots__ = ("model", "max_error_left", "max_error_right")

    def __init__(self, model: LinearModel):
        self.model = model
        self.max_error_left = 0
        self.max_error_right = 0


class LearnedIndex:
    """Two-level RMI over a dense sorted array, as in Kraska et al.

    Parameters
    ----------
    num_models:
        Second-level model count (grid-searched per dataset in the paper).
    retrain_fraction:
        Retrain the full RMI after this fraction of the data has been
        inserted/deleted since the last train (models go stale as the
        array shifts under them).
    """

    def __init__(self, num_models: int = 64, payload_size: int = 8,
                 retrain_fraction: float = 0.05,
                 counters: Optional[Counters] = None):
        if num_models < 1:
            raise ValueError("num_models must be >= 1")
        self.num_models = num_models
        self.payload_size = payload_size
        self.retrain_fraction = retrain_fraction
        self.counters = counters or Counters()
        self.data = SortedArray(self.counters)
        self.root_model = LinearModel()
        self.leaf_models: List[_LeafModel] = [_LeafModel(LinearModel())]
        self._stale_ops = 0

    # ------------------------------------------------------------------
    # Construction / training
    # ------------------------------------------------------------------

    @classmethod
    def bulk_load(cls, keys, payloads: Optional[list] = None,
                  num_models: int = 64, payload_size: int = 8,
                  retrain_fraction: float = 0.05,
                  counters: Optional[Counters] = None) -> "LearnedIndex":
        """Build the RMI over ``keys`` (sorted internally; must be unique)."""
        index = cls(num_models=num_models, payload_size=payload_size,
                    retrain_fraction=retrain_fraction, counters=counters)
        keys = np.asarray(keys, dtype=np.float64)
        if payloads is None:
            payloads = [None] * len(keys)
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        payloads = [payloads[i] for i in order]
        if len(keys) > 1 and (np.diff(keys) == 0).any():
            dup = int(np.flatnonzero(np.diff(keys) == 0)[0])
            raise DuplicateKeyError(float(keys[dup]))
        index.data = SortedArray.from_sorted(keys, payloads, index.counters)
        index.retrain()
        return index

    def retrain(self) -> None:
        """Train the root over the whole array, partition the keys by root
        prediction, train one leaf model per partition, and record each
        model's min/max prediction error (the stored bounds)."""
        keys = self.data.view_keys()
        n = len(keys)
        self.counters.retrains += 1
        self._stale_ops = 0
        if n == 0:
            self.root_model = LinearModel()
            self.leaf_models = [_LeafModel(LinearModel())]
            return
        self.root_model = LinearModel.train_cdf(keys, self.num_models)
        assignments = self.root_model.predict_pos_vec(keys, self.num_models)
        self.counters.model_inferences += n
        bounds = np.searchsorted(assignments, np.arange(self.num_models + 1))
        positions = np.arange(n, dtype=np.float64)
        models: List[_LeafModel] = []
        for m in range(self.num_models):
            lo, hi = int(bounds[m]), int(bounds[m + 1])
            leaf = _LeafModel(LinearModel.train(keys[lo:hi], positions[lo:hi]))
            if hi > lo:
                predicted = leaf.model.predict_pos_vec(keys[lo:hi], n)
                self.counters.model_inferences += hi - lo
                err = predicted - np.arange(lo, hi)
                leaf.max_error_left = int(max(0, err.max()))
                leaf.max_error_right = int(max(0, -err.min()))
            models.append(leaf)
        self.leaf_models = models

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def _leaf_for(self, key: float) -> _LeafModel:
        self.counters.model_inferences += 1
        slot = self.root_model.predict_pos(key, self.num_models)
        slot = min(slot, len(self.leaf_models) - 1)
        # Fetching the chosen second-level model from the model array is a
        # memory access, exactly like ALEX's root-to-leaf pointer follow.
        self.counters.pointer_follows += 1
        return self.leaf_models[slot]

    def _search(self, key: float) -> int:
        """Lower-bound position of ``key`` via model prediction + binary
        search within the stored error bounds."""
        n = len(self.data)
        if n == 0:
            return 0
        leaf = self._leaf_for(key)
        self.counters.model_inferences += 1
        hint = leaf.model.predict_pos(key, n)
        return binary_search_bounded(
            self.data.view_keys(), key, hint,
            leaf.max_error_left, leaf.max_error_right, 0, n, self.counters,
        )

    def lookup(self, key: float):
        """Return the payload for ``key``; raises when absent."""
        key = float(key)
        pos = self._search(key)
        if pos < len(self.data) and self.data.key_at(pos) == key:
            self.counters.lookups += 1
            return self.data.payloads[pos]
        raise KeyNotFoundError(key)

    def get(self, key: float, default=None):
        """Like :meth:`lookup` but returns ``default`` when absent."""
        try:
            return self.lookup(key)
        except KeyNotFoundError:
            return default

    def contains(self, key: float) -> bool:
        """Whether ``key`` is present."""
        key = float(key)
        pos = self._search(key)
        return pos < len(self.data) and self.data.key_at(pos) == key

    def prediction_error(self, key: float) -> int:
        """|predicted - actual| position for an existing ``key`` (Fig. 7a)."""
        key = float(key)
        pos = self._search(key)
        if pos >= len(self.data) or self.data.key_at(pos) != key:
            raise KeyNotFoundError(key)
        leaf = self._leaf_for(key)
        return abs(leaf.model.predict_pos(key, len(self.data)) - pos)

    # ------------------------------------------------------------------
    # Naive updates (Section 2.3)
    # ------------------------------------------------------------------

    def insert(self, key: float, payload=None) -> None:
        """Naive insert: shift the dense array, widen the stale bounds, and
        retrain the whole RMI once staleness passes the threshold."""
        key = float(key)
        pos = self._search(key)
        if pos < len(self.data) and self.data.key_at(pos) == key:
            raise DuplicateKeyError(key)
        self.data.insert_at(pos, key, payload)
        # Every position at or right of ``pos`` moved one slot right, so all
        # models may now under-predict by one more slot.
        for leaf in self.leaf_models:
            leaf.max_error_right += 1
        self.counters.inserts += 1
        self._stale_ops += 1
        if self._stale_ops > max(64, self.retrain_fraction * len(self.data)):
            self.retrain()

    def delete(self, key: float) -> None:
        """Naive delete: shift left and widen the opposite bound."""
        key = float(key)
        pos = self._search(key)
        if pos >= len(self.data) or self.data.key_at(pos) != key:
            raise KeyNotFoundError(key)
        self.data.delete_at(pos)
        for leaf in self.leaf_models:
            leaf.max_error_left += 1
        self.counters.deletes += 1
        self._stale_ops += 1
        if self._stale_ops > max(64, self.retrain_fraction * len(self.data)):
            self.retrain()

    def update(self, key: float, payload) -> None:
        """Replace the payload of an existing key."""
        key = float(key)
        pos = self._search(key)
        if pos >= len(self.data) or self.data.key_at(pos) != key:
            raise KeyNotFoundError(key)
        self.data.payloads[pos] = payload

    # ------------------------------------------------------------------
    # Scans, iteration, accounting
    # ------------------------------------------------------------------

    def range_scan(self, start_key: float, limit: int) -> list:
        """Up to ``limit`` pairs with key >= ``start_key`` (dense array, so
        this is a contiguous slice)."""
        pos = self._search(float(start_key))
        self.counters.scans += 1
        hi = min(len(self.data), pos + limit)
        out = [(self.data.key_at(p), self.data.payloads[p]) for p in range(pos, hi)]
        self.counters.payload_bytes_copied += len(out) * self.payload_size
        return out

    def range_query(self, lo: float, hi: float) -> list:
        """All pairs with ``lo <= key <= hi``."""
        pos = self._search(float(lo))
        self.counters.scans += 1
        out: list = []
        while pos < len(self.data) and self.data.key_at(pos) <= hi:
            out.append((self.data.key_at(pos), self.data.payloads[pos]))
            self.counters.payload_bytes_copied += self.payload_size
            pos += 1
        return out

    def items(self) -> Iterator[Tuple[float, object]]:
        """All pairs in key order."""
        return self.data.items()

    def __len__(self) -> int:
        return len(self.data)

    def __contains__(self, key) -> bool:
        return self.contains(float(key))

    def index_size_bytes(self) -> int:
        """Root model + leaf models including their stored error bounds."""
        return ROOT_BYTES + len(self.leaf_models) * MODEL_BYTES

    def data_size_bytes(self) -> int:
        """Densely packed records (no gaps, no bitmap)."""
        return len(self.data) * (8 + self.payload_size)
