"""A full in-memory B+Tree: the paper's primary baseline.

Stand-in for the STX B+Tree of Section 5.1: a height-balanced tree with all
records at the leaf level, leaves chained for range scans, and a single
tunable — the page size — which determines the fanout of inner nodes and
the record capacity of leaves.  The paper grid-searches the page size per
benchmark; :mod:`repro.bench.tuning` does the same.

Instrumented with the shared :class:`~repro.core.stats.Counters`:
binary-search comparisons inside nodes, pointer follows between levels
(the cache-miss proxy the paper's "traverse to leaf" discussion centres
on), and element shifts inside leaves on insert.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.core.errors import DuplicateKeyError, KeyNotFoundError
from repro.core.stats import Counters

#: Bytes of bookkeeping charged per node in the size accounting.
NODE_HEADER_BYTES = 16
KEY_BYTES = 8
POINTER_BYTES = 8


class _Leaf:
    """Leaf page: parallel key/payload lists plus sibling links."""

    __slots__ = ("keys", "payloads", "next", "prev")

    def __init__(self):
        self.keys: List[float] = []
        self.payloads: List[object] = []
        self.next: Optional["_Leaf"] = None
        self.prev: Optional["_Leaf"] = None


class _Inner:
    """Inner page: ``children[i]`` holds keys < ``keys[i]``;
    ``children[-1]`` holds the rest."""

    __slots__ = ("keys", "children")

    def __init__(self):
        self.keys: List[float] = []
        self.children: List[object] = []


def _lower_bound(keys: List[float], key: float, counters: Counters) -> int:
    """Binary search in a node, counting one comparison per halving."""
    lo, hi = 0, len(keys)
    steps = 0
    while lo < hi:
        mid = (lo + hi) // 2
        steps += 1
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    counters.comparisons += steps
    counters.probes += steps
    return lo


class BPlusTree:
    """A textbook B+Tree keyed by float64 with opaque payloads.

    Parameters
    ----------
    page_size:
        Bytes per node.  A leaf holds ``(page_size - header) / 16`` records
    and an inner node the same number of key/pointer pairs.
    payload_size:
        Payload bytes per record (space accounting only).
    counters:
        Shared operation counters (a fresh one is created when omitted).
    """

    def __init__(self, page_size: int = 256, payload_size: int = 8,
                 counters: Optional[Counters] = None):
        if page_size < 64:
            raise ValueError("page_size must be at least 64 bytes")
        self.page_size = page_size
        self.payload_size = payload_size
        self.counters = counters or Counters()
        self.max_keys = max(3, (page_size - NODE_HEADER_BYTES) // (KEY_BYTES + POINTER_BYTES))
        self.min_keys = self.max_keys // 2
        self._root: object = _Leaf()
        self._size = 0
        self._height = 1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def bulk_load(cls, keys, payloads: Optional[list] = None,
                  page_size: int = 256, payload_size: int = 8,
                  fill_factor: float = 0.85,
                  counters: Optional[Counters] = None) -> "BPlusTree":
        """Build bottom-up from keys (sorted internally), leaves filled to
        ``fill_factor`` so early inserts do not cascade splits."""
        tree = cls(page_size=page_size, payload_size=payload_size,
                   counters=counters)
        keys = np.asarray(keys, dtype=np.float64)
        if payloads is None:
            payloads = [None] * len(keys)
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        payloads = [payloads[i] for i in order]
        if len(keys) > 1 and (np.diff(keys) == 0).any():
            dup = int(np.flatnonzero(np.diff(keys) == 0)[0])
            raise DuplicateKeyError(float(keys[dup]))
        if len(keys) == 0:
            return tree

        per_leaf = max(1, int(tree.max_keys * fill_factor))
        leaves: List[_Leaf] = []
        for start in range(0, len(keys), per_leaf):
            leaf = _Leaf()
            leaf.keys = [float(k) for k in keys[start:start + per_leaf]]
            leaf.payloads = list(payloads[start:start + per_leaf])
            leaves.append(leaf)
        for left, right in zip(leaves, leaves[1:]):
            left.next = right
            right.prev = left

        level: List[object] = list(leaves)
        separators = [leaf.keys[0] for leaf in leaves]
        height = 1
        while len(level) > 1:
            per_inner = max(2, int(tree.max_keys * fill_factor))
            next_level: List[object] = []
            next_separators: List[float] = []
            for start in range(0, len(level), per_inner):
                inner = _Inner()
                inner.children = level[start:start + per_inner]
                inner.keys = separators[start + 1:start + len(inner.children)]
                next_level.append(inner)
                next_separators.append(separators[start])
            level = next_level
            separators = next_separators
            height += 1
        tree._root = level[0]
        tree._size = len(keys)
        tree._height = height
        return tree

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------

    def _find_leaf(self, key: float) -> _Leaf:
        node = self._root
        while isinstance(node, _Inner):
            slot = self._child_slot(node, key)
            node = node.children[slot]
            self.counters.pointer_follows += 1
        return node

    def _child_slot(self, node: _Inner, key: float) -> int:
        """Child index for ``key``: first separator strictly greater."""
        lo, hi = 0, len(node.keys)
        steps = 0
        while lo < hi:
            mid = (lo + hi) // 2
            steps += 1
            if node.keys[mid] <= key:
                lo = mid + 1
            else:
                hi = mid
        self.counters.comparisons += steps
        self.counters.probes += steps
        return lo

    def lookup(self, key: float):
        """Return the payload for ``key``; raises when absent."""
        key = float(key)
        leaf = self._find_leaf(key)
        pos = _lower_bound(leaf.keys, key, self.counters)
        if pos < len(leaf.keys) and leaf.keys[pos] == key:
            self.counters.lookups += 1
            return leaf.payloads[pos]
        raise KeyNotFoundError(key)

    def get(self, key: float, default=None):
        """Like :meth:`lookup` but returns ``default`` when absent."""
        try:
            return self.lookup(key)
        except KeyNotFoundError:
            return default

    def contains(self, key: float) -> bool:
        """Whether ``key`` is present."""
        key = float(key)
        leaf = self._find_leaf(key)
        pos = _lower_bound(leaf.keys, key, self.counters)
        return pos < len(leaf.keys) and leaf.keys[pos] == key

    def insert(self, key: float, payload=None) -> None:
        """Insert a unique key, splitting nodes on overflow."""
        key = float(key)
        result = self._insert(self._root, key, payload)
        if result is not None:
            sep, right = result
            new_root = _Inner()
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1
        self._size += 1
        self.counters.inserts += 1

    def _insert(self, node, key: float, payload):
        """Recursive insert; returns ``(separator, new_right_sibling)`` when
        ``node`` split, else ``None``."""
        if isinstance(node, _Leaf):
            pos = _lower_bound(node.keys, key, self.counters)
            if pos < len(node.keys) and node.keys[pos] == key:
                raise DuplicateKeyError(key)
            node.keys.insert(pos, key)
            node.payloads.insert(pos, payload)
            self.counters.shifts += len(node.keys) - 1 - pos
            if len(node.keys) <= self.max_keys:
                return None
            return self._split_leaf(node)

        slot = self._child_slot(node, key)
        self.counters.pointer_follows += 1
        result = self._insert(node.children[slot], key, payload)
        if result is None:
            return None
        sep, right = result
        node.keys.insert(slot, sep)
        node.children.insert(slot + 1, right)
        self.counters.shifts += len(node.keys) - 1 - slot
        if len(node.keys) <= self.max_keys:
            return None
        return self._split_inner(node)

    def _split_leaf(self, leaf: _Leaf) -> Tuple[float, _Leaf]:
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.payloads = leaf.payloads[mid:]
        del leaf.keys[mid:]
        del leaf.payloads[mid:]
        right.next = leaf.next
        right.prev = leaf
        if leaf.next is not None:
            leaf.next.prev = right
        leaf.next = right
        self.counters.splits += 1
        return right.keys[0], right

    def _split_inner(self, node: _Inner) -> Tuple[float, _Inner]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Inner()
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        del node.keys[mid:]
        del node.children[mid + 1:]
        self.counters.splits += 1
        return sep, right

    # ------------------------------------------------------------------
    # Delete (with borrowing and merging)
    # ------------------------------------------------------------------

    def delete(self, key: float) -> None:
        """Remove ``key``, rebalancing by borrow-or-merge on underflow."""
        key = float(key)
        self._delete(self._root, key)
        if isinstance(self._root, _Inner) and len(self._root.children) == 1:
            self._root = self._root.children[0]
            self._height -= 1
        self._size -= 1
        self.counters.deletes += 1

    def _delete(self, node, key: float) -> None:
        if isinstance(node, _Leaf):
            pos = _lower_bound(node.keys, key, self.counters)
            if pos >= len(node.keys) or node.keys[pos] != key:
                raise KeyNotFoundError(key)
            node.keys.pop(pos)
            node.payloads.pop(pos)
            self.counters.shifts += len(node.keys) - pos
            return
        slot = self._child_slot(node, key)
        self.counters.pointer_follows += 1
        child = node.children[slot]
        self._delete(child, key)
        if self._underflowed(child):
            self._rebalance(node, slot)

    def _underflowed(self, node) -> bool:
        if isinstance(node, _Leaf):
            return len(node.keys) < self.min_keys
        return len(node.children) < self.min_keys + 1

    def _rebalance(self, parent: _Inner, slot: int) -> None:
        """Fix an underflowed child by borrowing from a sibling when it has
        spare keys, else merging with it."""
        child = parent.children[slot]
        left = parent.children[slot - 1] if slot > 0 else None
        right = parent.children[slot + 1] if slot + 1 < len(parent.children) else None

        if isinstance(child, _Leaf):
            if left is not None and len(left.keys) > self.min_keys:
                child.keys.insert(0, left.keys.pop())
                child.payloads.insert(0, left.payloads.pop())
                parent.keys[slot - 1] = child.keys[0]
            elif right is not None and len(right.keys) > self.min_keys:
                child.keys.append(right.keys.pop(0))
                child.payloads.append(right.payloads.pop(0))
                parent.keys[slot] = right.keys[0]
            elif left is not None:
                self._merge_leaves(parent, slot - 1)
            else:
                self._merge_leaves(parent, slot)
            return

        if left is not None and len(left.children) > self.min_keys + 1:
            child.keys.insert(0, parent.keys[slot - 1])
            parent.keys[slot - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())
        elif right is not None and len(right.children) > self.min_keys + 1:
            child.keys.append(parent.keys[slot])
            parent.keys[slot] = right.keys.pop(0)
            child.children.append(right.children.pop(0))
        elif left is not None:
            self._merge_inners(parent, slot - 1)
        else:
            self._merge_inners(parent, slot)

    def _merge_leaves(self, parent: _Inner, left_slot: int) -> None:
        left: _Leaf = parent.children[left_slot]
        right: _Leaf = parent.children[left_slot + 1]
        left.keys.extend(right.keys)
        left.payloads.extend(right.payloads)
        left.next = right.next
        if right.next is not None:
            right.next.prev = left
        parent.keys.pop(left_slot)
        parent.children.pop(left_slot + 1)

    def _merge_inners(self, parent: _Inner, left_slot: int) -> None:
        left: _Inner = parent.children[left_slot]
        right: _Inner = parent.children[left_slot + 1]
        left.keys.append(parent.keys[left_slot])
        left.keys.extend(right.keys)
        left.children.extend(right.children)
        parent.keys.pop(left_slot)
        parent.children.pop(left_slot + 1)

    # ------------------------------------------------------------------
    # Updates, scans, iteration
    # ------------------------------------------------------------------

    def update(self, key: float, payload) -> None:
        """Replace the payload of an existing key."""
        key = float(key)
        leaf = self._find_leaf(key)
        pos = _lower_bound(leaf.keys, key, self.counters)
        if pos >= len(leaf.keys) or leaf.keys[pos] != key:
            raise KeyNotFoundError(key)
        leaf.payloads[pos] = payload

    def range_scan(self, start_key: float, limit: int) -> list:
        """Up to ``limit`` pairs with key >= ``start_key`` via leaf links."""
        start_key = float(start_key)
        leaf: Optional[_Leaf] = self._find_leaf(start_key)
        pos = _lower_bound(leaf.keys, start_key, self.counters)
        self.counters.scans += 1
        out: list = []
        while leaf is not None and len(out) < limit:
            while pos < len(leaf.keys) and len(out) < limit:
                out.append((leaf.keys[pos], leaf.payloads[pos]))
                self.counters.payload_bytes_copied += self.payload_size
                pos += 1
            leaf = leaf.next
            self.counters.pointer_follows += 1
            pos = 0
        return out

    def range_query(self, lo: float, hi: float) -> list:
        """All pairs with ``lo <= key <= hi``."""
        lo, hi = float(lo), float(hi)
        leaf: Optional[_Leaf] = self._find_leaf(lo)
        pos = _lower_bound(leaf.keys, lo, self.counters)
        self.counters.scans += 1
        out: list = []
        while leaf is not None:
            while pos < len(leaf.keys):
                if leaf.keys[pos] > hi:
                    return out
                out.append((leaf.keys[pos], leaf.payloads[pos]))
                self.counters.payload_bytes_copied += self.payload_size
                pos += 1
            leaf = leaf.next
            self.counters.pointer_follows += 1
            pos = 0
        return out

    def items(self) -> Iterator[Tuple[float, object]]:
        """All pairs in key order."""
        node = self._root
        while isinstance(node, _Inner):
            node = node.children[0]
        leaf: Optional[_Leaf] = node
        while leaf is not None:
            yield from zip(leaf.keys, leaf.payloads)
            leaf = leaf.next

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key) -> bool:
        return self.contains(float(key))

    # ------------------------------------------------------------------
    # Accounting and validation
    # ------------------------------------------------------------------

    @property
    def height(self) -> int:
        """Number of levels, leaves included."""
        return self._height

    def index_size_bytes(self) -> int:
        """Sum of inner-node sizes (the paper's B+Tree index size)."""
        total = 0
        for node in self._walk():
            if isinstance(node, _Inner):
                total += (NODE_HEADER_BYTES + len(node.keys) * KEY_BYTES
                          + len(node.children) * POINTER_BYTES)
        return total

    def data_size_bytes(self) -> int:
        """Sum of leaf-node sizes (keys + payloads + header)."""
        total = 0
        for node in self._walk():
            if isinstance(node, _Leaf):
                total += (NODE_HEADER_BYTES
                          + len(node.keys) * (KEY_BYTES + self.payload_size))
        return total

    def _walk(self) -> Iterator[object]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, _Inner):
                stack.extend(node.children)

    def validate(self) -> None:
        """Assert structural invariants: sortedness, separator correctness,
        balanced depth, and leaf-chain consistency."""
        depths = set()

        def _check(node, lo: float, hi: float, depth: int) -> None:
            if isinstance(node, _Leaf):
                depths.add(depth)
                for a, b in zip(node.keys, node.keys[1:]):
                    if a >= b:
                        raise AssertionError("leaf keys not strictly increasing")
                for k in node.keys:
                    if not (lo <= k < hi):
                        raise AssertionError("leaf key outside separator range")
                return
            if len(node.children) != len(node.keys) + 1:
                raise AssertionError("inner node fanout mismatch")
            bounds = [lo] + list(node.keys) + [hi]
            for a, b in zip(bounds, bounds[1:]):
                if a > b:
                    raise AssertionError("separators not sorted")
            for i, child in enumerate(node.children):
                _check(child, bounds[i], bounds[i + 1], depth + 1)

        _check(self._root, -math.inf, math.inf, 1)
        if len(depths) > 1:
            raise AssertionError("tree is not height-balanced")
        total = sum(1 for _ in self.items())
        if total != self._size:
            raise AssertionError("size mismatch against leaf chain")
