"""Baselines the paper compares ALEX against: B+Tree and the Learned Index."""

from .bptree import BPlusTree
from .delta_learned_index import DeltaLearnedIndex
from .interfaces import OrderedIndex
from .learned_index import LearnedIndex
from .sorted_array import SortedArray

__all__ = ["BPlusTree", "DeltaLearnedIndex", "LearnedIndex", "OrderedIndex",
           "SortedArray"]
