"""The ordered-index protocol every structure in this repository satisfies.

The benchmark harness treats ALEX, the B+Tree, and the Learned Index
uniformly through this protocol, exactly as the paper's evaluation drives
all three through the same workloads.
"""

from __future__ import annotations

from typing import Iterator, Protocol, Tuple, runtime_checkable

from repro.core.stats import Counters


@runtime_checkable
class OrderedIndex(Protocol):
    """Structural protocol for a single-key ordered index.

    Implementations: :class:`repro.core.AlexIndex`,
    :class:`repro.baselines.BPlusTree`,
    :class:`repro.baselines.LearnedIndex`.
    """

    counters: Counters

    def insert(self, key: float, payload=None) -> None:
        """Insert a new unique key."""

    def lookup(self, key: float):
        """Return the payload for ``key`` (raises when absent)."""

    def contains(self, key: float) -> bool:
        """Whether ``key`` is present."""

    def delete(self, key: float) -> None:
        """Remove ``key`` (raises when absent)."""

    def range_scan(self, start_key: float, limit: int) -> list:
        """Up to ``limit`` ``(key, payload)`` pairs with key >= start."""

    def items(self) -> Iterator[Tuple[float, object]]:
        """All pairs in key order."""

    def __len__(self) -> int:
        ...

    def index_size_bytes(self) -> int:
        """Index-structure footprint (inner nodes / models)."""

    def data_size_bytes(self) -> int:
        """Data-storage footprint (leaf level)."""
