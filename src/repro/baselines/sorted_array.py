"""A dense, gap-less sorted array — the Learned Index's storage substrate.

Kraska et al. store all records in one densely-packed sorted array, which is
what makes their index static: every insert shifts, on average, half the
array (Section 2.3's "naive insertion strategy").  This module implements
that substrate with amortized-doubling capacity management so the *copy*
cost is not pathological, while faithfully counting the per-insert shifts
the paper's Figure 8 reports.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.core.search import lower_bound
from repro.core.stats import Counters


class SortedArray:
    """A densely packed sorted array of ``(key, payload)`` records."""

    _MIN_CAPACITY = 16

    def __init__(self, counters: Counters):
        self.counters = counters
        self.size = 0
        self.keys = np.empty(self._MIN_CAPACITY, dtype=np.float64)
        self.payloads: list = [None] * self._MIN_CAPACITY

    @classmethod
    def from_sorted(cls, keys: np.ndarray, payloads: list,
                    counters: Counters) -> "SortedArray":
        """Build from already-sorted unique keys without counting shifts."""
        arr = cls(counters)
        n = len(keys)
        capacity = max(cls._MIN_CAPACITY, n)
        arr.keys = np.empty(capacity, dtype=np.float64)
        arr.keys[:n] = keys
        arr.payloads = list(payloads) + [None] * (capacity - n)
        arr.size = n
        return arr

    def lower_bound(self, key: float) -> int:
        """Leftmost position with ``keys[pos] >= key``."""
        return lower_bound(self.keys, key, 0, self.size, self.counters)

    def insert_at(self, pos: int, key: float, payload) -> None:
        """Insert at ``pos``, shifting ``size - pos`` elements right."""
        if self.size == len(self.keys):
            self._grow()
        self.keys[pos + 1:self.size + 1] = self.keys[pos:self.size]
        self.payloads[pos + 1:self.size + 1] = self.payloads[pos:self.size]
        self.keys[pos] = key
        self.payloads[pos] = payload
        self.size += 1
        self.counters.shifts += self.size - 1 - pos

    def delete_at(self, pos: int) -> None:
        """Remove position ``pos``, shifting the suffix left."""
        self.keys[pos:self.size - 1] = self.keys[pos + 1:self.size]
        self.payloads[pos:self.size - 1] = self.payloads[pos + 1:self.size]
        self.size -= 1
        self.payloads[self.size] = None
        self.counters.shifts += self.size - pos

    def _grow(self) -> None:
        new_capacity = max(self._MIN_CAPACITY, len(self.keys) * 2)
        new_keys = np.empty(new_capacity, dtype=np.float64)
        new_keys[:self.size] = self.keys[:self.size]
        self.keys = new_keys
        self.payloads = self.payloads + [None] * (new_capacity - len(self.payloads))

    def key_at(self, pos: int) -> float:
        """Key stored at ``pos``."""
        return float(self.keys[pos])

    def items(self) -> Iterator[Tuple[float, object]]:
        """All records in key order."""
        for pos in range(self.size):
            yield float(self.keys[pos]), self.payloads[pos]

    def view_keys(self) -> np.ndarray:
        """Read-only view of the live key prefix."""
        return self.keys[:self.size]

    def __len__(self) -> int:
        return self.size
