"""Command-line interface: run paper experiments without writing code.

Subcommands::

    python -m repro info                     # version, variants, systems
    python -m repro datasets [--size N]      # Table 1
    python -m repro compare --dataset ycsb --workload read-heavy
    python -m repro shards --dataset lognormal --shards 1 2 4 8 \
        [--backend thread|process] [--durable DIR]
    python -m repro recover --dir DIR [--verify]   # crash recovery
    python -m repro adapt --scenario grow-shrink   # policy SMO report
    python -m repro errors --dataset longitudes [--size N]
    python -m repro theorems --dataset lognormal --c 1.43 2 8
    python -m repro stats [--backend thread|process] [--format json]
    python -m repro top [--refresh S] [--duration S]   # live dashboard
    python -m repro trace [--trace-id ID] [--format chrome]  # slow traces

All numbers use the counter-based simulated-time metric (DESIGN.md §6).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

import numpy as np

from . import __version__
from .analysis import (
    alex_prediction_errors,
    error_summary,
    learned_index_prediction_errors,
)
from .analysis.theorems import analyze
from .baselines.learned_index import LearnedIndex
from .bench import (
    SYSTEMS,
    SystemParams,
    best_alex_variant_for,
    format_table,
    run_experiment,
)
from .core.alex import AlexIndex
from .core.config import ALL_VARIANTS, ga_armi
from .core.kernels import BACKEND_NAMES, describe_runtime
from .core.policy import CostModelPolicy, HeuristicPolicy
from .datasets import DATASETS, linear_fit_error, load, local_nonlinearity
from .workloads import WORKLOADS
from .workloads.adaptation import SCENARIOS, run_adaptation_scenario


def _cmd_info(args: argparse.Namespace) -> int:
    print(f"repro {__version__} — ALEX reproduction (SIGMOD 2020)")
    print(f"ALEX variants: {', '.join(ALL_VARIANTS)}")
    print(f"systems:       {', '.join(SYSTEMS)}")
    print(f"datasets:      {', '.join(DATASETS)}")
    print(f"workloads:     {', '.join(WORKLOADS)}")
    runtime = describe_runtime()
    print(f"kernels:       default={runtime['default_kernel_backend']}, "
          f"available="
          f"{', '.join(runtime['available_kernel_backends'])}")
    from . import obs
    info = obs.describe()
    switch = "on" if info["enabled"] else "off"
    if info["env"] is not None:
        switch += f" ({obs.ENV_VAR}={info['env']})"
    print(f"obs:           {switch}, {info['bucket_config']}")
    print(f"               registry: {info['counters']} counters, "
          f"{info['gauges']} gauges, {info['histograms']} histograms, "
          f"{info['events']}/{info['event_limit']} events")
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name, spec in DATASETS.items():
        keys = load(name, args.size, seed=args.seed)
        rows.append((name, spec.paper_num_keys, args.size, spec.key_type,
                     spec.payload_size,
                     f"{linear_fit_error(keys):.4f}",
                     f"{local_nonlinearity(keys):.4f}"))
    print(format_table(
        ["dataset", "paper n", "n", "key type", "payload B",
         "global nonlin", "local nonlin"],
        rows, title="Table 1: dataset characteristics"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    spec = WORKLOADS[args.workload]
    systems = args.systems or [best_alex_variant_for(spec), "BPlusTree"]
    params = SystemParams(keys_per_model=args.keys_per_model,
                          max_keys_per_node=args.max_keys,
                          page_size=args.page_size,
                          kernel_backend=args.kernel_backend)
    rows = []
    for system in systems:
        if system not in SYSTEMS:
            print(f"error: unknown system {system!r} "
                  f"(choose from {', '.join(SYSTEMS)})", file=sys.stderr)
            return 2
        result = run_experiment(system, args.dataset, spec,
                                init_size=args.init, num_ops=args.ops,
                                params=params, seed=args.seed)
        rows.append((system, f"{result.throughput / 1e6:.3f}",
                     f"{result.index_bytes:,}", f"{result.data_bytes:,}",
                     result.extras["inserts"]))
    print(format_table(
        ["system", "Mops/s (sim)", "index bytes", "data bytes", "inserts"],
        rows, title=f"{args.workload} on {args.dataset} "
                    f"(init={args.init:,}, ops={args.ops:,})"))
    return 0


def _cmd_shards(args: argparse.Namespace) -> int:
    spec = WORKLOADS[args.workload]
    rows = []
    for num_shards in args.shards:
        durability_dir = None
        if args.durable:
            # One durability tree per shard count (a tree records one
            # topology; re-creating over a live one is refused).
            durability_dir = os.path.join(args.durable,
                                          f"shards-{num_shards}")
        params = SystemParams(keys_per_model=args.keys_per_model,
                              max_keys_per_node=args.max_keys,
                              num_shards=num_shards,
                              shard_backend=args.backend,
                              durability_dir=durability_dir,
                              fsync=args.fsync,
                              kernel_backend=args.kernel_backend)
        result = run_experiment("ShardedALEX", args.dataset, spec,
                                init_size=args.init, num_ops=args.ops,
                                params=params, seed=args.seed,
                                read_batch=args.read_batch,
                                write_batch=args.write_batch)
        parallel = result.extras["critical_path_throughput"]
        rows.append((num_shards, f"{result.throughput / 1e6:.3f}",
                     f"{parallel / 1e6:.3f}",
                     f"{result.index_bytes:,}", result.extras["reads"],
                     result.extras["inserts"], result.extras["scans"]))
    durable_note = (f", durable -> {args.durable} [{args.fsync}]"
                    if args.durable else "")
    print(format_table(
        ["shards", "Mops/s (agg)", "Mops/s (parallel)", "index bytes",
         "reads", "inserts", "scans"],
        rows, title=f"ShardedALEX scaling [{args.backend} backend]: "
                    f"{args.workload} on "
                    f"{args.dataset} (init={args.init:,}, ops={args.ops:,}, "
                    f"read_batch={args.read_batch}, "
                    f"write_batch={args.write_batch}{durable_note})"))
    if args.durable:
        print(f"durable state written under {args.durable}; inspect or "
              f"restore with: python -m repro recover --dir "
              f"{os.path.join(args.durable, f'shards-{args.shards[-1]}')}")
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    """Recover an index (single-node or sharded service) from a
    durability directory and report what came back."""
    from .durability import recover_index, service_manifest_kind
    from .serve import ShardedAlexIndex

    kind = service_manifest_kind(args.dir)
    if kind is None:
        print(f"error: {args.dir} holds no durability manifest",
              file=sys.stderr)
        return 2
    start = time.perf_counter()
    if kind == "single":
        result = recover_index(args.dir)
        elapsed = time.perf_counter() - start
        if args.verify:
            result.index.validate()
        print(format_table(
            ["keys", "checkpoint LSN", "frames replayed", "ops replayed",
             "seconds"],
            [(f"{result.num_keys:,}", result.checkpoint_lsn,
              result.frames_replayed, result.ops_replayed,
              f"{elapsed:.3f}")],
            title=f"recovered single-node index from {args.dir}"
                  + (" (validated)" if args.verify else "")))
        return 0
    service = ShardedAlexIndex.recover(args.dir, backend=args.backend)
    elapsed = time.perf_counter() - start
    try:
        if args.verify:
            service.validate()
        rows = [(s, f"{r.num_keys:,}", r.checkpoint_lsn,
                 r.frames_replayed, r.ops_replayed)
                for s, r in enumerate(service.last_recovery)]
        print(format_table(
            ["shard", "keys", "checkpoint LSN", "frames replayed",
             "ops replayed"],
            rows, title=f"recovered {service.num_shards}-shard service "
                        f"from {args.dir} in {elapsed:.3f}s "
                        f"[{args.backend} backend]"
                        + (" (validated)" if args.verify else "")))
    finally:
        service.close()
    return 0


def _cmd_adapt(args: argparse.Namespace) -> int:
    """Compare the adaptation policies on a structure-stressing scenario
    and report each policy's structural decisions."""
    policies = {
        "heuristic": HeuristicPolicy,
        "cost-model": CostModelPolicy,
    }
    chosen = args.policies or list(policies)
    for name in chosen:
        if name not in policies:
            print(f"error: unknown policy {name!r} "
                  f"(choose from {', '.join(policies)})", file=sys.stderr)
            return 2
    rows = []
    logs = {}
    for name in chosen:
        policy = policies[name]()
        result = run_adaptation_scenario(policy, args.scenario,
                                         num_keys=args.keys,
                                         num_ops=args.ops, seed=args.seed)
        smo = result["smo_counts"]
        rows.append((name, f"{result['sim_mops']:.3f}",
                     f"{result['index_bytes']:,}",
                     f"{result['data_bytes']:,}",
                     result["leaves"], result["depth"],
                     smo.get("expand", 0), smo.get("split_sideways", 0),
                     smo.get("split_down", 0), smo.get("retrain", 0),
                     smo.get("merge", 0)))
        logs[name] = list(policy.decisions)
    print(format_table(
        ["policy", "Mops/s (sim)", "index bytes", "data bytes", "leaves",
         "depth", "expand", "sideways", "down", "retrain", "merge"],
        rows, title=f"adaptation policies on {args.scenario} "
                    f"(init={args.keys:,}, ops={args.ops:,})"))
    if args.decisions:
        for name in chosen:
            tail = logs[name][-args.decisions:]
            print(f"\nlast {len(tail)} {name} decisions:")
            for d in tail:
                print(f"  [{d.site}] {d.action:15s} size={d.size:6d}  "
                      f"{d.reason}")
    return 0


def _cmd_errors(args: argparse.Namespace) -> int:
    keys = load(args.dataset, args.size, seed=args.seed)
    alex = AlexIndex.bulk_load(keys, config=ga_armi())
    learned = LearnedIndex.bulk_load(
        keys, num_models=max(1, args.size // 2000))
    rows = []
    for name, errors in (("ALEX-GA-ARMI", alex_prediction_errors(alex)),
                         ("LearnedIndex",
                          learned_index_prediction_errors(learned))):
        summary = error_summary(errors)
        rows.append((name, f"{summary['exact_fraction']:.1%}",
                     f"{summary['mean']:.2f}", f"{summary['median']:.0f}",
                     f"{summary['p99']:.0f}", summary["max"]))
    print(format_table(
        ["system", "exact", "mean", "median", "p99", "max"],
        rows, title=f"Figure 7: prediction errors on {args.dataset} "
                    f"(n={args.size:,})"))
    return 0


def _cmd_theorems(args: argparse.Namespace) -> int:
    keys = np.sort(load(args.dataset, args.size, seed=args.seed))
    rows = []
    for c in args.c:
        result = analyze(keys, c)
        rows.append((c, result.empirical, result.lower, result.upper,
                     "yes" if result.consistent else "NO"))
    print(format_table(
        ["c", "direct hits", "Thm3 lower", "Thm2 upper", "in bounds"],
        rows, title=f"Section 4 bounds on {args.dataset} "
                    f"(n={args.size:,})"))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .obs.dashboard import run_stats
    return run_stats(args)


def _cmd_top(args: argparse.Namespace) -> int:
    from .obs.dashboard import run_top
    return run_top(args)


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs.dashboard import run_trace
    return run_trace(args)


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__.splitlines()[0])
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="versions, variants, datasets").set_defaults(
        func=_cmd_info)

    p_data = sub.add_parser("datasets", help="Table 1 characteristics")
    p_data.add_argument("--size", type=int, default=10_000)
    p_data.add_argument("--seed", type=int, default=0)
    p_data.set_defaults(func=_cmd_datasets)

    p_cmp = sub.add_parser("compare", help="run one workload comparison")
    p_cmp.add_argument("--dataset", choices=sorted(DATASETS),
                       default="ycsb")
    p_cmp.add_argument("--workload", choices=sorted(WORKLOADS),
                       default="read-heavy")
    p_cmp.add_argument("--init", type=int, default=10_000)
    p_cmp.add_argument("--ops", type=int, default=5_000)
    p_cmp.add_argument("--systems", nargs="*", default=None,
                       help=f"subset of: {', '.join(SYSTEMS)}")
    p_cmp.add_argument("--keys-per-model", type=int, default=256)
    p_cmp.add_argument("--max-keys", type=int, default=1024)
    p_cmp.add_argument("--page-size", type=int, default=256)
    p_cmp.add_argument("--kernel-backend", choices=BACKEND_NAMES,
                       default=None,
                       help="hot-loop kernel implementation (default: "
                            "$REPRO_KERNEL_BACKEND or numpy)")
    p_cmp.add_argument("--seed", type=int, default=0)
    p_cmp.set_defaults(func=_cmd_compare)

    p_shard = sub.add_parser(
        "shards", help="sharded index service throughput vs shard count")
    p_shard.add_argument("--dataset", choices=sorted(DATASETS),
                         default="lognormal")
    p_shard.add_argument("--workload", choices=sorted(WORKLOADS),
                         default="read-heavy")
    p_shard.add_argument("--init", type=int, default=20_000)
    p_shard.add_argument("--ops", type=int, default=5_000)
    p_shard.add_argument("--shards", type=int, nargs="+",
                         default=[1, 2, 4, 8])
    p_shard.add_argument("--backend", choices=("thread", "process"),
                         default="thread",
                         help="shard execution backend: in-process "
                              "threads (GIL-bound) or one worker process "
                              "per shard (real multi-core wall clock)")
    p_shard.add_argument("--read-batch", type=int, default=64)
    p_shard.add_argument("--write-batch", type=int, default=64)
    p_shard.add_argument("--keys-per-model", type=int, default=256)
    p_shard.add_argument("--max-keys", type=int, default=1024)
    p_shard.add_argument("--durable", metavar="DIR", default=None,
                         help="run durably: write per-shard WALs and "
                              "checkpoints under DIR (one subtree per "
                              "shard count); restore later with "
                              "'repro recover'")
    p_shard.add_argument("--fsync", choices=("always", "batch", "off"),
                         default="batch",
                         help="WAL fsync policy when --durable is set")
    p_shard.add_argument("--kernel-backend", choices=BACKEND_NAMES,
                         default=None,
                         help="hot-loop kernel implementation (default: "
                              "$REPRO_KERNEL_BACKEND or numpy)")
    p_shard.add_argument("--seed", type=int, default=0)
    p_shard.set_defaults(func=_cmd_shards)

    p_rec = sub.add_parser(
        "recover", help="recover an index or sharded service from a "
                        "durability directory (checkpoint + WAL replay)")
    p_rec.add_argument("--dir", required=True,
                       help="durability root (a single-index MANIFEST "
                            "or a sharded SERVICE_MANIFEST tree)")
    p_rec.add_argument("--backend", choices=("thread", "process"),
                       default="thread",
                       help="execution backend to provision the "
                            "recovered shards on")
    p_rec.add_argument("--verify", action="store_true",
                       help="run full structural validation on the "
                            "recovered index")
    p_rec.set_defaults(func=_cmd_recover)

    p_adapt = sub.add_parser(
        "adapt", help="adaptation policy comparison and SMO report")
    p_adapt.add_argument("--scenario", choices=SCENARIOS,
                         default="grow-shrink")
    p_adapt.add_argument("--keys", type=int, default=8_000)
    p_adapt.add_argument("--ops", type=int, default=8_000)
    p_adapt.add_argument("--policies", nargs="*", default=None,
                         help="subset of: heuristic, cost-model")
    p_adapt.add_argument("--decisions", type=int, default=0,
                         help="also print the last N logged decisions "
                              "per policy")
    p_adapt.add_argument("--seed", type=int, default=0)
    p_adapt.set_defaults(func=_cmd_adapt)

    p_err = sub.add_parser("errors", help="Figure 7 prediction errors")
    p_err.add_argument("--dataset", choices=sorted(DATASETS),
                       default="longitudes")
    p_err.add_argument("--size", type=int, default=10_000)
    p_err.add_argument("--seed", type=int, default=0)
    p_err.set_defaults(func=_cmd_errors)

    p_thm = sub.add_parser("theorems", help="Section 4 direct-hit bounds")
    p_thm.add_argument("--dataset", choices=sorted(DATASETS),
                       default="lognormal")
    p_thm.add_argument("--size", type=int, default=2_000)
    p_thm.add_argument("--c", type=float, nargs="+",
                       default=[1.0, 1.43, 2.0, 8.0])
    p_thm.add_argument("--seed", type=int, default=0)
    p_thm.set_defaults(func=_cmd_theorems)

    def _add_service_args(p) -> None:
        p.add_argument("--dataset", choices=sorted(DATASETS),
                       default="lognormal")
        p.add_argument("--size", type=int, default=20_000)
        p.add_argument("--shards", type=int, default=4)
        p.add_argument("--backend", choices=("thread", "process"),
                       default="thread")
        p.add_argument("--read-batch", type=int, default=256)
        p.add_argument("--write-batch", type=int, default=64)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--no-ingress", action="store_true",
                       help="drive the facade directly instead of "
                            "through the coalescing AsyncIngress front "
                            "door (hides the ingress.* panel)")
        p.add_argument("--coalesce-window", type=float, default=0.002,
                       help="ingress coalescing window in seconds "
                            "(default 0.002)")
        p.add_argument("--max-inflight", type=int, default=None,
                       help="process-backend per-worker pipelining "
                            "budget (default 8 / $REPRO_MAX_INFLIGHT; "
                            "1 = call-and-wait RPC)")
        p.add_argument("--replicas", action="store_true",
                       help="host a WAL-following replica beside each "
                            "shard primary (forces durability — a "
                            "tempdir WAL unless --durable provides "
                            "one); part of the driver's reads then "
                            "route replica_ok and the repl.* panel "
                            "lights up")

    p_stats = sub.add_parser(
        "stats", help="drive a sharded service briefly and print its "
                      "observability snapshot (latency percentiles, "
                      "counters, structural events)")
    _add_service_args(p_stats)
    p_stats.add_argument("--rounds", type=int, default=30,
                         help="driver rounds before the snapshot")
    p_stats.add_argument("--format", choices=("table", "json",
                                              "prometheus"),
                         default="table")
    p_stats.set_defaults(func=_cmd_stats)

    p_top = sub.add_parser(
        "top", help="live refreshing dashboard over a self-driven "
                    "sharded service: per-shard throughput, "
                    "p50/p99/p999, SMO events, WAL lag")
    _add_service_args(p_top)
    p_top.add_argument("--refresh", type=float, default=1.0,
                       help="seconds between dashboard frames")
    p_top.add_argument("--duration", type=float, default=0.0,
                       help="stop after this many seconds "
                            "(0 = until Ctrl-C)")
    p_top.add_argument("--plain", action="store_true",
                       help="append frames instead of clearing the "
                            "screen (pipe-friendly)")
    p_top.add_argument("--durable", action="store_true",
                       help="run the demo service durably (tempdir WAL "
                            "+ checkpoints) so wal.*/checkpoint.* "
                            "metrics light up")
    p_top.set_defaults(func=_cmd_top)

    p_trace = sub.add_parser(
        "trace", help="drive a sharded service briefly and print its "
                      "slowest captured request traces as causal timing "
                      "trees spanning ingress, facade, RPC, and worker "
                      "processes")
    _add_service_args(p_trace)
    p_trace.add_argument("--rounds", type=int, default=30,
                         help="driver rounds before the capture")
    p_trace.add_argument("--trace-id", default=None,
                         help="dump one specific trace (e.g. a p99 "
                              "exemplar id from 'repro stats') instead "
                              "of the slowest captured ones")
    p_trace.add_argument("--limit", type=int, default=3,
                         help="how many slow traces to print")
    p_trace.add_argument("--format", choices=("tree", "chrome"),
                         default="tree",
                         help="indented timing tree, or Chrome "
                              "trace-event JSON for chrome://tracing "
                              "/ Perfetto")
    p_trace.set_defaults(func=_cmd_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (``python -m repro ...``)."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
