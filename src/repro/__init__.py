"""repro: a pure-Python reproduction of ALEX, the updatable adaptive
learned index (Ding et al., SIGMOD 2020).

Quickstart::

    import numpy as np
    from repro import AlexIndex, ga_armi

    keys = np.random.default_rng(0).uniform(0, 1e6, 10_000)
    index = AlexIndex.bulk_load(keys, config=ga_armi())
    index.insert(123.456, "payload")
    assert index.lookup(123.456) == "payload"
    neighbours = index.range_scan(123.0, limit=10)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results of every table and figure.
"""

from .core import (
    ADAPTIVE_RMI,
    ALL_VARIANTS,
    AdaptationPolicy,
    AlexConfig,
    AlexIndex,
    CostModelPolicy,
    Counters,
    DuplicateKeyError,
    GAPPED_ARRAY,
    HeuristicPolicy,
    KeyNotFoundError,
    LinearModel,
    PACKED_MEMORY_ARRAY,
    STATIC_RMI,
    ga_armi,
    ga_srmi,
    pma_armi,
    pma_srmi,
)
from .baselines import BPlusTree, LearnedIndex
from .analysis import CostModel, DEFAULT_COST_MODEL
from .serve import ShardRouter, ShardedAlexIndex

__version__ = "1.1.0"

__all__ = [
    "ADAPTIVE_RMI",
    "ALL_VARIANTS",
    "AdaptationPolicy",
    "AlexConfig",
    "AlexIndex",
    "BPlusTree",
    "CostModel",
    "CostModelPolicy",
    "Counters",
    "DEFAULT_COST_MODEL",
    "DuplicateKeyError",
    "GAPPED_ARRAY",
    "HeuristicPolicy",
    "KeyNotFoundError",
    "LearnedIndex",
    "LinearModel",
    "PACKED_MEMORY_ARRAY",
    "STATIC_RMI",
    "ShardRouter",
    "ShardedAlexIndex",
    "ga_armi",
    "ga_srmi",
    "pma_armi",
    "pma_srmi",
]
