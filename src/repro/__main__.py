"""``python -m repro`` dispatches to the CLI.

The ``__main__`` guard matters here: the process shard backend uses the
``multiprocessing`` spawn context, whose children re-import the parent's
main module (as ``__mp_main__``) — without the guard every worker would
re-run the CLI.
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
