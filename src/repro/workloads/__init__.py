"""YCSB-style workloads of the paper's evaluation (Section 5.1.2)."""

from .runner import WorkloadResult, WorkloadRunner, run_workload
from .adaptation import (
    SCENARIOS,
    build_trace,
    grow_then_shrink_trace,
    replay_trace,
    run_adaptation_scenario,
    shifting_hotspot_trace,
)
from .hotspot import HotspotGenerator, LatestGenerator
from .recovery import CRASH_BACKENDS, run_crash_recovery_scenario
from .trace import ReplayResult, Trace, TraceRecorder, record_workload, replay
from .spec import (
    DELETE,
    DELETE_HEAVY,
    INSERT,
    RANGE_SCAN,
    READ,
    READ_HEAVY,
    READ_ONLY,
    SCAN,
    WORKLOADS,
    WRITE_HEAVY,
    WRITE_ONLY,
    WorkloadSpec,
)
from .zipf import DEFAULT_THETA, ZipfianGenerator, scramble_ranks

__all__ = [
    "CRASH_BACKENDS",
    "DEFAULT_THETA",
    "DELETE",
    "DELETE_HEAVY",
    "HotspotGenerator",
    "INSERT",
    "SCENARIOS",
    "build_trace",
    "grow_then_shrink_trace",
    "replay_trace",
    "run_adaptation_scenario",
    "shifting_hotspot_trace",
    "LatestGenerator",
    "RANGE_SCAN",
    "READ",
    "READ_HEAVY",
    "READ_ONLY",
    "ReplayResult",
    "SCAN",
    "Trace",
    "TraceRecorder",
    "WORKLOADS",
    "WRITE_HEAVY",
    "WRITE_ONLY",
    "WorkloadResult",
    "WorkloadRunner",
    "WorkloadSpec",
    "ZipfianGenerator",
    "record_workload",
    "replay",
    "run_crash_recovery_scenario",
    "run_workload",
    "scramble_ranks",
]
