"""Workload specifications: the paper's four YCSB-style workloads.

Section 5.1.2 defines (1) read-only, (2) read-heavy 95/5, (3) write-heavy
50/50, and (4) range-scan 95/5 — roughly YCSB Workloads C, B, A and E.
Reads and inserts are interleaved deterministically: 19 reads then 1 insert
for the 95/5 workloads, alternating read/insert for 50/50.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

READ = "read"
INSERT = "insert"
SCAN = "scan"


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark workload.

    ``reads_per_cycle`` reads (or scans, when ``scans`` is true) followed by
    ``inserts_per_cycle`` inserts, repeated — the paper's interleaving that
    "simulates real-time usage".
    """

    name: str
    reads_per_cycle: int
    inserts_per_cycle: int
    scans: bool = False
    max_scan_length: int = 100
    ycsb_equivalent: str = ""

    def schedule(self) -> Iterator[str]:
        """Yield the infinite operation sequence (``read``/``insert``/
        ``scan``)."""
        read_op = SCAN if self.scans else READ
        while True:
            for _ in range(self.reads_per_cycle):
                yield read_op
            for _ in range(self.inserts_per_cycle):
                yield INSERT

    def fractions(self) -> Tuple[float, float]:
        """``(read_fraction, insert_fraction)`` of the cycle."""
        cycle = self.reads_per_cycle + self.inserts_per_cycle
        if cycle == 0:
            return 1.0, 0.0
        return self.reads_per_cycle / cycle, self.inserts_per_cycle / cycle


READ_ONLY = WorkloadSpec("read-only", reads_per_cycle=1, inserts_per_cycle=0,
                         ycsb_equivalent="C")
READ_HEAVY = WorkloadSpec("read-heavy", reads_per_cycle=19, inserts_per_cycle=1,
                          ycsb_equivalent="B")
WRITE_HEAVY = WorkloadSpec("write-heavy", reads_per_cycle=1, inserts_per_cycle=1,
                           ycsb_equivalent="A")
RANGE_SCAN = WorkloadSpec("range-scan", reads_per_cycle=19, inserts_per_cycle=1,
                          scans=True, ycsb_equivalent="E")
WRITE_ONLY = WorkloadSpec("write-only", reads_per_cycle=0, inserts_per_cycle=1,
                          ycsb_equivalent="inserts")

WORKLOADS = {
    spec.name: spec
    for spec in (READ_ONLY, READ_HEAVY, WRITE_HEAVY, RANGE_SCAN, WRITE_ONLY)
}
