"""Workload specifications: the paper's four YCSB-style workloads.

Section 5.1.2 defines (1) read-only, (2) read-heavy 95/5, (3) write-heavy
50/50, and (4) range-scan 95/5 — roughly YCSB Workloads C, B, A and E.
Reads and inserts are interleaved deterministically: 19 reads then 1 insert
for the 95/5 workloads, alternating read/insert for 50/50.

Beyond the paper's four, specs may also schedule *deletes*
(``deletes_per_cycle``): each delete removes a Zipfian-selected key
currently in the index, exercising the delete-side SMOs (leaf merges,
merge-up collapses, shard re-provisioning) that insert-only workloads
never trigger.  ``delete-heavy`` keeps the key count roughly stationary
(every cycle inserts as many keys as it deletes) while making 80% of
operations writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

READ = "read"
INSERT = "insert"
SCAN = "scan"
DELETE = "delete"


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark workload.

    ``reads_per_cycle`` reads (or scans, when ``scans`` is true) followed
    by ``inserts_per_cycle`` inserts and ``deletes_per_cycle`` deletes,
    repeated — the paper's interleaving that "simulates real-time usage",
    extended with a delete phase for churn workloads.
    """

    name: str
    reads_per_cycle: int
    inserts_per_cycle: int
    scans: bool = False
    max_scan_length: int = 100
    ycsb_equivalent: str = ""
    deletes_per_cycle: int = 0

    def schedule(self) -> Iterator[str]:
        """Yield the infinite operation sequence (``read``/``insert``/
        ``scan``/``delete``)."""
        read_op = SCAN if self.scans else READ
        while True:
            for _ in range(self.reads_per_cycle):
                yield read_op
            for _ in range(self.inserts_per_cycle):
                yield INSERT
            for _ in range(self.deletes_per_cycle):
                yield DELETE

    def fractions(self) -> Tuple[float, float]:
        """``(read_fraction, insert_fraction)`` of the cycle (deletes
        count toward the cycle length; use :attr:`deletes_per_cycle` for
        their share)."""
        cycle = (self.reads_per_cycle + self.inserts_per_cycle
                 + self.deletes_per_cycle)
        if cycle == 0:
            return 1.0, 0.0
        return self.reads_per_cycle / cycle, self.inserts_per_cycle / cycle


READ_ONLY = WorkloadSpec("read-only", reads_per_cycle=1, inserts_per_cycle=0,
                         ycsb_equivalent="C")
READ_HEAVY = WorkloadSpec("read-heavy", reads_per_cycle=19, inserts_per_cycle=1,
                          ycsb_equivalent="B")
WRITE_HEAVY = WorkloadSpec("write-heavy", reads_per_cycle=1, inserts_per_cycle=1,
                           ycsb_equivalent="A")
RANGE_SCAN = WorkloadSpec("range-scan", reads_per_cycle=19, inserts_per_cycle=1,
                          scans=True, ycsb_equivalent="E")
WRITE_ONLY = WorkloadSpec("write-only", reads_per_cycle=0, inserts_per_cycle=1,
                          ycsb_equivalent="inserts")
DELETE_HEAVY = WorkloadSpec("delete-heavy", reads_per_cycle=1,
                            inserts_per_cycle=2, deletes_per_cycle=2,
                            ycsb_equivalent="churn")

WORKLOADS = {
    spec.name: spec
    for spec in (READ_ONLY, READ_HEAVY, WRITE_HEAVY, RANGE_SCAN, WRITE_ONLY,
                 DELETE_HEAVY)
}
