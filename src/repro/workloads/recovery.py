"""Durable run-then-crash-then-recover workload scenario.

The durability subsystem's end-to-end exercise, shaped like the other
workload drivers: bulk-load a *durable* index (single-node wrapper or the
sharded service on either backend), push an interleaved YCSB-style
operation stream through :class:`~repro.workloads.runner.WorkloadRunner`
— optionally SIGKILLing a shard worker mid-stream to exercise the
facade's crash-respawn path — then simulate a crash (hard durability
barrier, abandon the live object) and recover from the directory alone.

The scenario's verdict is the durability contract itself:
``contents_match`` is True iff the recovered index is key-for-key (and
payload-for-payload) equal to the pre-crash state, i.e. every
acknowledged write survived and nothing phantom appeared.  The bench
(``benchmarks/bench_durability.py``) and the CI smoke job both run it.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Optional

import numpy as np

from repro.durability import DurableAlexIndex
from repro.serve import ShardedAlexIndex

from .runner import WorkloadRunner
from .spec import WORKLOADS, WorkloadSpec

#: ``backend`` values the scenario accepts: the single-node durable
#: wrapper, or the sharded service on either execution backend.
CRASH_BACKENDS = ("single", "thread", "process")


def run_crash_recovery_scenario(
        durability_dir: str,
        num_keys: int = 20_000,
        num_ops: int = 5_000,
        spec: "WorkloadSpec | str" = "write-heavy",
        backend: str = "thread",
        num_shards: int = 4,
        fsync: str = "batch",
        checkpoint_every: int = 1 << 30,
        kill_worker_at: Optional[float] = None,
        read_batch: int = 32,
        write_batch: int = 32,
        delete_batch: int = 32,
        seed: int = 0) -> dict:
    """Run a durable workload, crash, recover, and verify equivalence.

    ``kill_worker_at`` (process backend only) SIGKILLs a random shard
    worker after that fraction of the operation stream, so the run also
    exercises mid-workload worker respawn.  ``checkpoint_every`` defaults
    to effectively-never so recovery genuinely replays the WAL tail;
    pass a small value to measure checkpoint-bounded recovery instead.

    Returns a dict with the run tallies, recovery timings, and the
    ``contents_match`` verdict.
    """
    if backend not in CRASH_BACKENDS:
        raise ValueError(f"backend {backend!r} not in {CRASH_BACKENDS}")
    if isinstance(spec, str):
        spec = WORKLOADS[spec]
    rng = np.random.default_rng(seed)
    universe = np.unique(rng.lognormal(0.0, 2.0, int(num_keys * 2.5)))
    init_keys = universe[:num_keys]
    insert_keys = universe[num_keys:]
    rng.shuffle(insert_keys)

    if backend == "single":
        index = DurableAlexIndex.bulk_load(
            init_keys, root=durability_dir, fsync=fsync,
            checkpoint_every=checkpoint_every)
    else:
        index = ShardedAlexIndex.bulk_load(
            init_keys, num_shards=num_shards, backend=backend,
            durability_dir=durability_dir, fsync=fsync,
            checkpoint_every=checkpoint_every)

    runner = WorkloadRunner(index, init_keys.copy(), insert_keys.copy(),
                            seed=seed + 1)
    kwargs = dict(read_batch=read_batch, write_batch=write_batch,
                  delete_batch=delete_batch)
    t0 = time.perf_counter()
    if kill_worker_at is not None and backend == "process":
        first_leg = max(1, int(num_ops * float(kill_worker_at)))
        result = runner.run(spec, first_leg, **kwargs)
        pids = index.backend.worker_pids()
        victim = int(rng.integers(len(pids)))
        os.kill(pids[victim], signal.SIGKILL)
        # The facade detects the death on the next touch and respawns
        # the worker from its checkpoint + WAL tail, mid-workload.
        result.merge(runner.run(spec, num_ops - first_leg, **kwargs))
    else:
        result = runner.run(spec, num_ops, **kwargs)
    run_seconds = time.perf_counter() - t0

    # Crash: everything appended is forced down, then the live object is
    # abandoned — no final checkpoint, no orderly close of the in-memory
    # state.  (The executors are shut down so the scenario doesn't leak
    # worker processes; the durable state on disk is what recovery gets.)
    index.sync()
    expected = dict(index.items())
    if backend != "single":
        index.backend.close()

    t0 = time.perf_counter()
    if backend == "single":
        recovered = DurableAlexIndex.open(durability_dir, fsync=fsync,
                                          checkpoint_every=checkpoint_every)
        recoveries = [recovered.last_recovery]
    else:
        recovered = ShardedAlexIndex.recover(
            durability_dir, backend=backend, fsync=fsync,
            checkpoint_every=checkpoint_every)
        recoveries = recovered.last_recovery
    recovery_seconds = time.perf_counter() - t0

    got = dict(recovered.items())
    contents_match = got == expected
    frames = sum(r.frames_replayed for r in recoveries)
    replayed_ops = sum(r.ops_replayed for r in recoveries)
    recovered.close()
    return {
        "backend": backend,
        "spec": spec.name,
        "num_shards": 1 if backend == "single" else num_shards,
        "fsync": fsync,
        "ops": result.ops,
        "reads": result.reads,
        "inserts": result.inserts,
        "deletes": result.deletes,
        "scans": result.scans,
        "worker_killed": bool(kill_worker_at is not None
                              and backend == "process"),
        "run_seconds": run_seconds,
        "recovery_seconds": recovery_seconds,
        "frames_replayed": frames,
        "ops_replayed": replayed_ops,
        "recovered_keys": len(got),
        "contents_match": contents_match,
    }
