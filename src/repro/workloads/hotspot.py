"""Additional YCSB key-selection distributions: hotspot and latest.

The paper's workloads select keys Zipfian over the whole population.
YCSB also ships two other access skews that stress learned indexes in
interesting ways, so this module adds them for the ablation benches:

* **hotspot** — a fraction ``hot_fraction`` of the keys receives a
  fraction ``hot_access_fraction`` of the accesses (default 20%/80%);
* **latest** — access probability is Zipfian over *recency*: the most
  recently inserted keys are hottest (pairs naturally with insert-heavy
  streams, and is the access pattern where ALEX's freshly-retrained leaf
  models shine or suffer depending on the insert pattern).
"""

from __future__ import annotations

import numpy as np

from .zipf import ZipfianGenerator


class HotspotGenerator:
    """YCSB hotspot distribution over ``n`` items."""

    def __init__(self, n: int, hot_fraction: float = 0.2,
                 hot_access_fraction: float = 0.8, seed: int = 0):
        if n < 1:
            raise ValueError("n must be >= 1")
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not 0.0 <= hot_access_fraction <= 1.0:
            raise ValueError("hot_access_fraction must be in [0, 1]")
        self.n = n
        self.hot_n = max(1, int(n * hot_fraction))
        self.hot_access_fraction = hot_access_fraction
        self._rng = np.random.default_rng(seed)

    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` item indexes in ``[0, n)``."""
        hot = self._rng.random(size) < self.hot_access_fraction
        hot_picks = self._rng.integers(0, self.hot_n, size)
        cold_lo = self.hot_n if self.hot_n < self.n else 0
        cold_picks = self._rng.integers(cold_lo, self.n, size)
        return np.where(hot, hot_picks, cold_picks)


class LatestGenerator:
    """YCSB latest distribution: Zipfian over recency.

    ``sample(size, population)`` interprets rank 0 as the most recently
    inserted item of a ``population``-sized set, so the returned indexes
    are ``population - 1 - zipf_rank``.
    """

    def __init__(self, max_population: int, seed: int = 0):
        if max_population < 1:
            raise ValueError("max_population must be >= 1")
        self._zipf = ZipfianGenerator(max_population, seed=seed)
        self.max_population = max_population

    def sample(self, size: int, population: int) -> np.ndarray:
        """Draw ``size`` indexes into the first ``population`` items,
        skewed toward the most recent (highest index)."""
        if not 1 <= population <= self.max_population:
            raise ValueError("population out of range")
        ranks = self._zipf.sample(size) % population
        return (population - 1) - ranks
