"""Workload execution: drives any :class:`OrderedIndex` through a spec.

Reproduces the paper's measurement procedure (Section 5.1.2): initialize an
index with a fixed number of keys, then run the interleaved operation
stream; lookup keys are drawn Zipfian from the keys currently in the index,
inserts consume a disjoint stream of new keys, deletes remove a
Zipfian-selected key currently in the index (and retire it from the lookup
pool), and scans read a uniform number of subsequent keys (max 100).
Instead of a 60-second wall-clock budget, the runner executes a fixed
operation count and reports the operation counters, from which the cost
model derives throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import Optional

import numpy as np

from repro.core.stats import Counters

from .spec import DELETE, INSERT, SCAN, WorkloadSpec
from .zipf import ZipfianGenerator, scramble_ranks


@dataclass
class WorkloadResult:
    """Outcome of one workload run."""

    spec_name: str
    ops: int = 0
    reads: int = 0
    inserts: int = 0
    scans: int = 0
    scanned_records: int = 0
    deletes: int = 0
    work: Counters = field(default_factory=Counters)

    def merge(self, other: "WorkloadResult") -> None:
        """Accumulate another run's tallies (used by lifetime studies)."""
        self.ops += other.ops
        self.reads += other.reads
        self.inserts += other.inserts
        self.scans += other.scans
        self.scanned_records += other.scanned_records
        self.deletes += other.deletes
        self.work.merge(other.work)


class WorkloadRunner:
    """Runs a workload spec against an index with a stream of insert keys.

    Parameters
    ----------
    index:
        Any object satisfying :class:`repro.baselines.OrderedIndex`.
    existing_keys:
        Keys already in the index (the init keys); lookups draw from this
        pool, which grows as inserts complete.
    insert_keys:
        Disjoint keys consumed by insert operations, in order.
    seed:
        Seed for the Zipfian selector and scan lengths.
    """

    def __init__(self, index, existing_keys: np.ndarray,
                 insert_keys: np.ndarray, seed: int = 0):
        self.index = index
        capacity = len(existing_keys) + len(insert_keys)
        self._pool = np.empty(max(capacity, 1), dtype=np.float64)
        self._pool[:len(existing_keys)] = existing_keys
        self._pool_size = len(existing_keys)
        self._insert_keys = np.asarray(insert_keys, dtype=np.float64)
        self._next_insert = 0
        self._zipf = ZipfianGenerator(max(capacity, 1), seed=seed)
        self._rng = np.random.default_rng(seed + 1)

    @property
    def inserts_remaining(self) -> int:
        """Insert keys not yet consumed."""
        return len(self._insert_keys) - self._next_insert

    def _pick_existing(self, rank: int) -> float:
        if self._pool_size == 0:
            raise RuntimeError("cannot look up from an empty index")
        pos = scramble_ranks(np.array([rank]), self._pool_size)[0]
        return float(self._pool[pos])

    def _take_existing(self, rank: int) -> float:
        """Pick a pool key like :meth:`_pick_existing` and retire it (the
        delete path: the key leaves the lookup pool the moment the delete
        is scheduled, so no later read or delete can target it again)."""
        pos = scramble_ranks(np.array([rank]), self._pool_size)[0]
        key = float(self._pool[pos])
        self._pool_size -= 1
        self._pool[pos] = self._pool[self._pool_size]
        return key

    def run(self, spec: WorkloadSpec, num_ops: int,
            scan_payload: Optional[int] = None,
            read_batch: int = 1, write_batch: int = 1,
            delete_batch: int = 1) -> WorkloadResult:
        """Execute ``num_ops`` operations of ``spec``; returns tallies and
        the counter delta for exactly this run.

        Stops early (with fewer ops) if the insert stream runs dry, or if
        a delete finds the key pool empty.

        ``read_batch > 1`` enables batched reads where the trace allows:
        consecutive lookup operations are buffered (up to ``read_batch``)
        and issued through the index's ``lookup_many`` in one call; the
        buffer is flushed whenever an insert, delete, or scan interleaves,
        so the observable per-operation results are identical to scalar
        execution.  ``write_batch > 1`` does the same for consecutive
        inserts through the index's ``insert_many`` (the write buffer is
        flushed before any read, delete, or scan executes, so every
        operation still sees exactly the keys a scalar execution would),
        and ``delete_batch > 1`` for consecutive deletes through
        ``delete_many``.  A delete buffer never holds a key that a
        pending read or insert could touch (deleted keys leave the pool
        when scheduled and insert keys are fresh), so only scans force a
        delete flush.  Indexes without the batch methods fall back to
        scalar operations transparently.
        """
        result = WorkloadResult(spec_name=spec.name)
        before = self.index.counters.snapshot()
        ranks = self._zipf.sample(num_ops)
        scan_lengths = self._rng.integers(1, spec.max_scan_length + 1,
                                          size=num_ops)
        lookup_many = getattr(self.index, "lookup_many", None)
        batching = read_batch > 1 and lookup_many is not None
        insert_many = getattr(self.index, "insert_many", None)
        wbatching = write_batch > 1 and insert_many is not None
        delete_many = getattr(self.index, "delete_many", None)
        dbatching = delete_batch > 1 and delete_many is not None
        pending: list = []
        pending_writes: list = []
        pending_deletes: list = []

        def flush() -> None:
            if not pending:
                return
            if len(pending) == 1:
                self.index.lookup(pending[0])
            else:
                lookup_many(np.array(pending, dtype=np.float64))
            result.reads += len(pending)
            pending.clear()

        def flush_writes() -> None:
            if not pending_writes:
                return
            if len(pending_writes) == 1:
                self.index.insert(pending_writes[0], scan_payload)
            else:
                insert_many(np.array(pending_writes, dtype=np.float64),
                            [scan_payload] * len(pending_writes))
            result.inserts += len(pending_writes)
            pending_writes.clear()

        def flush_deletes() -> None:
            if not pending_deletes:
                return
            if len(pending_deletes) == 1:
                self.index.delete(pending_deletes[0])
            else:
                delete_many(np.array(pending_deletes, dtype=np.float64))
            result.deletes += len(pending_deletes)
            pending_deletes.clear()

        for i, op in enumerate(islice(spec.schedule(), num_ops)):
            if op == INSERT:
                if self._next_insert >= len(self._insert_keys):
                    break
                flush()
                key = float(self._insert_keys[self._next_insert])
                self._next_insert += 1
                self._pool[self._pool_size] = key
                self._pool_size += 1
                if wbatching:
                    pending_writes.append(key)
                    if len(pending_writes) >= write_batch:
                        flush_writes()
                else:
                    self.index.insert(key, scan_payload)
                    result.inserts += 1
            elif op == DELETE:
                if self._pool_size == 0:
                    break
                # Reads scheduled before this delete must execute first
                # (they may target the victim), and the victim itself may
                # still sit in the insert buffer.
                flush()
                flush_writes()
                key = self._take_existing(int(ranks[i]))
                if dbatching:
                    pending_deletes.append(key)
                    if len(pending_deletes) >= delete_batch:
                        flush_deletes()
                else:
                    self.index.delete(key)
                    result.deletes += 1
            elif op == SCAN:
                flush()
                flush_writes()
                flush_deletes()
                key = self._pick_existing(int(ranks[i]))
                records = self.index.range_scan(key, int(scan_lengths[i]))
                result.scanned_records += len(records)
                result.scans += 1
            else:
                flush_writes()
                key = self._pick_existing(int(ranks[i]))
                if batching:
                    pending.append(key)
                    if len(pending) >= read_batch:
                        flush()
                else:
                    self.index.lookup(key)
                    result.reads += 1
            result.ops += 1
        flush()
        flush_writes()
        flush_deletes()
        result.work = self.index.counters.snapshot().diff(before)
        return result


def run_workload(index, existing_keys: np.ndarray, insert_keys: np.ndarray,
                 spec: WorkloadSpec, num_ops: int, seed: int = 0,
                 read_batch: int = 1, write_batch: int = 1,
                 delete_batch: int = 1) -> WorkloadResult:
    """One-shot convenience wrapper around :class:`WorkloadRunner`."""
    runner = WorkloadRunner(index, existing_keys, insert_keys, seed=seed)
    return runner.run(spec, num_ops, read_batch=read_batch,
                      write_batch=write_batch, delete_batch=delete_batch)
