"""Zipfian key selection, as used by the YCSB-style workloads.

The paper selects lookup keys "randomly from the set of existing keys in
the index according to a Zipfian distribution" (Section 5.1.2).  This is
the standard YCSB generator (Gray et al.'s rejection-free inversion) with
rank scrambling so that the hot keys are spread across the key space, as
YCSB does.
"""

from __future__ import annotations

import numpy as np

#: YCSB's default skew constant.
DEFAULT_THETA = 0.99

#: Multiplier/increment of a 64-bit splitmix-style scrambler.
_SCRAMBLE_MULT = np.uint64(0x9E3779B97F4A7C15)


class ZipfianGenerator:
    """Draws Zipf-distributed ranks in ``[0, n)`` with parameter ``theta``.

    Implements the closed-form inversion of Gray et al. (the YCSB
    ``ZipfianGenerator``): after precomputing two zeta sums, each draw costs
    O(1) and vectorizes.
    """

    def __init__(self, n: int, theta: float = DEFAULT_THETA, seed: int = 0):
        if n < 1:
            raise ValueError("n must be >= 1")
        if not 0.0 < theta < 1.0:
            raise ValueError("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self._rng = np.random.default_rng(seed)
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (1.0 - self._zeta2 / self._zetan)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        """Generalized harmonic number ``H_{n,theta}`` (vectorized sum)."""
        return float(np.sum(1.0 / np.arange(1, n + 1, dtype=np.float64) ** theta))

    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` ranks; rank 0 is the hottest."""
        u = self._rng.random(size)
        uz = u * self._zetan
        ranks = np.floor(self.n * (self._eta * u - self._eta + 1.0) ** self._alpha)
        ranks = ranks.astype(np.int64)
        ranks[uz < 1.0] = 0
        ranks[(uz >= 1.0) & (uz < 1.0 + 0.5 ** self.theta)] = 1
        return np.clip(ranks, 0, self.n - 1)

    def sample_one(self) -> int:
        """Draw a single rank."""
        return int(self.sample(1)[0])


def scramble_ranks(ranks: np.ndarray, modulus: int) -> np.ndarray:
    """Map hot ranks to pseudo-random positions in ``[0, modulus)``.

    YCSB scrambles its Zipfian output so the most popular items are not the
    smallest keys; a fixed odd-multiplier hash keeps the mapping
    deterministic and collision-free enough for workload purposes.
    """
    if modulus < 1:
        raise ValueError("modulus must be >= 1")
    hashed = (ranks.astype(np.uint64) + np.uint64(1)) * _SCRAMBLE_MULT
    hashed ^= hashed >> np.uint64(31)
    return (hashed % np.uint64(modulus)).astype(np.int64)
