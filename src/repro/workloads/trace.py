"""Operation traces: record, save, and replay exact workloads.

Benchmark reproducibility across machines and runs needs more than a
seed — it needs the *exact* operation stream.  A :class:`Trace` is a
sequence of ``(op, key, arg)`` records that can be captured from a
:class:`~repro.workloads.runner.WorkloadRunner`-style run, persisted to a
compact ``.npz`` file, and replayed against any index implementing the
:class:`~repro.baselines.interfaces.OrderedIndex` protocol.

This also enables apples-to-apples baseline comparisons: record once,
replay against ALEX, the B+Tree, and the Learned Index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.stats import Counters
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import WorkloadSpec

#: Operation codes in the on-disk format.
OP_LOOKUP = 0
OP_INSERT = 1
OP_SCAN = 2
OP_DELETE = 3

_OP_NAMES = {OP_LOOKUP: "lookup", OP_INSERT: "insert",
             OP_SCAN: "scan", OP_DELETE: "delete"}


@dataclass
class Trace:
    """An immutable-ish operation stream.

    ``ops[i]`` is the opcode, ``keys[i]`` the key, ``args[i]`` the scan
    length (0 for non-scans).
    """

    ops: np.ndarray
    keys: np.ndarray
    args: np.ndarray
    init_keys: np.ndarray = field(default_factory=lambda: np.empty(0))

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        for i in range(len(self.ops)):
            yield int(self.ops[i]), float(self.keys[i]), int(self.args[i])

    def summary(self) -> dict:
        """Operation counts by type."""
        return {name: int((self.ops == code).sum())
                for code, name in _OP_NAMES.items()}

    def save(self, path: str) -> None:
        """Persist to a compressed ``.npz``."""
        with open(path, "wb") as f:
            np.savez_compressed(f, ops=self.ops, keys=self.keys,
                                args=self.args, init_keys=self.init_keys)

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Load a trace saved with :meth:`save`."""
        with np.load(path) as archive:
            return cls(ops=archive["ops"].copy(),
                       keys=archive["keys"].copy(),
                       args=archive["args"].copy(),
                       init_keys=archive["init_keys"].copy())


class TraceRecorder:
    """Builds a :class:`Trace` incrementally."""

    def __init__(self, init_keys: Optional[np.ndarray] = None):
        self._records: List[Tuple[int, float, int]] = []
        self._init_keys = (np.asarray(init_keys, dtype=np.float64)
                           if init_keys is not None else np.empty(0))

    def lookup(self, key: float) -> None:
        """Record a lookup."""
        self._records.append((OP_LOOKUP, float(key), 0))

    def insert(self, key: float) -> None:
        """Record an insert."""
        self._records.append((OP_INSERT, float(key), 0))

    def scan(self, key: float, length: int) -> None:
        """Record a range scan."""
        self._records.append((OP_SCAN, float(key), int(length)))

    def delete(self, key: float) -> None:
        """Record a delete."""
        self._records.append((OP_DELETE, float(key), 0))

    def finish(self) -> Trace:
        """Freeze into a :class:`Trace`."""
        if self._records:
            ops, keys, args = zip(*self._records)
        else:
            ops, keys, args = (), (), ()
        return Trace(ops=np.array(ops, dtype=np.int8),
                     keys=np.array(keys, dtype=np.float64),
                     args=np.array(args, dtype=np.int32),
                     init_keys=self._init_keys)


def record_workload(existing_keys: np.ndarray, insert_keys: np.ndarray,
                    spec: WorkloadSpec, num_ops: int,
                    seed: int = 0) -> Trace:
    """Generate a trace by running the workload against a throwaway index
    that records instead of executing."""

    class _Recorder:
        """Duck-typed 'index' that records the runner's operations."""

        def __init__(self):
            self.counters = Counters()
            self.recorder = TraceRecorder(existing_keys)

        def lookup(self, key):
            self.recorder.lookup(key)

        def insert(self, key, payload=None):
            self.recorder.insert(key)

        def range_scan(self, key, limit):
            self.recorder.scan(key, limit)
            return []

    sink = _Recorder()
    runner = WorkloadRunner(sink, existing_keys, insert_keys, seed=seed)
    runner.run(spec, num_ops)
    return sink.recorder.finish()


@dataclass
class ReplayResult:
    """Outcome of replaying a trace against a real index."""

    ops: int
    work: Counters
    lookup_misses: int = 0


def replay(trace: Trace, index) -> ReplayResult:
    """Execute every trace record against ``index``; returns the counter
    delta.  Lookup misses are tolerated (and counted) so traces can be
    replayed against indexes whose contents drifted."""
    from repro.core.errors import KeyNotFoundError

    before = index.counters.snapshot()
    misses = 0
    for op, key, arg in trace:
        if op == OP_LOOKUP:
            try:
                index.lookup(key)
            except KeyNotFoundError:
                misses += 1
        elif op == OP_INSERT:
            index.insert(key, None)
        elif op == OP_SCAN:
            index.range_scan(key, arg)
        elif op == OP_DELETE:
            index.delete(key)
    work = index.counters.snapshot().diff(before)
    return ReplayResult(ops=len(trace), work=work, lookup_misses=misses)
