"""Adaptation-stressing workload traces: grow-then-shrink and shifting
hotspot.

The paper's YCSB-style workloads (Section 5.1.2) only ever grow the index,
so the delete-side and drift-side structural adaptations — leaf
contraction, leaf merges, catastrophic retrains, cold-shard merges — never
fire.  This module generates the two trace shapes that exercise them:

* **grow-then-shrink** — a wave of fresh inserts doubles the key count,
  then deletes remove the wave plus most of the original keys, with reads
  interleaved throughout.  A policy with no delete-side SMOs keeps every
  leaf (and every shard) the growth phase created; the cost-model policy
  merges underfull siblings back together and contracts, shrinking the
  structure with the data.

* **shifting-hotspot** — reads and inserts concentrate inside a window
  over the key domain that jumps to a new region every few batches (the
  moving-hotspot pattern of YCSB-hotspot, but non-stationary).  Fixed
  heuristics grow the once-hot leaves monotonically; the cost-model
  policy splits under insert pressure and retrains drifted models as the
  hotspot moves on.

Traces are lists of ``(op, keys)`` batch chunks (op in ``{"read",
"insert", "delete"}``) so replay runs through the PR 1 batch engine —
``get_many`` / ``insert_many`` / ``delete_many`` — exactly like the
serving tier would execute them.  :func:`run_adaptation_scenario` replays
a trace against a fresh index under a given policy and reports simulated
throughput, space, and the policy's SMO tallies (the comparison surface
of ``benchmarks/bench_adaptation.py`` and ``python -m repro adapt``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.alex import AlexIndex
from repro.core.config import AlexConfig, ga_armi
from repro.core.policy import AdaptationPolicy

#: The two scenario names, as accepted by :func:`build_trace` and the CLI.
SCENARIOS = ("grow-shrink", "hotspot-shift")

_DOMAIN = 1e9


def _fresh_keys(rng: np.random.Generator, count: int, lo: float, hi: float,
                taken: set) -> np.ndarray:
    """Draw ``count`` keys in ``[lo, hi)`` not colliding with ``taken``
    (and record them there)."""
    out: List[float] = []
    while len(out) < count:
        for key in rng.uniform(lo, hi, count - len(out)):
            key = float(key)
            if key not in taken:
                taken.add(key)
                out.append(key)
    return np.array(out, dtype=np.float64)


def grow_then_shrink_trace(num_keys: int = 20_000, num_ops: int = 20_000,
                           batch: int = 500, seed: int = 0,
                           shrink_fraction: float = 0.8):
    """Build the grow-then-shrink trace.

    Returns ``(init_keys, chunks)``: bulk-load ``init_keys``, then replay
    ``chunks``.  Half the operation budget inserts fresh keys (batched,
    read batches interleaved 1:1), the other half deletes the wave and
    ``shrink_fraction`` of the original keys, reads still interleaved, so
    the index ends far smaller than it peaked.
    """
    rng = np.random.default_rng(seed)
    taken: set = set()
    init_keys = _fresh_keys(rng, num_keys, 0.0, _DOMAIN, taken)
    live = list(init_keys)
    chunks: List[Tuple[str, np.ndarray]] = []

    grow_budget = num_ops // 2
    grown: List[float] = []
    while grow_budget > 0:
        size = min(batch, grow_budget)
        wave = _fresh_keys(rng, size, 0.0, _DOMAIN, taken)
        grown.extend(wave.tolist())
        live.extend(wave.tolist())
        chunks.append(("insert", wave))
        chunks.append(("read", rng.choice(live, size)))
        grow_budget -= size

    # The shrink phase removes the entire insert wave plus
    # ``shrink_fraction`` of the original keys — the index ends at a small
    # fraction of its peak, which is the whole point of the scenario (a
    # policy with no delete-side SMOs keeps the peak's structure forever).
    victims = np.array(grown + list(
        rng.choice(init_keys, int(len(init_keys) * shrink_fraction),
                   replace=False)), dtype=np.float64)
    rng.shuffle(victims)
    dead = set(victims.tolist())
    survivors = np.array([k for k in live if k not in dead])
    pos = 0
    while pos < len(victims):
        size = min(batch, len(victims) - pos)
        chunks.append(("delete", victims[pos:pos + size]))
        chunks.append(("read", rng.choice(survivors, size)))
        pos += size
    return init_keys, chunks


def shifting_hotspot_trace(num_keys: int = 20_000, num_ops: int = 20_000,
                           batch: int = 500, seed: int = 0,
                           window: float = 0.1, shifts: int = 5,
                           insert_fraction: float = 0.5,
                           insert_chunk: int = 2):
    """Build the shifting-hotspot trace.

    Returns ``(init_keys, chunks)``.  The operation budget divides into
    ``shifts`` phases; in each, every read and insert lands inside a
    ``window``-fraction slice of the key domain, and the slice jumps to a
    fresh region between phases (far apart, so a region never re-heats).

    Inserts inside the window are *sequential*: a cursor advances
    monotonically through the slice and each new key lands just past it —
    the paper's adversarial append pattern (Figure 5c) localized to the
    hotspot.  They are emitted in tiny ``insert_chunk``-sized chunks so
    replay takes the scalar insert path: the leaf models under the cursor
    go stale between rebuilds (distribution shift, Figure 5b) and reads
    pay growing search costs — the drift a fixed heuristic never repairs
    and an expected-cost policy answers with retrains and splits.
    """
    rng = np.random.default_rng(seed)
    taken: set = set()
    init_keys = _fresh_keys(rng, num_keys, 0.0, _DOMAIN, taken)
    sorted_init = np.sort(init_keys)
    chunks: List[Tuple[str, np.ndarray]] = []
    centers = rng.permutation(shifts) / max(shifts, 1)
    per_phase = num_ops // max(shifts, 1)
    for phase in range(shifts):
        lo = centers[phase] * _DOMAIN * (1.0 - window)
        hi = lo + window * _DOMAIN
        span = sorted_init[np.searchsorted(sorted_init, lo):
                           np.searchsorted(sorted_init, hi)]
        if len(span) == 0:
            span = sorted_init
        local: List[float] = list(span)
        budget = per_phase
        total_inserts = int(per_phase * insert_fraction)
        # Sequential cursor: new keys sweep the slice left to right.
        cursor = lo
        step = (hi - lo) / max(total_inserts + 1, 1)
        while budget > 0:
            size = min(batch, budget)
            inserts = int(size * insert_fraction)
            done = 0
            while done < inserts:
                count = min(insert_chunk, inserts - done)
                wave = []
                for _ in range(count):
                    key = cursor + float(rng.uniform(0.0, step))
                    while key in taken:
                        key += step * 1e-6
                    taken.add(key)
                    wave.append(key)
                    cursor += step
                local.extend(wave)
                chunks.append(("insert", np.array(wave, dtype=np.float64)))
                done += count
            reads = size - inserts
            if reads:
                chunks.append(("read", rng.choice(local, reads)))
            budget -= size
    return init_keys, chunks


def build_trace(scenario: str, num_keys: int, num_ops: int,
                batch: int = 500, seed: int = 0):
    """Dispatch on the scenario name (see :data:`SCENARIOS`)."""
    if scenario == "grow-shrink":
        return grow_then_shrink_trace(num_keys, num_ops, batch, seed)
    if scenario == "hotspot-shift":
        return shifting_hotspot_trace(num_keys, num_ops, batch, seed)
    raise ValueError(f"unknown scenario {scenario!r} "
                     f"(choose from {', '.join(SCENARIOS)})")


def replay_trace(index: AlexIndex, chunks) -> int:
    """Replay ``(op, keys)`` chunks through the batch engine; returns the
    number of logical operations executed."""
    ops = 0
    for op, keys in chunks:
        if op == "insert":
            index.insert_many(keys)
        elif op == "delete":
            index.delete_many(keys)
        elif op == "read":
            index.get_many(keys)
        else:
            raise ValueError(f"unknown trace op {op!r}")
        ops += len(keys)
    return ops


def run_adaptation_scenario(policy: AdaptationPolicy, scenario: str,
                            num_keys: int = 20_000, num_ops: int = 20_000,
                            batch: int = 500, seed: int = 0,
                            config: Optional[AlexConfig] = None,
                            cost_model=None) -> dict:
    """Replay one adaptation scenario under ``policy`` and measure it.

    Builds a fresh :class:`AlexIndex` (default config: ``ga_armi()`` with
    a 256-key node bound — small enough that the traces generate real
    structural pressure), replays the trace, and returns simulated
    throughput (counter-weighted, DESIGN.md §6), space, structure shape,
    and the policy's SMO tallies.  Deterministic for a given seed.
    """
    if cost_model is None:
        from repro.analysis.cost_model import DEFAULT_COST_MODEL
        cost_model = DEFAULT_COST_MODEL
    config = config or ga_armi(max_keys_per_node=256)
    init_keys, chunks = build_trace(scenario, num_keys, num_ops, batch, seed)
    index = AlexIndex.bulk_load(init_keys, config=config, policy=policy)
    before = index.counters.snapshot()
    ops = replay_trace(index, chunks)
    work = index.counters.diff(before)
    nanos = cost_model.simulated_nanos(work)
    index.validate()
    return {
        "scenario": scenario,
        "policy": type(policy).__name__,
        "ops": int(ops),
        "sim_mops": round(ops / nanos * 1e3, 4) if nanos > 0 else float("inf"),
        "sim_ns_per_op": round(nanos / ops, 2) if ops else 0.0,
        "final_keys": len(index),
        "leaves": index.num_leaves(),
        "depth": index.depth(),
        "index_bytes": index.index_size_bytes(),
        "data_bytes": index.data_size_bytes(),
        "smo_counts": dict(policy.smo_counts),
        "work": {
            "expansions": work.expansions,
            "contractions": work.contractions,
            "splits": work.splits,
            "merges": work.merges,
            "retrains": work.retrains,
            "shifts": work.shifts,
            "probes": work.probes,
        },
    }


__all__ = [
    "SCENARIOS",
    "build_trace",
    "grow_then_shrink_trace",
    "replay_trace",
    "run_adaptation_scenario",
    "shifting_hotspot_trace",
]
