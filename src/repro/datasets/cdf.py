"""CDF utilities: the lens through which the paper analyses its datasets.

Appendix C explains every performance difference between datasets through
their cumulative distribution functions: longitudes is smooth at all scales,
longlat looks smooth globally but is a step function locally (Figure 14),
lognormal is heavily skewed, YCSB is uniform.  This module computes
empirical CDFs, the zoomed views of Figure 14, and a *local non-linearity*
score that quantifies "hard to model with piecewise-linear models".
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def empirical_cdf(keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_keys, cdf_values)`` with cdf in (0, 1]."""
    sorted_keys = np.sort(np.asarray(keys, dtype=np.float64))
    n = len(sorted_keys)
    if n == 0:
        return sorted_keys, np.empty(0)
    return sorted_keys, np.arange(1, n + 1, dtype=np.float64) / n


def cdf_window(keys: np.ndarray, center_quantile: float,
               width_quantile: float) -> Tuple[np.ndarray, np.ndarray]:
    """The zoomed CDF views of Figure 14: the slice of the CDF centred at
    ``center_quantile`` spanning ``width_quantile`` of the mass."""
    sorted_keys, cdf = empirical_cdf(keys)
    n = len(sorted_keys)
    lo = int(max(0, (center_quantile - width_quantile / 2) * n))
    hi = int(min(n, (center_quantile + width_quantile / 2) * n))
    return sorted_keys[lo:hi], cdf[lo:hi]


def linear_fit_error(keys: np.ndarray) -> float:
    """RMS error (in key-rank units, normalized by n) of the best single
    linear fit to the CDF — a global "modelability" score."""
    sorted_keys = np.sort(np.asarray(keys, dtype=np.float64))
    n = len(sorted_keys)
    if n < 2:
        return 0.0
    ranks = np.arange(n, dtype=np.float64)
    centered = sorted_keys - sorted_keys.mean()
    denom = float(np.dot(centered, centered))
    if denom == 0.0:
        return 0.0
    slope = float(np.dot(centered, ranks - ranks.mean())) / denom
    intercept = ranks.mean() - slope * sorted_keys.mean()
    residual = ranks - (slope * sorted_keys + intercept)
    return float(np.sqrt(np.mean(residual ** 2)) / n)


def local_nonlinearity(keys: np.ndarray, num_windows: int = 64) -> float:
    """Mean per-window linear-fit error: the property that separates
    longlat from longitudes in Figure 14.

    The keys are sorted and cut into ``num_windows`` equal-count windows;
    each window gets its own best linear fit of key -> rank.  Smooth CDFs
    fit well locally even when they are globally curved; step-like CDFs do
    not.  Returned in rank units normalized by window size.
    """
    sorted_keys = np.sort(np.asarray(keys, dtype=np.float64))
    n = len(sorted_keys)
    if n < 2 * num_windows:
        return linear_fit_error(sorted_keys)
    window = n // num_windows
    errors = []
    for w in range(num_windows):
        lo = w * window
        hi = lo + window
        errors.append(linear_fit_error(sorted_keys[lo:hi]))
    return float(np.mean(errors))


def cdf_step_score(keys: np.ndarray, num_windows: int = 64) -> float:
    """Fraction of adjacent-key gaps that are "jumps" (> 10x the window's
    median gap): near 0 for smooth CDFs, large for step-like ones."""
    sorted_keys = np.sort(np.asarray(keys, dtype=np.float64))
    n = len(sorted_keys)
    if n < 2 * num_windows:
        num_windows = 1
    window = n // num_windows
    jumps = 0
    total = 0
    for w in range(num_windows):
        lo = w * window
        hi = min(n, lo + window)
        gaps = np.diff(sorted_keys[lo:hi])
        if len(gaps) == 0:
            continue
        median = np.median(gaps)
        if median <= 0:
            continue
        jumps += int((gaps > 10 * median).sum())
        total += len(gaps)
    return jumps / total if total else 0.0
