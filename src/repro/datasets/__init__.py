"""The paper's four datasets as synthetic generators, plus CDF analysis."""

from .cdf import (
    cdf_step_score,
    cdf_window,
    empirical_cdf,
    linear_fit_error,
    local_nonlinearity,
)
from .generators import (
    DATASETS,
    DatasetSpec,
    load,
    lognormal,
    longitudes,
    longlat,
    sequential,
    shifted_halves,
    ycsb,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "cdf_step_score",
    "cdf_window",
    "empirical_cdf",
    "linear_fit_error",
    "load",
    "local_nonlinearity",
    "lognormal",
    "longitudes",
    "longlat",
    "sequential",
    "shifted_halves",
    "ycsb",
]
