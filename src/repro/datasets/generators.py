"""Synthetic versions of the paper's four datasets (Table 1, Appendix C).

The paper's experiments use 190M–1B keys from OpenStreetMaps, a lognormal
distribution, and the YCSB key generator.  We cannot ship OSM extracts, so
the geographic datasets are replaced by synthetic generators that reproduce
the property the paper's analysis hinges on: the *shape of the CDF*
(globally smooth vs. locally step-like — Figures 13 and 14).  Every
generator takes an explicit ``size`` and ``seed`` so experiments scale down
deterministically.

Datasets (all duplicate-free, float64):

* ``longitudes`` — longitudes of world locations.  Real OSM longitudes
  cluster around populated areas; we draw from a fixed mixture of Gaussians
  (population centres) over [-180, 180], which yields the same smooth but
  non-uniform CDF.
* ``longlat`` — compound keys ``k = 180 * round(longitude) + latitude``
  applied to the synthetic locations, exactly the paper's transformation,
  reproducing the step-function CDF that makes this dataset hard to model.
* ``lognormal`` — lognormal(0, 2) scaled by 1e9 and floored to integers
  (the paper's recipe verbatim).
* ``ycsb`` — uniform integer user IDs.  The paper uses 64-bit IDs; we bound
  them by 2**53 so they are exactly representable as float64.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

#: Gaussian mixture (weight, mean longitude, std) loosely matching world
#: population density; only the smooth-but-nonuniform CDF shape matters.
_LONGITUDE_CLUSTERS = (
    (0.30, 78.0, 25.0),    # South / East Asia
    (0.25, 10.0, 18.0),    # Europe / Africa
    (0.20, -85.0, 20.0),   # Americas (east)
    (0.10, -120.0, 12.0),  # Americas (west)
    (0.10, 120.0, 15.0),   # East Asia / Oceania
    (0.05, 35.0, 30.0),    # Middle East / Central Asia
)

_YCSB_KEY_BOUND = float(2 ** 53)


def _dedupe_to_size(draw: Callable[[np.random.Generator, int], np.ndarray],
                    size: int, rng: np.random.Generator) -> np.ndarray:
    """Draw batches until ``size`` unique values are collected.

    The paper's datasets contain no duplicates; drawing ~10% extra per round
    converges in one or two rounds for every generator here.
    """
    unique = np.empty(0, dtype=np.float64)
    want = size
    while len(unique) < size:
        batch = draw(rng, int(want * 1.1) + 16)
        unique = np.unique(np.concatenate([unique, batch]))
        want = size - len(unique) + 16
    out = unique[:size].copy()
    rng.shuffle(out)
    return out


def _draw_locations(rng: np.random.Generator, n: int):
    """Synthetic world locations: clustered longitudes, banded latitudes."""
    weights = np.array([w for w, _, _ in _LONGITUDE_CLUSTERS])
    choices = rng.choice(len(_LONGITUDE_CLUSTERS), size=n, p=weights / weights.sum())
    means = np.array([m for _, m, _ in _LONGITUDE_CLUSTERS])[choices]
    stds = np.array([s for _, _, s in _LONGITUDE_CLUSTERS])[choices]
    longitude = np.clip(rng.normal(means, stds), -180.0, 180.0)
    # Latitudes concentrate in the temperate band.
    latitude = np.clip(rng.normal(30.0, 25.0, size=n), -90.0, 90.0)
    return longitude, latitude


def longitudes(size: int, seed: int = 0) -> np.ndarray:
    """Longitude keys: smooth, globally non-uniform CDF (Fig. 13/14 left)."""
    rng = np.random.default_rng(seed)

    def draw(r: np.random.Generator, n: int) -> np.ndarray:
        lon, _ = _draw_locations(r, n)
        return lon

    return _dedupe_to_size(draw, size, rng)


def longlat(size: int, seed: int = 0) -> np.ndarray:
    """Compound longitude-latitude keys: locally step-like CDF (Fig. 14
    right), the paper's hardest-to-model dataset."""
    rng = np.random.default_rng(seed)

    def draw(r: np.random.Generator, n: int) -> np.ndarray:
        lon, lat = _draw_locations(r, n)
        return 180.0 * np.round(lon) + lat

    return _dedupe_to_size(draw, size, rng)


def lognormal(size: int, seed: int = 0, mu: float = 0.0,
              sigma: float = 2.0) -> np.ndarray:
    """Lognormal integer keys: highly skewed (paper Appendix C recipe:
    lognormal(0, 2) * 1e9, floored)."""
    rng = np.random.default_rng(seed)

    def draw(r: np.random.Generator, n: int) -> np.ndarray:
        return np.floor(r.lognormal(mu, sigma, size=n) * 1_000_000_000.0)

    return _dedupe_to_size(draw, size, rng)


def ycsb(size: int, seed: int = 0) -> np.ndarray:
    """Uniform integer user IDs (YCSB), bounded by 2**53 for float64
    exactness."""
    rng = np.random.default_rng(seed)

    def draw(r: np.random.Generator, n: int) -> np.ndarray:
        return np.floor(r.uniform(0.0, _YCSB_KEY_BOUND, size=n))

    return _dedupe_to_size(draw, size, rng)


def sequential(size: int, seed: int = 0, start: float = 0.0,
               step: float = 1.0) -> np.ndarray:
    """Strictly increasing keys — the adversarial insert pattern of
    Figure 5c (always lands in the right-most leaf)."""
    del seed  # deterministic by construction; parameter kept for uniformity
    return start + step * np.arange(size, dtype=np.float64)


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata for one of the paper's datasets (Table 1)."""

    name: str
    generator: Callable[..., np.ndarray]
    key_type: str
    payload_size: int
    paper_num_keys: str


DATASETS: Dict[str, DatasetSpec] = {
    "longitudes": DatasetSpec("longitudes", longitudes, "double", 8, "1B"),
    "longlat": DatasetSpec("longlat", longlat, "double", 8, "200M"),
    "lognormal": DatasetSpec("lognormal", lognormal, "64-bit int", 8, "190M"),
    "ycsb": DatasetSpec("ycsb", ycsb, "64-bit int", 80, "200M"),
}


def load(name: str, size: int, seed: int = 0) -> np.ndarray:
    """Generate dataset ``name`` with ``size`` unique keys."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; choose from {sorted(DATASETS)}"
        ) from None
    return spec.generator(size, seed=seed)


def shifted_halves(size: int, seed: int = 0) -> tuple:
    """The Figure 5b distribution-shift construction on longitudes: sort
    the keys, shuffle each half independently, and return
    ``(first_half, second_half)`` — the init keys and the insert keys come
    from disjoint key domains."""
    keys = np.sort(longitudes(size, seed=seed))
    half = size // 2
    rng = np.random.default_rng(seed + 1)
    first = keys[:half].copy()
    second = keys[half:].copy()
    rng.shuffle(first)
    rng.shuffle(second)
    return first, second
