"""Experiment driver shared by every bench target in ``benchmarks/``.

Encapsulates the paper's experimental procedure (Section 5.1): build each
system over a dataset's init keys with per-dataset tuned parameters, run a
workload's interleaved operation stream, and report simulated throughput
plus index/data sizes.  Scaled-down defaults keep each bench target in CI
territory while preserving the paper's parameter *ratios* (keys per model,
keys per leaf, page size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.analysis.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.baselines.bptree import BPlusTree
from repro.baselines.delta_learned_index import DeltaLearnedIndex
from repro.baselines.learned_index import LearnedIndex
from repro.core.alex import AlexIndex
from repro.core.config import ALL_VARIANTS, ga_armi
from repro.core.stats import Counters
from repro.datasets import DATASETS, load
from repro.serve import ShardedAlexIndex
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import WorkloadSpec

from .tuning import LEARNED_INDEX_MIN_KEYS_PER_MODEL

#: All systems the harness can build, in the paper's naming (plus the
#: delta-buffer Learned Index of Section 2.3 and the scatter-gather
#: sharded service of :mod:`repro.serve`).
SYSTEMS = tuple(ALL_VARIANTS) + ("BPlusTree", "LearnedIndex",
                                 "DeltaLearnedIndex", "ShardedALEX")


@dataclass(frozen=True)
class SystemParams:
    """Tuned parameters for one system on one dataset (the outcome of the
    paper's grid searches, here given as scale-preserving ratios)."""

    keys_per_model: int = 256          # static-RMI models: n / keys_per_model
    max_keys_per_node: int = 1024      # adaptive-RMI leaf bound
    page_size: int = 256               # B+Tree page bytes
    space_overhead: Optional[float] = None  # ALEX data-space overhead (0.43 default)
    split_on_inserts: bool = False
    learned_keys_per_model: int = LEARNED_INDEX_MIN_KEYS_PER_MODEL
    num_shards: int = 4                # ShardedALEX partition count
    shard_workers: Optional[int] = None  # ShardedALEX scatter threads
    shard_backend: str = "thread"      # ShardedALEX executor: thread|process
    durability_dir: Optional[str] = None  # WAL+checkpoint root (None = off)
    fsync: str = "batch"               # WAL fsync policy: always|batch|off
    checkpoint_every: int = 8192       # logged ops between checkpoints
    kernel_backend: Optional[str] = None  # hot-loop kernels (None = default)


@dataclass
class ExperimentResult:
    """One (system, dataset, workload) measurement."""

    system: str
    dataset: str
    workload: str
    ops: int
    throughput: float
    index_bytes: int
    data_bytes: int
    work: Counters = field(default_factory=Counters)
    extras: Dict[str, float] = field(default_factory=dict)

    def row(self) -> tuple:
        """Row for :func:`repro.bench.report.format_table`."""
        return (self.system, self.dataset, self.workload, self.ops,
                f"{self.throughput / 1e6:.3f}", self.index_bytes,
                self.data_bytes)


def build_index(system: str, init_keys: np.ndarray,
                params: SystemParams = SystemParams(),
                payload_size: int = 8):
    """Build any of the paper's systems over ``init_keys``."""
    n = max(1, len(init_keys))
    kernel_kw = ({"kernel_backend": params.kernel_backend}
                 if params.kernel_backend is not None else {})
    if system in ALL_VARIANTS:
        config = ALL_VARIANTS[system](
            num_models=max(1, n // params.keys_per_model),
            max_keys_per_node=params.max_keys_per_node,
            split_on_inserts=params.split_on_inserts,
            payload_size=payload_size,
            **kernel_kw,
        )
        if params.space_overhead is not None:
            config = config.with_space_overhead(params.space_overhead)
        return AlexIndex.bulk_load(init_keys, config=config)
    if system == "BPlusTree":
        return BPlusTree.bulk_load(init_keys, page_size=params.page_size,
                                   payload_size=payload_size)
    if system == "LearnedIndex":
        num_models = max(1, n // params.learned_keys_per_model)
        return LearnedIndex.bulk_load(init_keys, num_models=num_models,
                                      payload_size=payload_size)
    if system == "DeltaLearnedIndex":
        num_models = max(1, n // params.learned_keys_per_model)
        return DeltaLearnedIndex.bulk_load(init_keys, num_models=num_models,
                                           payload_size=payload_size)
    if system == "ShardedALEX":
        # Per-shard config: each shard holds ~n / num_shards keys, so its
        # model budget scales with its share, not the total key count.
        config = ga_armi(
            num_models=max(1, (n // max(1, params.num_shards))
                           // params.keys_per_model),
            max_keys_per_node=params.max_keys_per_node,
            split_on_inserts=params.split_on_inserts,
            payload_size=payload_size,
            **kernel_kw,
        )
        if params.space_overhead is not None:
            config = config.with_space_overhead(params.space_overhead)
        return ShardedAlexIndex.bulk_load(
            init_keys, config=config,
            num_shards=params.num_shards,
            max_workers=params.shard_workers,
            backend=params.shard_backend,
            durability_dir=params.durability_dir,
            fsync=params.fsync,
            checkpoint_every=params.checkpoint_every)
    raise ValueError(f"unknown system {system!r}; choose from {SYSTEMS}")


def run_experiment(system: str, dataset: str, spec: WorkloadSpec,
                   init_size: int, num_ops: int,
                   params: SystemParams = SystemParams(),
                   cost_model: CostModel = DEFAULT_COST_MODEL,
                   seed: int = 0,
                   keys: Optional[np.ndarray] = None,
                   read_batch: int = 1,
                   write_batch: int = 1,
                   delete_batch: int = 1) -> ExperimentResult:
    """Full paper procedure for one data point: generate the dataset,
    bulk-load ``init_size`` keys, run ``num_ops`` interleaved operations,
    report simulated throughput and sizes.

    ``keys`` overrides dataset generation (used by the distribution-shift
    and sequential-insert benches, which craft their own key orderings).

    ``read_batch > 1`` issues consecutive lookups through the index's
    batch engine (``lookup_many``) where the operation trace allows,
    amortizing the per-operation traversal work; ``write_batch > 1`` does
    the same for consecutive inserts through ``insert_many``, and
    ``delete_batch > 1`` for consecutive deletes through ``delete_many``
    (delete-scheduling specs only).  Systems without a batch API
    transparently fall back to scalar operations.
    """
    payload_size = DATASETS[dataset].payload_size if dataset in DATASETS else 8
    if keys is None:
        # Generate enough keys to cover the workload's insert share.
        _, insert_fraction = spec.fractions()
        extra = int(num_ops * insert_fraction) + 16
        keys = load(dataset, init_size + extra, seed=seed)
    init_keys = keys[:init_size]
    insert_keys = keys[init_size:]
    index = build_index(system, init_keys, params, payload_size=payload_size)
    runner = WorkloadRunner(index, init_keys.copy(), insert_keys.copy(),
                            seed=seed + 1)
    shard_counters = getattr(index, "shard_counters", None)
    shard_before = shard_counters() if shard_counters is not None else None
    result = runner.run(spec, num_ops, read_batch=read_batch,
                        write_batch=write_batch, delete_batch=delete_batch)
    extras = {
        "reads": result.reads,
        "inserts": result.inserts,
        "scans": result.scans,
        "scanned_records": result.scanned_records,
        "deletes": result.deletes,
    }
    if shard_before is not None:
        # Scatter-gather systems also report the parallel service model:
        # ops over the slowest shard's simulated time (per-shard sub-work
        # executes concurrently; the batch completes with the last shard).
        worst = max(cost_model.simulated_nanos(after.diff(before))
                    for after, before in zip(shard_counters(), shard_before))
        extras["critical_path_throughput"] = (
            result.ops / (worst / 1e9) if worst > 0 else float("inf"))
    index_bytes = index.index_size_bytes()
    data_bytes = index.data_size_bytes()
    closer = getattr(index, "close", None)
    if closer is not None:
        # Release the sharded service's executors (worker pool, or the
        # process backend's shard worker processes).
        closer()
    return ExperimentResult(
        system=system,
        dataset=dataset,
        workload=spec.name,
        ops=result.ops,
        throughput=cost_model.throughput(result.ops, result.work),
        index_bytes=index_bytes,
        data_bytes=data_bytes,
        work=result.work,
        extras=extras,
    )


def best_alex_variant_for(spec: WorkloadSpec, shifting: bool = False) -> str:
    """The variant the paper uses per workload (Section 5.2): GA-SRMI for
    read-only, GA-ARMI for read-write, PMA-ARMI for adversarial sequential
    inserts."""
    if shifting:
        return "ALEX-PMA-ARMI"
    if spec.inserts_per_cycle == 0:
        return "ALEX-GA-SRMI"
    return "ALEX-GA-ARMI"
