"""Grid-search tuning, mirroring the paper's methodology (Section 5.1).

The paper tunes, per benchmark: the B+Tree page size, ALEX's number of
static models / max keys per adaptive leaf, and the Learned Index's model
count ("while not exceeding the model sizes reported in [17]" — i.e. the
Learned Index is not allowed arbitrarily many models; the paper's best
configurations sit around several thousand keys per model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

from repro.analysis.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.workloads.runner import run_workload
from repro.workloads.spec import WorkloadSpec

#: Page sizes the B+Tree grid search explores (bytes).
PAGE_SIZE_GRID: Sequence[int] = (128, 256, 512, 1024, 4096)

#: Static-RMI model-count grid, as keys-per-model divisors.
KEYS_PER_MODEL_GRID: Sequence[int] = (64, 128, 256, 512, 1024)

#: Adaptive-RMI max-keys-per-leaf grid.
MAX_KEYS_GRID: Sequence[int] = (256, 512, 1024, 2048)

#: The Learned Index may not exceed roughly one model per this many keys
#: (the paper's "model sizes reported in [17]" constraint).
LEARNED_INDEX_MIN_KEYS_PER_MODEL = 2000


@dataclass(frozen=True)
class TuneResult:
    """Winning parameter and its measured throughput."""

    parameter: object
    throughput: float


def grid_search(build: Callable[[object], object], grid: Sequence[object],
                init_keys: np.ndarray, insert_keys: np.ndarray,
                spec: WorkloadSpec, num_ops: int,
                cost_model: CostModel = DEFAULT_COST_MODEL,
                seed: int = 0) -> TuneResult:
    """Pick the grid point with the best simulated throughput.

    ``build(param)`` must return a fresh index initialized with
    ``init_keys``.
    """
    best: Tuple[float, object] = (-1.0, grid[0])
    for param in grid:
        index = build(param)
        result = run_workload(index, init_keys.copy(), insert_keys.copy(),
                              spec, num_ops, seed=seed)
        throughput = cost_model.throughput(result.ops, result.work)
        if throughput > best[0]:
            best = (throughput, param)
    return TuneResult(parameter=best[1], throughput=best[0])


def learned_index_model_grid(num_keys: int) -> Sequence[int]:
    """Model counts the Learned Index may try for ``num_keys`` keys,
    respecting the paper's model-size cap."""
    cap = max(1, num_keys // LEARNED_INDEX_MIN_KEYS_PER_MODEL)
    grid = sorted({max(1, cap // 4), max(1, cap // 2), cap})
    return tuple(grid)


def static_model_grid(num_keys: int) -> Sequence[int]:
    """Model counts ALEX's static RMI may try for ``num_keys`` keys."""
    return tuple(sorted({max(1, num_keys // kpm) for kpm in KEYS_PER_MODEL_GRID}))
