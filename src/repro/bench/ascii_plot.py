"""Terminal plotting: render figure series as ASCII charts.

The paper's figures are line charts and histograms; the bench targets
print tables, and these helpers add a visual rendering so trends (the
Fig. 6 lifetime curves, the Fig. 11 crossover) are visible straight in
the terminal output without matplotlib.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

_GLYPHS = "ox+*#@%&"


def ascii_chart(series: Dict[str, Sequence[float]], width: int = 64,
                height: int = 16, title: str = "",
                y_label: str = "") -> str:
    """Render one or more numeric series as an ASCII line chart.

    All series share the x axis (their indexes) and the y range.
    """
    if not series:
        return title
    all_values = [v for values in series.values() for v in values]
    if not all_values:
        return title
    lo, hi = min(all_values), max(all_values)
    if hi == lo:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    max_len = max(len(values) for values in series.values())
    for s_idx, (name, values) in enumerate(series.items()):
        glyph = _GLYPHS[s_idx % len(_GLYPHS)]
        for i, value in enumerate(values):
            x = (int(i * (width - 1) / (max_len - 1)) if max_len > 1 else 0)
            y = int((value - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - y][x] = glyph

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{hi:.3g}"
    bottom_label = f"{lo:.3g}"
    label_width = max(len(top_label), len(bottom_label), len(y_label)) + 1
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            label = top_label
        elif row_idx == height - 1:
            label = bottom_label
        elif row_idx == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |" + "".join(row))
    lines.append(" " * label_width + " +" + "-" * width)
    legend = "   ".join(f"{_GLYPHS[i % len(_GLYPHS)]} {name}"
                        for i, name in enumerate(series))
    lines.append(" " * label_width + "   " + legend)
    return "\n".join(lines)


def ascii_histogram(buckets: Sequence, width: int = 48,
                    title: str = "") -> str:
    """Render ``(label, count)`` buckets as a horizontal bar chart."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not buckets:
        return "\n".join(lines)
    peak = max(count for _, count in buckets) or 1
    total = sum(count for _, count in buckets) or 1
    label_width = max(len(str(label)) for label, _ in buckets)
    for label, count in buckets:
        bar = "#" * max(0, int(count / peak * width))
        share = 100.0 * count / total
        lines.append(f"{str(label):>{label_width}} |{bar:<{width}} "
                     f"{count} ({share:.1f}%)")
    return "\n".join(lines)
