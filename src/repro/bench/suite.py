"""Programmatic experiment suite: run the paper's headline grid in one call.

``run_headline_suite`` executes the Figure-4 grid (4 workloads x 4
datasets x the per-workload best ALEX variant + B+Tree) at a configurable
scale and returns a :class:`SuiteReport` with every data point plus the
aggregate win/loss summary the paper's abstract quotes ("up to X.Yx higher
throughput, up to Nx smaller index").  Used by the CLI-less automation
paths (notebooks, CI smoke checks) and tested in
``tests/test_suite.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.workloads.spec import (
    RANGE_SCAN,
    READ_HEAVY,
    READ_ONLY,
    WRITE_HEAVY,
    WorkloadSpec,
)

from .harness import ExperimentResult, SystemParams, best_alex_variant_for, run_experiment

HEADLINE_WORKLOADS: Tuple[WorkloadSpec, ...] = (
    READ_ONLY, READ_HEAVY, WRITE_HEAVY, RANGE_SCAN)
HEADLINE_DATASETS: Tuple[str, ...] = (
    "longitudes", "longlat", "lognormal", "ycsb")


@dataclass
class SuiteReport:
    """All data points of one suite run plus aggregate ratios."""

    results: List[ExperimentResult] = field(default_factory=list)

    def by(self, workload: str, dataset: str, system: str) -> ExperimentResult:
        """The single data point for a (workload, dataset, system) cell."""
        for result in self.results:
            if (result.workload == workload and result.dataset == dataset
                    and result.system == system):
                return result
        raise KeyError((workload, dataset, system))

    def throughput_ratios(self) -> Dict[Tuple[str, str], float]:
        """ALEX/B+Tree throughput per (workload, dataset) cell."""
        ratios: Dict[Tuple[str, str], float] = {}
        for result in self.results:
            if result.system == "BPlusTree":
                continue
            baseline = self.by(result.workload, result.dataset, "BPlusTree")
            ratios[(result.workload, result.dataset)] = (
                result.throughput / baseline.throughput)
        return ratios

    def max_throughput_ratio(self) -> float:
        """The abstract's "up to X.Yx higher throughput than B+Tree"."""
        return max(self.throughput_ratios().values())

    def max_index_size_ratio(self) -> float:
        """The abstract's "up to Nx smaller index size"."""
        best = 0.0
        for result in self.results:
            if result.system == "BPlusTree":
                continue
            baseline = self.by(result.workload, result.dataset, "BPlusTree")
            best = max(best, baseline.index_bytes / max(1, result.index_bytes))
        return best

    def wins(self) -> int:
        """Cells where ALEX out-throughputs the B+Tree."""
        return sum(1 for ratio in self.throughput_ratios().values()
                   if ratio > 1.0)

    def cells(self) -> int:
        """Total (workload, dataset) cells."""
        return len(self.throughput_ratios())


def run_headline_suite(init_size: int = 2000, num_ops: int = 1500,
                       params: SystemParams = SystemParams(
                           keys_per_model=256, max_keys_per_node=512),
                       cost_model: CostModel = DEFAULT_COST_MODEL,
                       seed: int = 0) -> SuiteReport:
    """Run the Figure-4 grid and return the collected report."""
    report = SuiteReport()
    for spec in HEADLINE_WORKLOADS:
        alex_variant = best_alex_variant_for(spec)
        for dataset in HEADLINE_DATASETS:
            for system in (alex_variant, "BPlusTree"):
                report.results.append(run_experiment(
                    system, dataset, spec, init_size=init_size,
                    num_ops=num_ops, params=params, cost_model=cost_model,
                    seed=seed))
    return report
