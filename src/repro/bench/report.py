"""Plain-text table/series reporting for the benchmark harness.

Every bench target prints the same rows/series the paper's tables and
figures report, using these helpers so output stays uniform and greppable.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned plain-text table."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1e5 or abs(cell) < 1e-3:
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


def format_throughput(ops_per_second: float) -> str:
    """Human-scaled ops/s (e.g. ``12.3 Mops/s``)."""
    if ops_per_second >= 1e6:
        return f"{ops_per_second / 1e6:.2f} Mops/s"
    if ops_per_second >= 1e3:
        return f"{ops_per_second / 1e3:.2f} Kops/s"
    return f"{ops_per_second:.1f} ops/s"


def format_bytes(num_bytes: float) -> str:
    """Human-scaled byte counts."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{value:.1f} GiB"


def ratio(numerator: float, denominator: float) -> str:
    """``12.3x``-style ratio string (safe against zero denominators)."""
    if denominator == 0:
        return "inf"
    return f"{numerator / denominator:.2f}x"
