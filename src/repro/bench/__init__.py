"""Benchmark harness: experiment driver, grid-search tuning, reporting."""

from .harness import (
    ExperimentResult,
    SYSTEMS,
    SystemParams,
    best_alex_variant_for,
    build_index,
    run_experiment,
)
from .ascii_plot import ascii_chart, ascii_histogram
from .suite import HEADLINE_DATASETS, HEADLINE_WORKLOADS, SuiteReport, run_headline_suite
from .report import format_bytes, format_table, format_throughput, ratio
from .tuning import (
    LEARNED_INDEX_MIN_KEYS_PER_MODEL,
    MAX_KEYS_GRID,
    PAGE_SIZE_GRID,
    TuneResult,
    grid_search,
    learned_index_model_grid,
    static_model_grid,
)

__all__ = [
    "ExperimentResult",
    "HEADLINE_DATASETS",
    "HEADLINE_WORKLOADS",
    "LEARNED_INDEX_MIN_KEYS_PER_MODEL",
    "MAX_KEYS_GRID",
    "PAGE_SIZE_GRID",
    "SYSTEMS",
    "SuiteReport",
    "SystemParams",
    "ascii_chart",
    "ascii_histogram",
    "TuneResult",
    "best_alex_variant_for",
    "build_index",
    "format_bytes",
    "format_table",
    "format_throughput",
    "grid_search",
    "learned_index_model_grid",
    "ratio",
    "run_experiment",
    "run_headline_suite",
    "static_model_grid",
]
