"""The ``repro stats`` / ``repro top`` terminal views.

Both commands build a small sharded service over a synthetic dataset,
drive it with a mixed read/write workload, and render the observability
layer's service-wide view (:meth:`ShardedAlexIndex.metrics_snapshot`):

* ``stats`` runs a fixed number of driver rounds and prints one
  snapshot — as a table, JSON, or Prometheus text;
* ``top`` keeps a driver thread running and refreshes a full-screen
  dashboard (per-shard throughput bars, latency percentiles, throughput
  sparkline, WAL lag, the structural event tail) until the duration
  elapses or Ctrl-C.

The point of self-driving (rather than attaching to an external
process) is that the whole loop — service, workload, metrics, dashboard
— runs with zero setup on both backends, which is also what the CLI
smoke tests exercise.
"""

from __future__ import annotations

import json
import sys
import tempfile
import threading
import time
from typing import List, Optional

import numpy as np

from repro.bench.ascii_plot import ascii_chart, ascii_histogram
from repro.bench.report import format_table

from . import trace as tracing
from .metrics import exemplar_for_percentile, histogram_summary
from .render import (event_lines, format_ns, percentile_table,
                     to_chrome_trace, to_prometheus, trace_tree_lines)

#: Histogram prefixes the terminal views surface (the full snapshot is
#: available via --format json/prometheus).
TABLE_PREFIXES = ("ingress.", "serve.", "core.", "shard.op.", "rpc.",
                  "wal.", "checkpoint.", "recover.", "repl.", "replica.")


def _build_service(args):
    """A sharded service over the requested dataset, plus the key pool
    the driver samples from."""
    from repro.datasets import load
    from repro.serve import ShardedAlexIndex

    keys = np.unique(load(args.dataset, args.size, seed=args.seed))
    service = ShardedAlexIndex.bulk_load(
        keys, num_shards=args.shards, backend=args.backend,
        durability_dir=getattr(args, "_durability_dir", None),
        fsync="batch" if getattr(args, "_durability_dir", None) else "off",
        max_inflight=getattr(args, "max_inflight", None),
        replicate=getattr(args, "replicas", False))
    return service, keys


def _ensure_durability(args):
    """``--replicas`` needs a WAL for the followers to tail; when the
    run isn't otherwise durable, park one in a tempdir (returned so the
    caller keeps it alive until shutdown)."""
    if (getattr(args, "replicas", False)
            and getattr(args, "_durability_dir", None) is None):
        tmp = tempfile.TemporaryDirectory(prefix="repro-repl-")
        args._durability_dir = tmp.name + "/svc"
        return tmp
    return None


def _build_ingress(service, args):
    """The coalescing front door the driver pushes traffic through
    (``None`` with ``--no-ingress`` — the driver then calls the facade
    directly, as it did before the ingress existed)."""
    if getattr(args, "no_ingress", False):
        return None
    from repro.serve import IngressRunner
    return IngressRunner(service,
                         window_s=getattr(args, "coalesce_window", 0.002))


class _Driver:
    """A background workload: batched reads, batched insert/erase
    cycles, and a sprinkle of scalar ops so every instrumented facade
    path shows up on the dashboard."""

    def __init__(self, service, keys: np.ndarray, read_batch: int,
                 write_batch: int, seed: int, ingress=None) -> None:
        self.service = service
        #: When set, traffic routes through the coalescing front door
        #: (reads coalesce in lanes, writes pass through its admission
        #: budget), so the ingress.* panel has something to show.
        self.target = ingress if ingress is not None else service
        self.keys = keys
        self.read_batch = read_batch
        self.write_batch = write_batch
        self.rng = np.random.default_rng(seed + 1)
        self.ops = 0
        self.errors = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        # Fresh keys for insert/erase cycles, disjoint from the dataset.
        hi = float(self.keys[-1])
        self._fresh = hi + 1.0 + np.arange(write_batch, dtype=np.float64)

    def round(self) -> None:
        """One driver round: ~3 read batches, 1 insert+erase cycle, and
        a few scalar lookups.  With replication on, one of the read
        batches routes ``replica_ok`` so the repl.* metrics move."""
        replicated = getattr(self.service, "_replicate", False)
        for i in range(3):
            batch = self.rng.choice(self.keys, size=self.read_batch)
            if replicated and i == 0:
                self.target.get_many(batch, options="replica_ok")
            else:
                self.target.get_many(batch)
            self.ops += self.read_batch
        fresh = self._fresh + self.rng.integers(1, 1 << 30) * 1e-3
        self.target.insert_many(fresh)
        self.target.erase_many(fresh)
        self.ops += 2 * len(fresh)
        for key in self.rng.choice(self.keys, size=4):
            self.target.get(float(key))
            self.ops += 1

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.round()
            except Exception:
                # The dashboard must not die with a transient driver
                # error (e.g. a retry-exhausted worker death mid-demo).
                self.errors += 1
                time.sleep(0.05)

    def start(self) -> None:
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-top-driver")
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)


def _render_dashboard(service, snap: dict, shard_deltas: List[int],
                      interval: float, ops_history: List[float],
                      driver: _Driver, elapsed: float) -> str:
    merged = snap["merged"]
    parts: List[str] = []
    parts.append(f"repro top — {service.num_shards} shards "
                 f"[{snap['backend']} backend] — {driver.ops:,} driver ops "
                 f"({driver.errors} errors) — {elapsed:.0f}s")
    parts.append("")

    buckets = [(f"shard{s}", max(0, delta))
               for s, delta in enumerate(shard_deltas)]
    parts.append(ascii_histogram(
        buckets, width=40,
        title=f"per-shard accesses (last {interval:.1f}s)"))
    parts.append("")

    rows = percentile_table(merged, prefixes=TABLE_PREFIXES)
    if rows:
        parts.append(format_table(
            ["histogram", "count", "p50", "p90", "p99", "p99.9", "max",
             "p99 trace"],
            rows, title="latency percentiles (cumulative)"))
        parts.append("")

    if len(ops_history) >= 2:
        parts.append(ascii_chart({"ops/s": ops_history}, width=60, height=8,
                                 title="driver throughput (ops/s)"))
        parts.append("")

    counters = merged.get("counters", {})
    smo = {name: value for name, value in counters.items()
           if name.startswith(("policy.applied.", "serve.shard_",
                               "serve.worker_"))}
    lag = snap.get("wal_lag_ops")
    status = []
    request_hist = merged.get("histograms", {}).get("ingress.request")
    if request_hist:
        summary = histogram_summary(request_hist)
        gauges = merged.get("gauges", {})
        status.append(
            "front door: "
            f"p99 request {format_ns(summary.get('p99'))}  "
            f"in-flight {int(gauges.get('ingress.in_flight', 0))}  "
            f"shed {int(counters.get('ingress.shed', 0))}  "
            f"batches {int(counters.get('ingress.batches', 0))}")
    if smo:
        status.append("SMOs: " + "  ".join(
            f"{name.split('.')[-1]}={value}"
            for name, value in sorted(smo.items())))
    if lag is not None:
        status.append("WAL lag (ops since checkpoint): "
                      + " ".join(f"s{s}={n}" for s, n in enumerate(lag)))
    replication = snap.get("replication")
    if replication:
        status.append("replicas: " + "  ".join(
            f"s{s}=lsn{r['applied_lsn']}/"
            f"{r['staleness_s'] * 1e3:.0f}ms" if r else f"s{s}=down"
            for s, r in enumerate(replication)))
    parts.extend(status)

    events = merged.get("events", [])
    if events:
        parts.append("")
        parts.append("recent structural events:")
        parts.extend("  " + line for line in event_lines(events, limit=8))
    return "\n".join(parts)


def run_top(args) -> int:
    """The refreshing dashboard (``python -m repro top``)."""
    tmp = None
    if args.durable:
        tmp = tempfile.TemporaryDirectory(prefix="repro-top-")
        args._durability_dir = tmp.name + "/svc"
    repl_tmp = _ensure_durability(args)
    service, keys = _build_service(args)
    ingress = _build_ingress(service, args)
    driver = _Driver(service, keys, args.read_batch, args.write_batch,
                     args.seed, ingress=ingress)
    start = time.monotonic()
    last_accesses = [0] * service.num_shards
    last_ops = 0
    ops_history: List[float] = []
    driver.start()
    try:
        while True:
            time.sleep(args.refresh)
            elapsed = time.monotonic() - start
            snap = service.metrics_snapshot()
            accesses = [sum(row.values()) for row in snap["shards"]]
            if len(accesses) != len(last_accesses):  # shard split/merge
                last_accesses = [0] * len(accesses)
            deltas = [now - before
                      for now, before in zip(accesses, last_accesses)]
            last_accesses = accesses
            ops_history.append((driver.ops - last_ops) / args.refresh)
            last_ops = driver.ops
            ops_history[:] = ops_history[-60:]
            frame = _render_dashboard(service, snap, deltas, args.refresh,
                                      ops_history, driver, elapsed)
            if args.plain:
                print(frame)
                print("-" * 72)
            else:
                # Clear screen + home; one write so the frame never tears.
                sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
                sys.stdout.flush()
            if args.duration and elapsed >= args.duration:
                break
    except KeyboardInterrupt:
        pass
    finally:
        driver.stop()
        if ingress is not None:
            ingress.close()
        service.close()
        if tmp is not None:
            tmp.cleanup()
        if repl_tmp is not None:
            repl_tmp.cleanup()
    return 0


def run_stats(args) -> int:
    """The one-shot snapshot (``python -m repro stats``)."""
    repl_tmp = _ensure_durability(args)
    service, keys = _build_service(args)
    ingress = _build_ingress(service, args)
    driver = _Driver(service, keys, args.read_batch, args.write_batch,
                     args.seed, ingress=ingress)
    try:
        for _ in range(args.rounds):
            driver.round()
        snap = service.metrics_snapshot()
    finally:
        if ingress is not None:
            ingress.close()
        service.close()
        if repl_tmp is not None:
            repl_tmp.cleanup()
    merged = snap["merged"]
    if args.format == "json":
        from .render import summarize
        print(json.dumps({"backend": snap["backend"],
                          "shards": snap["shards"],
                          "wal_lag_ops": snap["wal_lag_ops"],
                          **summarize(merged)}, indent=2, sort_keys=True))
        return 0
    if args.format == "prometheus":
        sys.stdout.write(to_prometheus(merged))
        return 0
    print(format_table(
        ["shard", "reads", "writes", "scans"],
        [(s, row["reads"], row["writes"], row["scans"])
         for s, row in enumerate(snap["shards"])],
        title=f"{len(snap['shards'])}-shard service "
              f"[{snap['backend']} backend], {driver.ops:,} driver ops"))
    print()
    print(format_table(
        ["histogram", "count", "p50", "p90", "p99", "p99.9", "max",
         "p99 trace"],
        percentile_table(merged, prefixes=TABLE_PREFIXES),
        title="latency percentiles"))
    counters = merged.get("counters", {})
    interesting = {name: value for name, value in sorted(counters.items())
                   if not name.startswith("serve.shard")}
    if interesting:
        print()
        print(format_table(["counter", "value"],
                           list(interesting.items()), title="counters"))
    events = merged.get("events", [])
    if events:
        print()
        print("recent structural events:")
        for line in event_lines(events, limit=12):
            print("  " + line)
    return 0


def run_trace(args) -> int:
    """The slow-trace viewer (``python -m repro trace``): drive the
    self-contained workload like ``stats``, pull the service-wide trace
    snapshot (draining every worker's flight recorder), and print the
    slowest captured traces as causal timing trees — or one specific
    trace by id (``--trace-id``, e.g. an exemplar lifted from the
    ``stats`` p99 column), or Chrome trace-event JSON for
    ``chrome://tracing`` / Perfetto (``--format chrome``)."""
    repl_tmp = _ensure_durability(args)
    service, keys = _build_service(args)
    ingress = _build_ingress(service, args)
    driver = _Driver(service, keys, args.read_batch, args.write_batch,
                     args.seed, ingress=ingress)
    try:
        for _ in range(args.rounds):
            driver.round()
        snap = service.trace_snapshot()
        merged = service.metrics_snapshot()["merged"]
    finally:
        if ingress is not None:
            ingress.close()
        service.close()
        if repl_tmp is not None:
            repl_tmp.cleanup()

    if args.trace_id:
        targets = [args.trace_id]
    else:
        targets = [entry["trace"]
                   for entry in tracing.slow_traces(snap)[:args.limit]]
        if not targets:
            # Nothing crossed the slow threshold; fall back to the p99
            # exemplar so the command always has something to show.
            hist = merged.get("histograms", {}).get("ingress.request")
            exemplar = (exemplar_for_percentile(hist, 0.99)
                        if hist else None)
            if exemplar:
                targets = [exemplar["trace"]]
    if not targets:
        print("no traces captured (is REPRO_OBS on and "
              "REPRO_TRACE_SAMPLE > 0?)", file=sys.stderr)
        return 1

    if args.format == "chrome":
        spans: List[dict] = []
        seen = set()
        for tid in targets:
            for rec in tracing.assemble(tid, snap):
                if (rec["trace"], rec["span"]) not in seen:
                    seen.add((rec["trace"], rec["span"]))
                    spans.append(rec)
        print(json.dumps(to_chrome_trace(spans), indent=2))
        return 0

    for tid in targets:
        spans = tracing.assemble(tid, snap)
        if not spans:
            print(f"trace {tid}: no spans retained (ring wrapped?)")
            continue
        roots = [rec["dur"] for rec in spans
                 if rec.get("parent") is None]
        print(f"trace {tid} — {len(spans)} spans across "
              f"{len({rec['pid'] for rec in spans})} processes, "
              f"slowest root {format_ns(max(roots, default=0))}")
        for line in trace_tree_lines(spans):
            print("  " + line)
        print()
    return 0
