"""Request-scoped distributed tracing: causal span trees across processes.

Where the histograms in :mod:`repro.obs.metrics` answer "how long do
requests take in aggregate", this module answers "where did *this*
request's time go": a :class:`TraceContext` (trace id + span id) is born
at the ingress request (or at a facade call), flows through the
coalesced batch as a fan-in link, rides inside the pipelined RPC frames
to the worker processes (and replica workers), and is re-attached there
so worker-side shard-op, replica-read, WAL, and checkpoint spans join
the same causal tree.  One trace id therefore names a cross-process
tree of timed spans.

Recording model
---------------

Completed spans are plain dicts committed to a bounded in-process
:class:`FlightRecorder` (one per process, like the metrics registry):

* a ring of the most recent spans (``REPRO_TRACE_BUFFER``), and
* a small always-keep-slow store: when a *root* span finishes over the
  ``REPRO_TRACE_SLOW_MS`` threshold, its trace's spans are harvested
  into a separate ring (``REPRO_TRACE_SLOW_KEEP`` traces) so a p99
  outlier survives long after the main ring has wrapped.

Head sampling (``REPRO_TRACE_SAMPLE``, default 1.0) decides at the
*root* whether a request is traced at all; child spans inherit the
decision through the context, so a trace is always complete-or-absent.
Unsampled (and obs-disabled) paths degrade to exactly the PR 7
behavior: plain histogram spans, shared no-op when disabled.

Traced spans also stamp their trace id into the histogram's *exemplar*
slot for the latency bucket they land in
(:meth:`~repro.obs.metrics.LatencyHistogram.note_exemplar`), which is
what lets ``repro stats`` hang a concrete trace id off a p99 cell.

Worker processes never push: the facade pulls their recorder contents
over the existing RPC path (the ``trace_drain`` shard op, mirroring
``obs_snapshot``) and :func:`absorb`\\ s them, after which
:func:`assemble` can stitch the full cross-process tree for an id —
following batch fan-in links in both directions.
"""

from __future__ import annotations

import functools
import os
import random
import sys
import threading
import time
from collections import deque
from contextvars import ContextVar
from typing import Dict, List, Optional, Tuple

#: The parent package (``repro.obs``).  Resolved through ``sys.modules``
#: and read per call so this module shares the live kill switch
#: (``_enabled``), registry, and span classes without a circular import
#: (the package imports us at the end of its own body).
_obs = sys.modules[__package__]

#: Head-sampling rate for new roots (0.0 .. 1.0; default trace all —
#: the recorder is bounded, so always-on is safe, and the bench gates
#: the cost).
ENV_SAMPLE = "REPRO_TRACE_SAMPLE"
#: Root-duration threshold (milliseconds) above which a finished trace
#: is copied into the always-keep-slow store.
ENV_SLOW_MS = "REPRO_TRACE_SLOW_MS"
#: Capacity of the recent-spans ring (spans, not traces).
ENV_BUFFER = "REPRO_TRACE_BUFFER"
#: How many slow traces the tail store retains.
ENV_SLOW_KEEP = "REPRO_TRACE_SLOW_KEEP"


def _float_env(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, default))
    except (TypeError, ValueError):
        return default


def _int_env(name: str, default: int) -> int:
    try:
        return max(1, int(os.environ.get(name, default)))
    except (TypeError, ValueError):
        return default


_sample_rate = min(1.0, max(0.0, _float_env(ENV_SAMPLE, 1.0)))
_slow_ns = _float_env(ENV_SLOW_MS, 5.0) * 1e6
#: Stamped into every span record; safe as a module constant because
#: worker processes start via the spawn context (fresh interpreter).
_PID = os.getpid()


def set_sample_rate(rate: float) -> None:
    """Override the head-sampling rate at runtime (the env var only
    sets the initial value).  0 disables new roots entirely."""
    global _sample_rate
    _sample_rate = min(1.0, max(0.0, float(rate)))


def sample_rate() -> float:
    return _sample_rate


def set_slow_threshold_ms(ms: float) -> None:
    """Override the always-keep-slow duration threshold at runtime."""
    global _slow_ns
    _slow_ns = float(ms) * 1e6


def _new_id() -> str:
    """A 64-bit random id as 16 hex chars (compact, JSON/pickle-safe)."""
    return "%016x" % random.getrandbits(64)


def _sampled() -> bool:
    if _sample_rate >= 1.0:
        return True
    return _sample_rate > 0.0 and random.random() < _sample_rate


class TraceContext:
    """The identity a request carries: which trace it belongs to and
    which span is the current parent."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def wire(self) -> Tuple[str, str]:
        """The picklable form carried inside RPC frames."""
        return (self.trace_id, self.span_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceContext({self.trace_id}/{self.span_id})"


#: The ambient context.  ``contextvars`` gives correct per-task
#: isolation under asyncio (the ingress) for free; thread pools do NOT
#: inherit it — cross-thread handoffs use :class:`attach` / :func:`bound`.
_current: ContextVar[Optional[TraceContext]] = ContextVar(
    "repro_trace_ctx", default=None)


def current() -> Optional[TraceContext]:
    """The ambient trace context (``None`` when untraced)."""
    return _current.get()


def wire() -> Optional[Tuple[str, str]]:
    """The ambient context in wire form, for stuffing into an RPC
    frame; ``None`` rides the frame when the request is untraced."""
    ctx = _current.get()
    return None if ctx is None else (ctx.trace_id, ctx.span_id)


class attach:
    """Install a context (a :class:`TraceContext`, a wire tuple, or
    ``None`` for a no-op) as the ambient one for the body.  This is the
    receiving end of every cross-thread/cross-process handoff: the
    worker dispatch loop wraps each frame's execution in one."""

    __slots__ = ("_ctx", "_token")

    def __init__(self, ctx) -> None:
        if ctx is not None and not isinstance(ctx, TraceContext):
            ctx = TraceContext(ctx[0], ctx[1])
        self._ctx = ctx
        self._token = None

    def __enter__(self) -> Optional[TraceContext]:
        if self._ctx is not None:
            self._token = _current.set(self._ctx)
        return self._ctx

    def __exit__(self, *exc) -> bool:
        if self._token is not None:
            _current.reset(self._token)
            self._token = None
        return False


def bound(fn):
    """Wrap a thunk so it runs under the *caller's* ambient context in
    another thread (thread pools don't propagate contextvars).  Returns
    ``fn`` unchanged when the caller is untraced."""
    ctx = _current.get()
    if ctx is None:
        return fn

    @functools.wraps(fn)
    def runner(*args, **kwargs):
        with attach(ctx):
            return fn(*args, **kwargs)
    return runner


class FlightRecorder:
    """Bounded per-process store of finished span records.

    All mutation and iteration happens under one lock: spans commit
    from request threads while snapshots run from the dashboard thread,
    and a ``deque`` refuses iteration concurrent with appends.
    """

    def __init__(self, buffer: Optional[int] = None,
                 slow_keep: Optional[int] = None) -> None:
        if buffer is None:
            buffer = _int_env(ENV_BUFFER, 2048)
        if slow_keep is None:
            slow_keep = _int_env(ENV_SLOW_KEEP, 64)
        self._lock = threading.Lock()
        self._spans: deque = deque(maxlen=buffer)
        self._slow: deque = deque(maxlen=slow_keep)

    def commit(self, rec: dict) -> None:
        with self._lock:
            self._spans.append(rec)

    def finish_root(self, rec: dict) -> None:
        """Called after a root span commits: when it ran slow, harvest
        its trace — plus one hop of batch fan-in (a member root points
        at its batch trace, a batch root at its members) — into the
        always-keep store before the main ring wraps over it."""
        if rec["dur"] < _slow_ns:
            return
        ids = {rec["trace"]}
        batch = rec.get("batch")
        if batch:
            ids.add(batch)
        ids.update(rec.get("links", ()))
        with self._lock:
            spans = [s for s in self._spans if s["trace"] in ids]
            self._slow.append({
                "trace": rec["trace"], "name": rec["name"],
                "dur": rec["dur"], "start": rec["start"], "spans": spans,
            })

    def absorb(self, snap: dict) -> None:
        """Fold another recorder's snapshot (a worker's drain) in."""
        with self._lock:
            self._spans.extend(snap.get("spans", ()))
            self._slow.extend(snap.get("slow", ()))

    def snapshot(self) -> dict:
        with self._lock:
            return {"spans": list(self._spans), "slow": list(self._slow)}

    def drain(self) -> dict:
        """Snapshot-and-clear: what the ``trace_drain`` shard op ships
        back, so repeated pulls never re-send old spans."""
        with self._lock:
            snap = {"spans": list(self._spans), "slow": list(self._slow)}
            self._spans.clear()
            self._slow.clear()
            return snap

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._slow.clear()


_recorder = FlightRecorder()


def recorder() -> FlightRecorder:
    """This process's flight recorder."""
    return _recorder


def snapshot() -> dict:
    return _recorder.snapshot()


def drain() -> dict:
    return _recorder.drain()


def absorb(snap: dict) -> None:
    if snap:
        _recorder.absorb(snap)


def reset() -> None:
    """Drop recorded spans (test/bench isolation; called by
    ``obs.reset``)."""
    _recorder.clear()


class TracedSpan:
    """A timed region that is part of a trace: on finish it commits a
    span record to the flight recorder *and* records into the latency
    histogram of the same name (stamping the trace id as that bucket's
    exemplar) — so tracing adds to the metrics layer instead of
    forking it.

    Works as a context manager (installs its context for the body) or
    as a manual handle (``start()`` … ``finish()``) for spans whose
    begin and end live on different threads, like the ingress request.
    """

    __slots__ = ("name", "ctx", "parent", "fields", "record",
                 "_t0", "_start", "_token", "_done")

    def __init__(self, name: str, ctx: TraceContext,
                 parent: Optional[str], fields: Optional[dict] = None,
                 record: bool = True) -> None:
        self.name = name
        self.ctx = ctx
        self.parent = parent
        self.fields = fields if fields else {}
        self.record = record
        self._token = None
        self._done = False
        # Wall time for cross-process alignment, monotonic for duration.
        self._start = time.time_ns()
        self._t0 = time.perf_counter_ns()

    def __enter__(self) -> "TracedSpan":
        self._token = _current.set(self.ctx)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _current.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.fields["error"] = exc_type.__name__
        self.finish()
        return False

    def finish(self) -> None:
        if self._done:
            return
        self._done = True
        dur = time.perf_counter_ns() - self._t0
        rec = {"trace": self.ctx.trace_id, "span": self.ctx.span_id,
               "parent": self.parent, "name": self.name,
               "start": self._start, "dur": dur, "pid": _PID}
        if self.fields:
            rec.update(self.fields)
        _recorder.commit(rec)
        if self.record and _obs._enabled:
            hist = _obs._registry.histogram(self.name)
            hist.record(dur)
            hist.note_exemplar(dur, self.ctx.trace_id)
        if self.parent is None:
            _recorder.finish_root(rec)


def start(name: str, force: bool = False, record: bool = True,
          **fields) -> Optional[TracedSpan]:
    """Begin a new *root* span (a fresh trace id) as a manual handle,
    or ``None`` when obs is disabled / the head sampler says no (the
    caller keeps the ``None`` and skips its finish).  ``force=True``
    bypasses sampling — used by the batch span, whose members already
    won the sample."""
    if not _obs._enabled:
        return None
    if not force and not _sampled():
        return None
    return TracedSpan(name, TraceContext(_new_id(), _new_id()),
                      parent=None, fields=fields, record=record)


def span(name: str, root: bool = False, **fields):
    """The drop-in upgrade of ``obs.span``: under an ambient trace
    context it times a *child* span into the tree; with no context it
    behaves exactly like ``obs.span`` (plain histogram span) — unless
    ``root=True`` asks it to start a new sampled trace, which is how a
    direct facade call (no ingress) becomes traceable."""
    if not _obs._enabled:
        return _obs.NOOP_SPAN
    ctx = _current.get()
    if ctx is not None:
        return TracedSpan(name, TraceContext(ctx.trace_id, _new_id()),
                          parent=ctx.span_id, fields=fields)
    if root and _sampled():
        return TracedSpan(name, TraceContext(_new_id(), _new_id()),
                          parent=None, fields=fields)
    return _obs.Span(_obs._registry.histogram(name))


def traced(name: str):
    """Decorator form of ``span(name, root=True)`` — the upgrade of
    ``@obs.timed`` for the facade entry points: joins an ambient trace
    as a child, else roots a new sampled one, else falls back to the
    plain histogram timing ``@obs.timed`` did."""
    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _obs._enabled:
                return fn(*args, **kwargs)
            with span(name, root=True):
                return fn(*args, **kwargs)
        return wrapper
    return decorate


def assemble(trace_id: str, snap: dict) -> List[dict]:
    """Every span reachable from ``trace_id`` in a recorder snapshot
    (live ring + slow store), following batch fan-in links both ways
    (member root → its batch trace via ``batch``, batch root → member
    traces via ``links``), sorted by wall start time."""
    pool: Dict[tuple, dict] = {}
    for rec in snap.get("spans", ()):
        pool[(rec["trace"], rec["span"])] = rec
    for entry in snap.get("slow", ()):
        for rec in entry.get("spans", ()):
            pool.setdefault((rec["trace"], rec["span"]), rec)
    by_trace: Dict[str, List[dict]] = {}
    for rec in pool.values():
        by_trace.setdefault(rec["trace"], []).append(rec)
    reachable = {trace_id}
    frontier = [trace_id]
    while frontier:
        for rec in by_trace.get(frontier.pop(), ()):
            linked = list(rec.get("links", ()))
            if rec.get("batch"):
                linked.append(rec["batch"])
            for other in linked:
                if other not in reachable:
                    reachable.add(other)
                    frontier.append(other)
    spans = [rec for tid in reachable for rec in by_trace.get(tid, ())]
    spans.sort(key=lambda r: (r["start"], r.get("parent") is not None))
    return spans


def slow_traces(snap: dict) -> List[dict]:
    """The slow-store entries of a snapshot, slowest first, deduped by
    trace id (absorbing worker drains can double an entry)."""
    seen = set()
    out = []
    for entry in sorted(snap.get("slow", ()),
                        key=lambda e: -float(e.get("dur", 0))):
        if entry["trace"] not in seen:
            seen.add(entry["trace"])
            out.append(entry)
    return out
