"""Bounded structural event log with monotonic timestamps.

Where the histograms answer "how long do requests take", the event log
answers "what did the structure *do* and why": every
:class:`~repro.core.policy.AdaptationPolicy` decision (SMO kind, site,
size, the reason string carrying the pressure inputs and chosen cost)
and every serving-tier structural event (shard split/merge, worker
death/respawn/retry, checkpoints) lands here as one plain dict with a
``time.monotonic()`` timestamp.

The log is a fixed-size deque: it can sit under a service absorbing
millions of operations and never grow, because structural events are
rare by design — the interesting tail is the recent one.  Snapshots are
plain lists of dicts, so they ride the same pickle/merge path as the
metric snapshots and interleave across processes by timestamp.
"""

from __future__ import annotations

import time
from collections import deque
from typing import List

#: Events retained per process (older ones fall off the front).
EVENT_LIMIT = 512


class EventLog:
    """Append-only bounded log of structural events."""

    def __init__(self, limit: int = EVENT_LIMIT) -> None:
        self.limit = limit
        self._events: deque = deque(maxlen=limit)

    def emit(self, kind: str, **fields) -> None:
        """Record one event (``kind`` plus arbitrary scalar fields)."""
        event = {"t": time.monotonic(), "kind": kind}
        event.update(fields)
        self._events.append(event)

    def snapshot(self) -> List[dict]:
        """The retained events, oldest first (copies the dicts so a
        snapshot cannot alias live log entries)."""
        return [dict(event) for event in self._events]

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)
