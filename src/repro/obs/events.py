"""Bounded structural event log with monotonic timestamps.

Where the histograms answer "how long do requests take", the event log
answers "what did the structure *do* and why": every
:class:`~repro.core.policy.AdaptationPolicy` decision (SMO kind, site,
size, the reason string carrying the pressure inputs and chosen cost)
and every serving-tier structural event (shard split/merge, worker
death/respawn/retry, checkpoints) lands here as one plain dict with a
``time.monotonic()`` timestamp.

The log is a fixed-size deque: it can sit under a service absorbing
millions of operations and never grow, because structural events are
rare by design — the interesting tail is the recent one.  The capacity
defaults to :data:`EVENT_LIMIT` and is configurable per process via
``REPRO_OBS_EVENTS`` (a busy failover can be given a deeper ring), and
the log counts what it evicts (``dropped``) so a wrapped ring is
visible instead of silently eating its own evidence — the registry
surfaces the tally as the ``obs.events_dropped`` counter.  Snapshots
are plain lists of dicts, so they ride the same pickle/merge path as
the metric snapshots and interleave across processes by timestamp.
"""

from __future__ import annotations

import os
import time
from collections import deque
from typing import List, Optional

#: Default events retained per process (older ones fall off the front).
EVENT_LIMIT = 512

#: Environment variable overriding the per-process ring capacity.
ENV_VAR = "REPRO_OBS_EVENTS"


def _limit_from_env(value: Optional[str]) -> int:
    """Parse a ``REPRO_OBS_EVENTS`` value (garbage → the default)."""
    try:
        return max(1, int(value))
    except (TypeError, ValueError):
        return EVENT_LIMIT


class EventLog:
    """Append-only bounded log of structural events."""

    def __init__(self, limit: Optional[int] = None) -> None:
        if limit is None:
            limit = _limit_from_env(os.environ.get(ENV_VAR))
        self.limit = limit
        #: Events evicted off the front since the last :meth:`clear`.
        self.dropped = 0
        self._events: deque = deque(maxlen=limit)

    def emit(self, kind: str, **fields) -> None:
        """Record one event (``kind`` plus arbitrary scalar fields)."""
        if len(self._events) == self.limit:
            self.dropped += 1
        event = {"t": time.monotonic(), "kind": kind}
        event.update(fields)
        self._events.append(event)

    def snapshot(self) -> List[dict]:
        """The retained events, oldest first (copies the dicts so a
        snapshot cannot alias live log entries)."""
        return [dict(event) for event in self._events]

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)
