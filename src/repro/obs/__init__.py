"""Observability: low-overhead metrics, spans, and structural events.

One process-local :class:`~repro.obs.metrics.MetricsRegistry` per
process (the facade's, and one inside every process-backend worker),
driven through the module-level helpers below so instrumented code never
threads a registry handle around:

* ``with obs.span("serve.lookup_many"): ...`` — a timed span recording
  a nanosecond latency into a log-bucketed histogram;
* ``@obs.timed("core.insert_many")`` — the same as a decorator;
* ``obs.inc`` / ``obs.set_gauge`` / ``obs.observe`` — counters, gauges,
  and direct histogram observations;
* ``obs.emit("shard.split", shard=3)`` — bounded structural event log.

The kill switch
---------------

``REPRO_OBS=off`` (or ``0``/``false``/``no``/``disabled``) disables the
whole layer at import: ``span()`` returns the shared no-op span (one
singleton — identity-testable), and every record/emit helper returns
without touching the registry.  :func:`set_enabled` flips the switch at
runtime (how ``bench_obs.py`` measures instrumented-vs-disabled in one
process).  Worker processes inherit the environment, so the switch
covers the whole service under the process backend.

Aggregation
-----------

Snapshots are plain dicts; the process backend's workers return theirs
over the existing RPC path (the ``obs_snapshot`` shard op) and
:func:`repro.obs.metrics.merge_snapshots` folds them into the facade's
service-wide view — see ``ShardedAlexIndex.metrics_snapshot``.
"""

from __future__ import annotations

import functools
import os
import time
from typing import Optional

from .events import EVENT_LIMIT, EventLog
from .metrics import (BUCKET_BOUNDS, NUM_BUCKETS, NUM_OCTAVES, PERCENTILES,
                      SUB_BUCKETS, Counter, Gauge, LatencyHistogram,
                      MetricsRegistry, bucket_index, bucket_value,
                      empty_snapshot, exemplar_for_percentile,
                      histogram_summary, merge_many, merge_snapshots,
                      percentile_from_snapshot)

__all__ = [
    "BUCKET_BOUNDS", "Counter", "EVENT_LIMIT", "EventLog", "Gauge",
    "LatencyHistogram", "MetricsRegistry", "NOOP_SPAN", "NUM_BUCKETS",
    "NUM_OCTAVES", "PERCENTILES", "SUB_BUCKETS", "Span", "bucket_index",
    "bucket_value", "describe", "emit", "empty_snapshot", "enabled",
    "exemplar_for_percentile", "get_registry", "histogram_summary", "inc",
    "merge_many", "merge_snapshots", "observe", "percentile_from_snapshot",
    "record_ns", "reset", "set_enabled", "set_gauge", "snapshot", "span",
    "timed", "trace",
]

#: Environment variable holding the global kill switch.
ENV_VAR = "REPRO_OBS"

_DISABLED_VALUES = frozenset({"off", "0", "false", "no", "disabled"})


def _enabled_from_env(value: Optional[str]) -> bool:
    """Whether an ``REPRO_OBS`` value means *enabled* (default on)."""
    return (value or "on").strip().lower() not in _DISABLED_VALUES


_enabled = _enabled_from_env(os.environ.get(ENV_VAR))
_registry = MetricsRegistry()


def enabled() -> bool:
    """Whether the observability layer is recording."""
    return _enabled


def set_enabled(flag: bool) -> None:
    """Flip the kill switch at runtime (the env var only sets the
    initial state).  Does not clear previously recorded data."""
    global _enabled
    _enabled = bool(flag)


def get_registry() -> MetricsRegistry:
    """This process's registry."""
    return _registry


def reset() -> None:
    """Drop every recorded metric, event, and trace span (test/bench
    isolation)."""
    _registry.clear()
    trace.reset()


class Span:
    """A timed region: records ``perf_counter_ns`` elapsed into one
    histogram on exit (including the exceptional one — a failed request
    is still a served request)."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: LatencyHistogram) -> None:
        self._histogram = histogram

    def __enter__(self) -> "Span":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> bool:
        self._histogram.record(time.perf_counter_ns() - self._start)
        return False


class _NoopSpan:
    """The disabled path: one shared instance, no state, no recording."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


#: The singleton every ``span()`` call returns while disabled.
NOOP_SPAN = _NoopSpan()


def span(name: str) -> "Span | _NoopSpan":
    """A context manager timing its body into histogram ``name``."""
    if not _enabled:
        return NOOP_SPAN
    return Span(_registry.histogram(name))


def timed(name: str):
    """Decorator form of :func:`span` (checks the switch per call, so
    decorated functions honor runtime toggles)."""
    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _enabled:
                return fn(*args, **kwargs)
            start = time.perf_counter_ns()
            try:
                return fn(*args, **kwargs)
            finally:
                _registry.histogram(name).record(
                    time.perf_counter_ns() - start)
        return wrapper
    return decorate


def record_ns(name: str, ns: float) -> None:
    """Record one latency observation (nanoseconds)."""
    if _enabled:
        _registry.histogram(name).record(ns)


def observe(name: str, value: float) -> None:
    """Record one generic (non-time) histogram observation."""
    if _enabled:
        _registry.histogram(name).record(value)


def inc(name: str, n: int = 1) -> None:
    """Increment a counter."""
    if _enabled:
        _registry.counter(name).inc(n)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge."""
    if _enabled:
        _registry.gauge(name).set(value)


def emit(kind: str, **fields) -> None:
    """Append one structural event to the bounded log."""
    if _enabled:
        _registry.events.emit(kind, **fields)


def snapshot() -> dict:
    """This process's registry as plain dicts (picklable/JSON-able),
    stamped with the current switch state."""
    snap = _registry.snapshot()
    snap["enabled"] = _enabled
    return snap


def describe() -> dict:
    """The obs runtime block ``python -m repro info`` prints: switch
    state, registry population, and the fixed bucket configuration."""
    snap = _registry.snapshot()
    return {
        "enabled": _enabled,
        "env": os.environ.get(ENV_VAR),
        "counters": len(snap["counters"]),
        "gauges": len(snap["gauges"]),
        "histograms": len(snap["histograms"]),
        "events": len(snap["events"]),
        "event_limit": _registry.events.limit,
        "events_dropped": _registry.events.dropped,
        "bucket_config": (
            f"{NUM_BUCKETS} log2 buckets, {SUB_BUCKETS} per octave "
            f"(~{(2 ** (1 / SUB_BUCKETS) - 1) * 100:.0f}% wide), "
            f"1ns .. ~{float(BUCKET_BOUNDS[-1]) / 6e10:.0f}min"),
    }


# Imported last: the tracer reaches back into this module (kill switch,
# registry, span classes) through ``sys.modules``, so everything above
# must exist before its body runs.
from . import trace  # noqa: E402
