"""Metrics core: counters, gauges, and log-bucketed latency histograms.

Everything here is built for *recording cost*, not analytical richness:
a histogram record is one ``math.log2``, one list increment, and three
scalar updates — no locks, no allocation, no numpy call — so spans can
sit on the serving tier's request path without moving the numbers they
measure.  The analytical half (bucket boundaries, percentile
extraction) runs over a **fixed numpy bucket array** only when a
snapshot is taken.

Buckets
-------

Histograms use log2 buckets with :data:`SUB_BUCKETS` sub-divisions per
octave (power of two): bucket ``i`` covers ``[2**(i/8), 2**((i+1)/8))``
nanoseconds, a relative width of ``2**(1/8) - 1`` (about 9%).  With
:data:`NUM_OCTAVES` octaves the fixed array spans 1ns to ~18 minutes in
:data:`NUM_BUCKETS` buckets — every latency this system can produce
lands in a bucket whose midpoint is within one bucket width of the true
value, which is what makes the extracted p50/p90/p99/p999 "exact" at
the reporting resolution (property-tested against ``np.percentile``).

Snapshots and merging
---------------------

``snapshot()`` produces plain nested dicts (picklable across the
process backend's worker pipes, JSON-able for artifacts), and
:func:`merge_snapshots` is **associative**: the facade can fold worker
registries over its own in any grouping and the service-wide view is
identical.  Concurrent increments are best-effort under threads (a race
can drop a tally) — these are measurement instruments, not correctness
state, exactly like :class:`repro.core.stats.Counters`.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

#: Histogram sub-buckets per octave (relative bucket width ~9%).
SUB_BUCKETS = 8
#: Octaves covered by the fixed bucket array: 1ns .. 2**40 ns (~18 min).
NUM_OCTAVES = 40
#: Total fixed bucket count.
NUM_BUCKETS = SUB_BUCKETS * NUM_OCTAVES

#: The fixed numpy bucket boundary array: ``BUCKET_BOUNDS[i]`` is bucket
#: ``i``'s inclusive lower edge in ns; ``BUCKET_BOUNDS[i + 1]`` its
#: exclusive upper edge.
BUCKET_BOUNDS = np.exp2(np.arange(NUM_BUCKETS + 1) / SUB_BUCKETS)

#: Percentiles every summary extracts.
PERCENTILES = (50.0, 90.0, 99.0, 99.9)


def bucket_index(value: float) -> int:
    """The fixed bucket a (nanosecond) value lands in."""
    if value < 1.0:
        return 0
    idx = int(math.log2(value) * SUB_BUCKETS)
    return idx if idx < NUM_BUCKETS else NUM_BUCKETS - 1


def bucket_value(idx: int) -> float:
    """A bucket's representative value (its geometric midpoint)."""
    return float(2.0 ** ((idx + 0.5) / SUB_BUCKETS))


class Counter:
    """A monotone tally.  ``inc`` is one attribute add — GIL-cheap,
    best-effort under concurrent writers."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-write-wins instantaneous reading."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class LatencyHistogram:
    """Log-bucketed distribution with ~ns record cost.

    ``record`` takes any non-negative value; the canonical unit is
    nanoseconds (spans record ``perf_counter_ns`` deltas) but the
    buckets are unit-agnostic — e.g. the WAL's group-commit batch sizes
    record frame *counts* through the same machinery.
    """

    __slots__ = ("_counts", "_count", "_sum", "_min", "_max",
                 "_exemplars")

    def __init__(self) -> None:
        self._counts: List[int] = [0] * NUM_BUCKETS
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = 0.0
        #: Last trace id seen per bucket: ``{bucket_index: (trace_id,
        #: value)}``.  Written only by traced spans (off the plain
        #: ``record`` hot path), read by snapshots — the hook that lets
        #: ``repro stats`` hang a concrete trace off a p99 cell.
        self._exemplars: Dict[int, tuple] = {}

    def record(self, value: float) -> None:
        if value < 1.0:
            idx = 0
            if value < 0.0:
                value = 0.0
        else:
            idx = int(math.log2(value) * SUB_BUCKETS)
            if idx >= NUM_BUCKETS:
                idx = NUM_BUCKETS - 1
        self._counts[idx] += 1
        self._count += 1
        self._sum += value
        if value > self._max:
            self._max = value
        if value < self._min:
            self._min = value

    @property
    def count(self) -> int:
        return self._count

    def note_exemplar(self, value: float, trace_id: str) -> None:
        """Remember ``trace_id`` as the latest exemplar for the bucket
        ``value`` lands in (same bucket math as :meth:`record`, which
        stays untouched — untraced recordings pay nothing)."""
        if value < 1.0:
            idx = 0
        else:
            idx = int(math.log2(value) * SUB_BUCKETS)
            if idx >= NUM_BUCKETS:
                idx = NUM_BUCKETS - 1
        self._exemplars[idx] = (trace_id, value)

    def snapshot(self) -> dict:
        """Plain-dict form: sparse ``{bucket_index: count}`` plus the
        scalar moments (picklable, mergeable, JSON-able).  Exemplars
        ride along only when present, so exemplar-free snapshots keep
        the exact PR 7 shape."""
        counts = {i: c for i, c in enumerate(self._counts) if c}
        snap = {
            "count": self._count,
            "sum": self._sum,
            "min": None if self._count == 0 else self._min,
            "max": None if self._count == 0 else self._max,
            "counts": counts,
        }
        if self._exemplars:
            snap["exemplars"] = {i: [t, v]
                                 for i, (t, v) in self._exemplars.items()}
        return snap


def percentile_from_snapshot(snap: dict, q: float) -> Optional[float]:
    """Extract one percentile from a histogram snapshot.

    Rank semantics match ``np.percentile(..., method="lower")``: the
    value returned represents the bucket holding the recorded value at
    0-indexed position ``floor(q/100 * (n - 1))``, reported at the
    bucket's geometric midpoint — within one bucket width of the exact
    order statistic by construction.
    """
    count = int(snap.get("count", 0))
    if count == 0:
        return None
    counts = snap["counts"]
    idxs = np.array(sorted(int(k) for k in counts), dtype=np.int64)
    cum = np.cumsum(np.array([counts[k] for k in sorted(counts,
                                                        key=int)],
                             dtype=np.int64))
    # The epsilon keeps float rounding (an exact-integer position
    # computing as 998.9999...) from flooring one rank short.
    rank = 1 + int(math.floor(q * (count - 1) / 100.0 + 1e-9))
    pos = int(np.searchsorted(cum, rank))
    if pos >= len(idxs):
        pos = len(idxs) - 1
    value = bucket_value(int(idxs[pos]))
    # A bucket midpoint can sit past the largest recorded value; clamp so
    # reported percentiles never exceed the observed max.
    observed_max = snap.get("max")
    if observed_max is not None and value > observed_max:
        value = float(observed_max)
    return value


def histogram_summary(snap: dict,
                      percentiles: Sequence[float] = PERCENTILES) -> dict:
    """Count, mean, max, and the standard percentiles of one histogram
    snapshot (the shape stamped into bench artifacts)."""
    count = int(snap.get("count", 0))
    out = {"count": count}
    if count:
        out["mean"] = snap["sum"] / count
        out["max"] = snap["max"]
    for q in percentiles:
        label = f"p{q:g}".replace(".", "_")
        out[label] = percentile_from_snapshot(snap, q)
    return out


def exemplar_for_percentile(snap: dict, q: float) -> Optional[dict]:
    """The exemplar closest to a percentile, from above: the trace id
    remembered for the percentile's own bucket or the nearest higher
    one (an outlier explains a p99 better than a median does), falling
    back to the highest-bucket exemplar.  ``None`` when the histogram
    has no exemplars (untraced) or no data."""
    exemplars = snap.get("exemplars")
    value = percentile_from_snapshot(snap, q)
    if not exemplars or value is None:
        return None
    target = bucket_index(value)
    by_idx = {int(idx): ex for idx, ex in exemplars.items()}
    at_or_above = [idx for idx in by_idx if idx >= target]
    idx = min(at_or_above) if at_or_above else max(by_idx)
    trace_id, observed = by_idx[idx]
    return {"trace": trace_id, "value": float(observed), "bucket": idx}


class MetricsRegistry:
    """Process-local named metrics plus the structural event log.

    Metric lookup is a plain dict read on the hot path; creation takes a
    lock once per name.  ``snapshot()`` renders everything to plain
    dicts; :func:`merge_snapshots` folds snapshots from other processes
    (the process backend's workers) into a service-wide view.
    """

    def __init__(self) -> None:
        from .events import EventLog
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}
        self.events = EventLog()

    def _get(self, table: dict, name: str, factory):
        obj = table.get(name)
        if obj is None:
            with self._lock:
                obj = table.setdefault(name, factory())
        return obj

    def counter(self, name: str) -> Counter:
        return self._get(self._counters, name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(self._gauges, name, Gauge)

    def histogram(self, name: str) -> LatencyHistogram:
        return self._get(self._histograms, name, LatencyHistogram)

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self.events.clear()

    def snapshot(self) -> dict:
        """Plain-dict view of every metric and the event log.  The
        event ring's eviction tally surfaces as a synthetic
        ``obs.events_dropped`` counter (only when non-zero, so
        quiescent snapshots keep the exact PR 7 shape and the merge
        identity) — it sums across workers like any counter."""
        counters = {name: c.value
                    for name, c in sorted(self._counters.items())}
        if self.events.dropped:
            counters["obs.events_dropped"] = (
                counters.get("obs.events_dropped", 0)
                + self.events.dropped)
        return {
            "counters": counters,
            "gauges": {name: g.value
                       for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.snapshot()
                           for name, h in sorted(self._histograms.items())},
            "events": self.events.snapshot(),
        }


def empty_snapshot() -> dict:
    """The identity element of :func:`merge_snapshots`."""
    return {"counters": {}, "gauges": {}, "histograms": {}, "events": []}


def _merge_histogram(a: dict, b: dict) -> dict:
    counts: Dict[int, int] = {}
    for source in (a.get("counts", {}), b.get("counts", {})):
        for idx, c in source.items():
            idx = int(idx)
            counts[idx] = counts.get(idx, 0) + int(c)
    # Exemplars are last-writer-wins per bucket (``b`` over ``a``, like
    # gauges — associative) and the key only appears when non-empty, so
    # exemplar-free merges keep the exact pre-exemplar shape.
    exemplars: Dict[int, list] = {}
    for source in (a.get("exemplars", {}), b.get("exemplars", {})):
        for idx, ex in source.items():
            exemplars[int(idx)] = list(ex)
    mins = [m for m in (a.get("min"), b.get("min")) if m is not None]
    maxs = [m for m in (a.get("max"), b.get("max")) if m is not None]
    out = {
        "count": int(a.get("count", 0)) + int(b.get("count", 0)),
        "sum": float(a.get("sum", 0.0)) + float(b.get("sum", 0.0)),
        "min": min(mins) if mins else None,
        "max": max(maxs) if maxs else None,
        "counts": counts,
    }
    if exemplars:
        out["exemplars"] = exemplars
    return out


def merge_snapshots(a: dict, b: dict) -> dict:
    """Fold two registry snapshots into one (associative, inputs
    untouched): counters and histogram buckets add, gauges are
    last-writer-wins (``b`` over ``a``), events interleave by
    timestamp."""
    out = empty_snapshot()
    out["counters"] = dict(a.get("counters", {}))
    for name, value in b.get("counters", {}).items():
        out["counters"][name] = out["counters"].get(name, 0) + value
    out["gauges"] = {**a.get("gauges", {}), **b.get("gauges", {})}
    hists = dict(a.get("histograms", {}))
    for name, snap in b.get("histograms", {}).items():
        if name in hists:
            hists[name] = _merge_histogram(hists[name], snap)
        else:
            hists[name] = _merge_histogram(empty_histogram(), snap)
    out["histograms"] = {
        name: _merge_histogram(empty_histogram(), snap)
        for name, snap in hists.items()
    }
    out["events"] = sorted((list(a.get("events", []))
                            + list(b.get("events", []))),
                           key=lambda e: e.get("t", 0.0))
    return out


def empty_histogram() -> dict:
    """An empty histogram snapshot (merge identity)."""
    return {"count": 0, "sum": 0.0, "min": None, "max": None, "counts": {}}


def merge_many(snapshots: Iterable[dict]) -> dict:
    """Fold any number of snapshots (left fold of
    :func:`merge_snapshots`)."""
    merged = empty_snapshot()
    for snap in snapshots:
        if snap:
            merged = merge_snapshots(merged, snap)
    return merged
