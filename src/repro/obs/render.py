"""Exposition: registry snapshots -> Prometheus text, summaries, tables.

Three renderings of the same plain-dict snapshot:

* :func:`summarize` — compact percentile summaries (the ``obs`` block
  stamped into bench artifacts by ``benchmarks/_common.py``);
* :func:`to_prometheus` — Prometheus text format (counters, gauges, and
  cumulative ``_bucket{le=...}`` histogram series, seconds-based per the
  Prometheus convention);
* :func:`percentile_table` / :func:`format_value` — terminal tables for
  ``python -m repro stats`` and the ``repro top`` dashboard;
* :func:`trace_tree_lines` / :func:`to_chrome_trace` — one assembled
  trace (see :func:`repro.obs.trace.assemble`) as an indented timing
  tree for the terminal, or as Chrome trace-event JSON for
  ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence

from .metrics import (BUCKET_BOUNDS, exemplar_for_percentile,
                      histogram_summary)

#: Histograms whose values are counts, not nanoseconds (rendered without
#: time units; exposed to Prometheus unscaled).
COUNT_UNIT_PREFIXES = ("wal.group_commit_frames", "ingress.batch_size")


def _is_duration(name: str) -> bool:
    return not any(name.startswith(p) for p in COUNT_UNIT_PREFIXES)


def format_ns(ns: Optional[float]) -> str:
    """Human-readable duration from nanoseconds."""
    if ns is None:
        return "-"
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f}us"
    return f"{ns:.0f}ns"


def format_value(name: str, value: Optional[float]) -> str:
    """Render one histogram reading in its unit (time or plain count)."""
    if value is None:
        return "-"
    if _is_duration(name):
        return format_ns(value)
    return f"{value:.0f}"


def summarize(snapshot: dict) -> dict:
    """Compact summary of a snapshot: counters and gauges verbatim,
    histograms reduced to count/mean/max/percentiles, events to a tally
    by kind.  JSON-safe — this is the bench artifacts' ``obs`` block."""
    events_by_kind: dict = {}
    for event in snapshot.get("events", []):
        kind = event.get("kind", "?")
        events_by_kind[kind] = events_by_kind.get(kind, 0) + 1
    return {
        "counters": dict(snapshot.get("counters", {})),
        "gauges": dict(snapshot.get("gauges", {})),
        "histograms": {
            name: histogram_summary(snap)
            for name, snap in snapshot.get("histograms", {}).items()
        },
        "events_by_kind": events_by_kind,
    }


def _prom_name(name: str, prefix: str = "repro") -> str:
    return prefix + "_" + re.sub(r"[^a-zA-Z0-9_]", "_", name)


def to_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """Prometheus text exposition of a snapshot.

    Duration histograms are exposed in **seconds** (the Prometheus
    convention); count-valued histograms (see
    :data:`COUNT_UNIT_PREFIXES`) stay unscaled.  Only non-empty buckets
    appear, cumulatively, closed by the required ``+Inf`` bucket.
    """
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    for name, snap in snapshot.get("histograms", {}).items():
        metric = _prom_name(name, prefix)
        scale = 1e-9 if _is_duration(name) else 1.0
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        counts = snap.get("counts", {})
        for idx in sorted(int(k) for k in counts):
            cumulative += int(counts[idx])
            upper = float(BUCKET_BOUNDS[idx + 1]) * scale
            lines.append(f'{metric}_bucket{{le="{upper:.9g}"}} '
                         f'{cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} '
                     f'{int(snap.get("count", 0))}')
        lines.append(f"{metric}_sum {float(snap.get('sum', 0.0)) * scale:.9g}")
        lines.append(f"{metric}_count {int(snap.get('count', 0))}")
    return "\n".join(lines) + ("\n" if lines else "")


def percentile_table(snapshot: dict,
                     prefixes: Optional[Sequence[str]] = None
                     ) -> List[tuple]:
    """``(name, count, p50, p90, p99, p999, max, p99_trace)`` rows,
    formatted, for every (matching) histogram in the snapshot — the body
    of the stats command and the dashboard's latency panel.  The last
    column is the p99 bucket's exemplar trace id (``-`` when tracing
    never stamped one), the hook from an aggregate percentile to one
    concrete request for ``repro trace``."""
    rows = []
    for name, snap in sorted(snapshot.get("histograms", {}).items()):
        if prefixes and not any(name.startswith(p) for p in prefixes):
            continue
        summary = histogram_summary(snap)
        exemplar = exemplar_for_percentile(snap, 0.99)
        rows.append((
            name, summary["count"],
            format_value(name, summary.get("p50")),
            format_value(name, summary.get("p90")),
            format_value(name, summary.get("p99")),
            format_value(name, summary.get("p99_9")),
            format_value(name, summary.get("max")),
            exemplar["trace"] if exemplar else "-",
        ))
    return rows


#: Span-record bookkeeping keys; everything else is a user field.
_SPAN_META = ("trace", "span", "parent", "name", "start", "dur", "pid")


def _span_fields(rec: dict) -> str:
    """The user fields of one span record as ``k=v`` text (fan-in link
    lists compress to a count)."""
    parts = []
    for key, value in rec.items():
        if key in _SPAN_META:
            continue
        if key == "links":
            parts.append(f"links={len(value)}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def trace_tree_lines(spans: Sequence[dict]) -> List[str]:
    """One assembled trace (see :func:`repro.obs.trace.assemble`) as an
    indented causal timing tree, one line per span: offset from the
    trace's first span, duration, owning pid, trace id, and fields.
    Spans whose parent is missing (roots, and children whose parent fell
    off a wrapped ring) print at top level in start order — a coalesced
    request typically shows its own root, the batch fan-in root, and
    the worker-side subtree."""
    if not spans:
        return []
    t0 = min(rec["start"] for rec in spans)
    by_id = {rec["span"]: rec for rec in spans}
    children: dict = {}
    roots = []
    for rec in spans:
        parent = rec.get("parent")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(rec)
        else:
            roots.append(rec)
    lines: List[str] = []

    def walk(rec: dict, depth: int) -> None:
        offset = (rec["start"] - t0) / 1e6
        label = "  " * depth + rec["name"]
        extras = _span_fields(rec)
        lines.append(
            f"{label:<36s} +{offset:8.3f}ms {format_ns(rec['dur']):>9s}"
            f"  pid={rec['pid']}  trace={rec['trace']}"
            + (f"  {extras}" if extras else ""))
        for child in sorted(children.get(rec["span"], ()),
                            key=lambda r: r["start"]):
            walk(child, depth + 1)

    for root in sorted(roots, key=lambda r: r["start"]):
        walk(root, 0)
    return lines


def to_chrome_trace(spans: Sequence[dict]) -> dict:
    """The Chrome trace-event (``chrome://tracing`` / Perfetto) form of
    an assembled trace: one complete (``ph: X``) event per span, wall
    timestamps and durations in microseconds, grouped by owning pid."""
    events = []
    for rec in spans:
        args = {k: v for k, v in rec.items() if k not in _SPAN_META}
        args["trace"] = rec["trace"]
        events.append({
            "name": rec["name"], "ph": "X", "cat": "repro",
            "ts": rec["start"] / 1000.0, "dur": rec["dur"] / 1000.0,
            "pid": rec["pid"], "tid": rec["pid"],
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def event_lines(events: Sequence[dict], limit: int = 12) -> List[str]:
    """The newest ``limit`` events as one-line strings, oldest first,
    with timestamps relative to the first retained event."""
    tail = list(events)[-limit:]
    if not tail:
        return []
    t0 = events[0].get("t", 0.0) if events else 0.0
    out = []
    for event in tail:
        extras = " ".join(f"{k}={v}" for k, v in event.items()
                          if k not in ("t", "kind"))
        out.append(f"[+{event.get('t', 0.0) - t0:8.2f}s] "
                   f"{event.get('kind', '?'):18s} {extras}")
    return out
