"""Exposition: registry snapshots -> Prometheus text, summaries, tables.

Three renderings of the same plain-dict snapshot:

* :func:`summarize` — compact percentile summaries (the ``obs`` block
  stamped into bench artifacts by ``benchmarks/_common.py``);
* :func:`to_prometheus` — Prometheus text format (counters, gauges, and
  cumulative ``_bucket{le=...}`` histogram series, seconds-based per the
  Prometheus convention);
* :func:`percentile_table` / :func:`format_value` — terminal tables for
  ``python -m repro stats`` and the ``repro top`` dashboard.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence

from .metrics import BUCKET_BOUNDS, histogram_summary

#: Histograms whose values are counts, not nanoseconds (rendered without
#: time units; exposed to Prometheus unscaled).
COUNT_UNIT_PREFIXES = ("wal.group_commit_frames", "ingress.batch_size")


def _is_duration(name: str) -> bool:
    return not any(name.startswith(p) for p in COUNT_UNIT_PREFIXES)


def format_ns(ns: Optional[float]) -> str:
    """Human-readable duration from nanoseconds."""
    if ns is None:
        return "-"
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f}us"
    return f"{ns:.0f}ns"


def format_value(name: str, value: Optional[float]) -> str:
    """Render one histogram reading in its unit (time or plain count)."""
    if value is None:
        return "-"
    if _is_duration(name):
        return format_ns(value)
    return f"{value:.0f}"


def summarize(snapshot: dict) -> dict:
    """Compact summary of a snapshot: counters and gauges verbatim,
    histograms reduced to count/mean/max/percentiles, events to a tally
    by kind.  JSON-safe — this is the bench artifacts' ``obs`` block."""
    events_by_kind: dict = {}
    for event in snapshot.get("events", []):
        kind = event.get("kind", "?")
        events_by_kind[kind] = events_by_kind.get(kind, 0) + 1
    return {
        "counters": dict(snapshot.get("counters", {})),
        "gauges": dict(snapshot.get("gauges", {})),
        "histograms": {
            name: histogram_summary(snap)
            for name, snap in snapshot.get("histograms", {}).items()
        },
        "events_by_kind": events_by_kind,
    }


def _prom_name(name: str, prefix: str = "repro") -> str:
    return prefix + "_" + re.sub(r"[^a-zA-Z0-9_]", "_", name)


def to_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """Prometheus text exposition of a snapshot.

    Duration histograms are exposed in **seconds** (the Prometheus
    convention); count-valued histograms (see
    :data:`COUNT_UNIT_PREFIXES`) stay unscaled.  Only non-empty buckets
    appear, cumulatively, closed by the required ``+Inf`` bucket.
    """
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    for name, snap in snapshot.get("histograms", {}).items():
        metric = _prom_name(name, prefix)
        scale = 1e-9 if _is_duration(name) else 1.0
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        counts = snap.get("counts", {})
        for idx in sorted(int(k) for k in counts):
            cumulative += int(counts[idx])
            upper = float(BUCKET_BOUNDS[idx + 1]) * scale
            lines.append(f'{metric}_bucket{{le="{upper:.9g}"}} '
                         f'{cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} '
                     f'{int(snap.get("count", 0))}')
        lines.append(f"{metric}_sum {float(snap.get('sum', 0.0)) * scale:.9g}")
        lines.append(f"{metric}_count {int(snap.get('count', 0))}")
    return "\n".join(lines) + ("\n" if lines else "")


def percentile_table(snapshot: dict,
                     prefixes: Optional[Sequence[str]] = None
                     ) -> List[tuple]:
    """``(name, count, p50, p90, p99, p999, max)`` rows, formatted, for
    every (matching) histogram in the snapshot — the body of the stats
    command and the dashboard's latency panel."""
    rows = []
    for name, snap in sorted(snapshot.get("histograms", {}).items()):
        if prefixes and not any(name.startswith(p) for p in prefixes):
            continue
        summary = histogram_summary(snap)
        rows.append((
            name, summary["count"],
            format_value(name, summary.get("p50")),
            format_value(name, summary.get("p90")),
            format_value(name, summary.get("p99")),
            format_value(name, summary.get("p99_9")),
            format_value(name, summary.get("max")),
        ))
    return rows


def event_lines(events: Sequence[dict], limit: int = 12) -> List[str]:
    """The newest ``limit`` events as one-line strings, oldest first,
    with timestamps relative to the first retained event."""
    tail = list(events)[-limit:]
    if not tail:
        return []
    t0 = events[0].get("t", 0.0) if events else 0.0
    out = []
    for event in tail:
        extras = " ".join(f"{k}={v}" for k, v in event.items()
                          if k not in ("t", "kind"))
        out.append(f"[+{event.get('t', 0.0) - t0:8.2f}s] "
                   f"{event.get('kind', '?'):18s} {extras}")
    return out
