"""The space-time frontier of Section 4, made computable.

The paper's analysis (Section 4) and the Figure 10 experiment are two
views of one trade-off: expansion factor ``c`` buys direct hits, direct
hits buy search time, and past Theorem 1's threshold more space buys
nothing.  This module sweeps ``c`` and produces the *frontier*:

    (space bytes per key, expected search probes per lookup)

using the theorem machinery for the hit fraction and the exponential-
search cost model (``~ 2*log2(error+1) + 2`` probes) for the misses.  The
knee of this curve is where a deployment should sit;
:func:`recommend_expansion_factor` finds it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.linear_model import LinearModel

from .theorems import empirical_direct_hits, min_c_for_all_direct_hits


@dataclass(frozen=True)
class FrontierPoint:
    """One sweep point of the space-time frontier."""

    c: float
    bytes_per_key: float
    direct_hit_fraction: float
    expected_probes: float

    @property
    def cost_score(self) -> float:
        """Search cost proxy: probes (lower is better)."""
        return self.expected_probes


def _expected_probes(keys: np.ndarray, c: float) -> float:
    """Expected exponential-search probes at expansion factor ``c``.

    Simulates the idealized model-based placement (same machinery as the
    theorems) and averages ``2*log2(|error| + 1) + 2`` over all keys.
    """
    keys = np.sort(np.asarray(keys, dtype=np.float64))
    n = len(keys)
    if n == 0:
        return 0.0
    model = LinearModel.train(keys, np.arange(n, dtype=np.float64))
    predicted = np.floor(c * (model.slope * keys + model.intercept)).astype(np.int64)
    placements = np.empty(n, dtype=np.int64)
    last = None
    for i in range(n):
        pos = int(predicted[i])
        if last is not None and pos <= last:
            pos = last + 1
        placements[i] = pos
        last = pos
    errors = np.abs(placements - predicted)
    return float(np.mean(2.0 * np.log2(errors + 1.0) + 2.0))


def space_time_frontier(keys: np.ndarray,
                        c_values: Sequence[float] = (
                            1.0, 1.2, 1.43, 2.0, 3.0, 4.0, 8.0),
                        record_bytes: int = 16) -> List[FrontierPoint]:
    """Sweep ``c`` and return the frontier points for ``keys``."""
    keys = np.sort(np.asarray(keys, dtype=np.float64))
    n = max(1, len(keys))
    points = []
    for c in c_values:
        hits = empirical_direct_hits(keys, c)
        points.append(FrontierPoint(
            c=c,
            bytes_per_key=c * record_bytes,
            direct_hit_fraction=hits / n,
            expected_probes=_expected_probes(keys, c),
        ))
    return points


def recommend_expansion_factor(keys: np.ndarray,
                               c_values: Sequence[float] = (
                                   1.0, 1.2, 1.43, 2.0, 3.0, 4.0, 8.0),
                               space_weight: float = 0.1) -> FrontierPoint:
    """Pick the sweep point minimizing ``probes + space_weight * c``.

    ``space_weight`` expresses how many search probes one extra unit of
    ``c`` is worth; the default mildly penalizes space, which lands near
    the paper's 43%-overhead default on typical data.
    """
    frontier = space_time_frontier(keys, c_values)
    saturated_at = min_c_for_all_direct_hits(keys)
    best = min(frontier,
               key=lambda p: p.expected_probes + space_weight * p.c)
    # Past the Theorem 1 threshold more space cannot help; never recommend
    # beyond it.
    if np.isfinite(saturated_at) and best.c > saturated_at:
        eligible = [p for p in frontier if p.c <= saturated_at] or frontier
        best = min(eligible,
                   key=lambda p: p.expected_probes + space_weight * p.c)
    return best
