"""Cost model: converts operation counters into simulated time.

Pure-Python wall-clock numbers are dominated by interpreter overhead, so
throughput comparisons here weight the *algorithmic* work recorded in
:class:`repro.core.stats.Counters` with per-operation latencies typical of
the paper's hardware (Intel Core i9, Section 5.1): ALU-speed comparisons
and shifts, a couple of nanoseconds per linear-model inference, and tens of
nanoseconds for a pointer follow that likely misses cache.  The default
weights reproduce the paper's order-of-magnitude ratios (see DESIGN.md
Section 6); every weight is a constructor parameter so sensitivity can be
tested (``benchmarks/bench_ablations.py`` does).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stats import Counters


@dataclass(frozen=True)
class CostModel:
    """Per-event simulated latencies in nanoseconds."""

    comparison_ns: float = 1.0
    shift_ns: float = 1.0
    gap_fill_ns: float = 0.5
    model_inference_ns: float = 2.0
    pointer_follow_ns: float = 30.0
    probe_ns: float = 5.0
    rebalance_move_ns: float = 1.0
    build_move_ns: float = 1.5
    payload_byte_ns: float = 0.125
    bitmap_word_ns: float = 2.0
    expansion_ns: float = 200.0
    contraction_ns: float = 200.0
    split_ns: float = 500.0
    retrain_ns: float = 100.0
    merge_ns: float = 500.0

    def simulated_nanos(self, work: Counters) -> float:
        """Total simulated nanoseconds for the recorded work."""
        return (
            work.comparisons * self.comparison_ns
            + work.shifts * self.shift_ns
            + work.gap_fill_writes * self.gap_fill_ns
            + work.model_inferences * self.model_inference_ns
            + work.pointer_follows * self.pointer_follow_ns
            + work.probes * self.probe_ns
            + work.rebalance_moves * self.rebalance_move_ns
            + work.build_moves * self.build_move_ns
            + work.payload_bytes_copied * self.payload_byte_ns
            + work.bitmap_words_scanned * self.bitmap_word_ns
            + work.expansions * self.expansion_ns
            + work.contractions * self.contraction_ns
            + work.splits * self.split_ns
            + work.retrains * self.retrain_ns
            + work.merges * self.merge_ns
        )

    def simulated_seconds(self, work: Counters) -> float:
        """Simulated seconds (throughput's denominator)."""
        return self.simulated_nanos(work) / 1e9

    def throughput(self, ops: int, work: Counters) -> float:
        """Operations per simulated second (the paper's primary metric;
        "throughput includes model retraining time" — retraining and
        expansion work is in the counters, so it is included here too)."""
        nanos = self.simulated_nanos(work)
        if nanos <= 0:
            return float("inf")
        return ops / (nanos / 1e9)

    def nanos_per_op(self, ops: int, work: Counters) -> float:
        """Average simulated nanoseconds per operation."""
        if ops <= 0:
            return 0.0
        return self.simulated_nanos(work) / ops


DEFAULT_COST_MODEL = CostModel()
