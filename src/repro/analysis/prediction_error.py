"""Prediction-error study (paper Section 5.3, Figure 7).

The paper initializes an index, predicts the position of every stored key,
and histograms the distance between prediction and actual position.  ALEX's
model-based inserts make most predictions exact; the Learned Index, which
never moves records to match its models, shows a mode around 8-32 positions
with a long tail.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.baselines.learned_index import LearnedIndex
from repro.core.alex import AlexIndex


def alex_prediction_errors(index: AlexIndex) -> np.ndarray:
    """|predicted - actual| slot distance for every key in an ALEX index.

    Computed leaf-by-leaf (each leaf model predicts within its own array).
    Cold-start leaves without a model contribute their worst case: the
    distance from the binary-search midpoint.
    """
    errors: List[np.ndarray] = []
    for leaf in index.leaves():
        positions = np.flatnonzero(leaf.occupied)
        if len(positions) == 0:
            continue
        keys = leaf.keys[positions]
        if leaf.model is None:
            hint = leaf.capacity // 2
            errors.append(np.abs(positions - hint))
            continue
        predicted = leaf.model.predict_pos_vec(keys, leaf.capacity)
        errors.append(np.abs(predicted - positions))
    if not errors:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(errors).astype(np.int64)


def learned_index_prediction_errors(index: LearnedIndex) -> np.ndarray:
    """|predicted - actual| position distance for every key in a Learned
    Index (leaf models predict into the single dense array)."""
    keys = index.data.view_keys()
    n = len(keys)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    assignments = index.root_model.predict_pos_vec(keys, index.num_models)
    assignments = np.minimum(assignments, len(index.leaf_models) - 1)
    bounds = np.searchsorted(assignments, np.arange(len(index.leaf_models) + 1))
    errors = np.empty(n, dtype=np.int64)
    for m, leaf in enumerate(index.leaf_models):
        lo, hi = int(bounds[m]), int(bounds[m + 1])
        if hi <= lo:
            continue
        predicted = leaf.model.predict_pos_vec(keys[lo:hi], n)
        errors[lo:hi] = np.abs(predicted - np.arange(lo, hi))
    return errors


def log2_histogram(errors: np.ndarray) -> List[Tuple[str, int]]:
    """Histogram errors into the paper's log2 buckets:
    0, 1, 2, 3-4, 5-8, 9-16, ..., like Figure 7's x-axis."""
    errors = np.asarray(errors, dtype=np.int64)
    out: List[Tuple[str, int]] = [
        ("0", int((errors == 0).sum())),
        ("1", int((errors == 1).sum())),
        ("2", int((errors == 2).sum())),
    ]
    lo = 3
    hi = 4
    while lo <= max(4, int(errors.max(initial=0))):
        count = int(((errors >= lo) & (errors <= hi)).sum())
        out.append((f"{lo}-{hi}", count))
        lo = hi + 1
        hi *= 2
    return out


def error_summary(errors: np.ndarray) -> dict:
    """Mean / median / p99 / max and the exact-hit fraction."""
    if len(errors) == 0:
        return {"count": 0, "exact_fraction": 0.0, "mean": 0.0,
                "median": 0.0, "p99": 0.0, "max": 0}
    return {
        "count": int(len(errors)),
        "exact_fraction": float((errors == 0).mean()),
        "mean": float(errors.mean()),
        "median": float(np.median(errors)),
        "p99": float(np.percentile(errors, 99)),
        "max": int(errors.max()),
    }
