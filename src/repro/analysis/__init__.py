"""Analysis tools: cost model, Section 4 theorems, prediction errors."""

from .cost_model import CostModel, DEFAULT_COST_MODEL
from .expected_cost import (
    LookupCostPrediction,
    measure_alex_lookup,
    measure_bptree_lookup,
    predict_alex_lookup,
    predict_bptree_lookup,
    prediction_accuracy,
)
from .space_time import (
    FrontierPoint,
    recommend_expansion_factor,
    space_time_frontier,
)
from .prediction_error import (
    alex_prediction_errors,
    error_summary,
    learned_index_prediction_errors,
    log2_histogram,
)
from .theorems import (
    DirectHitBounds,
    analyze,
    approx_lower_bound_direct_hits,
    empirical_direct_hits,
    lower_bound_direct_hits,
    min_c_for_all_direct_hits,
    upper_bound_direct_hits,
)

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "DirectHitBounds",
    "FrontierPoint",
    "LookupCostPrediction",
    "alex_prediction_errors",
    "analyze",
    "approx_lower_bound_direct_hits",
    "empirical_direct_hits",
    "error_summary",
    "learned_index_prediction_errors",
    "log2_histogram",
    "lower_bound_direct_hits",
    "measure_alex_lookup",
    "measure_bptree_lookup",
    "predict_alex_lookup",
    "predict_bptree_lookup",
    "prediction_accuracy",
    "recommend_expansion_factor",
    "space_time_frontier",
    "min_c_for_all_direct_hits",
    "upper_bound_direct_hits",
]
