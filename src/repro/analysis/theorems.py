"""Section 4's analysis of model-based inserts: Theorems 1-3.

For a leaf with keys ``x_1 < ... < x_n`` and a linear model ``y = a*x + b``
trained at expansion factor ``c = 1`` (array size = n), the *expanded*
model is ``y = c*(a*x + b)``.  A key is a **direct hit** when model-based
insertion places it exactly at its (rounded) predicted slot, making later
lookups O(1).  The theorems bound the number of direct hits as a function
of ``c`` and the key gaps ``δ_i = x_{i+1} - x_i`` and ``Δ_i = x_{i+2} - x_i``:

* Theorem 1 — when ``c >= 1 / (a * min δ_i)`` every key is a direct hit.
* Theorem 2 — direct hits ``<= 2 + |{i : Δ_i > 1/(c*a)}|``.
* Theorem 3 — direct hits ``>= l + 1`` where ``l`` is the longest prefix of
  gaps with ``δ_i >= 1/(c*a)``; ignoring collision chains gives the
  approximate lower bound ``1 + |{i : δ_i >= 1/(c*a)}|``.

``empirical_direct_hits`` simulates the placement so the bench
(``benchmarks/bench_theorems.py``) can sandwich the measurement between the
bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.linear_model import LinearModel


def _base_model(keys: np.ndarray) -> LinearModel:
    """The ``c = 1`` model: keys regressed against ranks ``0..n-1``."""
    keys = np.asarray(keys, dtype=np.float64)
    return LinearModel.train(keys, np.arange(len(keys), dtype=np.float64))


def min_c_for_all_direct_hits(keys: np.ndarray) -> float:
    """Theorem 1's threshold ``1 / (a * min δ_i)``.

    Above this expansion factor every key lands exactly at its predicted
    slot, so search performance stops improving with more space.
    """
    keys = np.sort(np.asarray(keys, dtype=np.float64))
    if len(keys) < 2:
        return 1.0
    a = _base_model(keys).slope
    min_delta = float(np.diff(keys).min())
    if a <= 0 or min_delta <= 0:
        return math.inf
    return 1.0 / (a * min_delta)


def upper_bound_direct_hits(keys: np.ndarray, c: float) -> int:
    """Theorem 2: ``2 + |{1 <= i <= n-2 : Δ_i > 1/(c*a)}|`` (capped at n)."""
    keys = np.sort(np.asarray(keys, dtype=np.float64))
    n = len(keys)
    if n <= 2:
        return n
    a = _base_model(keys).slope
    if a <= 0 or c <= 0:
        return n
    threshold = 1.0 / (c * a)
    big_deltas = int((keys[2:] - keys[:-2] > threshold).sum())
    return min(n, 2 + big_deltas)


def lower_bound_direct_hits(keys: np.ndarray, c: float) -> int:
    """Theorem 3: ``l + 1`` for the longest prefix of gaps ``>= 1/(c*a)``."""
    keys = np.sort(np.asarray(keys, dtype=np.float64))
    n = len(keys)
    if n == 0:
        return 0
    if n == 1:
        return 1
    a = _base_model(keys).slope
    if a <= 0 or c <= 0:
        return 1
    threshold = 1.0 / (c * a)
    deltas = np.diff(keys)
    below = np.flatnonzero(deltas < threshold)
    l = int(below[0]) if len(below) else n - 1
    return min(n, l + 1)


def approx_lower_bound_direct_hits(keys: np.ndarray, c: float) -> int:
    """Section 4's approximate lower bound ``1 + |{i : δ_i >= 1/(c*a)}|``
    (exact when Theorem 1's condition holds; ignores collision chains)."""
    keys = np.sort(np.asarray(keys, dtype=np.float64))
    n = len(keys)
    if n <= 1:
        return n
    a = _base_model(keys).slope
    if a <= 0 or c <= 0:
        return 1
    threshold = 1.0 / (c * a)
    return min(n, 1 + int((np.diff(keys) >= threshold).sum()))


def empirical_direct_hits(keys: np.ndarray, c: float) -> int:
    """Simulate model-based insertion at expansion factor ``c`` and count
    keys placed exactly at their predicted slot.

    Matches the theorems' idealized setting: placement happens on an
    unbounded integer line (no clamping at array edges), with collisions
    spilling to the first free slot on the right, exactly like
    Algorithm 3's ``ModelBasedInsert``.
    """
    keys = np.sort(np.asarray(keys, dtype=np.float64))
    n = len(keys)
    if n == 0:
        return 0
    model = _base_model(keys)
    predicted = np.floor(c * (model.slope * keys + model.intercept)).astype(np.int64)
    hits = 0
    last = None
    for i in range(n):
        pos = int(predicted[i])
        if last is not None and pos <= last:
            pos = last + 1
        if pos == int(predicted[i]):
            hits += 1
        last = pos
    return hits


@dataclass(frozen=True)
class DirectHitBounds:
    """All of Section 4's quantities for one ``(keys, c)`` pair."""

    c: float
    empirical: int
    upper: int
    lower: int
    approx_lower: int
    theorem1_c: float

    @property
    def consistent(self) -> bool:
        """Whether the measurement respects both proven bounds."""
        return self.lower <= self.empirical <= self.upper


def analyze(keys: np.ndarray, c: float) -> DirectHitBounds:
    """Evaluate empirical hits and all three theorem bounds at once."""
    return DirectHitBounds(
        c=c,
        empirical=empirical_direct_hits(keys, c),
        upper=upper_bound_direct_hits(keys, c),
        lower=lower_bound_direct_hits(keys, c),
        approx_lower=approx_lower_bound_direct_hits(keys, c),
        theorem1_c=min_c_for_all_direct_hits(keys),
    )
