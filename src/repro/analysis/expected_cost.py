"""Analytic cost model: predict lookup/insert cost from structure stats.

The paper reasons about ALEX's performance through structural quantities:
RMI depth (pointer follows), model prediction error (exponential-search
probes scale with ``log2(error)``), and gap availability (shift distance).
This module turns that reasoning into closed-form *predictions* that can
be checked against the measured counters — a consistency check on both
the implementation and the intuition:

* expected lookup cost  =  depth pointer-follows
  + (depth + 1) model inferences
  + E[2 * log2(error + 1) + 2] probes;
* expected B+Tree lookup cost = (height - 1) pointer follows
  + sum over levels of log2(fanout) comparisons.

``tests/test_expected_cost.py`` asserts prediction-vs-measurement within a
tolerance band on every dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.analysis.prediction_error import alex_prediction_errors
from repro.baselines.bptree import BPlusTree, _Inner
from repro.core.alex import AlexIndex
from repro.core.rmi import InnerNode


def expected_search_probes(n: int) -> float:
    """Expected exponential-search probes in a freshly model-based-built
    node of ``n`` keys.

    The probe count of Algorithm 3's search is ``≈ 2*log2(err+1) + 2``
    (bracket growth + bounded binary search) plus one occupancy
    verification; right after a model-based build the prediction error of
    a near-linear CDF segment drifts like ``sqrt(n)`` (the random-walk
    deviation of the empirical CDF around its linear fit), which is the
    size-dependent estimate the adaptation policy
    (:class:`repro.core.policy.CostModelPolicy`) prices SMO candidates
    with before any per-node measurements exist.
    """
    err = np.sqrt(max(float(n), 1.0))
    return float(2.0 * np.log2(err + 1.0) + 2.0 + 1.0)


@dataclass(frozen=True)
class LookupCostPrediction:
    """Predicted per-lookup work, in events and simulated nanoseconds."""

    pointer_follows: float
    model_inferences: float
    probes: float
    comparisons: float
    nanos: float


def _weighted_leaf_depths(index: AlexIndex) -> dict:
    """Map leaf id -> depth (number of inner levels above it)."""
    depths: dict = {}

    def walk(node, depth):
        if isinstance(node, InnerNode):
            for child in node.distinct_children():
                walk(child, depth + 1)
        else:
            depths[id(node)] = depth

    walk(index._root, 0)
    return depths


def predict_alex_lookup(index: AlexIndex,
                        cost_model: CostModel = DEFAULT_COST_MODEL
                        ) -> LookupCostPrediction:
    """Expected cost of a uniform-random lookup of an existing key.

    Averages over keys: each key pays its leaf's depth in pointer follows,
    one inference per level plus one at the leaf, and exponential-search
    probes ``≈ 2*log2(err+1) + 2`` (bracket growth + bounded binary
    search), plus one occupancy-verification probe.
    """
    depths = _weighted_leaf_depths(index)
    total_keys = max(1, len(index))
    weighted_depth = sum(depths[id(leaf)] * leaf.num_keys
                         for leaf in index.leaves()) / total_keys
    errors = alex_prediction_errors(index).astype(np.float64)
    if len(errors) == 0:
        probe_mean = 2.0
    else:
        probe_mean = float(np.mean(2.0 * np.log2(errors + 1.0) + 2.0)) + 1.0
    inferences = weighted_depth + 1.0
    comparisons = probe_mean  # each probe compares once
    nanos = (weighted_depth * cost_model.pointer_follow_ns
             + inferences * cost_model.model_inference_ns
             + probe_mean * cost_model.probe_ns
             + comparisons * cost_model.comparison_ns)
    return LookupCostPrediction(weighted_depth, inferences, probe_mean,
                                comparisons, nanos)


def predict_bptree_lookup(tree: BPlusTree,
                          cost_model: CostModel = DEFAULT_COST_MODEL
                          ) -> LookupCostPrediction:
    """Expected cost of a uniform-random B+Tree lookup: one binary search
    per level plus the leaf search."""
    pointer_follows = float(tree.height - 1)
    comparisons = 0.0
    level = [tree._root]
    while level:
        sizes = []
        next_level = []
        for node in level:
            if isinstance(node, _Inner):
                sizes.append(max(1, len(node.keys)))
                next_level.extend(node.children)
            else:
                sizes.append(max(1, len(node.keys)))
        comparisons += float(np.mean(np.ceil(np.log2(np.array(sizes) + 1))))
        level = next_level if any(isinstance(n, _Inner) for n in level) else []
    probes = comparisons
    nanos = (pointer_follows * cost_model.pointer_follow_ns
             + probes * cost_model.probe_ns
             + comparisons * cost_model.comparison_ns)
    return LookupCostPrediction(pointer_follows, 0.0, probes, comparisons,
                                nanos)


def measure_alex_lookup(index: AlexIndex, probes: np.ndarray,
                        cost_model: CostModel = DEFAULT_COST_MODEL) -> float:
    """Measured simulated ns/lookup over ``probes`` (existing keys)."""
    before = index.counters.snapshot()
    for key in probes:
        index.lookup(float(key))
    work = index.counters.diff(before)
    return cost_model.nanos_per_op(len(probes), work)


def measure_bptree_lookup(tree: BPlusTree, probes: np.ndarray,
                          cost_model: CostModel = DEFAULT_COST_MODEL) -> float:
    """Measured simulated ns/lookup for the B+Tree."""
    before = tree.counters.snapshot()
    for key in probes:
        tree.lookup(float(key))
    work = tree.counters.diff(before)
    return cost_model.nanos_per_op(len(probes), work)


def prediction_accuracy(predicted: float, measured: float) -> float:
    """Relative error |predicted - measured| / measured."""
    if measured == 0:
        return 0.0 if predicted == 0 else float("inf")
    return abs(predicted - measured) / measured
