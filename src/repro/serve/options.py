"""The consistency-aware read API: ``ReadOptions`` and ``WriteToken``.

Eight PRs of growth left the facade with ~15 read entry points
(``lookup``/``get``/``contains``, their ``_many`` batches, range scans,
the async ingress mirrors…) and no place for a caller to say *which*
consistency a read needs.  Replication forces the question: once a shard
has a replica applying the shipped WAL a few milliseconds behind its
primary, "read" stops being one thing.  This module is the single answer
threaded uniformly through :class:`~repro.serve.ShardedAlexIndex`,
:class:`~repro.serve.AsyncIngress`, and ``IngressRunner``:

``ReadOptions(consistency, max_staleness_s, token)``
    * ``primary`` (the default, and the behaviour of every pre-existing
      positional signature): serve from the primary worker under the
      shard lock.  Always current, pays the primary's queue.
    * ``replica_ok``: serve from the shard's replica when one is attached
      and fresh enough (``max_staleness_s`` bounds the observable lag;
      ``None`` accepts any replica that is alive and applying).  Falls
      back to the primary transparently when the bound cannot be met.
    * ``read_your_writes``: like ``replica_ok`` but anchored to a
      :class:`WriteToken` — the replica must have applied at least the
      LSNs the token records, else the read falls back to the primary.

``WriteToken``
    Every acked write returns one: a per-shard LSN vector keyed by the
    shard's **durability generation** (the durability directory name,
    e.g. ``shard-00000003``).  Generations are stable across the life of
    a shard and *replaced* by SMOs (split/merge rewrite the topology into
    fresh directories whose generation-zero checkpoint already contains
    every pre-SMO write), so a token survives shard splits for free: a
    generation the replica does not know simply demands LSN 0, which the
    fresh checkpoint satisfies.  Tokens from concurrent writers merge
    with :meth:`WriteToken.merge` (pointwise max).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Union

#: Consistency levels, in decreasing order of freshness guarantee.
PRIMARY = "primary"
REPLICA_OK = "replica_ok"
READ_YOUR_WRITES = "read_your_writes"

CONSISTENCY_LEVELS = (PRIMARY, REPLICA_OK, READ_YOUR_WRITES)


@dataclass(frozen=True)
class WriteToken:
    """Per-shard durability watermark returned by every acked write.

    ``lsns`` maps a shard's durability generation (its durability
    directory name) to the highest WAL LSN this token's writes reached
    there.  An empty token (``WriteToken.empty()``, also what writes on a
    non-durable service return) demands nothing and is satisfied by any
    replica.
    """

    lsns: Mapping[str, int] = field(default_factory=dict)

    @classmethod
    def empty(cls) -> "WriteToken":
        return cls({})

    def merge(self, other: Optional["WriteToken"]) -> "WriteToken":
        """Pointwise-max combination: the merged token is satisfied only
        by a replica that satisfies both inputs."""
        if not other or not other.lsns:
            return self
        if not self.lsns:
            return other
        merged = dict(self.lsns)
        for generation, lsn in other.lsns.items():
            if lsn > merged.get(generation, 0):
                merged[generation] = lsn
        return WriteToken(merged)

    def lsn_for(self, generation: str) -> int:
        """The LSN this token demands of ``generation`` (0 when the
        generation is unknown — e.g. it was created by a later SMO whose
        generation-zero checkpoint already contains these writes)."""
        return self.lsns.get(generation, 0)

    def __bool__(self) -> bool:
        return bool(self.lsns)


@dataclass(frozen=True)
class ReadOptions:
    """How a read may be served.  Frozen and hashable-by-construction so
    one instance can be shared across a whole batch/stream of requests.

    ``max_staleness_s`` bounds the replica's *observable* staleness (time
    since it last confirmed it was at the WAL head); ``None`` means any
    live replica qualifies.  ``token`` only matters for
    ``read_your_writes``; ``None`` there means "my writes so far are
    whatever the empty token records", i.e. nothing — equivalent to
    ``replica_ok``.
    """

    consistency: str = PRIMARY
    max_staleness_s: Optional[float] = None
    token: Optional[WriteToken] = None

    def __post_init__(self):
        if self.consistency not in CONSISTENCY_LEVELS:
            raise ValueError(
                f"unknown consistency {self.consistency!r}; expected one "
                f"of {CONSISTENCY_LEVELS}")
        if self.max_staleness_s is not None and self.max_staleness_s < 0:
            raise ValueError("max_staleness_s must be >= 0")
        if self.token is not None and not isinstance(self.token, WriteToken):
            raise TypeError("token must be a WriteToken (as returned by a "
                            "write) or None")

    # -- constructors matching the three policies ----------------------
    @classmethod
    def primary(cls) -> "ReadOptions":
        """Always read the primary (the pre-replication behaviour)."""
        return cls(PRIMARY)

    @classmethod
    def replica_ok(cls, max_staleness_s: Optional[float] = None
                   ) -> "ReadOptions":
        """Accept a replica within ``max_staleness_s`` of the primary."""
        return cls(REPLICA_OK, max_staleness_s=max_staleness_s)

    @classmethod
    def read_your_writes(cls, token: Optional[WriteToken],
                         max_staleness_s: Optional[float] = None
                         ) -> "ReadOptions":
        """Accept a replica only once it has applied ``token``."""
        return cls(READ_YOUR_WRITES, max_staleness_s=max_staleness_s,
                   token=token)

    @property
    def wants_replica(self) -> bool:
        return self.consistency != PRIMARY


#: The default for every read entry point: exactly the old behaviour.
DEFAULT_READ_OPTIONS = ReadOptions()


def resolve_read_options(options: Union[ReadOptions, str, None]
                         ) -> ReadOptions:
    """Normalize the ``options=`` argument of a read entry point:
    ``None`` → primary, a bare consistency string → that level with no
    further bounds, a ``ReadOptions`` → itself."""
    if options is None:
        return DEFAULT_READ_OPTIONS
    if isinstance(options, str):
        return ReadOptions(options)
    if isinstance(options, ReadOptions):
        return options
    raise TypeError(f"options must be ReadOptions, a consistency string, "
                    f"or None — got {type(options).__name__}")
