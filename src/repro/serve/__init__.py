"""The sharded index service: ALEX scaled out by key-range partitioning.

The paper's Section 7 sketches how ALEX lives inside a DBMS — concurrent
access under locks — and :mod:`repro.ext.concurrent` provides the coarse
end of that design space: one index, one reader/writer lock, every write
serialized.  This subsystem is the scale-out end: a
:class:`ShardedAlexIndex` partitions the key space into N independent
:class:`~repro.core.alex.AlexIndex` shards and scatter-gathers batched
reads, writes, and range scans across them, so traffic to different key
ranges proceeds in parallel.

**The router.**  A :class:`ShardRouter` fits *near-equal-mass* boundaries
at bulk load from the empirical CDF of the loaded keys
(:func:`repro.datasets.cdf.empirical_cdf`): boundary ``s`` sits at CDF
mass ``s / N``, so skewed key distributions still yield balanced shards —
the same piecewise-linear reading of the CDF that ALEX's adaptive RMI
discovers recursively, applied once at the serving tier.  Scalar requests
route through a :class:`~repro.core.linear_model.LinearModel` prediction
corrected against the exact boundaries (ALEX's model-plus-search idiom);
batches are sorted once and carved into contiguous per-shard runs with a
single ``searchsorted``, mirroring :func:`repro.core.rmi.route_batch` one
level up.

**Locking granularity.**  Two levels of writer-preferring reader/writer
locks (:class:`repro.ext.concurrent.ReadWriteLock`): a *structure* lock,
held shared by every request and exclusively by shard splits, pins the
router and shard list; a *per-shard* lock serializes writers within one
shard while readers share.  Writes to different shards hold different
locks and therefore no longer serialize; cross-shard batch inserts take
the involved shards' write locks in ascending shard order (no deadlocks)
and validate every sub-batch before any shard mutates (all-or-nothing).

**Rebalance policy.**  The serving layer tallies per-shard accesses
(:class:`ShardStats`).  Under skewed traffic — e.g. the
:class:`repro.workloads.hotspot.HotspotGenerator` access pattern — one
shard's lock becomes the system's bottleneck; :meth:`ShardedAlexIndex
.rebalance` detects a shard absorbing at least a configurable fraction of
all accesses and splits it in two at its median key, doubling the lock
granularity exactly where the traffic is.  Splits quiesce the service
through the structure lock and preserve all contents.

**Execution backends.**  Where the shards live is pluggable
(``ShardedAlexIndex(backend="thread" | "process")``): the
:class:`ThreadBackend` keeps them in-process behind a shared
``ThreadPoolExecutor`` (GIL-bound for Python-level work), while the
:class:`ProcessBackend` hosts each shard in a long-lived worker process —
batches travel through :mod:`multiprocessing.shared_memory`
(:mod:`repro.core.shm`) with pipe-based RPC carrying only offsets, so
batch reads map the request keys zero-copy and scatter-gather runs on
real cores.  The facade's locking, routing, statistics, and two-phase
all-or-nothing writes are identical under both.  The process backend's
RPC is *pipelined*: frames carry request ids, each worker keeps several
requests in flight (``max_inflight``), a per-worker reply-reader thread
demultiplexes out-of-order completions to futures, and numeric reply
columns return through a per-worker shared-memory
:class:`~repro.core.shm.ReplyRing` instead of the pickle pipe.

**The front door.**  :class:`AsyncIngress` (:mod:`repro.serve.ingress`)
turns many small concurrent client requests into the batch shapes this
tier is fast at: arrivals coalesce inside a small time/size window
(group-commit, read side), flush downstream on a thread pool without
blocking the accept loop, and shed or block past an admission cap.
:class:`IngressRunner` is its synchronous wrapper for thread-world
callers.

**Replication and consistency.**  With
``ShardedAlexIndex(replicate=True)`` each shard hosts a WAL-following
:class:`~repro.replication.Replica` beside its primary.  Every read
entry point takes one ``options=`` — a :class:`ReadOptions` (or its
consistency-level string): ``primary`` (default, exactly the old
behavior), ``replica_ok(max_staleness_s=...)`` (lock-free replica reads
at bounded observable staleness), or ``read_your_writes(token)`` where
``token`` is the :class:`WriteToken` acked by every write.  Replica
reads that cannot meet their bound fall back to the primary; a dead
*primary* is **failed over** — its caught-up replica promotes in place
of the cold checkpoint-replay respawn — and a dead replica is respawned
behind the primary's back without touching the read path's guarantees.
"""

from .backend import (ExecutionBackend, ThreadBackend, WorkerDiedError,
                      make_backend)
from .ingress import (MISSING, AsyncIngress, IngressRunner,
                      ServiceOverloadedError)
from .options import (CONSISTENCY_LEVELS, PRIMARY, READ_YOUR_WRITES,
                      REPLICA_OK, ReadOptions, WriteToken,
                      resolve_read_options)
from .router import ShardRouter
from .sharded import ShardedAlexIndex, ShardStats
from .worker import ProcessBackend

__all__ = [
    "CONSISTENCY_LEVELS",
    "MISSING",
    "PRIMARY",
    "READ_YOUR_WRITES",
    "REPLICA_OK",
    "AsyncIngress",
    "ExecutionBackend",
    "IngressRunner",
    "ProcessBackend",
    "ReadOptions",
    "ServiceOverloadedError",
    "ShardRouter",
    "ShardStats",
    "ShardedAlexIndex",
    "ThreadBackend",
    "WorkerDiedError",
    "WriteToken",
    "make_backend",
    "resolve_read_options",
]
